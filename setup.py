"""Legacy setuptools entry point (the sandbox lacks the `wheel` package,
so PEP 517 editable installs are unavailable)."""

from setuptools import setup

setup()
