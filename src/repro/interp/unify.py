"""Unification and arithmetic evaluation over source-level terms."""

from repro.terms import Atom, Int, Var, Struct, deref


def bind(var, term, trail):
    """Bind *var* to *term*, recording the binding for backtracking."""
    var.ref = term
    trail.append(var)


def undo_to(trail, mark):
    """Unbind every variable recorded after *mark*."""
    while len(trail) > mark:
        trail.pop().ref = None


def unify(a, b, trail):
    """Unify two terms (no occurs check), trailing bindings.

    Returns True on success.  On failure some bindings may have been
    trailed; the caller is expected to undo to its own mark.
    """
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        x = deref(x)
        y = deref(y)
        if x is y:
            continue
        if isinstance(x, Var):
            bind(x, y, trail)
            continue
        if isinstance(y, Var):
            bind(y, x, trail)
            continue
        if isinstance(x, Atom):
            if isinstance(y, Atom) and x.name == y.name:
                continue
            return False
        if isinstance(x, Int):
            if isinstance(y, Int) and x.value == y.value:
                continue
            return False
        if isinstance(x, Struct):
            if (isinstance(y, Struct) and x.name == y.name
                    and len(x.args) == len(y.args)):
                stack.extend(zip(x.args, y.args))
                continue
            return False
        return False
    return True


class ArithmeticError_(Exception):
    """Raised when an arithmetic expression cannot be evaluated."""


def _int_div(a, b):
    """Truncating integer division (the classical Prolog ``//``)."""
    if b == 0:
        raise ArithmeticError_("division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


_BINARY = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    # '/' is integer division here: the whole SYMBOL datapath is integer
    # (the prototype has no FPU) and the classical benchmarks assume it.
    "/": _int_div,
    "//": _int_div,
    "mod": lambda a, b: a - _int_div(a, b) * b,
    "rem": lambda a, b: a - _int_div(a, b) * b,
    ">>": lambda a, b: a >> b,
    "<<": lambda a, b: a << b,
    "/\\": lambda a, b: a & b,
    "\\/": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "min": min,
    "max": max,
    "**": lambda a, b: a ** b,
    "^": lambda a, b: a ** b,
}

_UNARY = {
    "-": lambda a: -a,
    "+": lambda a: a,
    "abs": abs,
    "\\": lambda a: ~a,
}


def evaluate(term):
    """Evaluate an arithmetic expression term to a Python int."""
    term = deref(term)
    if isinstance(term, Int):
        return term.value
    if isinstance(term, Var):
        raise ArithmeticError_("unbound variable in arithmetic")
    if isinstance(term, Struct):
        if len(term.args) == 2 and term.name in _BINARY:
            return _BINARY[term.name](evaluate(term.args[0]),
                                      evaluate(term.args[1]))
        if len(term.args) == 1 and term.name in _UNARY:
            return _UNARY[term.name](evaluate(term.args[0]))
    raise ArithmeticError_("cannot evaluate %r" % (term,))
