"""Clause database for the reference interpreter and the compiler.

A :class:`Database` stores program clauses indexed by predicate indicator
``(name, arity)``.  Both the tree-walking interpreter and the BAM compiler
consume this structure, so a program parsed once can be executed both ways
and the results compared.
"""

from repro.reader import parse_program
from repro.terms import Atom, Struct


class Clause:
    """One program clause, normalised to ``head :- body`` form."""

    __slots__ = ("head", "body")

    def __init__(self, head, body):
        self.head = head
        self.body = body

    @property
    def indicator(self):
        if isinstance(self.head, Atom):
            return (self.head.name, 0)
        return (self.head.name, len(self.head.args))


class Database:
    """An ordered collection of clauses grouped by predicate."""

    def __init__(self):
        self.predicates = {}
        self.order = []

    def add_clause(self, term):
        """Add one parsed clause term (fact or ``Head :- Body``)."""
        if isinstance(term, Struct) and term.indicator == (":-", 2):
            clause = Clause(term.args[0], term.args[1])
        elif isinstance(term, Struct) and term.indicator == (":-", 1):
            raise ValueError("directives are not stored in the database")
        else:
            clause = Clause(term, Atom("true"))
        head = clause.head
        if not isinstance(head, (Atom, Struct)):
            raise ValueError("invalid clause head: %r" % (head,))
        key = clause.indicator
        if key not in self.predicates:
            self.predicates[key] = []
            self.order.append(key)
        self.predicates[key].append(clause)
        return clause

    def consult(self, text):
        """Parse Prolog source *text* and add every clause.

        Directives (``:- Goal``) are collected and returned instead of
        executed, so the caller decides what to do with them.
        """
        directives = []
        for term in parse_program(text):
            if isinstance(term, Struct) and term.indicator == (":-", 1):
                directives.append(term.args[0])
            else:
                self.add_clause(term)
        return directives

    def clauses(self, name, arity):
        """All clauses of ``name/arity`` in program order."""
        return self.predicates.get((name, arity), [])

    def __contains__(self, indicator):
        return indicator in self.predicates
