"""Tree-walking reference interpreter.

This is the semantic oracle of the reproduction: compiled ICI programs are
validated against it in the test suite.  It is a classical generator-based
resolution engine with cut, if-then-else, negation-as-failure and the
builtin set used by the Aquarius-style benchmarks.
"""

import sys

from repro.terms import Atom, Int, Var, Struct, deref, term_to_string
from repro.interp.database import Database
from repro.interp.unify import unify, undo_to, evaluate, ArithmeticError_


class PrologError(Exception):
    """Raised on calls to undefined predicates or bad builtin usage."""


class Engine:
    """Executes goals against a :class:`Database`.

    ``engine.output`` accumulates the text written by ``write/1`` and
    ``nl/0`` so program output can be compared with the emulator's.
    """

    def __init__(self, db=None):
        self.db = db if db is not None else Database()
        self.trail = []
        self.output = []
        self._cut_to = None
        self._next_barrier = 0

    def consult(self, text):
        """Load Prolog source into the database (directives are run)."""
        for goal in self.db.consult(text):
            if not self.run(goal):
                raise PrologError("directive failed: %s"
                                  % term_to_string(goal))

    # -- top level -------------------------------------------------------

    def run(self, goal):
        """Prove *goal* once; True on success (bindings retained)."""
        for _ in self.solve(goal, self._new_barrier()):
            return True
        return False

    def run_query(self, text):
        """Parse and prove a query given as text; returns success flag."""
        from repro.reader import parse_term
        return self.run(parse_term(text))

    def solutions(self, goal, limit=None):
        """Yield once per solution of *goal* (bindings live during yield)."""
        mark = len(self.trail)
        count = 0
        for _ in self.solve(goal, self._new_barrier()):
            yield
            count += 1
            if limit is not None and count >= limit:
                break
        undo_to(self.trail, mark)

    def output_text(self):
        return "".join(self.output)

    def _new_barrier(self):
        self._next_barrier += 1
        return self._next_barrier

    # -- the resolution core ----------------------------------------------

    def solve(self, goal, depth):
        """Generator yielding once per proof of *goal*.

        *depth* is the cut barrier of the innermost enclosing predicate
        call: executing ``!`` sets ``self._cut_to = depth`` when it is
        backtracked into, which unwinds clause choice up to that call.
        """
        goal = deref(goal)
        if isinstance(goal, Var):
            raise PrologError("unbound goal")
        if isinstance(goal, Int):
            raise PrologError("integer used as goal")

        name = goal.name
        args = goal.args if isinstance(goal, Struct) else []
        arity = len(args)

        # --- control constructs ---
        if name == "true" and arity == 0:
            yield
            return
        if name in ("fail", "false") and arity == 0:
            return
        if name == "," and arity == 2:
            for _ in self.solve(args[0], depth):
                yield from self.solve(args[1], depth)
                if self._cut_to is not None:
                    return
            return
        if name == ";" and arity == 2:
            left = deref(args[0])
            if isinstance(left, Struct) and left.indicator == ("->", 2):
                yield from self._if_then_else(left.args[0], left.args[1],
                                              args[1], depth)
                return
            yield from self.solve(args[0], depth)
            if self._cut_to is not None:
                return
            yield from self.solve(args[1], depth)
            return
        if name == "->" and arity == 2:
            yield from self._if_then_else(args[0], args[1],
                                          Atom("fail"), depth)
            return
        if name == "!" and arity == 0:
            yield
            self._cut_to = depth
            return
        if name == "\\+" and arity == 1 or (name == "not" and arity == 1):
            mark = len(self.trail)
            for _ in self.solve(args[0], self._new_barrier()):
                undo_to(self.trail, mark)
                return
            undo_to(self.trail, mark)
            yield
            return
        if name == "call" and arity == 1:
            yield from self.solve(args[0], self._new_barrier())
            return

        # --- builtins ---
        builtin = _BUILTINS.get((name, arity))
        if builtin is not None:
            yield from builtin(self, args)
            return

        # --- user predicates ---
        clauses = self.db.clauses(name, arity)
        if not clauses and (name, arity) not in self.db.predicates:
            raise PrologError("undefined predicate %s/%d" % (name, arity))
        barrier = self._new_barrier()
        for clause in clauses:
            mark = len(self.trail)
            head, body = _rename(clause)
            if unify(goal, head, self.trail):
                yield from self.solve(body, barrier)
                if self._cut_to is not None:
                    undo_to(self.trail, mark)
                    if self._cut_to == barrier:
                        self._cut_to = None
                    return
            undo_to(self.trail, mark)
        return

    def solve_clause(self, goal, clause):
        """Generator yielding once per proof of *goal* via *clause* only.

        This is one choice-point branch of the user-predicate loop in
        :meth:`solve`, exposed so the or-parallel engine
        (:mod:`repro.interp.orparallel`) can explore the alternatives
        of a single predicate call independently: branch *i* resolves
        the goal against clause *i* alone, and concatenating the
        branch answer streams in clause order reproduces the
        sequential answer order exactly.  A cut executed in the body
        is honoured within the branch (it prunes the body's own
        choices); the or-parallel splitter refuses goals whose cut
        would prune *sibling* clauses, so the barrier never outlives
        this call.
        """
        goal = deref(goal)
        barrier = self._new_barrier()
        mark = len(self.trail)
        head, body = _rename(clause)
        if unify(goal, head, self.trail):
            yield from self.solve(body, barrier)
            if self._cut_to is not None:
                undo_to(self.trail, mark)
                if self._cut_to == barrier:
                    self._cut_to = None
                return
        undo_to(self.trail, mark)

    def _if_then_else(self, cond, then, else_, depth):
        mark = len(self.trail)
        found = False
        for _ in self.solve(cond, self._new_barrier()):
            found = True
            break
        if found:
            yield from self.solve(then, depth)
        else:
            undo_to(self.trail, mark)
            yield from self.solve(else_, depth)


def _rename(clause):
    """Copy a clause with fresh variables."""
    mapping = {}
    return (_copy(clause.head, mapping), _copy(clause.body, mapping))


def _copy(term, mapping):
    term = deref(term)
    if isinstance(term, Var):
        new = mapping.get(id(term))
        if new is None:
            new = Var(term.name)
            mapping[id(term)] = new
        return new
    if isinstance(term, Struct):
        return Struct(term.name, [_copy(a, mapping) for a in term.args])
    return term


# -- builtins ---------------------------------------------------------------


def _bi_unify(engine, args):
    # Bindings must be undone both on failure and when execution
    # backtracks through the succeeded goal (exhaustion of the generator).
    mark = len(engine.trail)
    if unify(args[0], args[1], engine.trail):
        yield
    undo_to(engine.trail, mark)


def _bi_not_unify(engine, args):
    mark = len(engine.trail)
    ok = unify(args[0], args[1], engine.trail)
    undo_to(engine.trail, mark)
    if not ok:
        yield


def _bi_is(engine, args):
    # Non-integer operands make arithmetic *fail* (not raise): the
    # compiled machine branches to the backtracking handler on a tag
    # mismatch, and the two executions must agree.  Unbound variables
    # still raise — that is a program bug, not a data-driven failure.
    try:
        value = evaluate(args[1])
    except ArithmeticError_ as exc:
        if _contains_unbound(args[1]) or "zero" in str(exc):
            raise PrologError(str(exc))
        return
    mark = len(engine.trail)
    if unify(args[0], Int(value), engine.trail):
        yield
    undo_to(engine.trail, mark)


def _contains_unbound(term):
    term = deref(term)
    if isinstance(term, Var):
        return True
    if isinstance(term, Struct):
        return any(_contains_unbound(a) for a in term.args)
    return False


def _compare(op):
    def builtin(engine, args):
        try:
            a = evaluate(args[0])
            b = evaluate(args[1])
        except ArithmeticError_ as exc:
            if _contains_unbound(args[0]) or _contains_unbound(args[1]) \
                    or "zero" in str(exc):
                raise PrologError(str(exc))
            return  # non-integer data: fail, like the compiled machine
        if op(a, b):
            yield
    return builtin


def _structural_equal(a, b):
    a = deref(a)
    b = deref(b)
    if isinstance(a, Var) or isinstance(b, Var):
        return a is b
    if isinstance(a, Atom):
        return isinstance(b, Atom) and a.name == b.name
    if isinstance(a, Int):
        return isinstance(b, Int) and a.value == b.value
    if isinstance(a, Struct):
        return (isinstance(b, Struct) and a.name == b.name
                and len(a.args) == len(b.args)
                and all(_structural_equal(x, y)
                        for x, y in zip(a.args, b.args)))
    return False


def _bi_eq(engine, args):
    if _structural_equal(args[0], args[1]):
        yield


def _bi_neq(engine, args):
    if not _structural_equal(args[0], args[1]):
        yield


def _type_test(predicate):
    def builtin(engine, args):
        if predicate(deref(args[0])):
            yield
    return builtin


def _bi_functor(engine, args):
    term = deref(args[0])
    mark = len(engine.trail)
    if isinstance(term, Var):
        name = deref(args[1])
        arity = deref(args[2])
        if not isinstance(arity, Int):
            raise PrologError("functor/3: arity must be an integer")
        if arity.value == 0:
            ok = unify(term, name, engine.trail)
        else:
            if not isinstance(name, Atom):
                raise PrologError("functor/3: name must be an atom")
            ok = unify(term,
                       Struct(name.name,
                              [Var() for _ in range(arity.value)]),
                       engine.trail)
    else:
        if isinstance(term, Struct):
            name, arity = Atom(term.name), Int(len(term.args))
        elif isinstance(term, Atom):
            name, arity = term, Int(0)
        else:
            name, arity = term, Int(0)
        ok = (unify(args[1], name, engine.trail)
              and unify(args[2], arity, engine.trail))
    if ok:
        yield
    undo_to(engine.trail, mark)


def _bi_arg(engine, args):
    n = deref(args[0])
    term = deref(args[1])
    if not isinstance(n, Int) or not isinstance(term, Struct):
        raise PrologError("arg/3: bad arguments")
    if 1 <= n.value <= len(term.args):
        mark = len(engine.trail)
        if unify(args[2], term.args[n.value - 1], engine.trail):
            yield
        undo_to(engine.trail, mark)


def _bi_write(engine, args):
    engine.output.append(term_to_string(args[0]))
    yield


def _bi_nl(engine, args):
    engine.output.append("\n")
    yield


_BUILTINS = {
    ("=", 2): _bi_unify,
    ("\\=", 2): _bi_not_unify,
    ("is", 2): _bi_is,
    ("<", 2): _compare(lambda a, b: a < b),
    (">", 2): _compare(lambda a, b: a > b),
    ("=<", 2): _compare(lambda a, b: a <= b),
    (">=", 2): _compare(lambda a, b: a >= b),
    ("=:=", 2): _compare(lambda a, b: a == b),
    ("=\\=", 2): _compare(lambda a, b: a != b),
    ("==", 2): _bi_eq,
    ("\\==", 2): _bi_neq,
    ("var", 1): _type_test(lambda t: isinstance(t, Var)),
    ("nonvar", 1): _type_test(lambda t: not isinstance(t, Var)),
    ("atom", 1): _type_test(lambda t: isinstance(t, Atom)),
    ("integer", 1): _type_test(lambda t: isinstance(t, Int)),
    ("number", 1): _type_test(lambda t: isinstance(t, Int)),
    ("atomic", 1): _type_test(lambda t: isinstance(t, (Atom, Int))),
    ("functor", 3): _bi_functor,
    ("arg", 3): _bi_arg,
    ("write", 1): _bi_write,
    ("print", 1): _bi_write,
    ("nl", 0): _bi_nl,
}


def _ensure_recursion_headroom():
    if sys.getrecursionlimit() < 100000:
        sys.setrecursionlimit(100000)


_ensure_recursion_headroom()
