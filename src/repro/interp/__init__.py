"""Reference tree-walking Prolog interpreter (the semantic oracle)."""

from repro.interp.database import Database, Clause
from repro.interp.engine import Engine, PrologError
from repro.interp.unify import unify, undo_to, evaluate

__all__ = [
    "Database",
    "Clause",
    "Engine",
    "PrologError",
    "unify",
    "undo_to",
    "evaluate",
]
