"""Or-parallel search with memoized answers.

The paper mines *instruction-level* parallelism inside one Prolog
execution; this module opens the next axis up (ROADMAP item 2, after
Santos & Rocha's or-parallel Prolog for clusters and Chico de Guzmán
et al.'s answer memoing): the alternatives of a choice point are
explored as independent search tasks fanned out over the supervised
process pool, and complete answer sets are memoized in the
content-addressed cache so a repeated subgoal is *served*, not
recomputed.

Execution model
---------------

The engine splits the query's **first choice point**: the leftmost
multi-clause predicate reached from the goal by unfolding
single-clause predicates and stepping over deterministic builtins
(every builtin in this interpreter yields at most one solution, so
nothing to the left of the split point multiplies answers).  A call
``p(Args)`` whose choice predicate has clauses ``C1..Cn`` becomes *n*
branch tasks: branch *i* replays the deterministic prefix and then
resolves the choice predicate against clause *i* alone
(:meth:`Engine.solve_clause`), enumerating that branch's solutions
sequentially — continuation goals included.  Because a predicate call
tries its clauses strictly in order and the prefix is deterministic,
every solution reached through ``Ci`` precedes every solution reached
through ``Ci+1`` in the sequential engine — so concatenating the
branch answer streams **in clause order** reproduces the sequential
answer multiset *and order* exactly, however the branches were
scheduled.

Scheduling is work stealing in the deterministic form this codebase
uses everywhere: branch tasks are queued in clause order, idle pool
workers pull the next pending branch, and determinism comes from
order-preserving reassembly (plus fuse-file fault accounting), not
from pinning branches to workers.  The fan-out runs through
:meth:`EvaluationEngine.map`, so branches inherit the supervisor's
resilience policy — per-task deadlines, bounded retry, pool
resurrection after a SIGKILL — and the ``orparallel.task`` fault site
lets the chaos suite kill, hang or fail stolen branches on exact
ordinals.

Sequential fallback
-------------------

Splitting is only claimed for goals it provably cannot change:

* every predicate transitively reachable from the goal must be
  **pure**: no cut (a cut prunes *sibling* branches; a nested cut
  would be safe, but the conservative rule is one line and provable),
  no negation-as-failure, no if-then-else, no output builtins
  (``write``/``print``/``nl``), no variable or ``call/1``-mediated
  dynamic goals;
* the leftmost descent must actually find a multi-clause **defined
  user predicate** within bounded unfolding depth — a goal whose
  choices hide behind disjunctions or recursion deeper than the fuel
  bound simply runs sequentially.

Everything else — cut, negation, if-then-else, side effects, the
unknown — runs on the sequential reference engine unchanged, which
makes the fallback path byte-identical by construction.  The
differential harness (``tests/test_orparallel.py``) pins the split
path against the sequential engine at or-jobs 1/2/4 over the paper
suite, the DCG workloads and a corpus slice.

Answer memo table
-----------------

Answers are memoized under the ``orparallel`` cache kind through the
pluggable :class:`~repro.evaluation.cache.CacheStore`.  The memo key
is a canonical **(program, call-pattern) fingerprint**: the program's
source digest plus the goal with its variables renamed to ``_0, _1,
...`` in order of first occurrence — ``p(X, b, X)`` and ``p(Q, b,
Q)`` share an entry, ``p(X, b, Y)`` does not, because the sharing
pattern is part of what the answers mean.  Entries exist at two
scopes: the whole call (one entry per query pattern) and one entry
per branch, so a partially warm cache re-dispatches only the missing
branches.  Memoisation is sound for *every* goal — the reference
engine is deterministic, and rendered answers plus captured output
are the whole observable result — so the memo also serves fallback
queries.  The answer limit is part of the key: a truncated answer
set must never serve an unbounded request.
"""

import hashlib

from repro.interp.database import Database
from repro.interp.engine import Engine, _BUILTINS, _rename
from repro.interp.unify import unify, undo_to
from repro.observability import tracing as obs
from repro.terms import Int, Struct, Var, deref, term_to_string
from repro.testing import faults

__all__ = [
    "MEMO_KIND",
    "canonical_term",
    "or_solutions",
    "program_digest",
    "sequential_answers",
    "split_plan",
]

#: the cache kind answer-memo entries are stored under
MEMO_KIND = "orparallel"

#: control constructs the goal scanner interprets structurally
_CONTROL = {(",", 2), (";", 2), ("->", 2), ("!", 0), ("\\+", 1),
            ("not", 1), ("call", 1), ("true", 0), ("fail", 0),
            ("false", 0)}

#: builtins whose execution is observable outside the answer bindings
_SIDE_EFFECTS = {("write", 1), ("print", 1), ("nl", 0)}


# --------------------------------------------------------------------------
# Canonical renderings: the memo key and the answer format.

def _canonical_copy(term, mapping):
    term = deref(term)
    if isinstance(term, Var):
        renamed = mapping.get(id(term))
        if renamed is None:
            renamed = Var("_%d" % len(mapping))
            mapping[id(term)] = renamed
        return renamed
    if isinstance(term, Struct):
        return Struct(term.name,
                      [_canonical_copy(arg, mapping) for arg in term.args])
    return term


def canonical_term(term):
    """Render *term* with variables renamed ``_0, _1, ...`` by first
    occurrence.

    Used both for memo-key call patterns (two goals that are variants
    of each other share an entry) and for answers (the rendering is
    independent of the live ``Var`` counter, so workers in different
    processes — and the sequential oracle — render identically).
    """
    return term_to_string(_canonical_copy(term, {}))


def program_digest(source):
    """Stable fingerprint of a Prolog source text."""
    return hashlib.sha256(source.encode()).hexdigest()[:24]


# --------------------------------------------------------------------------
# The split-safety analysis.

def _scan_body(term, reasons, calls, indicator):
    """Collect purity violations and outgoing calls of one body goal."""
    term = deref(term)
    if isinstance(term, Var):
        reasons.append("variable goal in %s/%d" % indicator)
        return
    if isinstance(term, Int):
        reasons.append("integer goal in %s/%d" % indicator)
        return
    name = term.name
    args = term.args if isinstance(term, Struct) else []
    key = (name, len(args))
    if key == (",", 2) or key == (";", 2):
        left = deref(args[0])
        if (key == (";", 2) and isinstance(left, Struct)
                and left.indicator == ("->", 2)):
            reasons.append("if-then-else in %s/%d" % indicator)
            return
        _scan_body(args[0], reasons, calls, indicator)
        _scan_body(args[1], reasons, calls, indicator)
        return
    if key == ("->", 2):
        reasons.append("if-then-else in %s/%d" % indicator)
        return
    if key == ("!", 0):
        reasons.append("cut in %s/%d" % indicator)
        return
    if key in (("\\+", 1), ("not", 1)):
        reasons.append("negation in %s/%d" % indicator)
        return
    if key == ("call", 1):
        inner = deref(args[0])
        if isinstance(inner, Var):
            reasons.append("dynamic call in %s/%d" % indicator)
            return
        _scan_body(inner, reasons, calls, indicator)
        return
    if key in _CONTROL:
        return
    if key in _SIDE_EFFECTS:
        reasons.append("side effect %s/%d in %s/%d"
                       % (key + indicator))
        return
    if key in _BUILTINS:
        return
    calls.add(key)


def _purity_reasons(db, indicator):
    """Why predicates reachable from *indicator* are unsafe to steal.

    Walks the static call graph from *indicator*; returns a sorted,
    de-duplicated list of human-readable reasons (empty = pure)."""
    reasons = []
    seen = set()
    worklist = [indicator]
    while worklist:
        current = worklist.pop()
        if current in seen:
            continue
        seen.add(current)
        if current not in db.predicates:
            reasons.append("undefined predicate %s/%d" % current)
            continue
        for clause in db.clauses(*current):
            calls = set()
            _scan_body(clause.body, reasons, calls, current)
            worklist.extend(call for call in calls if call not in seen)
    return sorted(set(reasons))


#: unfolding depth bound for the leftmost-descent choice search; deep
#: enough for any realistic driver-predicate chain, finite so mutually
#: recursive single-clause predicates cannot loop the planner
_DESCENT_FUEL = 32

#: control atoms that yield at most one solution (``true`` once,
#: ``fail``/``false`` never) — safe to step over when hunting the
#: first choice point, exactly like the deterministic builtins
_DET_CONTROL = {("true", 0), ("fail", 0), ("false", 0)}


def _find_choice(db, term, fuel):
    """Locate the first choice point on *term*'s leftmost call chain.

    Returns ``("split", indicator, clause_count)`` for the leftmost
    multi-clause user predicate, ``("det",)`` when the whole chain is
    provably deterministic (at most one solution), or ``None`` when no
    splittable choice point can be established (disjunctions, dynamic
    goals, fuel exhaustion).  Mirrored dynamically by
    :func:`_branch_solutions` — the two must agree on where the choice
    point sits, which they do because the descent depends only on
    predicate identity, never on bindings (purity rejects variable
    goals before this runs).
    """
    if fuel <= 0:
        return None
    term = deref(term)
    if isinstance(term, (Var, Int)):
        return None
    name = term.name
    args = term.args if isinstance(term, Struct) else []
    key = (name, len(args))
    if key == (",", 2):
        first = _find_choice(db, args[0], fuel - 1)
        if first == ("det",):
            return _find_choice(db, args[1], fuel - 1)
        return first
    if key in _DET_CONTROL:
        return ("det",)
    if key in _CONTROL:
        return None
    if key in _BUILTINS:
        return ("det",)
    if key not in db.predicates:
        return None
    clauses = db.clauses(name, len(args))
    if len(clauses) >= 2:
        return ("split", key, len(clauses))
    if not clauses:
        return None
    return _find_choice(db, clauses[0].body, fuel - 1)


def split_plan(db, goal):
    """Decide whether *goal* may be split across the pool.

    Returns ``(branches, reason)``: *branches* is the list of clause
    indices of the choice predicate to explore in parallel (``None``
    when the goal must run sequentially), *reason* the first fallback
    justification (``None`` when splitting is safe)."""
    goal = deref(goal)
    reasons = []
    calls = set()
    _scan_body(goal, reasons, calls, ("query", 0))
    for call in sorted(calls):
        reasons.extend(_purity_reasons(db, call))
    if reasons:
        return None, sorted(set(reasons))[0]
    choice = _find_choice(db, goal, _DESCENT_FUEL)
    if choice == ("det",):
        return None, "goal is deterministic (no choice point)"
    if choice is None:
        return None, "no splittable choice point on the leftmost chain"
    return list(range(choice[2])), None


# --------------------------------------------------------------------------
# Branch execution (pool-worker side; module-level for pickling).

def _consulted_engine(source):
    """A fresh engine with *source* loaded; returns (engine, output)."""
    engine = Engine(Database())
    engine.consult(source)
    prefix = engine.output_text()
    del engine.output[:]
    return engine, prefix


def _branch_solutions(engine, term, index, fuel=_DESCENT_FUEL):
    """Yield once per solution of *term* restricted to clause *index*
    of its first choice point.

    The dynamic mirror of :func:`_find_choice`: deterministic
    prefixes are executed in place (they contribute at most one
    solution, so they never multiply or reorder answers), single-
    clause predicates are unfolded, and the multi-clause predicate
    the planner counted branches from is resolved against clause
    *index* alone.  Only runs on goals :func:`split_plan` accepted —
    pure, so cut barriers are never tripped."""
    term = deref(term)
    name = term.name
    args = term.args if isinstance(term, Struct) else []
    key = (name, len(args))
    if key == (",", 2):
        if _find_choice(engine.db, args[0], fuel - 1) == ("det",):
            for _ in engine.solve(args[0], engine._new_barrier()):
                yield from _branch_solutions(engine, args[1], index,
                                             fuel - 1)
            return
        for _ in _branch_solutions(engine, args[0], index, fuel - 1):
            yield from engine.solve(args[1], engine._new_barrier())
        return
    if key in _DET_CONTROL or key in _BUILTINS:
        yield from engine.solve(term, engine._new_barrier())
        return
    clauses = engine.db.clauses(name, len(args))
    if len(clauses) >= 2:
        yield from engine.solve_clause(term, clauses[index])
        return
    mark = len(engine.trail)
    head, body = _rename(clauses[0])
    if unify(term, head, engine.trail):
        yield from _branch_solutions(engine, body, index, fuel - 1)
    undo_to(engine.trail, mark)


def _branch_task(spec):
    """Explore one stolen branch: the goal restricted to one clause of
    its first choice point, sequentially.

    Runs in a pool worker (or inline at or-jobs 1).  The fault site
    fires first so the chaos suite can kill/hang/fail a branch before
    it does any work — the supervisor must retry it to byte-identical
    answers."""
    faults.fire("orparallel.task")
    from repro.reader import parse_term
    engine, _ = _consulted_engine(spec["source"])
    goal = parse_term(spec["goal"])
    limit = spec.get("limit")
    answers = []
    for _ in _branch_solutions(engine, goal, spec["clause"]):
        answers.append(canonical_term(goal))
        if limit is not None and len(answers) >= limit:
            break
    return {"answers": answers, "output": engine.output_text()}


# --------------------------------------------------------------------------
# The sequential oracle.

def sequential_answers(source, goal="main", limit=None):
    """Enumerate *goal* on the reference engine; the differential
    ground truth every or-parallel execution must reproduce.

    Returns ``{"answers": [...], "output": str, "count": int,
    "truncated": bool}`` with answers in canonical rendering
    (:func:`canonical_term`) and *output* the program's whole write
    stream, directives included."""
    from repro.reader import parse_term
    engine, prefix = _consulted_engine(source)
    parsed = parse_term(goal)
    answers = []
    for _ in engine.solutions(parsed, limit=limit):
        answers.append(canonical_term(parsed))
    return {"answers": answers,
            "output": prefix + engine.output_text(),
            "count": len(answers),
            "truncated": limit is not None and len(answers) >= limit}


# --------------------------------------------------------------------------
# The or-parallel driver.

def _memo_components(digest, pattern, limit, scope, clause=None):
    components = {"fingerprint": digest, "pattern": pattern,
                  "limit": limit, "scope": scope}
    if clause is not None:
        components["clause"] = clause
    return components


def _parallel_answers(source, goal_text, parsed, branches, engine,
                      store, use_memo, limit, prefix):
    """Fan the branch tasks out over the pool; reassemble in clause
    order.  Branch-scope memo entries serve warm branches without a
    dispatch; only the cold ones travel to the pool."""
    from repro.evaluation.parallel import code_version
    digest = program_digest(source)
    pattern = canonical_term(parsed)
    code = code_version(MEMO_KIND)
    payloads = {}
    specs = []
    for index in branches:
        key = store.key(MEMO_KIND, dict(
            _memo_components(digest, pattern, limit, "branch", index),
            code=code))
        cached = store.get(key) if use_memo else None
        if cached is not None:
            payloads[index] = cached
            obs.add("orparallel.branch_memo.hits")
        else:
            specs.append({"source": source, "goal": goal_text,
                          "clause": index, "limit": limit, "key": key})
            obs.add("orparallel.branch_memo.misses")
    if specs:
        with obs.span("orparallel.fanout", branches=len(specs),
                      jobs=engine.jobs):
            results = engine.map(_branch_task, specs)
        for spec, payload in zip(specs, results):
            store.put(spec["key"], payload)
            payloads[spec["clause"]] = payload
    answers = []
    output = [prefix]
    for index in branches:
        payload = payloads[index]
        answers.extend(payload["answers"])
        output.append(payload["output"])
    if limit is not None:
        answers = answers[:limit]
    return {"answers": answers, "output": "".join(output),
            "count": len(answers),
            "truncated": limit is not None and len(answers) >= limit}


def or_solutions(source, goal="main", engine=None, store=None,
                 use_memo=True, limit=None, jobs=None):
    """Answer *goal* over *source* with or-parallel search + memo.

    *engine* is the :class:`~repro.evaluation.parallel
    .EvaluationEngine` whose pool (and supervisor policy) the stolen
    branches run on — default the shared engine; its ``jobs`` count is
    the or-parallelism width unless *jobs* caps it lower (the service
    uses this to honour a request's ``or_jobs`` without resizing its
    pool).  *store* is the answer-memo :class:`CacheStore` (default:
    the engine's).  The result is the
    sequential payload (``answers``/``output``/``count``/
    ``truncated``) plus provenance: ``mode`` (``memo`` /
    ``parallel`` / ``sequential``), ``branches``, and the
    ``fallback`` reason when the goal was not split.  The answers
    are guaranteed — and differentially tested — to match
    :func:`sequential_answers` in order and multiplicity at every
    jobs count, faults armed or not.
    """
    from repro.evaluation.parallel import memoised, shared_engine
    from repro.reader import parse_term
    engine = engine if engine is not None else shared_engine()
    store = store if store is not None else engine.store
    width = engine.jobs if jobs is None else min(jobs, engine.jobs)
    with obs.span("orparallel.query", goal=goal) as span:
        parsed = parse_term(goal)
        pattern = canonical_term(parsed)
        provenance = {}

        def compute():
            local_engine, prefix = _consulted_engine(source)
            branches, reason = split_plan(local_engine.db, parsed)
            if branches is not None and width > 1:
                provenance.update(mode="parallel",
                                  branches=len(branches))
                obs.add("orparallel.splits")
                obs.add("orparallel.branches", len(branches))
                return _parallel_answers(
                    source, goal, parsed, branches, engine, store,
                    use_memo, limit, prefix)
            provenance.update(
                mode="sequential",
                branches=0 if branches is None else len(branches))
            if branches is None:
                provenance["fallback"] = reason
                obs.add("orparallel.fallbacks")
            return sequential_answers(source, goal, limit=limit)

        components = _memo_components(program_digest(source), pattern,
                                      limit, "call")
        payload = memoised(MEMO_KIND, components, compute, store=store,
                           use_cache=use_memo)
        if provenance:
            obs.add("orparallel.memo.misses")
        else:
            provenance = {"mode": "memo", "branches": 0}
            obs.add("orparallel.memo.hits")
        result = dict(payload)
        result.update(provenance)
        span.set(mode=result["mode"], answers=result["count"],
                 branches=result["branches"])
        return result
