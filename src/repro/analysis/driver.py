"""The ``repro analyze`` driver: run every dataflow pass over a
benchmark and price the static ILP bound against the achieved schedule.

One :func:`analyze_benchmark` call produces the per-benchmark record of
the analyze document (see :mod:`repro.analysis.report`): pass
statistics, analyze-stage diagnostics (unreachable blocks, dead
writes), the memory-disambiguation census over the executed trace
regions, and the ILP triple

* ``sequential_cycles`` — the Table 1 reference machine,
* ``achieved_cycles`` — trace scheduling on the ideal machine
  (``tr_ideal``, the paper's concurrency limit),
* ``dataflow_limit_cycles`` — the ASAP dependence-height replay of
  :func:`repro.analysis.dataflow.dataflow_limit_cycles`,

so the gap between achieved and dataflow-limit speedup quantifies what
the memory port, the branch-order rule and scheduling heuristics cost
(ROADMAP item 4).  The cycle cells are memoised through the same
content-addressed store the evaluation engine uses — a warm ``repro
evaluate`` run makes ``repro analyze`` nearly free.

Every pass runs under an observability span (``analyze.<pass>``) and
:func:`analyze_bench_document` turns the measured wall-clock of the
whole sweep into the ``BENCH_analyze.json`` perf record tracked next to
``BENCH_emulator.json``.
"""

import time

from repro.analysis import dataflow
from repro.analysis.cfg import Cfg
from repro.analysis.lint import Diagnostic, _abi_registers
from repro.benchmarks.suite import (
    compile_benchmark, program_fingerprint, run_program_cached)
from repro.compaction.machine_model import ideal, sequential
from repro.observability import tracing as observe

__all__ = [
    "ANALYZE_BENCH_SCHEMA",
    "analyze_benchmark",
    "analyze_bench_document",
    "validate_analyze_bench",
    "write_analyze_bench",
]

#: tail-duplication budget of the trace regions (the evaluation default)
DEFAULT_BUDGET = 48


def _pass_span(name, benchmark):
    return observe.span("analyze.%s" % name, benchmark=benchmark)


def _cycles_cell(fingerprint, regioning, budget, config, region_set,
                 use_cache):
    """One machine's cycle count, memoised compatibly with the
    evaluation engine's ``cell`` artefacts (same key components)."""
    from repro.evaluation.parallel import config_signature, memoised
    from repro.evaluation.pipeline import machine_cycles

    def compute():
        return {"cycles": machine_cycles(region_set, config),
                "verified": False}

    payload = memoised(
        "cell",
        {"fingerprint": fingerprint, "regioning": regioning,
         "budget": budget, "config": config_signature(config)},
        compute, use_cache=use_cache)
    return payload["cycles"]


def _limit_cell(fingerprint, budget, config, region_set, use_cache):
    """The dataflow-limit cycle count (its own artefact kind)."""
    from repro.evaluation.parallel import config_signature, memoised

    def compute():
        return {"cycles": dataflow.dataflow_limit_cycles(region_set,
                                                         config)}

    payload = memoised(
        "static_ilp",
        {"fingerprint": fingerprint, "regioning": "trace",
         "budget": budget, "config": config_signature(config)},
        compute, use_cache=use_cache)
    return payload["cycles"]


def analyze_benchmark(name, budget=DEFAULT_BUDGET, use_cache=True):
    """Analyze one suite benchmark; returns the per-target record of
    the analyze document (see :func:`repro.analysis.report
    .validate_analysis`)."""
    from repro.evaluation.pipeline import (
        basic_block_regions, superblock_regions)

    with observe.span("analyze.benchmark", benchmark=name):
        program = compile_benchmark(name)
        fingerprint = program_fingerprint(program)
        result = run_program_cached(program, name + "-")
        cfg = Cfg(program)
        abi = _abi_registers()
        passes = {}
        diagnostics = []

        with _pass_span("reaching_definitions", name):
            analysis = dataflow.ReachingDefinitions(cfg, abi)
            solution = dataflow.solve(cfg, analysis)
            passes["reaching_definitions"] = {
                "blocks": len(solution.in_of),
                "sites": len(analysis.site_of),
                "visits": solution.visits,
            }

        with _pass_span("copy_constants", name):
            solution = dataflow.solve(cfg, dataflow.CopyConstants(cfg))
            constants = copies = 0
            for value in solution.in_of.values():
                for fact in value.values():
                    if fact[0] == "const":
                        constants += 1
                    elif fact[0] == "copy":
                        copies += 1
            passes["copy_constants"] = {
                "entry_constants": constants, "entry_copies": copies,
            }

        with _pass_span("available_expressions", name):
            analysis = dataflow.AvailableExpressions(cfg)
            solution = dataflow.solve(cfg, analysis)
            available = sum(len(value)
                            for value in solution.in_of.values())
            passes["available_expressions"] = {
                "universe": len(analysis.universe),
                "entry_available": available,
            }

        with _pass_span("live_registers", name):
            liveness = dataflow.solve(
                cfg, dataflow.LiveRegisters(cfg, abi))
            passes["live_registers"] = {
                "max_live_in": max(
                    (len(value) for value in liveness.in_of.values()),
                    default=0),
            }

        with _pass_span("unreachable", name):
            unreachable = dataflow.unreachable_blocks(cfg)
            passes["unreachable"] = {"blocks": len(unreachable)}
            observe.add("analyze.unreachable_blocks", len(unreachable))
            for start, end in unreachable:
                diagnostics.append(Diagnostic(
                    "analyze", "unreachable-block",
                    "block [%d,%d) is unreachable from every entry"
                    % (start, end), region=(start, end)))

        with _pass_span("dead_code", name):
            dead = dataflow.dead_writes(cfg, liveness, abi)
            passes["dead_code"] = {"writes": len(dead)}
            observe.add("analyze.dead_writes", len(dead))
            for pc in dead:
                diagnostics.append(Diagnostic(
                    "analyze", "dead-write",
                    "%r: result is never read" % program.instructions[pc],
                    pos=pc))

        with _pass_span("regions", name):
            trace_set = superblock_regions(program, result, budget,
                                           name + "-")
            bb_set = basic_block_regions(program, result)

        with _pass_span("disambiguation", name):
            census = {"must": 0, "independent": 0, "may": 0}
            for region in trace_set.executed_regions():
                instructions = trace_set.program.instructions[
                    region.start:region.end]
                facts = dataflow.RegionMemoryFacts(instructions)
                for key, count in facts.pair_census().items():
                    census[key] += count
            passes["disambiguation"] = census
            observe.add("analyze.independent_pairs",
                        census["independent"])

        with _pass_span("ilp_bound", name):
            seq_cycles = _cycles_cell(fingerprint, "bb", None,
                                      sequential(), bb_set, use_cache)
            achieved_cycles = _cycles_cell(fingerprint, "trace", budget,
                                           ideal("ideal_tr"), trace_set,
                                           use_cache)
            limit_cycles = _limit_cell(fingerprint, budget,
                                       ideal("dataflow"), trace_set,
                                       use_cache)
        achieved = seq_cycles / achieved_cycles
        bound = seq_cycles / limit_cycles
        ilp = {
            "sequential_cycles": seq_cycles,
            "achieved_cycles": achieved_cycles,
            "dataflow_limit_cycles": limit_cycles,
            "achieved_speedup": achieved,
            "dataflow_limit_speedup": bound,
            # headroom factor: how much faster the pure dataflow limit
            # is than what trace scheduling + BUG achieved
            "gap": bound / achieved,
        }

        from repro.analysis.report import target_entry
        return target_entry(name, diagnostics, ops=len(program),
                            passes=passes, ilp=ilp)


# --------------------------------------------------------------------------
# The BENCH_analyze.json perf record (overhead budget of the analyzer).

ANALYZE_BENCH_SCHEMA = 1


def analyze_bench_document(entries, elapsed_seconds):
    """The perf record of one analyze sweep.

    *entries* are per-benchmark ``{"target", "ops", "seconds"}``
    timings; *elapsed_seconds* is the whole sweep's wall clock
    (including the memoised scheduling cells, so a warm cache shows up
    as a lower total).
    """
    from repro.benchmarks.perf import git_revision
    total_ops = sum(entry["ops"] for entry in entries)
    return {
        "schema": ANALYZE_BENCH_SCHEMA,
        "kind": "analyze-perf",
        "revision": git_revision(),
        "benchmarks": list(entries),
        "summary": {
            "benchmarks": len(entries),
            "total_ops": total_ops,
            "total_seconds": round(elapsed_seconds, 4),
            "ops_per_second": round(total_ops / elapsed_seconds, 1)
            if elapsed_seconds > 0 else 0.0,
        },
    }


def validate_analyze_bench(document):
    """Schema problems of a BENCH_analyze.json document (empty=valid)."""
    problems = []

    def require(condition, message):
        if not condition:
            problems.append(message)
        return condition

    if not require(isinstance(document, dict),
                   "document is not an object"):
        return problems
    require(document.get("schema") == ANALYZE_BENCH_SCHEMA,
            "'schema' is not %d" % ANALYZE_BENCH_SCHEMA)
    require(document.get("kind") == "analyze-perf",
            "'kind' is not 'analyze-perf'")
    require(isinstance(document.get("revision"), str),
            "'revision' is not a string")
    benchmarks = document.get("benchmarks")
    if require(isinstance(benchmarks, list) and benchmarks,
               "'benchmarks' is not a non-empty list"):
        for index, entry in enumerate(benchmarks):
            where = "benchmarks[%d]" % index
            if not require(isinstance(entry, dict),
                           "%s is not an object" % where):
                continue
            require(isinstance(entry.get("target"), str),
                    "%s: 'target' is not a string" % where)
            require(isinstance(entry.get("ops"), int)
                    and entry.get("ops", 0) > 0,
                    "%s: 'ops' is not a positive int" % where)
            require(isinstance(entry.get("seconds"), (int, float))
                    and entry.get("seconds", -1) >= 0,
                    "%s: 'seconds' is not a non-negative number" % where)
    summary = document.get("summary")
    if require(isinstance(summary, dict), "'summary' is not an object"):
        require(summary.get("benchmarks") == len(benchmarks or []),
                "'summary.benchmarks' does not count the entries")
        for key in ("total_ops", "total_seconds", "ops_per_second"):
            require(isinstance(summary.get(key), (int, float)),
                    "'summary.%s' is not a number" % key)
    return problems


def write_analyze_bench(document, path="BENCH_analyze.json"):
    """Atomically publish the analyze perf record."""
    from repro.atomicio import atomic_write_json
    atomic_write_json(path, document, indent=2, sort_keys=True)
    return path


def timed_analyze(name, budget=DEFAULT_BUDGET, use_cache=True):
    """(record, seconds) of one benchmark's analysis (perf helper)."""
    started = time.perf_counter()
    record = analyze_benchmark(name, budget, use_cache)
    return record, time.perf_counter() - started
