"""Lattice-based dataflow analysis over the ICI control-flow graph.

The paper's central question is *how much instruction-level parallelism
Prolog code exposes* — a dataflow property.  This module supplies the
static half of that measurement: a generic worklist engine over
:class:`~repro.analysis.cfg.Cfg` (forward or backward, configurable
join, widening for loops) plus the concrete passes the rest of the
repository consumes:

* :class:`ReachingDefinitions` — which definition sites reach each
  block (forward, union join, bitset-encoded definition sites);
* :class:`CopyConstants` — region-insensitive copy/constant
  propagation (forward, pointwise meet on a flat const/copy lattice,
  widening to not-a-constant at loop heads);
* :class:`AvailableExpressions` — pure ALU/move expressions available
  on every path (forward, intersection join);
* :class:`LiveRegisters` — name-based backward liveness (union join),
  feeding the dead-code facts;
* :func:`unreachable_blocks` / :func:`dead_writes` — dead-code
  detection: blocks no static or indirect entry path reaches, and
  register writes whose value is never observed;
* :class:`RegionMemoryFacts` — memory-reference disambiguation for one
  scheduling region: must/may-alias classification of every load/store
  pair from static bank membership and base+offset reasoning;
* :func:`dataflow_limit_cycles` / :func:`region_dependence_height` —
  the **static ILP bound**: per-region dependence height under
  unbounded resources, replayed through the dynamic profile to a
  whole-program dataflow-limit speedup (the number the achieved
  schedules are measured against in ``results/table_static_ilp.txt``).

Every pass runs under an observability span (``analyze.<pass>``), so
``repro analyze --perf`` can budget analysis cost like any hot path.
"""

from repro.analysis.dependence import build_dag, memory_bank
from repro.intcode.ici import BRANCH_OPS, CONTROL_OPS
from repro.observability import tracing as observe

__all__ = [
    "AvailableExpressions",
    "CopyConstants",
    "DataflowAnalysis",
    "LiveRegisters",
    "ReachingDefinitions",
    "RegionMemoryFacts",
    "Solution",
    "dataflow_limit_cycles",
    "dead_writes",
    "reachable_blocks",
    "region_dead_writes",
    "region_dependence_height",
    "solve",
    "unreachable_blocks",
]

#: worklist visits of one block before the engine asks the analysis to
#: widen (loops whose lattice walks long descending chains)
WIDEN_AFTER = 8

#: hard backstop: no analysis may visit one block more often than this
#: (a non-monotone transfer function is a bug; fail loudly, not by
#: spinning)
MAX_VISITS = 10_000


# --------------------------------------------------------------------------
# The engine.

class DataflowAnalysis:
    """Base class describing one dataflow problem to :func:`solve`.

    Subclasses define the lattice implicitly through four methods; the
    engine never inspects values beyond equality:

    * ``boundary(cfg, block)`` — the value flowing into an *entry*
      block (forward: program/indirect entries; backward: exit blocks);
    * ``initial(cfg, block)`` — the optimistic starting value of every
      other block edge;
    * ``transfer(cfg, block, value)`` — the block's transfer function;
    * ``join(values)`` — combine the values of several in-edges
      (*values* is a non-empty list).

    ``widen(old, new)`` is consulted after :data:`WIDEN_AFTER` visits
    of the same block and must return a value that terminates the
    chain; the default keeps ``new`` (correct for finite lattices).
    """

    direction = "forward"

    def boundary(self, cfg, block):
        raise NotImplementedError

    def initial(self, cfg, block):
        raise NotImplementedError

    def transfer(self, cfg, block, value):
        raise NotImplementedError

    def join(self, values):
        raise NotImplementedError

    def widen(self, old, new):
        return new


class Solution:
    """The fixpoint of one analysis: per-block in/out values.

    ``in_of`` / ``out_of`` are keyed by block start pc; for backward
    problems *in* still means "value at the block's first instruction"
    (i.e. the result of the transfer), so callers read the same keys
    whichever direction the problem ran.
    """

    __slots__ = ("analysis", "cfg", "in_of", "out_of", "visits")

    def __init__(self, analysis, cfg, in_of, out_of, visits):
        self.analysis = analysis
        self.cfg = cfg
        self.in_of = in_of
        self.out_of = out_of
        self.visits = visits


def reachable_blocks(cfg):
    """Start pcs of blocks some entry path reaches: the forward closure
    of the static successor edges from the program entry and every
    indirect entry point (``ldi``-materialised labels, call targets,
    call return points)."""
    seen = set()
    work = [pc for pc in cfg.indirect_entries if pc in cfg.block_at]
    while work:
        start = work.pop()
        if start in seen:
            continue
        seen.add(start)
        for succ in cfg.block_at[start].succs:
            if succ not in seen:
                work.append(succ)
    return seen


def _edges(cfg, direction, reachable):
    """(inputs, outputs) adjacency over reachable blocks only, oriented
    for the requested direction."""
    succs = {}
    for start in reachable:
        succs[start] = [s for s in cfg.block_at[start].succs
                        if s in reachable]
    if direction == "forward":
        inputs = {start: [] for start in reachable}
        for start, outs in succs.items():
            for succ in outs:
                inputs[succ].append(start)
        return inputs, succs
    preds = {start: [] for start in reachable}
    for start, outs in succs.items():
        for succ in outs:
            preds[succ].append(start)
    return succs, preds


def _entry_blocks(cfg, direction, reachable, inputs):
    """Blocks whose boundary value is pinned rather than joined."""
    if direction == "forward":
        return {pc for pc in cfg.indirect_entries if pc in reachable}
    # Backward: blocks with no (reachable) successor — region exits.
    return {start for start in reachable if not inputs[start]}


def solve(cfg, analysis):
    """Run *analysis* to its fixpoint over *cfg* and return a
    :class:`Solution`.

    Deterministic worklist: blocks are visited in a fixed priority
    order (program order for forward problems, reverse for backward),
    values at entry blocks are re-joined with the boundary each visit,
    and after :data:`WIDEN_AFTER` visits of the same block the
    analysis's ``widen`` hook is applied so descending chains in
    infinite or tall lattices still converge.
    """
    direction = analysis.direction
    reachable = reachable_blocks(cfg)
    inputs, outputs = _edges(cfg, direction, reachable)
    entries = _entry_blocks(cfg, direction, reachable, inputs)

    order = sorted(reachable, reverse=(direction == "backward"))
    priority = {start: index for index, start in enumerate(order)}

    # *upstream* is the joined value flowing into the transfer (block
    # entry for forward problems, block exit for backward ones);
    # *downstream* is the transfer's result.
    upstream = {}
    downstream = {}
    visits = {start: 0 for start in reachable}
    for start in reachable:
        block = cfg.block_at[start]
        if start in entries:
            upstream[start] = analysis.boundary(cfg, block)
        else:
            upstream[start] = analysis.initial(cfg, block)
        downstream[start] = analysis.transfer(cfg, block, upstream[start])

    pending = set(reachable)
    work = list(order)
    while work:
        work.sort(key=priority.__getitem__, reverse=True)
        start = work.pop()
        if start not in pending:
            continue
        pending.discard(start)
        block = cfg.block_at[start]
        visits[start] += 1
        if visits[start] > MAX_VISITS:
            raise RuntimeError(
                "dataflow analysis %s did not converge at block %d"
                % (type(analysis).__name__, start))

        joined = [downstream[p] for p in inputs[start]]
        if start in entries:
            joined.append(analysis.boundary(cfg, block))
        if not joined:
            new_up = upstream[start]
        else:
            new_up = analysis.join(joined)
        if visits[start] > WIDEN_AFTER:
            new_up = analysis.widen(upstream[start], new_up)
        new_down = analysis.transfer(cfg, block, new_up)
        if new_up == upstream[start] and new_down == downstream[start]:
            continue
        upstream[start] = new_up
        downstream[start] = new_down
        for succ in outputs[start]:
            if succ not in pending:
                pending.add(succ)
                work.append(succ)
    # Per the Solution contract, in_of is always the value at the
    # block's first instruction: the joined value for forward problems,
    # the transfer result for backward ones.
    if direction == "forward":
        return Solution(analysis, cfg, upstream, downstream, visits)
    return Solution(analysis, cfg, downstream, upstream, visits)


# --------------------------------------------------------------------------
# Reaching definitions.

class ReachingDefinitions(DataflowAnalysis):
    """Which definition sites reach each block (forward, union join).

    A definition site is an instruction pc; the synthetic site ``-1``
    stands for the ABI contract at indirect entry points.  Values are
    int bitsets over the numbered sites, so join is ``|`` and the
    per-block kill masks make transfer O(defs-in-block).
    """

    direction = "forward"

    def __init__(self, cfg, abi_registers=()):
        self.site_of = {}       # def index -> (pc, register)
        self.sites_of_reg = {}  # register -> bitmask of its def sites
        self._gen = {}
        self._kill = {}
        self._abi_mask = 0
        for name in sorted(abi_registers):
            self._abi_mask |= self._add_site(-1, name)
        instructions = cfg.program.instructions
        for block in cfg.blocks:
            gen = 0
            kill = 0
            for pc in range(block.start, block.end):
                for name in instructions[pc].writes():
                    bit = self._add_site(pc, name)
                    kill |= self.sites_of_reg[name]
                    gen = (gen & ~self.sites_of_reg[name]) | bit
            self._gen[block.start] = gen
            self._kill[block.start] = kill

    def _add_site(self, pc, name):
        index = len(self.site_of)
        self.site_of[index] = (pc, name)
        bit = 1 << index
        self.sites_of_reg[name] = self.sites_of_reg.get(name, 0) | bit
        return bit

    def boundary(self, cfg, block):
        return self._abi_mask

    def initial(self, cfg, block):
        return 0

    def join(self, values):
        out = 0
        for value in values:
            out |= value
        return out

    def transfer(self, cfg, block, value):
        return (value & ~self._kill[block.start]) | self._gen[block.start]

    def sites(self, mask):
        """Decode a bitset into ``{(pc, register), ...}``."""
        out = set()
        index = 0
        while mask:
            if mask & 1:
                out.add(self.site_of[index])
            mask >>= 1
            index += 1
        return out


# --------------------------------------------------------------------------
# Copy / constant propagation.

#: lattice bottom: the register's value is not a single known constant
#: or copy on every path
NAC = ("nac",)


class CopyConstants(DataflowAnalysis):
    """Copy and constant propagation (forward, pointwise meet).

    A value maps register name -> fact, where a fact is ``("const",
    imm)`` for ``ldi``-produced tagged words, ``("copy", source)`` for
    ``mov`` chains (resolved to their root), or :data:`NAC`.  A name
    missing from the map is *unknown-yet* (lattice top), so the meet of
    an unvisited path constrains nothing.  Widening collapses any
    still-changing entry to :data:`NAC`, which bounds loop iteration.
    """

    direction = "forward"

    def __init__(self, cfg, abi_registers=()):
        self._abi = {name: NAC for name in abi_registers}

    def boundary(self, cfg, block):
        return dict(self._abi)

    def initial(self, cfg, block):
        return {}

    def join(self, values):
        out = dict(values[0])
        for value in values[1:]:
            for name, fact in value.items():
                if name not in out:
                    out[name] = fact
                elif out[name] != fact:
                    out[name] = NAC
        return out

    def widen(self, old, new):
        out = dict(new)
        for name, fact in new.items():
            if old.get(name, fact) != fact:
                out[name] = NAC
        return out

    @staticmethod
    def resolve(value, name):
        """The root fact for *name* under *value*: follows copy chains
        to a register no fact renames further."""
        seen = set()
        while True:
            fact = value.get(name)
            if fact is None or fact == NAC:
                return ("reg", name)
            if fact[0] == "const":
                return fact
            if fact[0] == "copy":
                if name in seen:
                    return ("reg", name)
                seen.add(name)
                name = fact[1]
                continue
            return ("reg", name)

    def transfer(self, cfg, block, value):
        out = dict(value)
        instructions = cfg.program.instructions
        for pc in range(block.start, block.end):
            instruction = instructions[pc]
            written = instruction.writes()
            for name in written:
                # The old value dies: any copy fact naming it is stale.
                for other, fact in list(out.items()):
                    if fact[0] == "copy" and fact[1] == name \
                            and other != name:
                        out[other] = NAC
            if instruction.op == "ldi" and instruction.imm is not None:
                out[instruction.rd] = ("const", instruction.imm)
            elif instruction.op == "mov":
                root = self.resolve(out, instruction.ra)
                if root[0] == "const":
                    out[instruction.rd] = root
                elif root[1] == instruction.rd:
                    out[instruction.rd] = NAC
                else:
                    out[instruction.rd] = ("copy", root[1])
            else:
                for name in written:
                    out[name] = NAC
        return out


# --------------------------------------------------------------------------
# Available expressions.

#: every value-producing operation with no side effects and a
#: deterministic result from its register operands
_PURE_OPS = frozenset(
    ["add", "sub", "mul", "div", "mod", "and", "or", "xor", "sll",
     "sra", "lea", "mktag", "gettag", "mov", "ldi"])


def _expression(instruction):
    """The hashable expression an instruction computes, or None."""
    if instruction.op not in _PURE_OPS:
        return None
    return (instruction.op, instruction.ra, instruction.rb,
            instruction.imm, instruction.tag, instruction.label)


class AvailableExpressions(DataflowAnalysis):
    """Expressions computed on *every* path (forward, intersection).

    The universe is the set of expressions the program contains;
    blocks start optimistic (everything available) so loops converge
    to the greatest fixpoint.  An expression dies when one of its
    register operands is redefined.
    """

    direction = "forward"

    def __init__(self, cfg):
        self.universe = set()
        for instruction in cfg.program.instructions:
            expr = _expression(instruction)
            if expr is not None:
                self.universe.add(expr)

    def boundary(self, cfg, block):
        return frozenset()

    def initial(self, cfg, block):
        return frozenset(self.universe)

    def join(self, values):
        out = frozenset(values[0])
        for value in values[1:]:
            out &= value
        return out

    def transfer(self, cfg, block, value):
        out = set(value)
        instructions = cfg.program.instructions
        for pc in range(block.start, block.end):
            instruction = instructions[pc]
            for name in instruction.writes():
                out = {expr for expr in out
                       if expr[1] != name and expr[2] != name}
            expr = _expression(instruction)
            if expr is not None and expr[1] not in instruction.writes() \
                    and expr[2] not in instruction.writes():
                out.add(expr)
        return frozenset(out)


# --------------------------------------------------------------------------
# Liveness (name sets) and dead code.

class LiveRegisters(DataflowAnalysis):
    """Backward name-set liveness; ``in_of[start]`` is the set of
    registers live on entry to the block at *start*.

    Blocks ending in an indirect transfer (``call``/``jmpr``) and the
    backward entry blocks assume the ABI set live-out, mirroring the
    contract of :mod:`repro.analysis.liveness`.
    """

    direction = "backward"

    def __init__(self, cfg, abi_registers=()):
        self._abi = frozenset(abi_registers)
        self._indirect_out = {}
        instructions = cfg.program.instructions
        for block in cfg.blocks:
            op = instructions[block.end - 1].op
            if op in ("call", "jmpr"):
                self._indirect_out[block.start] = True

    def boundary(self, cfg, block):
        return self._abi

    def initial(self, cfg, block):
        return frozenset()

    def join(self, values):
        out = frozenset(values[0])
        for value in values[1:]:
            out |= value
        return out

    def transfer(self, cfg, block, value):
        live = set(value)
        if self._indirect_out.get(block.start):
            live |= self._abi
        instructions = cfg.program.instructions
        for pc in range(block.end - 1, block.start - 1, -1):
            instruction = instructions[pc]
            for name in instruction.writes():
                live.discard(name)
            for name in instruction.reads():
                live.add(name)
        return frozenset(live)


def unreachable_blocks(cfg):
    """Blocks no static or indirect entry path reaches, as a sorted
    list of ``(start, end)`` pairs."""
    reachable = reachable_blocks(cfg)
    return sorted((block.start, block.end) for block in cfg.blocks
                  if block.start not in reachable)


#: operations whose only effect is their register result — a write
#: nobody observes makes the whole instruction dead
_EFFECT_FREE = frozenset(list(_PURE_OPS) + ["ld"])


def dead_writes(cfg, liveness=None, abi_registers=()):
    """Instruction pcs whose register result is never observed.

    A write is dead when the register is not live immediately after the
    instruction — no later read on any path, not live at an indirect
    transfer, not in the ABI set.  Only effect-free operations are
    reported (a dead ``st`` does not exist; a dead ``ld`` still reads
    memory, which is side-effect-free in this machine).  Unreachable
    blocks are skipped: everything there is trivially dead and is
    reported as unreachable instead.
    """
    liveness = liveness or solve(cfg, LiveRegisters(cfg, abi_registers))
    reachable = reachable_blocks(cfg)
    instructions = cfg.program.instructions
    dead = []
    for block in cfg.blocks:
        if block.start not in reachable:
            continue
        live = set()
        for succ in block.succs:
            live |= liveness.in_of.get(succ, frozenset(abi_registers))
        op = instructions[block.end - 1].op
        if op in ("call", "jmpr"):
            live |= set(abi_registers)
        for pc in range(block.end - 1, block.start - 1, -1):
            instruction = instructions[pc]
            written = instruction.writes()
            if written and instruction.op in _EFFECT_FREE \
                    and all(name not in live for name in written):
                dead.append(pc)
            for name in written:
                live.discard(name)
            for name in instruction.reads():
                live.add(name)
    return sorted(dead)


# --------------------------------------------------------------------------
# Memory-reference disambiguation.

class RegionMemoryFacts:
    """Must/may-alias classification of one region's memory references.

    Two references are **independent** (must-not-alias) when the
    analysis can prove they touch different words:

    * their base registers are pointers into *statically distinct data
      areas* (heap / environments / choice points / trail — the bank
      classification of section 6), or
    * they share the *same base value* — same base register with no
      intervening redefinition, or region-local copies of one root —
      and their immediate offsets differ (distinct words of one area).

    Same base value at the *same* offset is a must-alias: the pair
    really is ordered.  Everything else is a may-alias and stays
    conservatively ordered, exactly the stance of section 4.1.
    """

    def __init__(self, instructions):
        self.instructions = instructions
        self._base = {}         # position -> (root name, version) | None
        self._offset = {}       # position -> immediate offset
        self._bank = {}         # position -> bank name or "?"
        version = {}
        copies = {}             # name -> (root name, version at copy)
        for index, instruction in enumerate(instructions):
            if instruction.op in ("ld", "st"):
                base = instruction.ra if instruction.op == "ld" \
                    else instruction.rb
                root = copies.get(base, (base, version.get(base, 0)))
                self._base[index] = root
                self._offset[index] = instruction.imm or 0
                self._bank[index] = memory_bank(instruction)
            for name in instruction.writes():
                version[name] = version.get(name, 0) + 1
                copies.pop(name, None)
                for copy_name, (root, _v) in list(copies.items()):
                    if root == name:
                        del copies[copy_name]
            if instruction.op == "mov":
                source = instruction.ra
                root = copies.get(source,
                                  (source, version.get(source, 0)))
                if root[0] != instruction.rd:
                    copies[instruction.rd] = root

    def classify(self, i, j):
        """``"must"`` (same word), ``"independent"`` (different words)
        or ``"may"`` for the memory operations at positions *i*, *j*."""
        bank_i, bank_j = self._bank[i], self._bank[j]
        if bank_i != "?" and bank_j != "?" and bank_i != bank_j:
            return "independent"
        if self._base[i] == self._base[j]:
            if self._offset[i] == self._offset[j]:
                return "must"
            return "independent"
        return "may"

    def independent(self, i, j):
        return self.classify(i, j) == "independent"

    def pair_census(self):
        """{classification: count} over every load/store pair that is
        not a load/load pair (those never conflict)."""
        positions = sorted(self._base)
        census = {"must": 0, "independent": 0, "may": 0}
        for a in range(len(positions)):
            for b in range(a + 1, len(positions)):
                i, j = positions[a], positions[b]
                if self.instructions[i].op == "ld" \
                        and self.instructions[j].op == "ld":
                    continue
                census[self.classify(i, j)] += 1
        return census


def region_dead_writes(instructions, live_out_mask, off_live=None,
                       reg_mask=None):
    """Region positions whose register write is provably dead, using
    the scheduler's bitmask vocabulary.

    A write at position *p* is dead when its register is not read at
    any later position of the region, is not live at the region's
    fall-through end (*live_out_mask*), and is not live on the
    off-trace path of any branch after *p* (*off_live*, the same
    per-position masks the scheduler's speculation rule uses).  Control
    operations and stores/escapes are never candidates; a region exit
    whose continuation liveness is unknown (``jmp``/``jmpr``/``call``
    without a mask) makes everything before it conservatively live.
    """
    if reg_mask is None or live_out_mask is None:
        return frozenset()
    off_live = off_live or {}
    dead = set()
    live = live_out_mask
    for index in range(len(instructions) - 1, -1, -1):
        instruction = instructions[index]
        op = instruction.op
        if op in CONTROL_OPS:
            if op == "halt":
                live = 0
            elif op in BRANCH_OPS:
                mask = off_live.get(index)
                live = -1 if mask is None else (live | mask)
            else:
                live = -1    # unknown continuation: everything live
        else:
            write_mask = 0
            for name in instruction.writes():
                write_mask |= reg_mask(name)
            if write_mask and op not in ("st", "esc") \
                    and not (write_mask & live):
                dead.add(index)
            live &= ~write_mask
        for name in instruction.reads():
            live |= reg_mask(name)
    return frozenset(dead)


# --------------------------------------------------------------------------
# The static ILP bound.

def region_dependence_height(instructions, config, facts=None):
    """ASAP issue cycles of a region under unbounded resources.

    This is the region's *dataflow limit*: every operation issues as
    soon as its predecessors in the dependence DAG allow, with no slot,
    port, format or issue-width constraint.  The branch-order rule is
    kept (the region model requires exits in order); memory references
    are disambiguated with *facts* (defaults to the region's own
    :class:`RegionMemoryFacts`), because the bound should charge only
    true dependences, not the compiler's conservatism.

    Returns a :class:`~repro.compaction.scheduler.Schedule` whose
    cycles are the ASAP times, so the standard timing replay can price
    region exits identically to an achieved schedule.
    """
    from repro.compaction.scheduler import Schedule
    if not instructions:
        return Schedule(instructions, [], config)
    durations = [config.duration(i.op) for i in instructions]
    if facts is None:
        facts = RegionMemoryFacts(instructions)
    dag = build_dag(instructions, durations, None, None,
                    branch_branch_latency=0, independence=facts)
    asap = [0] * len(instructions)
    for index in range(len(instructions)):
        earliest = 0
        for pred, latency in dag.preds[index]:
            ready = asap[pred] + latency
            if ready > earliest:
                earliest = ready
        asap[index] = earliest
    return Schedule(instructions, asap, config)


def dataflow_limit_cycles(region_set, config):
    """Whole-program cycles at the dataflow limit: every executed
    region replayed through its ASAP schedule."""
    from repro.evaluation.simulator import replay_program
    with observe.span("analyze.ilp_bound", config=config.name) as sp:
        program = region_set.program
        regions = []
        schedules = []
        for region in region_set.regions:
            if region_set.counts[region.start] == 0:
                continue
            instructions = program.instructions[region.start:region.end]
            schedules.append(region_dependence_height(instructions,
                                                      config))
            regions.append(region)
        cycles = replay_program(program, regions, schedules,
                                region_set.counts, region_set.taken)
        sp.set(regions=len(regions), cycles=cycles)
        return cycles
