"""Control-flow graph over ICI programs.

Blocks end at every control operation; conditional branches have a taken
edge and a fall-through edge.  ``call`` and ``jmpr`` (indirect jumps:
continuations, retry addresses, runtime-routine returns) terminate a block
with no static successors — traces never cross them, exactly as classical
trace scheduling treats procedure boundaries.

The CFG also records *indirect entry points*: labels whose address is
materialised by ``ldi`` (retry addresses), return points after ``call``,
and the program entry.  Code layout transformations must keep these blocks
addressable, so they are always region heads.
"""

from repro.intcode.ici import BRANCH_OPS


class BasicBlock:
    """A maximal straight-line code sequence ``[start, end)``."""

    __slots__ = ("index", "start", "end", "succs")

    def __init__(self, index, start, end, succs):
        self.index = index
        self.start = start
        self.end = end
        self.succs = succs      # list of successor start pcs

    @property
    def size(self):
        return self.end - self.start

    def __repr__(self):
        return "BasicBlock(%d, [%d,%d), succs=%r)" % (
            self.index, self.start, self.end, self.succs)


class Cfg:
    """The control-flow graph of an ICI program."""

    def __init__(self, program):
        self.program = program
        self.blocks = []
        self.block_at = {}        # start pc -> BasicBlock
        self.block_of_pc = []     # pc -> block index
        self.preds = {}           # start pc -> list of predecessor start pcs
        self.indirect_entries = set()
        self._build()

    def _build(self):
        program = self.program
        instructions = program.instructions
        n = len(instructions)

        leaders = {0, program.entry_pc}
        self.indirect_entries.add(program.entry_pc)
        for pc, instruction in enumerate(instructions):
            op = instruction.op
            if op in BRANCH_OPS:
                leaders.add(program.labels[instruction.label])
                if pc + 1 < n:
                    leaders.add(pc + 1)
            elif op == "jmp":
                leaders.add(program.labels[instruction.label])
                if pc + 1 < n:
                    leaders.add(pc + 1)
            elif op == "call":
                leaders.add(program.labels[instruction.label])
                if pc + 1 < n:
                    leaders.add(pc + 1)
                    self.indirect_entries.add(pc + 1)
                self.indirect_entries.add(program.labels[instruction.label])
            elif op in ("jmpr", "halt"):
                if pc + 1 < n:
                    leaders.add(pc + 1)
            elif op == "ldi" and instruction.label is not None:
                target = program.labels[instruction.label]
                leaders.add(target)
                self.indirect_entries.add(target)

        starts = sorted(leaders)
        self.block_of_pc = [0] * n
        for index, start in enumerate(starts):
            end = starts[index + 1] if index + 1 < len(starts) else n
            terminator = instructions[end - 1]
            succs = []
            op = terminator.op
            if op in BRANCH_OPS:
                succs.append(program.labels[terminator.label])
                if end < n:
                    succs.append(end)
            elif op == "jmp":
                succs.append(program.labels[terminator.label])
            elif op in ("call", "jmpr", "halt"):
                pass
            else:
                # Straight-line fall-through into the next block.
                if end < n:
                    succs.append(end)
            block = BasicBlock(index, start, end, succs)
            self.blocks.append(block)
            self.block_at[start] = block
            for pc in range(start, end):
                self.block_of_pc[pc] = index

        for block in self.blocks:
            for succ in block.succs:
                self.preds.setdefault(succ, []).append(block.start)

    def predecessors(self, block):
        return self.preds.get(block.start, [])

    def block_counts(self, counts):
        """Per-block execution counts from a per-pc profile."""
        return [counts[block.start] for block in self.blocks]

    def dynamic_block_stats(self, counts):
        """(weighted mean size, executed blocks) — the paper's basic-block
        length statistic, weighted by execution frequency."""
        total_ops = 0
        total_entries = 0
        for block in self.blocks:
            entries = counts[block.start]
            if entries:
                total_entries += entries
                total_ops += entries * block.size
        if total_entries == 0:
            return 0.0, 0
        return total_ops / total_entries, total_entries
