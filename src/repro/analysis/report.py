"""Machine-readable diagnostics: one JSON schema for every checker.

``repro lint``, ``repro verify`` and ``repro analyze`` all emit
:class:`~repro.analysis.lint.Diagnostic` findings; this module is their
shared serializer.  The document layout (schema version 1)::

    {"schema": 1, "tool": "lint" | "verify" | "analyze",
     "targets": [
        {"target": "qsort", "count": 2,
         "diagnostics": [{"stage": ..., "rule": ..., "message": ...,
                          "pos": int | null,
                          "region": [start, end] | null}, ...],
         ...tool-specific fields...},
     ],
     "count": 2}

Validation is hand-rolled (:func:`validate_diagnostics`,
:func:`validate_analysis`) in the same style as
:mod:`repro.benchmarks.perf` — the repository deliberately has no
external schema dependency, and CI runs the validators over every
emitted document.
"""

__all__ = [
    "DIAGNOSTICS_SCHEMA",
    "diagnostic_to_json",
    "diagnostics_document",
    "target_entry",
    "validate_diagnostics",
    "validate_analysis",
]

#: bump when the document layout changes incompatibly
DIAGNOSTICS_SCHEMA = 1

_TOOLS = ("lint", "verify", "analyze")


def diagnostic_to_json(diagnostic):
    """One :class:`~repro.analysis.lint.Diagnostic` as a JSON value."""
    region = diagnostic.region
    return {
        "stage": diagnostic.stage,
        "rule": diagnostic.rule,
        "message": diagnostic.message,
        "pos": diagnostic.pos,
        "region": list(region) if region is not None else None,
    }


def target_entry(target, diagnostics, **extra):
    """The per-target record of a diagnostics document."""
    entry = {
        "target": target,
        "count": len(diagnostics),
        "diagnostics": [diagnostic_to_json(d) for d in diagnostics],
    }
    entry.update(extra)
    return entry


def diagnostics_document(tool, targets):
    """The complete document for *tool* over per-target entries (see
    :func:`target_entry`)."""
    return {
        "schema": DIAGNOSTICS_SCHEMA,
        "tool": tool,
        "targets": list(targets),
        "count": sum(entry["count"] for entry in targets),
    }


# --------------------------------------------------------------------------
# Validation (hand-rolled; no external schema library).

def _require(problems, condition, message):
    if not condition:
        problems.append(message)
    return condition


def _validate_diagnostic(problems, where, value):
    if not _require(problems, isinstance(value, dict),
                    "%s: diagnostic is not an object" % where):
        return
    for key in ("stage", "rule", "message"):
        _require(problems, isinstance(value.get(key), str),
                 "%s: %r is not a string" % (where, key))
    pos = value.get("pos")
    _require(problems, pos is None or isinstance(pos, int),
             "%s: 'pos' is neither null nor an int" % where)
    region = value.get("region")
    _require(problems,
             region is None
             or (isinstance(region, list) and len(region) == 2
                 and all(isinstance(item, int) for item in region)),
             "%s: 'region' is neither null nor [start, end]" % where)


def _validate_target(problems, where, entry):
    if not _require(problems, isinstance(entry, dict),
                    "%s: target entry is not an object" % where):
        return
    _require(problems, isinstance(entry.get("target"), str),
             "%s: 'target' is not a string" % where)
    diagnostics = entry.get("diagnostics")
    if _require(problems, isinstance(diagnostics, list),
                "%s: 'diagnostics' is not a list" % where):
        _require(problems, entry.get("count") == len(diagnostics),
                 "%s: 'count' does not match the diagnostics list"
                 % where)
        for index, value in enumerate(diagnostics):
            _validate_diagnostic(
                problems, "%s.diagnostics[%d]" % (where, index), value)


def validate_diagnostics(document):
    """Schema problems of a diagnostics document (empty = valid)."""
    problems = []
    if not _require(problems, isinstance(document, dict),
                    "document is not an object"):
        return problems
    _require(problems, document.get("schema") == DIAGNOSTICS_SCHEMA,
             "'schema' is not %d" % DIAGNOSTICS_SCHEMA)
    _require(problems, document.get("tool") in _TOOLS,
             "'tool' is not one of %s" % (_TOOLS,))
    targets = document.get("targets")
    if _require(problems, isinstance(targets, list),
                "'targets' is not a list"):
        total = 0
        for index, entry in enumerate(targets):
            _validate_target(problems, "targets[%d]" % index, entry)
            if isinstance(entry, dict) \
                    and isinstance(entry.get("count"), int):
                total += entry["count"]
        _require(problems, document.get("count") == total,
                 "'count' does not sum the per-target counts")
    return problems


_PASS_KEYS = ("reaching_definitions", "copy_constants",
              "available_expressions", "live_registers", "unreachable",
              "dead_code", "disambiguation")
_ILP_KEYS = ("sequential_cycles", "achieved_cycles",
             "dataflow_limit_cycles", "achieved_speedup",
             "dataflow_limit_speedup", "gap")


def validate_analysis(document):
    """Schema problems of a ``repro analyze`` document: the diagnostics
    layout plus the per-target pass statistics and ILP-bound record."""
    problems = validate_diagnostics(document)
    if problems and not isinstance(document, dict):
        return problems
    _require(problems, document.get("tool") == "analyze",
             "'tool' is not 'analyze'")
    targets = document.get("targets")
    if not isinstance(targets, list):
        return problems
    for index, entry in enumerate(targets):
        where = "targets[%d]" % index
        if not isinstance(entry, dict):
            continue
        _require(problems, isinstance(entry.get("ops"), int),
                 "%s: 'ops' is not an int" % where)
        passes = entry.get("passes")
        if _require(problems, isinstance(passes, dict),
                    "%s: 'passes' is not an object" % where):
            for key in _PASS_KEYS:
                _require(problems, isinstance(passes.get(key), dict),
                         "%s.passes: %r is missing" % (where, key))
        ilp = entry.get("ilp")
        if _require(problems, isinstance(ilp, dict),
                    "%s: 'ilp' is not an object" % where):
            for key in _ILP_KEYS:
                _require(problems,
                         isinstance(ilp.get(key), (int, float)),
                         "%s.ilp: %r is not a number" % (where, key))
    return problems
