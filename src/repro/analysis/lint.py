"""ICI well-formedness lint ("the checker", part 1).

An independent static validity pass over :class:`~repro.intcode.program.
Program` objects, run after translation and again after every rewriting
stage (block-local optimisation, superblock transformation).  It re-derives
everything it checks from the instruction stream itself — it shares no
analysis results with the compiler passes it polices.

Rules (each produces a :class:`Diagnostic` with a stable ``rule`` name):

``operand-shape``
    Every opcode carries exactly the operands its hardware semantics use
    (the decode tables of section 3.1 / the emulator): registers are
    names, immediates are integers, tag immediates fit the 3-bit tag
    field, escapes name a known host service.
``label-unresolved`` / ``label-out-of-range`` / ``entry-missing``
    Control-transfer and code-address operands resolve in the label
    table, and every label maps into the instruction stream.
``block-terminator``
    The program cannot fall off its own end: the last instruction is an
    unconditional control transfer.
``use-before-def``
    Definite-assignment dataflow over the program's own control-flow
    edges: a register read must be written on every static path from an
    entry point.  Machine registers and the ABI set (argument registers
    and runtime temporaries, mirroring the liveness ABI rule) are defined
    at indirect entry points.

The lint is deliberately conservative where control flow is indirect:
blocks entered through ``jmpr`` (continuations, retry addresses) assume
only the ABI set, exactly the contract the code generator promises.
"""

from repro.intcode.ici import BRANCH_OPS
from repro.intcode import layout

__all__ = [
    "Diagnostic",
    "LintError",
    "lint_program",
    "check_operands",
    "format_diagnostics",
]

#: host escape services the emulator implements
KNOWN_ESCAPES = frozenset(["write", "nl"])

#: 3-bit tag field
MAX_TAG = 7

_ALU_BINARY = frozenset(
    ["add", "sub", "mul", "div", "mod", "and", "or", "xor", "sll", "sra"])
_CMP_BRANCHES = frozenset(["beq", "bne", "bltv", "blev", "bgtv", "bgev"])

#: opcode -> (required fields, optional fields); anything else must be None
_SIGNATURES = {}


def _sig(ops, required, optional=()):
    for op in ops:
        _SIGNATURES[op] = (tuple(required), tuple(optional))


_sig(["ld"], ("rd", "ra"), ("imm",))
_sig(["st"], ("ra", "rb"), ("imm",))
_sig(_ALU_BINARY, ("rd", "ra", "rb"))
_sig(["lea"], ("rd", "ra", "tag"), ("imm",))
_sig(["mktag"], ("rd", "ra", "tag"))
_sig(["gettag"], ("rd", "ra"))
_sig(["mov"], ("rd", "ra"))
_sig(["ldi"], ("rd",), ("imm", "label"))      # exactly one of imm/label
_sig(["btag", "bntag"], ("ra", "tag", "label"))
_sig(_CMP_BRANCHES, ("ra", "rb", "label"))
_sig(["jmp"], ("label",))
_sig(["call"], ("rd", "label"))
_sig(["jmpr"], ("ra",))
_sig(["esc"], ("esc",), ("ra",))
_sig(["halt"], (), ("imm",))

_ALL_FIELDS = ("rd", "ra", "rb", "imm", "tag", "label", "esc")
_REGISTER_FIELDS = ("rd", "ra", "rb")


class Diagnostic:
    """One structured checker finding.

    * ``stage``  — which checker produced it (``lint``, ``schedule``,
      ``transform``, ``regalloc``).
    * ``rule``   — stable kebab-case rule identifier.
    * ``pos``    — instruction index (program pc, or region-relative
      position for schedule rules); ``None`` for program-level findings.
    * ``region`` — ``(start, end)`` of the region under check, if any.
    * ``message`` — human-readable explanation.
    """

    __slots__ = ("stage", "rule", "pos", "region", "message")

    def __init__(self, stage, rule, message, pos=None, region=None):
        self.stage = stage
        self.rule = rule
        self.message = message
        self.pos = pos
        self.region = region

    def format(self):
        where = ""
        if self.region is not None:
            where += " region[%d,%d)" % self.region
        if self.pos is not None:
            where += " op %d" % self.pos
        return "%s:%s%s: %s" % (self.stage, self.rule, where, self.message)

    def __repr__(self):
        return "Diagnostic(%s)" % self.format()


class LintError(Exception):
    """Raised when a checked stage is asked to fail hard on findings."""

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        super().__init__(format_diagnostics(self.diagnostics))


def format_diagnostics(diagnostics):
    return "\n".join(d.format() for d in diagnostics)


# -- operand shapes ----------------------------------------------------------

def check_operands(instruction, pc=None, stage="lint"):
    """Shape-check one instruction; returns a list of diagnostics."""
    diags = []

    def bad(rule, message):
        diags.append(Diagnostic(stage, rule, "%r: %s"
                                % (instruction, message), pos=pc))

    signature = _SIGNATURES.get(instruction.op)
    if signature is None:
        bad("unknown-opcode", "opcode not in the ICI set")
        return diags
    required, optional = signature
    allowed = set(required) | set(optional)
    for field in _ALL_FIELDS:
        value = getattr(instruction, field)
        if field in required and value is None:
            bad("operand-shape", "missing %s operand" % field)
        elif field not in allowed and value is not None:
            bad("operand-shape", "unexpected %s operand" % field)
    for field in _REGISTER_FIELDS:
        value = getattr(instruction, field)
        if value is not None and not isinstance(value, str):
            bad("operand-shape", "%s is not a register name" % field)
    if instruction.imm is not None and not isinstance(instruction.imm, int):
        bad("operand-shape", "imm is not an integer")
    if instruction.tag is not None and not (
            isinstance(instruction.tag, int)
            and 0 <= instruction.tag <= MAX_TAG):
        bad("operand-shape", "tag %r outside the 3-bit tag field"
            % (instruction.tag,))
    if instruction.op == "esc" and instruction.esc not in KNOWN_ESCAPES:
        bad("operand-shape", "unknown escape service %r"
            % (instruction.esc,))
    if instruction.op == "ldi":
        has_imm = instruction.imm is not None
        has_label = instruction.label is not None
        if has_imm == has_label:
            bad("operand-shape",
                "ldi needs exactly one of imm / label, has %s"
                % ("both" if has_imm else "neither"))
    return diags


# -- control flow ------------------------------------------------------------

def _label_diagnostics(program, stage):
    diags = []
    n = len(program.instructions)
    for name, target in program.labels.items():
        if not isinstance(target, int) or not 0 <= target <= n:
            diags.append(Diagnostic(
                stage, "label-out-of-range",
                "label %r -> %r outside the instruction stream [0,%d]"
                % (name, target, n)))
    for pc, instruction in enumerate(program.instructions):
        if instruction.label is not None \
                and instruction.label not in program.labels:
            diags.append(Diagnostic(
                stage, "label-unresolved",
                "%r references undefined label %r"
                % (instruction, instruction.label), pos=pc))
    if program.entry not in program.labels:
        diags.append(Diagnostic(
            stage, "entry-missing",
            "entry label %r is not defined" % program.entry))
    return diags


def _terminator_diagnostics(program, stage):
    instructions = program.instructions
    if not instructions:
        return [Diagnostic(stage, "block-terminator", "empty program")]
    last = instructions[-1]
    if last.op not in ("jmp", "jmpr", "halt", "call"):
        return [Diagnostic(
            stage, "block-terminator",
            "program ends in %r; execution would fall off the end"
            % last, pos=len(instructions) - 1)]
    return []


# -- definite assignment -----------------------------------------------------

def _abi_registers():
    """Registers defined at every indirect entry point: the machine state
    plus the argument/linkage convention (mirrors the liveness ABI)."""
    regs = set(layout.MACHINE_REGISTERS)
    regs.update(("B0", "u0", "u1", "EQR"))
    regs.update("a%d" % index for index in range(16))
    return regs


def _leaders_and_entries(program):
    """Own leader scan (shared with no other pass): block start pcs and
    the subset reachable indirectly."""
    instructions = program.instructions
    n = len(instructions)
    leaders = {0}
    indirect = set()
    returns = set()
    if program.entry in program.labels:
        entry_pc = program.labels[program.entry]
        leaders.add(entry_pc)
        indirect.add(entry_pc)
    for pc, instruction in enumerate(instructions):
        op = instruction.op
        target = program.labels.get(instruction.label) \
            if instruction.label is not None else None
        if op in BRANCH_OPS or op == "jmp" or op == "call":
            if target is not None and target < n:
                leaders.add(target)
            if pc + 1 < n:
                leaders.add(pc + 1)
            if op == "call":
                if target is not None and target < n:
                    indirect.add(target)
                if pc + 1 < n:
                    returns.add(pc + 1)
        elif op in ("jmpr", "halt"):
            if pc + 1 < n:
                leaders.add(pc + 1)
        elif op == "ldi" and instruction.label is not None:
            if target is not None and target < n:
                leaders.add(target)
                indirect.add(target)
    return sorted(leaders), indirect, returns


#: backstop for the definite-assignment fixpoint — the transfer is
#: monotone (sets only shrink), so this is never reached by a correct
#: lattice; it bounds the damage of a future non-monotone bug.
_MAX_DA_SWEEPS = 1000


def _definite_assignment(program, stage):
    """Forward all-paths dataflow: which registers are certainly written
    before each block; flag reads outside that set.

    Unreachable blocks are excluded from both the fixpoint and the
    reporting walk: a read there can never execute (so it is not
    flagged), and — equally important — an unreachable predecessor's
    optimistic everything-is-defined state never enters a reachable
    block's intersection, so it can never suppress a real diagnostic.
    Self-loop blocks converge because the transfer is monotone on a
    finite lattice; the sweep order is program order, so the fixpoint
    (and the diagnostics) are deterministic.
    """
    instructions = program.instructions
    n = len(instructions)
    if n == 0:
        return []
    leaders, indirect, returns = _leaders_and_entries(program)
    starts = leaders
    block_end = {}
    for index, start in enumerate(starts):
        block_end[start] = starts[index + 1] if index + 1 < len(starts) \
            else n

    succs = {}
    for start in starts:
        end = block_end[start]
        terminator = instructions[end - 1]
        op = terminator.op
        out = []
        if op in BRANCH_OPS:
            out.append(program.labels.get(terminator.label))
            if end < n:
                out.append(end)
        elif op == "jmp":
            out.append(program.labels.get(terminator.label))
        elif op == "call":
            # Values flow *around* a call to its return point: runtime
            # routines preserve caller temporaries, and the liveness
            # analysis makes the same assumption (its extra_succs rule).
            if end < n:
                out.append(end)
        elif op in ("jmpr", "halt"):
            pass
        elif end < n:
            out.append(end)
        succs[start] = [s for s in out if s is not None and s < n]

    # Execution enters at the indirect entries (program entry, call
    # targets, materialised retry addresses) and flows along static
    # successors; everything else is unreachable.
    entries = set(indirect) or {starts[0]}
    reachable = set()
    work = [start for start in entries if start in block_end]
    while work:
        start = work.pop()
        if start in reachable:
            continue
        reachable.add(start)
        work.extend(succs[start])

    abi = _abi_registers()
    universe = set(abi)
    for instruction in instructions:
        universe.update(instruction.writes())

    def block_defs(start):
        written = set()
        for pc in range(start, block_end[start]):
            written.update(instructions[pc].writes())
        return written

    defs_of = {start: block_defs(start) for start in starts}
    preds = {start: [] for start in starts}
    for start in starts:
        if start not in reachable:
            continue
        for succ in succs[start]:
            preds[succ].append(start)

    # Indirect entries are pinned to the ABI contract; other blocks take
    # the intersection of their *reachable* predecessors' guarantees.
    # Start optimistic (full universe) and shrink to the greatest
    # fixpoint — monotone, so the sweep cap is a pure backstop.
    abi_in = abi & universe
    order = [start for start in starts if start in reachable]
    defined_in = {start: set(universe) for start in order}
    for start in indirect:
        if start in defined_in:
            defined_in[start] = set(abi_in)
    for _sweep in range(_MAX_DA_SWEEPS):
        changed = False
        for start in order:
            if start in indirect or not preds[start]:
                continue
            new = set.intersection(
                *(defined_in[p] | defs_of[p] for p in preds[start]))
            if start in returns:
                # The callee re-establishes the machine state and the
                # argument convention on top of the preserved values.
                new |= abi_in
            if new != defined_in[start]:
                defined_in[start] = new
                changed = True
        if not changed:
            break

    diags = []
    for start in order:
        defined = set(defined_in[start])
        for pc in range(start, block_end[start]):
            instruction = instructions[pc]
            for name in instruction.reads():
                if name not in defined:
                    diags.append(Diagnostic(
                        stage, "use-before-def",
                        "%r reads %s, which is not written on every "
                        "path reaching pc %d" % (instruction, name, pc),
                        pos=pc))
                    defined.add(name)   # report each register once
            defined.update(instruction.writes())
    return diags


def lint_program(program, stage="lint", definite_assignment=True):
    """Run every lint rule over *program*; returns the diagnostics."""
    diags = []
    for pc, instruction in enumerate(program.instructions):
        diags.extend(check_operands(instruction, pc, stage))
    diags.extend(_label_diagnostics(program, stage))
    diags.extend(_terminator_diagnostics(program, stage))
    if definite_assignment and not diags:
        # Dataflow needs resolvable labels; skip it when shape is broken.
        diags.extend(_definite_assignment(program, stage))
    return diags
