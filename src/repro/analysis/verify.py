"""Independent schedule verifier ("the checker", part 2).

The trace-scheduling result chain (Tables 1/3, Figure 6) is only as good
as the legality of the code motion behind it: speculation must respect
off-live sets (section 4.3), stores must never float above branches, the
shared memory port must never be oversubscribed (section 4.1's shared-
memory hypothesis), and compensation code at trace side entrances must
restore sequential semantics (section 3.1's bookkeeping).  This module
re-derives every one of those constraints *from first principles* — its
own read/write/memory/off-live computations, sharing nothing with
:func:`repro.analysis.dependence.build_dag` or the scheduler — and checks
them against the artefacts the compiler actually produced:

* :func:`check_schedule` — cycle-accurate dependence and resource
  legality of one :class:`~repro.compaction.scheduler.Schedule`;
* :func:`check_transform` — a control-flow bisimulation between the
  original program and its superblock-transformed layout (every path,
  including every off-trace exit through compensation code, must replay
  the same instruction sequence);
* :func:`check_regions` — region-table sanity: contiguous cover and the
  single-entry property (no label resolves into a region interior);
* :func:`check_allocation` — no two simultaneously-live values share a
  physical register in a register binding.

All checkers return lists of :class:`~repro.analysis.lint.Diagnostic`;
:func:`raise_if_failed` upgrades findings to :class:`VerificationError`
for callers that want hard failure (``evaluation.pipeline`` with
``verify=True``, the ``repro verify`` CLI).
"""

from repro.analysis.lint import (
    Diagnostic, format_diagnostics, _leaders_and_entries, _abi_registers)
from repro.intcode.ici import (
    OP_CLASS, BRANCH_OPS, CONTROL_OPS, MEM, ALU, MOVE, CTRL)

__all__ = [
    "VerificationError",
    "check_schedule",
    "check_pruned_edges",
    "check_transform",
    "check_regions",
    "check_allocation",
    "NameLiveness",
    "off_live_names",
    "raise_if_failed",
]


class VerificationError(Exception):
    """A checked compilation stage produced an illegal artefact."""

    def __init__(self, diagnostics, context=""):
        self.diagnostics = list(diagnostics)
        prefix = (context + ":\n") if context else ""
        super().__init__(prefix + format_diagnostics(self.diagnostics))


def raise_if_failed(diagnostics, context=""):
    if diagnostics:
        raise VerificationError(diagnostics, context)


# -- independent memory-bank classification ---------------------------------

#: area-pointer register -> data area, re-derived from the layout contract
#: (repro.intcode.layout): every area pointer provably stays inside its
#: 1M-word region, all other base registers are computed term addresses.
_AREA_POINTERS = {
    "H": "heap", "HB": "heap",
    "E": "env", "ES": "env", "K_ENVB": "env",
    "B": "choice", "BT": "choice", "B0": "choice",
    "TR": "trail",
    "PD": "pdl", "K_PDLB": "pdl",
}


def _bank(instruction):
    base = instruction.ra if instruction.op == "ld" else instruction.rb
    return _AREA_POINTERS.get(base)


def _banks_conflict(a, b):
    """Two memory operations may touch the same word unless both base
    registers are pointers into provably distinct data areas."""
    if a is None or b is None:
        return True
    return a == b


class _RegionIndependence:
    """Checker-side must-not-alias proof for one region's memory
    references, re-derived from scratch (it shares nothing with
    :class:`repro.analysis.dataflow.RegionMemoryFacts`, which the
    scheduler consumes).

    Two references provably touch different words when their base
    registers are area pointers into distinct data areas, or when they
    carry the *same base value* — the same register version, tracked
    through region-local ``mov`` copies — at different immediate
    offsets."""

    def __init__(self, instructions):
        self.instructions = instructions
        self._value = {}          # position -> (root, version) of the base
        self._offset = {}
        self._area = {}           # position -> data area name or None
        generation = {}
        alias_of = {}             # copy register -> (root, version)
        for pos, instruction in enumerate(instructions):
            if instruction.op in ("ld", "st"):
                base = instruction.ra if instruction.op == "ld" \
                    else instruction.rb
                self._value[pos] = alias_of.get(
                    base, (base, generation.get(base, 0)))
                self._offset[pos] = instruction.imm or 0
                self._area[pos] = _AREA_POINTERS.get(base)
            written = instruction.writes()
            for name in written:
                generation[name] = generation.get(name, 0) + 1
                alias_of.pop(name, None)
            if written:
                stale = [copy for copy, (root, _v) in alias_of.items()
                         if root in written]
                for copy in stale:
                    del alias_of[copy]
            if instruction.op == "mov" and instruction.rd is not None:
                source = instruction.ra
                value = alias_of.get(
                    source, (source, generation.get(source, 0)))
                if value[0] != instruction.rd:
                    alias_of[instruction.rd] = value

    def independent(self, i, j):
        """Do the memory operations at positions *i*, *j* provably
        touch different words?"""
        if i not in self._value or j not in self._value:
            return False
        area_i, area_j = self._area[i], self._area[j]
        if area_i is not None and area_j is not None \
                and area_i != area_j:
            return True
        return self._value[i] == self._value[j] \
            and self._offset[i] != self._offset[j]


def _dead_positions(instructions, off_live, live_out):
    """Region positions whose register write is provably dead, with the
    checker's name-set vocabulary (the mirror of
    :func:`repro.analysis.dataflow.region_dead_writes`, independently
    re-derived).

    ``off_live`` maps branch positions to the *names* live on the
    branch's off-trace path; ``live_out`` is the set of names live at
    the region's fall-through end.  ``live_out=None`` means unknown —
    nothing is provably dead.  A region exit with an unknown
    continuation (``jmp``/``jmpr``/``call``, or a branch missing from
    ``off_live``) makes every name live at that point."""
    if live_out is None:
        return frozenset()
    off_live = off_live or {}
    universe = set(live_out)
    for names in off_live.values():
        if names:
            universe |= set(names)
    for instruction in instructions:
        universe.update(instruction.reads())
        universe.update(instruction.writes())

    dead = set()
    live = set(live_out)
    for index in range(len(instructions) - 1, -1, -1):
        instruction = instructions[index]
        op = instruction.op
        if op in CONTROL_OPS:
            if op == "halt":
                live = set()
            elif op in BRANCH_OPS:
                names = off_live.get(index)
                live = set(universe) if names is None else (live | names)
            else:
                live = set(universe)
        else:
            written = instruction.writes()
            if written and op not in ("st", "esc") \
                    and not any(name in live for name in written):
                dead.add(index)
            live.difference_update(written)
        live.update(instruction.reads())
    return frozenset(dead)


# -- schedule legality -------------------------------------------------------

def _schedule_shape(instructions, schedule, stage, region):
    diags = []
    cycles = schedule.cycles
    if len(cycles) != len(instructions):
        diags.append(Diagnostic(
            stage, "schedule-shape",
            "schedule covers %d ops, region has %d"
            % (len(cycles), len(instructions)), region=region))
        return diags
    for pos, cycle in enumerate(cycles):
        if not isinstance(cycle, int) or cycle < 0:
            diags.append(Diagnostic(
                stage, "schedule-shape",
                "op has no legal issue cycle (%r)" % (cycle,),
                pos=pos, region=region))
    if not diags and cycles \
            and schedule.length != max(cycles) + 1:
        diags.append(Diagnostic(
            stage, "schedule-shape",
            "schedule length %d != last issue cycle + 1 (%d)"
            % (schedule.length, max(cycles) + 1), region=region))
    return diags


def _dependence_diagnostics(instructions, schedule, config, off_live,
                            stage, region, live_out=None):
    """Re-derive every ordering constraint pairwise and check it
    cycle-accurately against the issue cycles."""
    diags = []
    cycles = schedule.cycles
    units = schedule.units
    penalty = config.inter_unit_penalty
    bbl = config.branch_branch_latency
    speculation = config.speculation
    n = len(instructions)

    # Under analysis_prune the scheduler may legally drop the ordering
    # of a proven-independent memory pair and the WAW edge into a dead
    # write; the checker re-proves both facts from first principles
    # before accepting the corresponding reorderings.
    if getattr(config, "analysis_prune", False):
        independence = _RegionIndependence(instructions)
        dead = _dead_positions(instructions, off_live, live_out)
    else:
        independence = None
        dead = frozenset()

    def bad(rule, pos, message):
        diags.append(Diagnostic(stage, rule, message, pos=pos,
                                region=region))

    last_writer = {}

    for j in range(n):
        ins_j = instructions[j]
        op_j = ins_j.op
        is_control_j = op_j in CONTROL_OPS
        writes_j = ins_j.writes()
        reads_j = ins_j.reads()

        # RAW: j must start after its operands are produced (and pay the
        # transfer penalty when the producer sits on another unit).
        for name in reads_j:
            i = last_writer.get(name)
            if i is None:
                continue
            need = cycles[i] + config.duration(instructions[i].op)
            if penalty and units is not None and units[i] != units[j]:
                need += penalty
                rule = "inter-unit-latency"
            else:
                rule = "raw-latency"
            if cycles[j] < need:
                bad(rule, j,
                    "%r issues at cycle %d but its operand %s is "
                    "produced by op %d (%r) at cycle %d + latency"
                    % (ins_j, cycles[j], name, i, instructions[i],
                       cycles[i]))

        for i in range(j):
            ins_i = instructions[i]
            op_i = ins_i.op
            # WAR / WAW on every register.
            for name in writes_j:
                if name in ins_i.reads() and cycles[j] < cycles[i]:
                    bad("war-order", j,
                        "%r overwrites %s at cycle %d before op %d (%r) "
                        "reads it at cycle %d"
                        % (ins_j, name, cycles[j], i, ins_i, cycles[i]))
                if name in ins_i.writes() and cycles[j] < cycles[i] + 1 \
                        and j not in dead:
                    bad("waw-order", j,
                        "%r rewrites %s at cycle %d, not after op %d "
                        "(%r) at cycle %d"
                        % (ins_j, name, cycles[j], i, ins_i, cycles[i]))
            # Memory ordering: no disambiguation across conflicting areas.
            if op_j in ("ld", "st") and op_i in ("ld", "st") \
                    and not (op_i == "ld" and op_j == "ld"):
                use_banks = config.bank_disambiguation
                conflict = _banks_conflict(_bank(ins_i), _bank(ins_j)) \
                    if use_banks else True
                if conflict and independence is not None \
                        and independence.independent(i, j):
                    conflict = False
                if conflict:
                    need = cycles[i] if (op_i == "ld") else cycles[i] + 1
                    rule = "store-load-order" if op_i == "ld" \
                        else "mem-order"
                    if cycles[j] < need:
                        bad(rule, j,
                            "%r at cycle %d reorders against op %d (%r) "
                            "at cycle %d on possibly-aliasing memory"
                            % (ins_j, cycles[j], i, ins_i, cycles[i]))
            # Host escapes stay strictly ordered (observable output).
            if op_j == "esc" and op_i == "esc" \
                    and cycles[j] < cycles[i] + 1:
                bad("esc-order", j,
                    "%r at cycle %d not after earlier escape op %d "
                    "at cycle %d" % (ins_j, cycles[j], i, cycles[i]))

            if op_i in CONTROL_OPS:
                if is_control_j:
                    # Branch order is preserved; single-way machines
                    # serialise consecutive branches.
                    need = cycles[i] + (bbl if op_j in BRANCH_OPS else 0)
                    if cycles[j] < need:
                        bad("branch-order", j,
                            "control op %r at cycle %d issues before "
                            "earlier control op %d (%r) at cycle %d"
                            % (ins_j, cycles[j], i, ins_i, cycles[i]))
                else:
                    # Upward code motion past a control transfer.
                    if cycles[j] <= cycles[i]:
                        if op_j == "st":
                            bad("store-speculated", j,
                                "store %r at cycle %d floats above "
                                "control op %d (%r) at cycle %d: memory "
                                "is visible off-trace"
                                % (ins_j, cycles[j], i, ins_i, cycles[i]))
                        elif op_j == "esc":
                            bad("escape-speculated", j,
                                "escape %r at cycle %d floats above "
                                "control op %d (%r) at cycle %d: output "
                                "is visible off-trace"
                                % (ins_j, cycles[j], i, ins_i, cycles[i]))
                        elif not speculation and writes_j:
                            bad("off-live-speculated", j,
                                "%r at cycle %d moves above control op "
                                "%d (%r) at cycle %d, but this machine "
                                "model forbids speculation"
                                % (ins_j, cycles[j], i, ins_i, cycles[i]))
                        elif writes_j and off_live is not None:
                            live = off_live.get(i)
                            if live:
                                hot = [name for name in writes_j
                                       if name in live]
                                if hot:
                                    bad("off-live-speculated", j,
                                        "%r at cycle %d speculates above "
                                        "branch op %d (%r) at cycle %d "
                                        "but defines %s, live on the "
                                        "off-trace path"
                                        % (ins_j, cycles[j], i, ins_i,
                                           cycles[i], ", ".join(hot)))
            elif is_control_j and cycles[j] < cycles[i]:
                # Everything preceding a control transfer must have
                # issued when the transfer leaves the region.
                bad("issue-order", j,
                    "control op %r at cycle %d issues before earlier "
                    "op %d (%r) at cycle %d: the off-trace exit would "
                    "see an incomplete past"
                    % (ins_j, cycles[j], i, ins_i, cycles[i]))

        for name in writes_j:
            last_writer[name] = j
    return diags


def _resource_diagnostics(instructions, schedule, config, stage, region):
    """Per-cycle resource usage against the machine model, re-derived
    from the raw configuration parameters (not slots_feasible)."""
    diags = []
    cycles = schedule.cycles
    units = schedule.units
    by_cycle = {}
    for pos, cycle in enumerate(cycles):
        by_cycle.setdefault(cycle, []).append(pos)

    def bad(rule, pos, message):
        diags.append(Diagnostic(stage, rule, message, pos=pos,
                                region=region))

    mem_limit = min(config.mem_ports, config.n_units)
    ctrl_limit = config.n_units if config.multiway else 1
    for cycle, positions in sorted(by_cycle.items()):
        counts = {MEM: 0, ALU: 0, MOVE: 0, CTRL: 0}
        unit_class = {}
        for pos in positions:
            op = instructions[pos].op
            counts[OP_CLASS[op]] += 1
            if config.inter_unit_penalty and units is not None:
                unit = units[pos]
                if not 0 <= unit < config.n_units:
                    bad("unit-conflict", pos,
                        "op bound to unit %d outside the %d-unit machine"
                        % (unit, config.n_units))
                key = (unit, OP_CLASS[op])
                if key in unit_class:
                    bad("unit-conflict", pos,
                        "cycle %d issues two %s operations on unit %d "
                        "(ops %d and %d)" % (cycle, OP_CLASS[op], unit,
                                             unit_class[key], pos))
                unit_class[key] = pos
        anchor = positions[0]
        if counts[MEM] > mem_limit:
            bad("mem-port", anchor,
                "cycle %d issues %d memory operations; the shared "
                "memory sustains %d per cycle"
                % (cycle, counts[MEM], mem_limit))
        if counts[ALU] > config.n_units:
            bad("slot-class", anchor,
                "cycle %d issues %d ALU operations on %d units"
                % (cycle, counts[ALU], config.n_units))
        if counts[MOVE] > config.n_units:
            bad("slot-class", anchor,
                "cycle %d issues %d moves on %d units"
                % (cycle, counts[MOVE], config.n_units))
        if counts[CTRL] > ctrl_limit:
            bad("slot-class", anchor,
                "cycle %d issues %d control operations; limit %d%s"
                % (cycle, counts[CTRL], ctrl_limit,
                   "" if config.multiway else " (no multiway branches)"))
        total = sum(counts.values())
        if config.issue_width is not None and total > config.issue_width:
            bad("issue-width", anchor,
                "cycle %d issues %d operations; issue width is %d"
                % (cycle, total, config.issue_width))
        if config.formats == "prototype" \
                and counts[CTRL] + max(counts[ALU], counts[MOVE]) \
                > config.n_units:
            bad("format", anchor,
                "cycle %d mix (mem=%d alu=%d move=%d ctrl=%d) does not "
                "fit %d two-format instruction words"
                % (cycle, counts[MEM], counts[ALU], counts[MOVE],
                   counts[CTRL], config.n_units))
    return diags


def check_schedule(instructions, schedule, config, off_live=None,
                   region=None, stage="schedule", live_out=None):
    """Validate one region's :class:`Schedule` against *config*.

    ``off_live`` maps region positions of conditional branches to the
    *set of register names* live on the branch's off-trace path (see
    :func:`off_live_names`); ``None`` disables the off-live rule (legal
    only for single-exit regions or non-speculating models, which are
    checked structurally regardless).  ``live_out`` is the set of names
    live at the region's fall-through end; it is only consulted under
    ``config.analysis_prune``, where it anchors the dead-write proof
    that relaxes the WAW rule.
    """
    diags = _schedule_shape(instructions, schedule, stage, region)
    if diags:
        return diags
    diags.extend(_dependence_diagnostics(instructions, schedule, config,
                                         off_live, stage, region,
                                         live_out=live_out))
    diags.extend(_resource_diagnostics(instructions, schedule, config,
                                       stage, region))
    return diags


def check_pruned_edges(instructions, pruned, off_live=None, live_out=None,
                       region=None, stage="schedule"):
    """Re-prove every dependence edge the scheduler's analysis oracle
    removed (see ``pruned`` in
    :func:`repro.analysis.dependence.build_dag`).

    Each entry must be a ``(kind, pred, index)`` tuple with
    ``pred < index`` inside the region.  A ``"mem"`` edge is accepted
    only when the checker's own :class:`_RegionIndependence` proves the
    pair touches different words; a ``"waw"`` edge only when the
    checker's own :func:`_dead_positions` proves the overwritten result
    is dead.  Anything else is a diagnostic — the analyzer is never
    trusted.
    """
    diags = []
    n = len(instructions)
    independence = _RegionIndependence(instructions)
    dead = _dead_positions(instructions, off_live, live_out)

    def bad(rule, pos, message):
        diags.append(Diagnostic(stage, rule, message, pos=pos,
                                region=region))

    for entry in pruned:
        if not (isinstance(entry, tuple) and len(entry) == 3):
            bad("pruned-shape", None,
                "malformed pruned-edge record %r" % (entry,))
            continue
        kind, i, j = entry
        if not (isinstance(i, int) and isinstance(j, int)
                and 0 <= i < j < n):
            bad("pruned-shape", None,
                "pruned %s edge (%r, %r) outside region of %d ops"
                % (kind, i, j, n))
            continue
        ins_i, ins_j = instructions[i], instructions[j]
        if kind == "mem":
            if ins_i.op not in ("ld", "st") or ins_j.op not in ("ld", "st"):
                bad("pruned-shape", j,
                    "pruned mem edge %d->%d joins non-memory ops "
                    "%r / %r" % (i, j, ins_i, ins_j))
            elif not independence.independent(i, j):
                bad("pruned-mem", j,
                    "pruned memory edge %d->%d (%r / %r) is not "
                    "provably independent" % (i, j, ins_i, ins_j))
        elif kind == "waw":
            if not (set(ins_i.writes()) & set(ins_j.writes())):
                bad("pruned-shape", j,
                    "pruned waw edge %d->%d joins ops with no common "
                    "destination: %r / %r" % (i, j, ins_i, ins_j))
            elif j not in dead:
                bad("pruned-waw", j,
                    "pruned WAW edge %d->%d but the write of %r is not "
                    "provably dead" % (i, j, ins_j))
        else:
            bad("pruned-shape", j,
                "unknown pruned-edge kind %r" % (kind,))
    return diags


# -- independent liveness / off-live sets ------------------------------------

class NameLiveness:
    """Backward register liveness over an ICI program, re-derived with
    plain name sets (independent of the bitmask implementation in
    :mod:`repro.analysis.liveness`, which the scheduler consumes)."""

    def __init__(self, program):
        self.program = program
        instructions = program.instructions
        n = len(instructions)
        leaders, _indirect, _returns = _leaders_and_entries(program)
        self.block_start = leaders
        ends = {}
        for index, start in enumerate(leaders):
            ends[start] = leaders[index + 1] if index + 1 < len(leaders) \
                else n
        self._ends = ends
        abi = set(_abi_registers())

        succs = {}
        terminator_out = {}
        call_return = {}
        for start in leaders:
            end = ends[start]
            terminator = instructions[end - 1]
            op = terminator.op
            out = []
            if op in BRANCH_OPS:
                out.append(program.labels.get(terminator.label))
                if end < n:
                    out.append(end)
            elif op == "jmp":
                out.append(program.labels.get(terminator.label))
            elif op in ("call", "jmpr"):
                pass
            elif op != "halt" and end < n:
                out.append(end)
            succs[start] = [s for s in out if s is not None and s < n]
            if op in ("call", "jmpr"):
                terminator_out[start] = set(abi)
                if op == "call" and end < n:
                    call_return[start] = end
            else:
                terminator_out[start] = set()

        gen = {}
        kill = {}
        for start in leaders:
            g = set()
            k = set()
            for pc in range(start, ends[start]):
                instruction = instructions[pc]
                for name in instruction.reads():
                    if name not in k:
                        g.add(name)
                for name in instruction.writes():
                    k.add(name)
            gen[start] = g
            kill[start] = k

        live_in = {start: set() for start in leaders}
        live_out = {start: set(terminator_out[start])
                    for start in leaders}
        changed = True
        while changed:
            changed = False
            for start in reversed(leaders):
                out = set(terminator_out[start])
                for succ in succs[start]:
                    out |= live_in[succ]
                ret = call_return.get(start)
                if ret is not None:
                    # Values live at the return point survive the call in
                    # caller registers (runtime-routine contract).
                    out |= live_in[ret]
                new_in = gen[start] | (out - kill[start])
                if out != live_out[start] or new_in != live_in[start]:
                    live_out[start] = out
                    live_in[start] = new_in
                    changed = True
        self.live_in = live_in
        self.abi = abi

    def live_in_at(self, pc):
        """Register names live on entry to the block starting at *pc*."""
        return self.live_in.get(pc, self.abi)


def off_live_names(program, region_start, region_end, liveness=None):
    """Per-position off-trace live sets for a region's conditional
    branches: position -> set of names live at the branch's taken
    target (the off-trace direction after superblock layout)."""
    liveness = liveness or NameLiveness(program)
    masks = {}
    for position in range(region_end - region_start):
        instruction = program.instructions[region_start + position]
        if instruction.op in BRANCH_OPS:
            target = program.labels.get(instruction.label)
            if target is None:
                masks[position] = liveness.abi
            else:
                masks[position] = liveness.live_in_at(target)
    return masks


# -- trace-transform equivalence ---------------------------------------------

_INVERSE = {
    "btag": "bntag", "bntag": "btag",
    "beq": "bne", "bne": "beq",
    "bltv": "bgev", "bgev": "bltv",
    "blev": "bgtv", "bgtv": "blev",
}

_MAX_TRANSFORM_DIAGS = 20


def _resolve_jumps(program, pc):
    """Follow unconditional direct jumps to the first effective
    instruction (the transform inserts/deletes these freely)."""
    seen = set()
    while 0 <= pc < len(program.instructions):
        instruction = program.instructions[pc]
        if instruction.op != "jmp":
            return pc
        if pc in seen:
            return pc          # diagnosed as a jump cycle by the caller
        seen.add(pc)
        target = program.labels.get(instruction.label)
        if target is None:
            return pc
        pc = target
    return pc


def _same_payload(a, b):
    """Non-control operands equal (labels compared by the caller)."""
    return (a.op == b.op and a.rd == b.rd and a.ra == b.ra
            and a.rb == b.rb and a.imm == b.imm and a.tag == b.tag
            and a.esc == b.esc)


def check_transform(original, transformed, stage="transform"):
    """Bisimulation between *original* and its transformed layout.

    Walks both programs in lock step from every corresponding entry
    point.  Tail duplication maps one original pc to several new pcs;
    each pair must execute the same instruction (modulo branch inversion
    and redundant-jump insertion/deletion), and successors must stay in
    correspondence — including every off-trace exit, which is exactly
    the compensation-code obligation of trace scheduling.
    """
    diags = []
    seen = set()
    work = [(original.entry_pc, transformed.entry_pc)]

    def fail(rule, old_pc, new_pc, message):
        diags.append(Diagnostic(
            stage, rule,
            "original pc %d / transformed pc %d: %s"
            % (old_pc, new_pc, message), pos=new_pc))

    def push(old_pc, new_pc):
        pair = (_resolve_jumps(original, old_pc),
                _resolve_jumps(transformed, new_pc))
        if pair not in seen:
            seen.add(pair)
            work.append(pair)

    seen.add((_resolve_jumps(original, original.entry_pc),
              _resolve_jumps(transformed, transformed.entry_pc)))
    while work and len(diags) < _MAX_TRANSFORM_DIAGS:
        old_pc, new_pc = work.pop()
        old_pc = _resolve_jumps(original, old_pc)
        new_pc = _resolve_jumps(transformed, new_pc)
        if old_pc >= len(original.instructions) \
                or new_pc >= len(transformed.instructions):
            if (old_pc >= len(original.instructions)) \
                    != (new_pc >= len(transformed.instructions)):
                fail("path-divergence", old_pc, new_pc,
                     "one side falls off the end of its program")
            continue
        old = original.instructions[old_pc]
        new = transformed.instructions[new_pc]

        if old.op == "jmp" or new.op == "jmp":
            fail("jump-cycle", old_pc, new_pc,
                 "unresolvable unconditional-jump cycle")
            continue

        if old.op in BRANCH_OPS:
            old_taken = original.labels.get(old.label)
            old_fall = old_pc + 1
            if new.op == old.op:
                new_taken = transformed.labels.get(new.label)
                new_fall = new_pc + 1
            elif new.op == _INVERSE.get(old.op):
                new_taken = new_pc + 1
                new_fall = transformed.labels.get(new.label)
            else:
                fail("path-divergence", old_pc, new_pc,
                     "branch %r does not correspond to %r" % (old, new))
                continue
            if (old.ra, old.rb, old.tag) != (new.ra, new.rb, new.tag):
                fail("path-divergence", old_pc, new_pc,
                     "branch operands differ: %r vs %r" % (old, new))
                continue
            if old_taken is None or new_taken is None \
                    or new_fall is None:
                fail("path-divergence", old_pc, new_pc,
                     "branch target does not resolve")
                continue
            push(old_taken, new_taken)
            push(old_fall, new_fall)
        elif old.op == "call":
            if new.op != "call" or old.rd != new.rd:
                fail("path-divergence", old_pc, new_pc,
                     "%r does not correspond to %r" % (old, new))
                continue
            old_target = original.labels.get(old.label)
            new_target = transformed.labels.get(new.label)
            if old_target is None or new_target is None:
                fail("path-divergence", old_pc, new_pc,
                     "call target does not resolve")
                continue
            push(old_target, new_target)
            # The link register names pc+1 in each layout; the return
            # paths must correspond from there.
            push(old_pc + 1, new_pc + 1)
        elif old.op in ("jmpr", "halt", "esc"):
            if old.op != new.op or old.ra != new.ra \
                    or old.imm != new.imm or old.esc != new.esc:
                fail("path-divergence", old_pc, new_pc,
                     "%r does not correspond to %r" % (old, new))
                continue
            if old.op == "esc":
                push(old_pc + 1, new_pc + 1)
        else:
            if not _same_payload(old, new):
                fail("path-divergence", old_pc, new_pc,
                     "%r does not correspond to %r" % (old, new))
                continue
            if (old.label is None) != (new.label is None):
                fail("path-divergence", old_pc, new_pc,
                     "code-address operand dropped: %r vs %r"
                     % (old, new))
                continue
            if old.label is not None:
                old_target = original.labels.get(old.label)
                new_target = transformed.labels.get(new.label)
                if old_target is None or new_target is None:
                    fail("path-divergence", old_pc, new_pc,
                         "code-address label does not resolve")
                    continue
                # Materialised code addresses (retry points) must lead
                # to corresponding code when eventually jumped to.
                push(old_target, new_target)
            push(old_pc + 1, new_pc + 1)
    return diags


def check_regions(program, regions, stage="transform"):
    """Region-table sanity: the regions tile the program contiguously
    and every label lands on a region head (single-entry property)."""
    diags = []
    ordered = sorted(regions, key=lambda r: r.start)
    expected = 0
    for region in ordered:
        if region.start != expected:
            diags.append(Diagnostic(
                stage, "region-cover",
                "region [%d,%d) does not tile the program (expected "
                "start %d)" % (region.start, region.end, expected),
                region=(region.start, region.end)))
        if region.end <= region.start:
            diags.append(Diagnostic(
                stage, "region-cover",
                "empty region [%d,%d)" % (region.start, region.end),
                region=(region.start, region.end)))
        expected = region.end
    if ordered and expected != len(program.instructions):
        diags.append(Diagnostic(
            stage, "region-cover",
            "regions end at %d, program has %d instructions"
            % (expected, len(program.instructions))))

    heads = {region.start for region in regions}
    for name, target in program.labels.items():
        if target < len(program.instructions) and target not in heads:
            diags.append(Diagnostic(
                stage, "side-entrance",
                "label %r resolves to pc %d inside a region interior: "
                "the region is no longer single-entry" % (name, target),
                pos=target))
    return diags


# -- register allocation -----------------------------------------------------

def _is_bank_resident(name):
    """Interface registers with cross-region lifetimes (re-derived from
    the calling convention, mirroring the ABI set)."""
    if name in _abi_registers():
        return True
    return name[:1] == "a" and name[1:].isdigit()


def _live_ranges(instructions, schedule):
    """Independent live intervals of region-local values: definition
    cycle (plus pipeline occupancy) to last read."""
    first = {}
    last = {}
    for pos, instruction in enumerate(instructions):
        cycle = schedule.cycles[pos]
        for name in instruction.reads():
            if _is_bank_resident(name):
                continue
            if name not in first:
                first[name] = 0       # live-in local
            last[name] = max(last.get(name, 0), cycle)
        for name in instruction.writes():
            if _is_bank_resident(name):
                continue
            if name not in first or cycle < first[name]:
                first[name] = cycle
            busy = cycle + schedule.config.duration(instruction.op) - 1
            last[name] = max(last.get(name, busy), busy)
    return {name: (first[name], max(last.get(name, first[name]),
                                    first[name]))
            for name in first}


def check_allocation(instructions, schedule, allocation, region=None,
                     stage="regalloc"):
    """No two simultaneously-live values may share a physical register.

    ``allocation`` is a :class:`repro.compaction.regalloc.Allocation`:
    pinned physical indices for interface registers, an assignment for
    the locals it kept in the bank, and a spill list.
    """
    diags = []

    def bad(rule, message):
        diags.append(Diagnostic(stage, rule, message, region=region))

    ranges = _live_ranges(instructions, schedule)
    bank = allocation.bank_size

    pinned = {}
    for name, phys in allocation.reserved.items():
        if not 0 <= phys < bank:
            bad("phys-out-of-bank",
                "interface register %s pinned to r%d outside the "
                "%d-register bank" % (name, phys, bank))
        if phys in pinned:
            bad("phys-overlap",
                "interface registers %s and %s share physical register "
                "r%d" % (pinned[phys], name, phys))
        pinned[phys] = name

    placed = []
    for name, phys in allocation.assignment.items():
        if name in allocation.spilled:
            bad("phys-overlap",
                "register %s is both bank-allocated and spilled" % name)
        if not 0 <= phys < bank:
            bad("phys-out-of-bank",
                "%s allocated to r%d outside the %d-register bank"
                % (name, phys, bank))
            continue
        if phys in pinned:
            bad("phys-overlap",
                "local %s allocated to r%d, which is pinned to "
                "interface register %s" % (name, phys, pinned[phys]))
        span = ranges.get(name)
        if span is None:
            continue
        placed.append((name, phys, span))

    placed.sort(key=lambda item: item[2])
    for index, (name, phys, span) in enumerate(placed):
        for other, other_phys, other_span in placed[index + 1:]:
            if other_span[0] > span[1]:
                break
            if phys == other_phys:
                bad("phys-overlap",
                    "%s (cycles [%d,%d]) and %s (cycles [%d,%d]) are "
                    "simultaneously live in physical register r%d"
                    % (name, span[0], span[1], other, other_span[0],
                       other_span[1], phys))

    for name in ranges:
        if name not in allocation.assignment \
                and name not in allocation.spilled:
            bad("unallocated",
                "live value %s has neither a bank slot nor a spill"
                % name)
    return diags
