"""Data-dependence DAG construction for scheduling regions.

Implements the dependence classes the paper enumerates in section 4.3:
memory dependency, source-destination (RAW), write-after-read,
write-after-write, *off-live*, plus the constraint that the sequence of
branches is preserved "to limit the possibility of code motion" (Ellis'
rule against exponential compensation growth).

Memory references are never disambiguated — section 4.1 argues Prolog's
pointer-dominated stack traffic defeats disambiguation — so loads and
stores are ordered conservatively against every store.

Speculation rules (upward motion past a branch): loads, ALU operations and
moves may move above a branch unless they write a register that is live on
the branch's off-trace path; stores and escapes never move above a branch
(memory and output are visible off-trace).
"""

from repro.intcode.ici import BRANCH_OPS, CONTROL_OPS

#: static memory-bank classification by base register (the future-work
#: extension of section 6: the BAM's separate data areas are statically
#: recognisable whenever the base register is an area pointer)
_BANK_OF_BASE = {
    "H": "heap", "HB": "heap",
    "E": "env", "ES": "env",
    "B": "choice", "BT": "choice", "B0": "choice",
    "TR": "trail",
    "PD": "pdl", "K_PDLB": "pdl",
}
_ALL_BANKS = ("heap", "env", "choice", "trail", "pdl", "?")


def memory_bank(instruction):
    """Which data area a memory operation touches, or ``"?"`` when the
    base register is a computed pointer (dereferenced term addresses —
    exactly the accesses section 4.1 says cannot be disambiguated)."""
    base = instruction.ra if instruction.op == "ld" else instruction.rb
    return _BANK_OF_BASE.get(base, "?")


def _conflicting_banks(bank):
    if bank == "?":
        return _ALL_BANKS
    return (bank, "?")


class DependenceDag:
    """Predecessor lists with latencies for one region's operations."""

    def __init__(self, preds, n):
        self.preds = preds            # position -> list of (pred, latency)
        self.n = n
        self.succs = [[] for _ in range(n)]
        for index in range(n):
            for pred, latency in preds[index]:
                self.succs[pred].append((index, latency))

    def heights(self, dur_of_pos):
        """Critical-path height of each operation (list-scheduler priority)."""
        heights = [0] * self.n
        for index in range(self.n - 1, -1, -1):
            best = dur_of_pos(index)
            for succ, latency in self.succs[index]:
                candidate = max(latency, 1) + heights[succ]
                if candidate > best:
                    best = candidate
            heights[index] = best
        return heights


def build_dag(instructions, durations, off_live=None, reg_mask=None,
              branch_branch_latency=0, bank_disambiguation=False,
              independence=None, dead=None, pruned=None):
    """Build the dependence DAG of a region.

    * ``instructions`` — region operations in original program order.
    * ``durations`` — per-position operation duration (for RAW latencies).
    * ``off_live`` — per-position mask of registers live on the off-trace
      path of a branch (positions missing or None disable the off-live
      restriction for that branch).
    * ``reg_mask`` — function register name -> bitmask (required when
      off_live is used).
    * ``bank_disambiguation`` — when True, memory operations on
      *statically distinct* data areas (heap / environments / choice
      points / trail, recognised by their base registers) do not
      conflict; computed-pointer accesses still conflict with everything.
      This is the multi-bank future-work model; the paper's shared-memory
      analysis keeps it off.
    * ``independence`` — optional memory-disambiguation oracle (e.g.
      :class:`repro.analysis.dataflow.RegionMemoryFacts`): an object
      whose ``independent(i, j)`` proves the memory operations at region
      positions ``i < j`` touch different words.  When provided, memory
      edges are built *pairwise* and every proven-independent pair is
      left unordered (subsuming ``bank_disambiguation``).
    * ``dead`` — optional set of region positions whose register result
      is provably dead (never read later, not off-live, not live-out).
      The WAW edge *into* a dead write is dropped: reordering it against
      the previous writer is unobservable.  Only that edge — WAR edges
      and the edge out of the dead write stay.
    * ``pruned`` — optional list; every edge the oracles removed is
      recorded as ``(kind, pred, index)`` with kind ``"mem"`` or
      ``"waw"`` so an independent checker can re-derive each claim
      (:func:`repro.analysis.verify.check_pruned_edges`).
    """
    n = len(instructions)
    preds = [[] for _ in range(n)]

    last_writer = {}
    readers_since = {}
    last_store = {bank: None for bank in _ALL_BANKS}
    loads_since_store = {bank: [] for bank in _ALL_BANKS}
    memory_ops = []
    last_branch = None
    ops_since_branch = []
    last_esc = None
    branches = []

    def add(pred, index, latency):
        preds[index].append((pred, latency))

    def prune(kind, pred, index):
        if pruned is not None:
            pruned.append((kind, pred, index))

    for index, instruction in enumerate(instructions):
        op = instruction.op

        for name in instruction.reads():
            writer = last_writer.get(name)
            if writer is not None:
                add(writer, index, durations[writer])
            readers_since.setdefault(name, []).append(index)
        for name in instruction.writes():
            for reader in readers_since.get(name, []):
                if reader != index:
                    add(reader, index, 0)
            writer = last_writer.get(name)
            if writer is not None:
                if dead is not None and index in dead:
                    prune("waw", writer, index)
                else:
                    add(writer, index, 1)
            last_writer[name] = index
            readers_since[name] = []

        if op in ("ld", "st"):
            if independence is not None:
                # Pairwise construction: the transitive chain through
                # per-bank last stores no longer covers a pair once an
                # intermediate edge may be pruned, so every prior memory
                # operation is considered directly.
                for prior in memory_ops:
                    prior_op = instructions[prior].op
                    if prior_op == "ld" and op == "ld":
                        continue
                    if independence.independent(prior, index):
                        prune("mem", prior, index)
                    else:
                        add(prior, index,
                            0 if prior_op == "ld" else 1)
                memory_ops.append(index)
            else:
                bank = memory_bank(instruction) if bank_disambiguation \
                    else "?"
                conflicts = _conflicting_banks(bank)
                if op == "ld":
                    for other in conflicts:
                        if last_store[other] is not None:
                            add(last_store[other], index, 1)
                    loads_since_store[bank].append(index)
                else:
                    for other in conflicts:
                        if last_store[other] is not None:
                            add(last_store[other], index, 1)
                        for load in loads_since_store[other]:
                            add(load, index, 0)
                        loads_since_store[other] = []
                    if bank == "?":
                        for other in _ALL_BANKS:
                            last_store[other] = index
                    else:
                        last_store[bank] = index

        if op == "esc":
            if last_esc is not None:
                add(last_esc, index, 1)
            last_esc = index

        if op in CONTROL_OPS:
            # Branch-order constraint and the issue-order rule: everything
            # before a control transfer must issue no later than it.
            for prior in ops_since_branch:
                add(prior, index, 0)
            if last_branch is not None:
                add(last_branch, index,
                    branch_branch_latency if op in BRANCH_OPS else 0)
            last_branch = index
            ops_since_branch = []
            branches.append(index)
        else:
            ops_since_branch.append(index)
            if last_branch is not None:
                if op in ("st", "esc"):
                    # Never above a branch; the branch-order chain makes
                    # the edge to the newest branch transitively cover all.
                    add(last_branch, index, 1)
                elif off_live is not None:
                    # A register write is pinned below *every* preceding
                    # branch on whose off-trace path the register is live
                    # (checking only the newest branch would let the write
                    # slide above an older branch that needs the old value).
                    write_mask = 0
                    for name in instruction.writes():
                        write_mask |= reg_mask(name)
                    if write_mask:
                        for branch in branches:
                            mask = off_live.get(branch)
                            if mask and (mask & write_mask):
                                add(branch, index, 1)

    return DependenceDag(preds, n)
