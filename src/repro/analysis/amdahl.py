"""Amdahl's-law model of the shared-memory speedup bound (section 4.2).

With memory operations taking fraction ``f_mem`` of sequential execution
and a single shared memory port, speeding up everything *except* memory
bounds the speedup at ``1 / f_mem`` (about 3 for the measured 32%).

Figure 3 plots speedup against the enhancement factor of non-memory
operations under two hypotheses:

* *separate*: memory operations execute separately from computation —
  their time stays on the critical path untouched;
* *overlapped*: memory operations can be completely overlapped with
  computation, so once the enhanced computation time drops below the
  memory time, memory alone is the limit.
"""


def amdahl_speedup(fraction_enhanced, speedup_enhanced):
    """The classical formula [Amdahl67]."""
    if speedup_enhanced <= 0:
        raise ValueError("speedup must be positive")
    return 1.0 / ((1.0 - fraction_enhanced)
                  + fraction_enhanced / speedup_enhanced)


def memory_bound_speedup(mem_fraction):
    """Asymptotic speedup when only non-memory work is enhanced."""
    if not 0.0 < mem_fraction <= 1.0:
        raise ValueError("memory fraction must be in (0, 1]")
    return 1.0 / mem_fraction


def speedup_separate(mem_fraction, enhancement):
    """Speedup with memory executing separately from computation (the
    dotted curve of Figure 3): Amdahl with the non-memory fraction
    enhanced by *enhancement*."""
    return amdahl_speedup(1.0 - mem_fraction, enhancement)


def speedup_overlapped(mem_fraction, enhancement):
    """Speedup when memory operations are completely overlapped with
    computation (the continuous curve of Figure 3): execution time is the
    larger of the memory time and the enhanced computation time."""
    if enhancement <= 0:
        raise ValueError("enhancement must be positive")
    compute_time = (1.0 - mem_fraction) / enhancement
    return 1.0 / max(mem_fraction, compute_time)


def useful_concurrency_limit(mem_fraction):
    """The enhancement factor beyond which extra concurrency is useless
    under the overlapped hypothesis (where the two terms cross): the
    paper's "factors of concurrency greater than three are useless"."""
    return (1.0 - mem_fraction) / mem_fraction


def figure3_series(mem_fraction, enhancements):
    """The two Figure 3 curves sampled at *enhancements*."""
    return {
        "enhancement": list(enhancements),
        "separate": [speedup_separate(mem_fraction, e)
                     for e in enhancements],
        "overlapped": [speedup_overlapped(mem_fraction, e)
                       for e in enhancements],
    }
