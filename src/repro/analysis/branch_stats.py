"""Dynamic branch statistics (section 4.4).

From an emulation profile we compute, per static branch, the probability
of being taken and the *probability of a faulty prediction*

    P_fp(b) = min(P_taken(b), 1 - P_taken(b)),

whose execution-weighted average measures how well trace picking will do:
"the smallest P_fp, the smallest the probability and the penalty of making
a wrong choice during trace picking".  The module also evaluates the
"90/50 branch-taken rule" of numeric code, which the paper shows does not
hold for Prolog.
"""

from repro.intcode.ici import BRANCH_OPS


class BranchRecord:
    """One executed static branch."""

    __slots__ = ("pc", "executed", "taken", "backward")

    def __init__(self, pc, executed, taken, backward):
        self.pc = pc
        self.executed = executed
        self.taken = taken
        self.backward = backward

    @property
    def p_taken(self):
        return self.taken / self.executed

    @property
    def p_fp(self):
        p = self.p_taken
        return min(p, 1.0 - p)


def branch_records(program, counts, taken):
    """All executed conditional branches with their statistics."""
    records = []
    for pc, instruction in enumerate(program.instructions):
        if instruction.op not in BRANCH_OPS or counts[pc] == 0:
            continue
        target = program.labels[instruction.label]
        records.append(BranchRecord(pc, counts[pc], taken[pc],
                                    backward=target <= pc))
    return records


def average_p_fp(records):
    """Execution-weighted average probability of faulty prediction."""
    weight = sum(r.executed for r in records)
    if weight == 0:
        return 0.0
    return sum(r.p_fp * r.executed for r in records) / weight


def p_fp_histogram(records, bins=10):
    """Execution-weighted distribution of P_fp over [0, 0.5] (Figure 4).

    Returns (bin_edges, weights) with weights normalised to 1.
    """
    width = 0.5 / bins
    weights = [0.0] * bins
    total = 0
    for record in records:
        index = min(int(record.p_fp / width), bins - 1)
        weights[index] += record.executed
        total += record.executed
    if total:
        weights = [w / total for w in weights]
    edges = [i * width for i in range(bins + 1)]
    return edges, weights


def taken_rule_stats(records):
    """Average taken probability of backward and forward branches,
    execution-weighted — the quantities behind the 90/50 rule."""
    stats = {}
    for direction, selector in (("backward", True), ("forward", False)):
        subset = [r for r in records if r.backward == selector]
        weight = sum(r.executed for r in subset)
        if weight:
            mean = sum(r.p_taken * r.executed for r in subset) / weight
        else:
            mean = 0.0
        stats[direction] = {"branches": len(subset), "weight": weight,
                            "mean_taken": mean}
    return stats
