"""Global register liveness over the ICI CFG.

Registers are numbered and live sets are Python-int bitmasks, which keeps
the backward dataflow fixpoint cheap even for programs with thousands of
virtual registers (arbitrary-precision integers give us free bitsets).

Blocks ending in ``call``/``jmpr`` have no static successors; their
live-out is the *ABI set*: the machine registers plus argument-passing
registers.  This is sound for code produced by our compiler because no
user value ever survives a call in a register (everything live across a
call sits in an environment slot), and it is what makes off-live analysis
precise enough for useful speculation.
"""

from repro.intcode import layout

#: registers assumed live at every indirect control transfer
_ABI_EXTRA = ["B0", "u0", "u1", "EQR"]
_MAX_ARG_REGS = 16


class Liveness:
    """Backward liveness analysis; query live-in masks per block."""

    def __init__(self, cfg):
        self.cfg = cfg
        self.reg_ids = {}
        self._numbers()
        self.abi_mask = self._abi_mask()
        self.live_in = {}
        self.live_out = {}
        self._solve()

    def reg_id(self, name):
        index = self.reg_ids.get(name)
        if index is None:
            index = len(self.reg_ids)
            self.reg_ids[name] = index
        return index

    def _numbers(self):
        for instruction in self.cfg.program.instructions:
            for name in instruction.reads():
                self.reg_id(name)
            for name in instruction.writes():
                self.reg_id(name)
        for name in layout.MACHINE_REGISTERS:
            self.reg_id(name)
        for name in _ABI_EXTRA:
            self.reg_id(name)

    def _abi_mask(self):
        mask = 0
        for name in layout.MACHINE_REGISTERS:
            mask |= 1 << self.reg_ids[name]
        for name in _ABI_EXTRA:
            mask |= 1 << self.reg_ids[name]
        for index in range(_MAX_ARG_REGS):
            name = "a%d" % index
            if name in self.reg_ids:
                mask |= 1 << self.reg_ids[name]
        return mask

    def _block_flow(self, block):
        """(gen, kill) masks of a block."""
        gen = 0
        kill = 0
        instructions = self.cfg.program.instructions
        for pc in range(block.start, block.end):
            instruction = instructions[pc]
            for name in instruction.reads():
                bit = 1 << self.reg_ids[name]
                if not kill & bit:
                    gen |= bit
            for name in instruction.writes():
                kill |= 1 << self.reg_ids[name]
        return gen, kill

    def _solve(self):
        cfg = self.cfg
        flows = {}
        terminator_out = {}
        extra_succs = {}
        n = len(cfg.program.instructions)
        for block in cfg.blocks:
            flows[block.start] = self._block_flow(block)
            op = cfg.program.instructions[block.end - 1].op
            if op in ("call", "jmpr"):
                terminator_out[block.start] = self.abi_mask
                # Registers live at a call's return point are live across
                # the call: runtime routines ($unify, $equal) preserve the
                # caller's temporaries, so their values genuinely flow
                # around the callee.  (For user predicates this is merely
                # conservative — the translator keeps cross-call values in
                # environment slots.)
                if op == "call" and block.end < n:
                    extra_succs[block.start] = block.end
            else:
                terminator_out[block.start] = 0

        live_in = {block.start: 0 for block in cfg.blocks}
        live_out = dict(terminator_out)

        changed = True
        order = [block for block in reversed(cfg.blocks)]
        while changed:
            changed = False
            for block in order:
                out = terminator_out[block.start]
                for succ in block.succs:
                    out |= live_in[succ]
                extra = extra_succs.get(block.start)
                if extra is not None:
                    out |= live_in.get(extra, 0)
                gen, kill = flows[block.start]
                new_in = gen | (out & ~kill)
                if out != live_out[block.start] \
                        or new_in != live_in[block.start]:
                    live_out[block.start] = out
                    live_in[block.start] = new_in
                    changed = True
        self.live_in = live_in
        self.live_out = live_out

    def live_in_mask(self, start_pc):
        """Registers live on entry to the block starting at *start_pc*."""
        return self.live_in.get(start_pc, self.abi_mask)

    def mask_of(self, names):
        mask = 0
        for name in names:
            mask |= 1 << self.reg_id(name)
        return mask
