"""Static and dynamic code analysis: CFG, liveness, dependence, Amdahl,
the lattice dataflow framework, and the independent lint/verify
checkers."""

from repro.analysis.cfg import Cfg, BasicBlock
from repro.analysis.liveness import Liveness
from repro.analysis.dependence import build_dag, DependenceDag
from repro.analysis.dataflow import (
    AvailableExpressions, CopyConstants, DataflowAnalysis, LiveRegisters,
    ReachingDefinitions, RegionMemoryFacts, Solution,
    dataflow_limit_cycles, dead_writes, reachable_blocks,
    region_dead_writes, region_dependence_height, solve,
    unreachable_blocks)
from repro.analysis.lint import Diagnostic, lint_program, \
    format_diagnostics
from repro.analysis.report import (
    diagnostic_to_json, diagnostics_document, target_entry,
    validate_analysis, validate_diagnostics)
from repro.analysis.verify import (
    VerificationError, check_schedule, check_pruned_edges,
    check_transform, check_regions, check_allocation, NameLiveness,
    off_live_names, raise_if_failed)

__all__ = [
    "Cfg",
    "BasicBlock",
    "Liveness",
    "build_dag",
    "DependenceDag",
    "AvailableExpressions",
    "CopyConstants",
    "DataflowAnalysis",
    "LiveRegisters",
    "ReachingDefinitions",
    "RegionMemoryFacts",
    "Solution",
    "dataflow_limit_cycles",
    "dead_writes",
    "reachable_blocks",
    "region_dead_writes",
    "region_dependence_height",
    "solve",
    "unreachable_blocks",
    "Diagnostic",
    "lint_program",
    "format_diagnostics",
    "diagnostic_to_json",
    "diagnostics_document",
    "target_entry",
    "validate_analysis",
    "validate_diagnostics",
    "VerificationError",
    "check_schedule",
    "check_pruned_edges",
    "check_transform",
    "check_regions",
    "check_allocation",
    "NameLiveness",
    "off_live_names",
    "raise_if_failed",
]
