"""Static and dynamic code analysis: CFG, liveness, dependence, Amdahl."""

from repro.analysis.cfg import Cfg, BasicBlock
from repro.analysis.liveness import Liveness
from repro.analysis.dependence import build_dag, DependenceDag

__all__ = [
    "Cfg",
    "BasicBlock",
    "Liveness",
    "build_dag",
    "DependenceDag",
]
