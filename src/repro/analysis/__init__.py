"""Static and dynamic code analysis: CFG, liveness, dependence, Amdahl,
and the independent lint/verify checkers."""

from repro.analysis.cfg import Cfg, BasicBlock
from repro.analysis.liveness import Liveness
from repro.analysis.dependence import build_dag, DependenceDag
from repro.analysis.lint import Diagnostic, lint_program, \
    format_diagnostics
from repro.analysis.verify import (
    VerificationError, check_schedule, check_transform, check_regions,
    check_allocation, NameLiveness, off_live_names, raise_if_failed)

__all__ = [
    "Cfg",
    "BasicBlock",
    "Liveness",
    "build_dag",
    "DependenceDag",
    "Diagnostic",
    "lint_program",
    "format_diagnostics",
    "VerificationError",
    "check_schedule",
    "check_transform",
    "check_regions",
    "check_allocation",
    "NameLiveness",
    "off_live_names",
    "raise_if_failed",
]
