"""Codegen emulator backend: ICI compiled to one Python function.

The threaded backend (:mod:`repro.emulator.threaded`) removed the
per-instruction opcode switch but still pays a Python *call* per basic
block and a register-file list indexing per operand.  This backend goes
one level down, the way trace-scheduling compilers (and B-Prolog's
instruction specialisation) do: the whole program is emitted as the
*source* of a single Python function and run through :func:`compile`,
with

* **machine registers as function locals** — every operand access is a
  ``LOAD_FAST``/``STORE_FAST`` instead of a list indexing;
* **trace straight-lining** — a dispatch arm inlines the control-flow
  tree below its entry block, following fall-through, ``jmp``,
  ``call`` and *both* sides of conditional branches (bounded code
  duplication, deeper along the statically likely direction —
  backward-taken/forward-not-taken, the paper's own branch heuristic);
* **call-return elimination** — the emitter tracks registers that
  provably hold a known code pointer (``call`` link stores, code-tagged
  ``ldi``), so a ``jmpr`` through one resolves statically and whole
  call/routine/return sequences become straight-line code;
* **value/tag caching and folding** — untagged operand values
  (``r >> 4``) and tag fields (``(r >> 1) & 7``) are computed once per
  trace and reused; a tag test whose operand tag is statically known
  (after ``lea``/``mktag``/``ldi``) folds away entirely, which deletes
  most switch-on-tag dispatch along built-structure paths;
* **loops as Python loops** — an arm whose entry block is its own
  back-edge target compiles to a real ``for`` loop over a shared
  ``range(limit + 1)``, so hot recursion/iteration spins without
  re-entering the dispatcher; every iteration of any loop executes at
  least one ICI step, so exhausting the range proves the step limit
  was exceeded (a bail to the exact reference fault) with no fuel
  counting on the hot path;
* **path-level statistics** — instead of per-block counters, each
  straight-line path through an arm bumps a single slot in a path
  counter array; a post-run replay expands path counts into the per-pc
  ``counts``/``taken`` arrays (each path's block and taken-edge lists
  are static), bit-identical to the reference loop;
* **a small trampoline** — inter-trace branches dispatch on a dense
  block id through a balanced comparison tree.

Compilation is content-addressed: the generated module's code object
and the path tables are persisted (``marshal`` + base64 inside a JSON
artefact) in the cache directory, keyed on the program fingerprint,
the codegen component digest and the Python ABI, so a sweep re-run
loads bytecode instead of recompiling.  Artefacts are only *written*
when the caller opts in (``persist=True`` — the profile cache and the
bench harness do); every construction still consults the cache.

The backend is *semantics-complete or honest*, like the threaded one:
anything it cannot compile becomes a bail-out, and any bail-out or
machine fault at run time (wild indirect jump, uninitialised memory
read, division by zero, step limit) falls back to one clean re-run —
the reference loop reproduces the exact result or the exact fault.
Three-way equality is enforced by ``tests/test_fuzz_equivalence.py``.
"""

import base64
import hashlib
import json
import marshal
import os
import sys

from repro.terms import tags
from repro.testing import faults
from repro.emulator.machine import (
    EmulationResult, Emulator, decode, initial_memory, initial_registers,
    render_term,
    _LD, _ST, _MOV, _LEA, _LDI, _JMP, _CALL, _JMPR, _DIV, _MOD,
    _BTAG, _BNTAG, _BEQ, _BNE, _MKTAG, _GETTAG, _ESC, _HALT)
from repro.emulator.threaded import (
    _ALU_OPERATOR, _Bailout, _CMP_OPERATOR, _CONDITIONAL, _TERMINATORS,
    _reachable_indices, basic_blocks)

__all__ = ["CodegenEmulator", "codegen_code", "generate_source",
           "CODEGEN_SCHEMA"]

#: bump when the generated code shape or the artefact layout changes
#: (cache artefacts from other schema versions are never loaded)
CODEGEN_SCHEMA = 2

#: how many times one block may repeat on a profiled (tier-2) trace.
#: Unrolling short-trip cycles inline looked attractive, but >1
#: explodes the path table (and with it source size and the per-run
#: replay) faster than it saves trampoline rounds on every measured
#: benchmark, so cycles stay cut at one pass.
_REVISIT = 1

#: how deep an arm inlines along its *primary* chain (fall-through,
#: ``jmp``, ``call``, resolved ``jmpr``, and the statically likely side
#: of each conditional: backward-taken / forward-not-taken)
_MAIN_DEPTH = 48

#: how deep the statically *unlikely* side of a conditional inlines
#: before handing the block id back to the dispatcher
_SIDE_DEPTH = 3

#: hard cap on inlined blocks per arm (bounds generated-code growth
#: even when side chains branch richly)
_ARM_CAP = 80

#: tier-2 depth/cap for arms the profiling run actually entered (cold
#: sides are pruned to nothing, so hot chains can afford to go deeper)
_HOT_DEPTH = 96
_HOT_CAP = 160

#: dynamic step count above which a clean first run triggers the
#: profile-guided tier-2 recompile — short programs (fuzz one-shots)
#: would pay more in compile time than they could ever win back
_TIER2_STEPS = 10_000

_TCOD_BITS = tags.TCOD << 1
_INT_BITS = tags.TINT << 1

#: the fault-injection site compiled into block prologues when armed
FAULT_SITE = "emulator.codegen.block"

#: rendering tokens for arm control transfers (resolved per arm: an arm
#: that loops is wrapped in ``while True`` and exits with ``break``; a
#: straight-line arm exits with the trampoline's ``continue``)
_EXIT = "\x00exit"
_LOOP = "\x00loop"

_ALU_FUNC = {
    op: {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
         "*": lambda a, b: a * b, "&": lambda a, b: a & b,
         "|": lambda a, b: a | b, "^": lambda a, b: a ^ b,
         "<<": lambda a, b: a << b, ">>": lambda a, b: a >> b}[symbol]
    for op, symbol in _ALU_OPERATOR.items()}

#: ALU ops computable directly on tagged words when both operand tag
#: nibbles are known (``(va ± vb) << 4 | 4`` is ``wa ± wb`` plus a
#: compile-time constant); value is the right operand's sign
_WORD_ALU_SIGN = {op: (1 if symbol == "+" else -1)
                  for op, symbol in _ALU_OPERATOR.items()
                  if symbol in ("+", "-")}

#: shift folds are range-guarded so compile-time folding can never
#: allocate a huge integer a real run would only build at run time
_SHIFT_OPS = {op for op, symbol in _ALU_OPERATOR.items()
              if symbol in ("<<", ">>")}


# --------------------------------------------------------------------------
# Source generation.

def _const(value):
    return "(%d)" % value if value < 0 else "%d" % value


class _Path:
    """Mutable per-trace emission state: the statically known register
    facts on this path plus the path's statistics record.  Forked at
    every runtime conditional (each side owns its copies)."""

    __slots__ = ("value", "tag", "nottag", "dirty", "blocks", "takens",
                 "seen")

    def __init__(self, value, tag, nottag, dirty, blocks, takens, seen):
        self.value = value      # reg -> untagged value: int | temp
        #                         name | offset expr ("v0 + 3")
        self.tag = tag          # reg -> tag *bits* (tag << 1, the
        #                         word's low nibble): int | temp name
        self.nottag = nottag    # reg -> set of tag bits excluded by
        #                         earlier not-taken/taken tag branches
        self.dirty = dirty      # regs whose machine word is *stale*:
        #                         value+tag facts are authoritative and
        #                         the pack is sunk to the first word
        #                         read or the end of the path
        self.blocks = blocks    # dense block ids crossed, in order
        self.takens = takens    # dense ids of conditionals exited taken
        self.seen = seen        # block index -> visits (cycle cut)

    def fork(self):
        return _Path(dict(self.value), dict(self.tag),
                     {reg: set(excluded)
                      for reg, excluded in self.nottag.items()},
                     set(self.dirty),
                     list(self.blocks), list(self.takens),
                     dict(self.seen))

    def write(self, reg, value=None, tag=None):
        """Register *reg*'s word was assigned: retire or replace its
        facts (a written word is by definition not stale)."""
        if value is None:
            self.value.pop(reg, None)
        else:
            self.value[reg] = value
        if tag is None:
            self.tag.pop(reg, None)
        else:
            self.tag[reg] = tag
        self.nottag.pop(reg, None)
        self.dirty.discard(reg)

    def exclude_tag(self, reg, bits):
        """This path learned ``tagbits(reg) != bits``.  Seven
        exclusions pin the eighth tag exactly."""
        excluded = self.nottag.setdefault(reg, set())
        excluded.add(bits)
        if len(excluded) == 7:
            self.tag[reg] = next(b for b in range(0, 16, 2)
                                 if b not in excluded)


class _ArmCompiler:
    """Emits the dispatch-arm bodies of the generated function."""

    def __init__(self, code, spans, dense_of, index_of, fire=False,
                 profile=None):
        self.code = code
        self.n = len(code)
        self.spans = spans
        self.dense_of = dense_of    # block index -> dense dispatch id
        self.index_of = index_of    # start pc -> block index
        self.fire = fire
        self.profile = profile      # (counts, taken, heads) prior run
        self.cap = _ARM_CAP if profile is None else _HOT_CAP
        self.paths = []             # path id -> (blocks, takens)
        # blocks ending in halt are never inlined into another arm:
        # halting happens once per run, dispatching to it is free
        self.halts = {index for index, (_s, end) in enumerate(spans)
                      if code[end - 1][0] == _HALT}

    # -- per-path value/tag bookkeeping ---------------------------------
    #
    # A cache entry is either a compile-time int (the fact itself) or
    # the name of a temp local currently holding the fact.  Before a
    # temp is *reassigned* (its register changed value), every other
    # entry aliasing that name must be retired — the old binding is
    # still correct until exactly that point.

    def _flush_reg(self, reg, path, depth, body):
        """Materialise a sunk register word from its recorded facts."""
        if reg not in path.dirty:
            return
        value, bits = path.value[reg], path.tag[reg]
        body.append((depth, self._pack(reg, self._expr(value), bits)))
        path.dirty.discard(reg)

    def _flush_all(self, path, depth, body):
        for reg in sorted(path.dirty):
            value, bits = path.value[reg], path.tag[reg]
            body.append((depth,
                         self._pack(reg, self._expr(value), bits)))
        path.dirty.clear()

    def _retire(self, name, path, depth, body):
        prefix = name + " "
        for cache in (path.value, path.tag):
            stale = [reg for reg, held in cache.items()
                     if held == name or (isinstance(held, str)
                                         and held.startswith(prefix))]
            for reg in stale:
                # a dirty register's only record of its word is this
                # fact — materialise it before the fact goes stale
                # (the emission point is just before the reassignment)
                self._flush_reg(reg, path, depth, body)
                if reg in cache:
                    del cache[reg]

    @staticmethod
    def _expr(fact):
        if isinstance(fact, int):
            return _const(fact)
        return "(%s)" % fact if " " in fact else fact

    def _value_of(self, reg, path, depth, body):
        """``r<reg> >> 4`` as a known int or a cached temp name."""
        known = path.value.get(reg)
        if known is not None:
            return known
        name = "v%d" % reg
        self._retire(name, path, depth, body)
        body.append((depth, "%s = r%d >> 4" % (name, reg)))
        path.value[reg] = name
        return name

    def _tag_of(self, reg, path, depth, body):
        """Tag *bits* of ``r<reg>`` (``tag << 1``) as a known int or a
        cached temp — one mask instead of shift-and-mask."""
        known = path.tag.get(reg)
        if known is not None:
            return known
        name = "g%d" % reg
        self._retire(name, path, depth, body)
        body.append((depth, "%s = r%d & 14" % (name, reg)))
        path.tag[reg] = name
        return name

    def _pack(self, rd, expr, bits):
        """``r<rd> = (expr << 4) | bits`` — the ``| 0`` of a reference
        tag (the most common built word) elides."""
        if bits:
            return "r%d = (%s << 4) | %d" % (rd, expr, bits)
        return "r%d = %s << 4" % (rd, expr)

    @staticmethod
    def _offset(expr, offset):
        """Fold a constant offset into a value expression (offset
        expressions are always of the shape ``name ± k``)."""
        parts = expr.split(" ")
        if len(parts) == 3:
            expr = parts[0]
            offset += int(parts[2]) if parts[1] == "+" \
                else -int(parts[2])
        if not offset:
            return expr
        if offset > 0:
            return "%s + %d" % (expr, offset)
        return "%s - %d" % (expr, -offset)

    def _address(self, reg, offset, path, depth, body):
        """``(r<reg> >> 4) + offset`` as ``(expression, known_int)``."""
        base = self._value_of(reg, path, depth, body)
        if isinstance(base, int):
            return _const(base + offset), base + offset
        return self._offset(base, offset), None

    # -- arm emission ---------------------------------------------------

    def emit_arm(self, entry_index):
        """One dispatch arm as (depth, text) lines, depth-relative to
        the arm's base.  Control transfers back to the entry block
        render as a loop ``continue``; every other exit ends the
        current path (one counter bump) and either dispatches or
        returns."""
        self.arm_entry = entry_index
        self.arm_nodes = 0
        self.has_loop = False
        body = []
        path = _Path({}, {}, {}, set(), [], [], {entry_index: 1})
        if self.fire:
            budget = 0
        elif self.profile is not None:
            # profile-guided retrace (tier 2): arms the first run never
            # entered stay minimal, hot arms inline deeper — the saved
            # code growth pays for the raised depth
            start = self.spans[entry_index][0]
            budget = _HOT_DEPTH if self.profile[0][start] else 0
        else:
            budget = _MAIN_DEPTH
        self._emit_block(entry_index, 0, path, budget, body)
        return body, self.has_loop

    def _end_path(self, path, depth, body):
        """Close the running trace: materialise every sunk register
        word, allocate the path id and bump it."""
        self._flush_all(path, depth, body)
        k = len(self.paths)
        self.paths.append((tuple(path.blocks), tuple(path.takens)))
        body.append((depth, "P[%d] += 1" % k))
        return k

    def _emit_block(self, index, depth, path, budget, body):
        code = self.code
        start, end = self.spans[index]
        self.arm_nodes += 1
        path.blocks.append(self.dense_of[index])
        if self.fire:
            body.append((depth, "FIRE()"))
        for position in range(start, end):
            ins = code[position]
            if ins[0] in _TERMINATORS:
                self._emit_terminator(index, position, ins, end, depth,
                                      path, budget, body)
                return
            self._emit_straightline(ins, depth, path, body)
        # fall-through into the next block, or off the end of the code
        # (which only the reference loop faults on exactly)
        if end < self.n:
            self._transfer(end, depth, path, budget, body)
        else:
            body.append((depth, "raise Bail"))

    def _transfer(self, pc, depth, path, budget, body):
        """Control moves to the block starting at *pc*: loop, inline or
        dispatch."""
        index = self.index_of[pc]
        if index == self.arm_entry:
            self.has_loop = True
            self._end_path(path, depth, body)
            body.append((depth, _LOOP))
            return
        # cycles cut after _REVISIT passes: Prolog's hot loops (argument
        # walks, short list spins) mostly trip once or twice, so a
        # profiled trace unrolls them inline instead of paying a
        # trampoline round every entry; tier 1 stays at one pass
        revisits = _REVISIT if self.profile is not None else 1
        if budget > 0 and self.arm_nodes < self.cap \
                and path.seen.get(index, 0) < revisits \
                and index not in self.halts:
            path.seen[index] = path.seen.get(index, 0) + 1
            self._emit_block(index, depth, path, budget - 1, body)
            return
        body.append((depth, "block = %d" % self.dense_of[index]))
        self._end_path(path, depth, body)
        body.append((depth, _EXIT))

    def _emit_straightline(self, ins, depth, path, body):
        op = ins[0]
        if op == _LD:
            address, _known = self._address(ins[2], ins[3], path,
                                            depth, body)
            body.append((depth, "r%d = mem[%s]" % (ins[1], address)))
            path.write(ins[1])
        elif op == _ST:
            self._flush_reg(ins[1], path, depth, body)
            address, _known = self._address(ins[2], ins[3], path,
                                            depth, body)
            body.append((depth, "mem[%s] = r%d" % (address, ins[1])))
        elif op == _MOV:
            if ins[2] in path.dirty:
                # the source word is sunk: copy the facts, not the word
                path.write(ins[1], path.value[ins[2]],
                           path.tag[ins[2]])
                path.dirty.add(ins[1])
            else:
                body.append((depth, "r%d = r%d" % (ins[1], ins[2])))
                path.write(ins[1], path.value.get(ins[2]),
                           path.tag.get(ins[2]))
                if ins[2] in path.nottag:
                    path.nottag[ins[1]] = set(path.nottag[ins[2]])
        elif op == _LDI:
            body.append((depth, "r%d = %s" % (ins[1], _const(ins[2]))))
            path.write(ins[1], ins[2] >> 4, ins[2] & 14)
        elif op == _LEA:
            expr, known = self._address(ins[2], ins[3], path, depth,
                                        body)
            bits = ins[4] << 1
            if known is not None:
                body.append((depth, "r%d = %s"
                             % (ins[1], _const((known << 4) | bits))))
                path.write(ins[1], known, bits)
                return
            # no code at all: the new word is a pure fact, sunk until
            # something reads it (heap/stack-top bumps collapse into
            # constant offsets in later addresses and a single pack)
            path.write(ins[1], expr, bits)
            path.dirty.add(ins[1])
        elif op == _MKTAG:
            value = path.value.get(ins[2])
            if value is not None and ins[2] not in path.dirty:
                # the value field is known: build the word lazily too
                path.write(ins[1], value, ins[3] << 1)
                path.dirty.add(ins[1])
            elif ins[2] in path.dirty:
                path.write(ins[1], path.value[ins[2]], ins[3] << 1)
                path.dirty.add(ins[1])
            else:
                body.append((depth, "r%d = (r%d & -15) | %d"
                             % (ins[1], ins[2], ins[3] << 1)))
                # retagging preserves the value field
                path.write(ins[1], None, ins[3] << 1)
        elif op == _GETTAG:
            known = path.tag.get(ins[2])
            if isinstance(known, int):
                body.append((depth, "r%d = %d"
                             % (ins[1],
                                ((known >> 1) << 4) | _INT_BITS)))
                path.write(ins[1], known >> 1, _INT_BITS)
            else:
                bits = self._tag_of(ins[2], path, depth, body)
                body.append((depth, "r%d = (%s << 3) | %d"
                             % (ins[1], bits, _INT_BITS)))
                path.write(ins[1], None, _INT_BITS)
        elif op in _ALU_OPERATOR:
            self._emit_alu(ins, depth, path, body)
        elif op in (_DIV, _MOD):
            left = self._expr(self._value_of(ins[2], path, depth, body))
            right = self._expr(self._value_of(ins[3], path, depth,
                                              body))
            body.append((depth, "va = %s" % left))
            body.append((depth, "vb = %s" % right))
            body.append((depth, "vq = abs(va) // abs(vb)"))
            body.append((depth, "if (va < 0) != (vb < 0):"))
            body.append((depth + 1, "vq = -vq"))
            name = "v%d" % ins[1]
            self._retire(name, path, depth, body)
            if op == _DIV:
                body.append((depth, "%s = vq" % name))
            else:
                body.append((depth, "%s = va - vq * vb" % name))
            body.append((depth, "r%d = (%s << 4) | %d"
                         % (ins[1], name, _INT_BITS)))
            path.write(ins[1], name, _INT_BITS)
        elif op == _ESC:
            if ins[1] == "write" and ins[2] is not None:
                self._flush_reg(ins[2], path, depth, body)
                body.append((depth, "out_append(W(r%d))" % ins[2]))
            elif ins[1] == "nl":
                body.append((depth, 'out_append("\\n")'))
            else:
                body.append((depth, "raise Bail"))
        else:  # pragma: no cover - decode() admits no other opcode
            raise AssertionError("unreachable opcode %d" % op)

    def _emit_alu(self, ins, depth, path, body):
        """Integer ALU ops: constant-fold when both operand values are
        known; emit add/sub directly on tagged words when both operand
        tag bits are known (``(va+vb)<<4 | 4 == wa + wb + 4-ba-bb``, so
        one expression replaces shift/shift/op/pack); classic
        shift-and-pack otherwise."""
        op, rd = ins[0], ins[1]
        va = path.value.get(ins[2])
        vb = path.value.get(ins[3])
        if isinstance(va, int) and isinstance(vb, int) \
                and (op not in _SHIFT_OPS or 0 <= vb <= 64):
            folded = _ALU_FUNC[op](va, vb)
            body.append((depth, "r%d = %s"
                         % (rd, _const((folded << 4) | _INT_BITS))))
            path.write(rd, folded, _INT_BITS)
            return
        if op in _WORD_ALU_SIGN and ins[2] not in path.dirty \
                and ins[3] not in path.dirty:
            ba = va if isinstance(va, int) else path.tag.get(ins[2])
            bb = vb if isinstance(vb, int) else path.tag.get(ins[3])
            if isinstance(ba, int) and isinstance(bb, int):
                sign = _WORD_ALU_SIGN[op]
                constant = _INT_BITS
                terms = []
                if isinstance(va, int):
                    constant += va << 4
                else:
                    terms.append("r%d" % ins[2])
                    constant -= ba
                if isinstance(vb, int):
                    constant += sign * (vb << 4)
                else:
                    terms.append("%sr%d" % ("- " if sign < 0 else "+ ",
                                            ins[3]))
                    constant -= sign * bb
                expr = " ".join(terms).lstrip("+ ")
                if constant > 0:
                    expr += " + %d" % constant
                elif constant < 0:
                    expr += " - %d" % -constant
                body.append((depth, "r%d = %s" % (rd, expr)))
                path.write(rd, None, _INT_BITS)
                return
        left = self._expr(self._value_of(ins[2], path, depth, body))
        right = self._expr(self._value_of(ins[3], path, depth, body))
        name = "v%d" % rd
        self._retire(name, path, depth, body)
        body.append((depth, "%s = %s %s %s"
                     % (name, left, _ALU_OPERATOR[op], right)))
        body.append((depth, "r%d = (%s << 4) | %d"
                     % (rd, name, _INT_BITS)))
        path.write(rd, name, _INT_BITS)

    def _emit_terminator(self, index, position, ins, end, depth, path,
                         budget, body):
        op = ins[0]
        if op == _JMP:
            self._transfer(ins[1], depth, path, budget, body)
            return
        if op == _CALL:
            link = ((position + 1) << 4) | _TCOD_BITS
            body.append((depth, "r%d = %d" % (ins[1], link)))
            path.write(ins[1], position + 1, _TCOD_BITS)
            self._transfer(ins[2], depth, path, budget, body)
            return
        if op == _JMPR:
            # return through a link register whose value this path just
            # stored: resolve the indirect jump statically
            known = path.value.get(ins[1])
            if isinstance(known, int) and known in self.index_of:
                self._transfer(known, depth, path, budget, body)
                return
            value = self._expr(self._value_of(ins[1], path, depth,
                                              body))
            body.append((depth, "block = J[%s]" % value))
            self._end_path(path, depth, body)
            body.append((depth, _EXIT))
            return
        if op == _HALT:
            # the run is over: close the path and return the halt code
            # (the path counters live in the caller's array; the exact
            # step-limit check happens during replay, where the caller
            # computes the true step count anyway)
            self._end_path(path, depth, body)
            body.append((depth, "return %d" % ins[1]))
            return
        # -- conditional branches ---------------------------------------
        test = self._branch_test(ins, path, depth, body)
        if test is True or test is False:
            # statically decided (tag known after lea/mktag/ldi):
            # no runtime branch at all, the path record absorbs it
            if test:
                path.takens.append(self.dense_of[index])
                self._transfer(ins[3], depth, path, budget, body)
            elif end < self.n:
                self._transfer(end, depth, path, budget, body)
            else:
                body.append((depth, "raise Bail"))
            return
        # runtime branch: inline deeper along the likely side.  With a
        # profile (tier 2) "likely" is the observed majority side and a
        # side never taken on the profiling run is not inlined at all;
        # without one it is the paper's static heuristic
        # (backward-taken / forward-not-taken).
        executed = taken_count = 0
        if self.profile is not None:
            executed = self.profile[0][position]
            taken_count = self.profile[1][position]
        if executed:
            taken_primary = 2 * taken_count >= executed
        else:
            taken_primary = ins[3] <= position
        taken_budget = budget - 1 if taken_primary \
            else min(budget - 1, _SIDE_DEPTH)
        fall_budget = budget - 1 if not taken_primary \
            else min(budget - 1, _SIDE_DEPTH)
        if executed:
            # observed weights refine the static classification: a side
            # carrying a real share of executions inlines at full
            # depth even as the minority (search code branches both
            # ways hot), a side never taken is not inlined at all
            if 4 * taken_count >= executed:
                taken_budget = budget - 1
            elif not taken_count:
                taken_budget = 0
            if 4 * (executed - taken_count) >= executed:
                fall_budget = budget - 1
            elif taken_count == executed:
                fall_budget = 0
        body.append((depth, "if %s:" % test))
        taken = path.fork()
        taken.takens.append(self.dense_of[index])
        # each side of a tag test narrows what it knows about the tag,
        # so later tests in a switch-on-tag chain fold away
        if op == _BTAG:
            taken.tag[ins[1]] = ins[2] << 1
            path.exclude_tag(ins[1], ins[2] << 1)
        elif op == _BNTAG:
            taken.exclude_tag(ins[1], ins[2] << 1)
            path.tag[ins[1]] = ins[2] << 1
        self._transfer(ins[3], depth + 1, taken, taken_budget, body)
        if end < self.n:
            self._transfer(end, depth, path, fall_budget, body)
        else:
            body.append((depth, "raise Bail"))

    def _compare_operand(self, reg, path, depth, body):
        """An expression whose value is ``value(r<reg>) << 4`` — the
        scale cancels in comparisons, so a register with known tag bits
        compares at word level without any shift."""
        known = path.value.get(reg)
        if isinstance(known, int):
            return _const(known << 4)
        bits = path.tag.get(reg)
        if isinstance(bits, int) and known is None:
            return "r%d - %d" % (reg, bits) if bits else "r%d" % reg
        value = self._value_of(reg, path, depth, body)
        return "(%s << 4)" % value if isinstance(value, str) \
            else _const(value << 4)

    def _branch_test(self, ins, path, depth, body):
        """The branch condition as a Python expression — or True/False
        when it folds at compile time."""
        op = ins[0]
        if op in (_BTAG, _BNTAG):
            bits = ins[2] << 1
            known = path.tag.get(ins[1])
            if isinstance(known, int):
                return (known == bits) if op == _BTAG \
                    else (known != bits)
            if bits in path.nottag.get(ins[1], ()):
                return op == _BNTAG
            # tests rarely re-read the raw extract (the branch sides
            # learn the tag as a fact), so fusing the mask into the
            # compare beats materialising a temp first
            tag = known if isinstance(known, str) \
                else "(r%d & 14)" % ins[1]
            return "%s %s %d" % (tag, "==" if op == _BTAG else "!=",
                                 bits)
        if op in (_BEQ, _BNE):
            self._flush_reg(ins[1], path, depth, body)
            self._flush_reg(ins[2], path, depth, body)
            return "r%d %s r%d" % (ins[1], _CMP_OPERATOR[op], ins[2])
        left = self._compare_operand(ins[1], path, depth, body)
        right = self._compare_operand(ins[2], path, depth, body)
        return "%s %s %s" % (left, _CMP_OPERATOR[op], right)


def _render_arm(lines, body, has_loop, depth):
    """Render an arm's (relative_depth, text) body at *depth*.  A
    looping arm wraps in a bounded ``for`` over SPIN (``range(limit +
    1)`` — every iteration executes at least one step, so exhausting
    it proves the step limit is blown and the ``else`` clause bails
    honestly); transfers render as ``break``/``continue``."""
    if has_loop:
        lines.append("    " * depth + "for _ in SPIN:")
        inner = depth + 1
        exit_token, loop_token = "break", "continue"
    else:
        inner = depth
        exit_token, loop_token = "continue", None
    for relative, text in body:
        if text is _EXIT:
            text = exit_token
        elif text is _LOOP:
            text = loop_token
        lines.append("    " * (inner + relative) + text)
    if has_loop:
        lines.append("    " * depth + "else:")
        lines.append("    " * (depth + 1) + "raise Bail")
        # the only other way out of the arm loop is `break`: hand the
        # new block id back to the trampoline
        lines.append("    " * depth + "continue")


def generate_source(program, fire=False, profile=None):
    """The generated module source + dispatch metadata for *program*.

    Returns ``(source, blocks, jump, entry_dense, paths)`` where
    *blocks* is the dense-id-ordered list of ``(start, end, cond_pc)``
    triples, *jump* maps a pc to a dense block id (or -1),
    *entry_dense* is baked into the function as the initial dispatch
    id, and *paths* is the path table — per path id, the tuple of
    dense block ids it crosses and the dense ids of conditionals it
    exits taken (the post-run statistics replay).  With *fire* the
    ``emulator.codegen.block`` fault hook is compiled into every block
    prologue and inlining is disabled (chaos runs only — never
    cached).  With *profile* — ``(counts, taken)`` per-pc statistics
    from a prior run of the same program — tracing is profile-guided
    (tier 2): primary branch sides come from the observed majority,
    never-taken sides and never-entered arms are not inlined, and hot
    chains inline deeper, which turns hot cycles into real Python
    loops instead of dispatcher round-trips.
    """
    code, reg_index = decode(program)
    spans = basic_blocks(program)
    reachable = _reachable_indices(code, spans, program.entry_pc)
    if reachable is None:
        compiled = list(range(len(spans)))
    else:
        compiled = sorted(reachable)
    heads = None
    if profile is not None:
        # dense ids ordered by observed *dispatch* count (how often
        # the tier-1 trampoline actually entered each arm — inlined
        # entries never dispatch): the weighted dispatch tree splits
        # contiguous id ranges, so clustering the hot arms at low ids
        # puts them a couple of comparisons deep
        heads = profile[2] if len(profile) > 2 else {}
        compiled.sort(
            key=lambda index: (-heads.get(spans[index][0],
                                          profile[0][spans[index][0]]),
                               index))
    dense_of = {index: dense for dense, index in enumerate(compiled)}
    index_of = {start: index
                for index, (start, _end) in enumerate(spans)}
    blocks = []
    for index in compiled:
        start, end = spans[index]
        cond = end - 1 if code[end - 1][0] in _CONDITIONAL else -1
        blocks.append((start, end, cond))
    jump = [-1] * len(code)
    for dense, (start, _end, _cond) in enumerate(blocks):
        jump[start] = dense
    entry_dense = dense_of[index_of[program.entry_pc]]

    lines = ["def _run(regs, mem, out_append, W, P, L, limit, J, "
             "Bail, FIRE=None):"]
    for reg in range(len(reg_index)):
        lines.append("    r%d = regs[%d]" % (reg, reg))
    lines.append("    block = %d" % entry_dense)
    # every trampoline iteration (and every arm-loop iteration)
    # executes at least one instruction, so range(limit + 1) bounds
    # both: exhaustion proves the step limit is blown, and the exact
    # zip-sum check at every halt catches runs that finish past it
    lines.append("    SPIN = range(limit + 1)")
    lines.append("    for _ in SPIN:")
    compiler = _ArmCompiler(code, spans, dense_of, index_of, fire=fire,
                            profile=profile)

    # cumulative dispatch weights: without a profile the tree is
    # balanced (uniform weights); with one it splits at the weighted
    # median, so the hottest arms sit a couple of comparisons deep
    # while cold arms absorb the longer compare chains
    if profile is None:
        prefix = list(range(len(blocks) + 1))
    else:
        prefix = [0]
        for start, _end, _cond in blocks:
            weight = heads.get(start, profile[0][start])
            prefix.append(prefix[-1] + weight + 1)

    def emit_dispatch(lo, hi, depth):
        # a comparison tree over dense ids [lo, hi); an id matching no
        # leaf (the J table's -1 sentinel, a pruned block) falls out of
        # the tree to the trampoline's final `raise Bail`
        if lo + 1 == hi:
            lines.append("    " * depth + "if block == %d:" % lo)
            body, has_loop = compiler.emit_arm(compiled[lo])
            _render_arm(lines, body, has_loop, depth + 1)
            return
        half = (prefix[lo] + prefix[hi]) / 2.0
        mid = lo + 1
        while mid < hi - 1 and prefix[mid] < half:
            mid += 1
        lines.append("    " * depth + "if block < %d:" % mid)
        emit_dispatch(lo, mid, depth + 1)
        lines.append("    " * depth + "else:")
        emit_dispatch(mid, hi, depth + 1)

    emit_dispatch(0, len(blocks), 2)
    lines.append("        raise Bail")
    lines.append("    raise Bail")
    return ("\n".join(lines) + "\n", blocks, jump, entry_dense,
            compiler.paths)


# --------------------------------------------------------------------------
# Compilation + the content-addressed artefact cache.

class _CodegenCode:
    """One program's compiled codegen backend (memoised on the Program)."""

    __slots__ = ("run", "blocks", "jump", "entry", "n", "paths",
                 "lengths", "source", "fire", "from_cache", "tier",
                 "template", "pcs")

    def __init__(self, run, blocks, jump, entry, n, paths, source,
                 fire, from_cache, tier=1):
        self.run = run          # the generated _run function
        self.blocks = blocks    # per dense id: (start, end, cond_pc)
        self.jump = jump        # pc -> dense id (or -1): jmpr table
        self.entry = entry      # initial dispatch id (baked in _run)
        self.n = n              # program length in instructions
        self.paths = paths      # path id -> (dense blocks, dense takens)
        self.source = source    # generated Python (for debugging)
        self.fire = fire        # compiled with the fault hook armed
        self.from_cache = from_cache
        self.tier = tier        # 1 = static heuristics, 2 = profiled
        # written-address template from the first clean run: rerunning
        # the same deterministic program can pre-size its memory dict
        # (None marks cells the run writes before it ever reads them)
        self.template = None
        # lazily flattened (pcs, taken_pcs) per path, for the replay
        self.pcs = [None] * len(paths)
        self.lengths = tuple(
            sum(blocks[dense][1] - blocks[dense][0]
                for dense in path_blocks)
            for path_blocks, _takens in paths)


def _environment_key():
    """The Python ABI the persisted bytecode is only valid under."""
    return "%s-%d.%d-m%d" % (sys.implementation.name,
                             sys.version_info[0], sys.version_info[1],
                             marshal.version)


def _artifact_path(fingerprint):
    from repro.benchmarks.suite import cache_dir
    from repro.evaluation.parallel import code_version
    digest = hashlib.sha256(json.dumps({
        "schema": CODEGEN_SCHEMA,
        "fingerprint": fingerprint,
        "codegen": code_version("codegen"),
        "environment": _environment_key(),
    }, sort_keys=True).encode()).hexdigest()[:24]
    return os.path.join(cache_dir(), "codegen-%s.json" % digest)


def _load_artifact(path, fingerprint):
    """The cached ``_CodegenCode`` at *path*, or None (miss/corrupt)."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
        if (payload.get("schema") != CODEGEN_SCHEMA
                or payload.get("fingerprint") != fingerprint
                or payload.get("environment") != _environment_key()):
            return None
        module = marshal.loads(base64.b64decode(payload["code"]))
        namespace = {}
        exec(module, namespace)
        return _CodegenCode(
            namespace["_run"],
            [tuple(block) for block in payload["blocks"]],
            payload["jump"], payload["entry"], payload["n"],
            [(tuple(path_blocks), tuple(takens))
             for path_blocks, takens in payload["paths"]],
            payload["source"], fire=False, from_cache=True,
            tier=payload.get("tier", 1))
    except FileNotFoundError:
        return None
    except Exception:
        # torn/stale/corrupt artefact (or bytecode from a foreign ABI
        # despite the key): recompile from source
        return None


def _store_artifact(path, fingerprint, source, module, compiled):
    from repro.atomicio import FileLock, atomic_write_json
    payload = {
        "schema": CODEGEN_SCHEMA,
        "fingerprint": fingerprint,
        "environment": _environment_key(),
        "entry": compiled.entry,
        "n": compiled.n,
        "tier": compiled.tier,
        "blocks": [list(block) for block in compiled.blocks],
        "jump": compiled.jump,
        "paths": [[list(path_blocks), list(takens)]
                  for path_blocks, takens in compiled.paths],
        "source": source,
        "code": base64.b64encode(marshal.dumps(module)).decode("ascii"),
    }
    with FileLock(os.path.join(os.path.dirname(path), ".lock")):
        atomic_write_json(path, payload)


#: sentinel memoising "the generator declined" on the Program
_DECLINED = object()


def codegen_code(program, persist=True):
    """Compile *program* for the codegen backend, or None when the
    generator declines (the threaded backend then runs instead).

    Memoised on the Program and backed by the content-addressed
    artefact cache; *persist* gates the cache *write* (reads always
    happen), so one-shot fuzz programs do not litter the store.  A
    compile under an armed ``emulator.codegen.block`` fault is neither
    memoised nor persisted — the hook must not leak into clean runs.
    """
    from repro.observability import tracing as observe
    fire = faults.armed(FAULT_SITE)
    cached = getattr(program, "_codegen", None)
    if cached is not None and not fire:
        return cached if cached is not _DECLINED else None
    with observe.span("codegen.compile") as span:
        compiled = _compile(program, persist, fire, span)
    if not fire:
        program._codegen = compiled if compiled is not None \
            else _DECLINED
    return compiled


def _compile(program, persist, fire, span, profile=None):
    from repro.benchmarks.suite import program_fingerprint
    from repro.observability import tracing as observe
    tier = 1 if profile is None else 2
    fingerprint = program_fingerprint(program)
    span.set(fingerprint=fingerprint, fire=fire, tier=tier)
    path = None
    if not fire:
        try:
            path = _artifact_path(fingerprint)
        except OSError:
            path = None      # unwritable cache dir: compile in-process
        if path is not None and profile is None:
            compiled = _load_artifact(path, fingerprint)
            if compiled is not None:
                observe.add("codegen.cache.hits")
                span.set(cached=True, blocks=len(compiled.blocks),
                         tier=compiled.tier)
                return compiled
            observe.add("codegen.cache.misses")
    try:
        source, blocks, jump, entry, paths = generate_source(
            program, fire=fire, profile=profile)
        module = compile(source, "<codegen:%s>" % program.entry, "exec")
        namespace = {}
        exec(module, namespace)
    except (SyntaxError, RecursionError, MemoryError, ValueError):
        # a program shape the generator cannot express (e.g. dispatch
        # nesting past the parser limit): decline, run threaded
        observe.add("emulator.codegen.compile_declined")
        span.set(declined=True)
        return None
    compiled = _CodegenCode(namespace["_run"], blocks, jump, entry,
                            len(decode(program)[0]), paths, source,
                            fire=fire, from_cache=False, tier=tier)
    span.set(cached=False, blocks=len(blocks))
    if persist and not fire and path is not None:
        try:
            _store_artifact(path, fingerprint, source, module, compiled)
            observe.add("codegen.cache.writes")
        except OSError:
            pass             # cache write failure never fails the run
    return compiled


def _recompile_tier2(program, result, persist, heads=None):
    """Profile-guided recompilation after the first clean run.

    The replayed per-pc statistics of *result* (bit-identical to the
    reference loop's, so tier selection can never change observable
    behaviour) seed a retrace with real branch weights; the optimised
    code replaces the tier-1 memo and — when persisting — overwrites
    the cache artefact, so the *next* evaluation of this program loads
    the profiled build directly.  Returns None when the generator
    declines (the tier-1 code simply stays in place).
    """
    from repro.observability import tracing as observe
    profile = (result.counts, result.taken, heads or {})
    with observe.span("codegen.compile") as span:
        compiled = _compile(program, persist, False, span,
                            profile=profile)
    if compiled is not None:
        observe.add("codegen.tier2.compiles")
        program._codegen = compiled
    return compiled


# --------------------------------------------------------------------------
# Execution.

class CodegenEmulator:
    """Drop-in twin of :class:`~repro.emulator.machine.Emulator` running
    the compiled-function backend."""

    def __init__(self, program, max_steps=500_000_000, persist=True):
        self.program = program
        self.max_steps = max_steps
        self.persist = persist
        self.code, self.reg_index = decode(program)
        self.compiled = codegen_code(program, persist=persist)

    def _fallback(self):
        """Re-run on the reference loop (deterministic programs: exact
        same result, or the exact same fault with its precise pc)."""
        from repro.observability import tracing as observe
        observe.add("emulator.codegen.fallbacks")
        return Emulator(self.program, max_steps=self.max_steps).run()

    def run(self):
        compiled = self.compiled
        if compiled is None:
            from repro.emulator.threaded import ThreadedEmulator
            return ThreadedEmulator(self.program,
                                    max_steps=self.max_steps).run()
        program = self.program
        regs = initial_registers(program, self.reg_index)
        # a prior clean run of this compiled code leaves the exact set
        # of addresses the (deterministic) program touches: pre-sizing
        # the memory dict makes every store an in-place update instead
        # of a growing insert.  Cells the run writes before reading
        # hold None, which no deterministic re-run can observe — any
        # impossible read raises and falls back honestly.
        if compiled.template is not None:
            mem = dict(compiled.template)
        else:
            mem = initial_memory(program)
        P = [0] * len(compiled.paths)
        out = []
        symbols = program.symbols

        def write_term(word):
            return render_term(mem, symbols, word)

        hook = _fire_hook if compiled.fire else None
        try:
            status = compiled.run(regs, mem, out.append, write_term,
                                  P, compiled.lengths, self.max_steps,
                                  compiled.jump, _Bailout, hook)
        except (_Bailout, KeyError, ZeroDivisionError, IndexError,
                TypeError):
            return self._fallback()

        # replay: expand path counts into the per-pc statistics (each
        # path's block and taken-edge lists are static; the flattened
        # pc lists are memoised on the compiled code)
        blocks = compiled.blocks
        pcs = compiled.pcs
        steps = 0
        counts = [0] * compiled.n
        taken = [0] * compiled.n
        for k, count in enumerate(P):
            if not count:
                continue
            flat = pcs[k]
            if flat is None:
                path_blocks, takens = compiled.paths[k]
                flat = pcs[k] = (
                    tuple(pc for dense in path_blocks
                          for pc in range(*blocks[dense][:2])),
                    tuple(blocks[dense][2] for dense in takens))
            path_pcs, taken_pcs = flat
            steps += count * len(path_pcs)
            for pc in path_pcs:
                counts[pc] += count
            for pc in taken_pcs:
                taken[pc] += count
        if steps > self.max_steps:
            # ran to completion but past the limit: the reference loop
            # would have faulted mid-run, so reproduce that exactly
            return self._fallback()
        result = EmulationResult(program, status, steps, "".join(out),
                                 counts, taken, backend="codegen")
        if not compiled.fire:
            if compiled.template is None:
                template = initial_memory(program)
                for address in mem:
                    if address not in template:
                        template[address] = None
                compiled.template = template
            if compiled.tier == 1 and steps >= _TIER2_STEPS:
                # trampoline pressure per arm: how often each path
                # *head* actually dispatched (inlined entries never
                # do) — this, not the raw entry count, is what the
                # tier-2 dispatch tree should weight
                heads = {}
                for k, count in enumerate(P):
                    if count:
                        start = blocks[compiled.paths[k][0][0]][0]
                        heads[start] = heads.get(start, 0) + count
                upgraded = _recompile_tier2(program, result,
                                            self.persist, heads)
                if upgraded is not None:
                    upgraded.template = compiled.template
                    self.compiled = upgraded
        return result


def _fire_hook():
    """The compiled-in fault site: ``bail`` forces the exact-fallback
    path from inside a compiled block; ``error`` raises InjectedFault
    (enacted by :func:`faults.fire` itself)."""
    if faults.fire(FAULT_SITE) == "bail":
        raise _Bailout
