"""Sequential ICI emulator (the *reference* backend).

Executes a compiled :class:`~repro.intcode.program.Program` against the
shared data memory, collecting the statistics the back-end needs: per-
instruction execution counts (the paper's *Expect*) and per-branch taken
counts (from which branch *Probability* follows).  It also captures program
output so compiled code can be validated against the reference interpreter.

The emulator is a straight interpreter loop over pre-decoded instruction
tuples; correctness and statistics, not speed, are its contract.  The
fast paths are the threaded-code backend in
:mod:`repro.emulator.threaded` (basic blocks as Python closures) and the
codegen backend in :mod:`repro.emulator.codegen` (the whole program
compiled to one Python function, registers as locals); both must stay
bit-identical to this loop — :func:`run_program` selects between the
three (``REPRO_EMULATOR_BACKEND``, default ``codegen``).
"""

import os
from array import array

from repro.terms import tags, Atom, Int, Var, Struct, term_to_string
from repro.intcode import layout

_BACKEND_ENV = "REPRO_EMULATOR_BACKEND"
BACKENDS = ("codegen", "threaded", "reference")


def resolve_backend(backend=None):
    """The effective emulator backend name for *backend* (or the env)."""
    name = backend or os.environ.get(_BACKEND_ENV) or BACKENDS[0]
    if name not in BACKENDS:
        raise ValueError("unknown emulator backend %r (expected one of "
                         "%s)" % (name, ", ".join(BACKENDS)))
    return name

# Pre-decoded opcode numbers, ordered roughly by expected frequency.
_LD, _ST, _BTAG, _BNTAG, _MOV, _LEA, _LDI, _BEQ, _BNE, _JMP, _CALL, \
    _JMPR, _ADD, _SUB, _MUL, _DIV, _MOD, _AND, _OR, _XOR, _SLL, _SRA, \
    _BLTV, _BLEV, _BGTV, _BGEV, _MKTAG, _GETTAG, _ESC, _HALT = range(30)

_OPCODE = {
    "ld": _LD, "st": _ST, "btag": _BTAG, "bntag": _BNTAG, "mov": _MOV,
    "lea": _LEA, "ldi": _LDI, "beq": _BEQ, "bne": _BNE, "jmp": _JMP,
    "call": _CALL, "jmpr": _JMPR, "add": _ADD, "sub": _SUB, "mul": _MUL,
    "div": _DIV, "mod": _MOD, "and": _AND, "or": _OR, "xor": _XOR,
    "sll": _SLL, "sra": _SRA, "bltv": _BLTV, "blev": _BLEV,
    "bgtv": _BGTV, "bgev": _BGEV, "mktag": _MKTAG, "gettag": _GETTAG,
    "esc": _ESC, "halt": _HALT,
}

_ALU_BINARY = {_ADD, _SUB, _MUL, _DIV, _MOD, _AND, _OR, _XOR, _SLL, _SRA}
_CMP_BRANCH = {_BEQ, _BNE, _BLTV, _BLEV, _BGTV, _BGEV}


class EmulatorError(Exception):
    """Raised on machine faults (bad address, step limit, ...)."""


class EmulationResult:
    """Outcome of one program run."""

    def __init__(self, program, status, steps, output, counts, taken,
                 backend="reference"):
        self.program = program
        self.status = status        # halt code: 0 success, 1 query failure
        self.steps = steps
        self.output = output        # program output text
        self.counts = counts        # per-pc execution counts
        self.taken = taken          # per-pc branch-taken counts
        self.backend = backend      # emulator backend that produced this

    @property
    def succeeded(self):
        return self.status == 0

    def branch_probability(self, pc):
        """Probability that the branch at *pc* was taken."""
        if self.counts[pc] == 0:
            return 0.0
        return self.taken[pc] / self.counts[pc]


def decode(program):
    """Pre-decode a program into dense tuples and a register map.

    The decode is memoised on the :class:`Program` object: every consumer
    (the reference loop, the threaded backend, the debug stepper and the
    dataflow limit in :mod:`repro.evaluation.dynamic`) shares one decode
    per program instead of re-walking the instruction list on each run.
    """
    cached = getattr(program, "_decoded", None)
    if cached is not None:
        return cached
    reg_index = {}

    def reg(name):
        if name is None:
            return None
        index = reg_index.get(name)
        if index is None:
            index = len(reg_index)
            reg_index[name] = index
        return index

    for name in layout.MACHINE_REGISTERS:
        reg(name)

    code = []
    labels = program.labels
    for instruction in program.instructions:
        op = _OPCODE[instruction.op]
        if op == _LD:
            code.append((op, reg(instruction.rd), reg(instruction.ra),
                         instruction.imm or 0))
        elif op == _ST:
            code.append((op, reg(instruction.ra), reg(instruction.rb),
                         instruction.imm or 0))
        elif op in _ALU_BINARY:
            code.append((op, reg(instruction.rd), reg(instruction.ra),
                         reg(instruction.rb)))
        elif op == _LEA:
            code.append((op, reg(instruction.rd), reg(instruction.ra),
                         instruction.imm or 0, instruction.tag))
        elif op == _MKTAG:
            code.append((op, reg(instruction.rd), reg(instruction.ra),
                         instruction.tag))
        elif op == _GETTAG:
            code.append((op, reg(instruction.rd), reg(instruction.ra)))
        elif op == _MOV:
            code.append((op, reg(instruction.rd), reg(instruction.ra)))
        elif op == _LDI:
            if instruction.label is not None:
                word = tags.pack(labels[instruction.label], tags.TCOD)
            else:
                word = instruction.imm
            code.append((op, reg(instruction.rd), word))
        elif op in (_BTAG, _BNTAG):
            code.append((op, reg(instruction.ra), instruction.tag,
                         labels[instruction.label]))
        elif op in _CMP_BRANCH:
            code.append((op, reg(instruction.ra), reg(instruction.rb),
                         labels[instruction.label]))
        elif op == _JMP:
            code.append((op, labels[instruction.label]))
        elif op == _CALL:
            code.append((op, reg(instruction.rd),
                         labels[instruction.label]))
        elif op == _JMPR:
            code.append((op, reg(instruction.ra)))
        elif op == _ESC:
            code.append((op, instruction.esc, reg(instruction.ra)))
        elif op == _HALT:
            code.append((op, instruction.imm or 0))
        else:
            raise EmulatorError("cannot decode %r" % (instruction,))
    program._decoded = (code, reg_index)
    return program._decoded


def initial_registers(program, reg_index):
    """The machine register file at program entry."""
    regs = [tags.pack(0, tags.TRAW)] * len(reg_index)
    for name, value in layout.MACHINE_REGISTERS.items():
        tag = tags.TCOD if name in ("CP", "RL") else tags.TRAW
        regs[reg_index[name]] = tags.pack(value, tag)
    return regs


def initial_memory(program):
    """The data memory at program entry (the functor-arity table)."""
    memory = {}
    symbols = program.symbols
    for index in range(symbols.functor_count):
        memory[layout.FTAB_BASE + index] = tags.pack(
            symbols.functor_arity(index), tags.TINT)
    return memory


class Emulator:
    """Runs an ICI program and gathers dynamic statistics."""

    def __init__(self, program, max_steps=500_000_000):
        self.program = program
        self.max_steps = max_steps
        self.code, self.reg_index = decode(program)

    def _initial_registers(self):
        return initial_registers(self.program, self.reg_index)

    def _initial_memory(self):
        return initial_memory(self.program)

    def run(self, collect_stats=True):
        code = self.code
        regs = self._initial_registers()
        mem = self._initial_memory()
        # Flat signed-64 buffers: one contiguous allocation for the whole
        # run instead of a Python list of boxed ints per program point.
        counts = array("q", bytes(8 * len(code)))
        taken = array("q", bytes(8 * len(code)))
        output = []
        symbols = self.program.symbols

        pc = self.program.entry_pc
        steps = 0
        limit = self.max_steps
        status = None

        try:
            while True:
                ins = code[pc]
                counts[pc] += 1
                steps += 1
                if steps > limit:
                    raise EmulatorError("step limit exceeded (%d)" % limit)
                op = ins[0]
                if op == _LD:
                    regs[ins[1]] = mem[(regs[ins[2]] >> 4) + ins[3]]
                elif op == _ST:
                    mem[(regs[ins[2]] >> 4) + ins[3]] = regs[ins[1]]
                elif op == _BTAG:
                    if ((regs[ins[1]] >> 1) & 7) == ins[2]:
                        taken[pc] += 1
                        pc = ins[3]
                        continue
                elif op == _BNTAG:
                    if ((regs[ins[1]] >> 1) & 7) != ins[2]:
                        taken[pc] += 1
                        pc = ins[3]
                        continue
                elif op == _MOV:
                    regs[ins[1]] = regs[ins[2]]
                elif op == _LEA:
                    regs[ins[1]] = (((regs[ins[2]] >> 4) + ins[3]) << 4) \
                        | (ins[4] << 1)
                elif op == _LDI:
                    regs[ins[1]] = ins[2]
                elif op == _BEQ:
                    if regs[ins[1]] == regs[ins[2]]:
                        taken[pc] += 1
                        pc = ins[3]
                        continue
                elif op == _BNE:
                    if regs[ins[1]] != regs[ins[2]]:
                        taken[pc] += 1
                        pc = ins[3]
                        continue
                elif op == _JMP:
                    pc = ins[1]
                    continue
                elif op == _CALL:
                    regs[ins[1]] = ((pc + 1) << 4) | (tags.TCOD << 1)
                    pc = ins[2]
                    continue
                elif op == _JMPR:
                    pc = regs[ins[1]] >> 4
                    continue
                elif op == _BLTV:
                    if (regs[ins[1]] >> 4) < (regs[ins[2]] >> 4):
                        taken[pc] += 1
                        pc = ins[3]
                        continue
                elif op == _BLEV:
                    if (regs[ins[1]] >> 4) <= (regs[ins[2]] >> 4):
                        taken[pc] += 1
                        pc = ins[3]
                        continue
                elif op == _BGTV:
                    if (regs[ins[1]] >> 4) > (regs[ins[2]] >> 4):
                        taken[pc] += 1
                        pc = ins[3]
                        continue
                elif op == _BGEV:
                    if (regs[ins[1]] >> 4) >= (regs[ins[2]] >> 4):
                        taken[pc] += 1
                        pc = ins[3]
                        continue
                elif op == _ADD:
                    regs[ins[1]] = (((regs[ins[2]] >> 4)
                                     + (regs[ins[3]] >> 4)) << 4) | 4
                elif op == _SUB:
                    regs[ins[1]] = (((regs[ins[2]] >> 4)
                                     - (regs[ins[3]] >> 4)) << 4) | 4
                elif op == _MUL:
                    regs[ins[1]] = (((regs[ins[2]] >> 4)
                                     * (regs[ins[3]] >> 4)) << 4) | 4
                elif op == _DIV:
                    a = regs[ins[2]] >> 4
                    b = regs[ins[3]] >> 4
                    q = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        q = -q
                    regs[ins[1]] = (q << 4) | 4
                elif op == _MOD:
                    a = regs[ins[2]] >> 4
                    b = regs[ins[3]] >> 4
                    q = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        q = -q
                    regs[ins[1]] = ((a - q * b) << 4) | 4
                elif op == _AND:
                    regs[ins[1]] = (((regs[ins[2]] >> 4)
                                     & (regs[ins[3]] >> 4)) << 4) | 4
                elif op == _OR:
                    regs[ins[1]] = (((regs[ins[2]] >> 4)
                                     | (regs[ins[3]] >> 4)) << 4) | 4
                elif op == _XOR:
                    regs[ins[1]] = (((regs[ins[2]] >> 4)
                                     ^ (regs[ins[3]] >> 4)) << 4) | 4
                elif op == _SLL:
                    regs[ins[1]] = (((regs[ins[2]] >> 4)
                                     << (regs[ins[3]] >> 4)) << 4) | 4
                elif op == _SRA:
                    regs[ins[1]] = (((regs[ins[2]] >> 4)
                                     >> (regs[ins[3]] >> 4)) << 4) | 4
                elif op == _MKTAG:
                    regs[ins[1]] = (regs[ins[2]] & ~0b1110) | (ins[3] << 1)
                elif op == _GETTAG:
                    regs[ins[1]] = (((regs[ins[2]] >> 1) & 7) << 4) | 4
                elif op == _ESC:
                    if ins[1] == "write":
                        output.append(render_term(mem, symbols,
                                                  regs[ins[2]]))
                    elif ins[1] == "nl":
                        output.append("\n")
                    else:
                        raise EmulatorError("unknown escape %r" % ins[1])
                elif op == _HALT:
                    status = ins[1]
                    break
                else:
                    raise EmulatorError("bad opcode %d" % op)
                pc += 1
        except KeyError as exc:
            raise EmulatorError(
                "uninitialised memory read at pc=%d (%r): address %s"
                % (pc, self.program.instructions[pc], exc)) from exc
        except ZeroDivisionError as exc:
            raise EmulatorError(
                "division by zero at pc=%d (%r)"
                % (pc, self.program.instructions[pc])) from exc

        # The public result keeps plain lists (JSON-friendly, comparable).
        return EmulationResult(self.program, status, steps,
                               "".join(output), list(counts), list(taken))


def render_term(mem, symbols, word, depth=0):
    """Reconstruct a source-level term from tagged memory and render it."""
    return term_to_string(_reify(mem, symbols, word, set()))


def _reify(mem, symbols, word, seen, depth=0):
    if depth > 10_000:
        raise EmulatorError("term too deep to render")
    tag = (word >> 1) & 7
    value = word >> 4
    if tag == tags.TREF:
        target = mem.get(value, word)
        if target == word:
            return Var("_A%d" % value)
        return _reify(mem, symbols, target, seen, depth + 1)
    if tag == tags.TATM:
        return Atom(symbols.atom_name(value))
    if tag == tags.TINT:
        return Int(value)
    if tag == tags.TLST:
        head = _reify(mem, symbols, mem[value], seen, depth + 1)
        tail = _reify(mem, symbols, mem[value + 1], seen, depth + 1)
        return Struct(".", [head, tail])
    if tag == tags.TSTR:
        functor = mem[value]
        name, arity = symbols.functor_key(functor >> 4)
        args = [_reify(mem, symbols, mem[value + 1 + i], seen, depth + 1)
                for i in range(arity)]
        return Struct(name, args)
    return Atom("<%s>" % tags.describe(word))


def run_program(program, max_steps=500_000_000, backend=None,
                persist_artifacts=False):
    """Emulate *program* on the selected backend and return the result.

    *backend* is ``"codegen"`` (the whole program compiled to one
    Python function, the default), ``"threaded"`` (compiled basic-block
    closures) or ``"reference"`` (the interpreter loop above); when
    None the ``REPRO_EMULATOR_BACKEND`` environment variable decides.
    All backends produce bit-identical :class:`EmulationResult` data;
    the compiled ones fall back on any construct they cannot compile.

    *persist_artifacts* lets the codegen backend publish its compiled
    artefact to the content-addressed cache (the profile cache and the
    bench harness opt in; one-shot runs default to consult-only).
    """
    from repro.testing import faults
    from repro.observability import tracing as observe
    if faults.armed("emulator.run") \
            and faults.fire("emulator.run") == "step-limit":
        raise EmulatorError("step limit exceeded (0) [injected at "
                            "emulator.run]")
    name = resolve_backend(backend)
    # run_program is the hottest instrumentation point (perf-bench
    # loops call it back to back), so it drives the tracer directly
    # instead of through the span context manager.
    tracer = observe.active()
    span = tracer.open("emulator.run", backend=name) if tracer else None
    try:
        if name == "reference":
            result = Emulator(program, max_steps=max_steps).run()
        elif name == "threaded":
            from repro.emulator.threaded import ThreadedEmulator
            result = ThreadedEmulator(program, max_steps=max_steps).run()
        else:
            from repro.emulator.codegen import CodegenEmulator
            result = CodegenEmulator(program, max_steps=max_steps,
                                     persist=persist_artifacts).run()
    except BaseException as error:
        if tracer is not None:
            tracer.close(span, error=error)
        raise
    if tracer is not None:
        # the threaded backend may have fallen back to the reference
        # loop; the span records the backend that actually produced
        # the result
        tracer.close(span.set(steps=result.steps, status=result.status,
                              backend=result.backend))
        tracer.metrics.add("emulator.runs")
        tracer.metrics.add("emulator.steps", result.steps)
    return result
