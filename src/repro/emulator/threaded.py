"""Threaded-code emulator backend.

The reference loop in :mod:`repro.emulator.machine` pays CPython's full
dispatch cost on every dynamic instruction: a tuple fetch, an opcode
comparison chain, and per-step statistics updates.  Following the classic
threaded-code recipe (Ertl & Gregg, *The Structure and Performance of
Efficient Interpreters*), this backend removes all three:

* **Direct-threaded dispatch.**  Each basic block of the pre-decoded
  program is compiled, once per program, into a Python closure.  A block
  closure executes its instructions as straight-line Python statements
  (operands and immediates baked in as constants) and *returns the next
  block's closure* — the dispatch loop is ``while fn is not None: fn =
  fn()``, with no per-instruction opcode switch anywhere.

* **Superinstruction fusion.**  The hot ICI pairs of the paper's
  instruction mix — a compare feeding its conditional branch, ``ld``
  feeding a ``btag``/``bntag`` tag test, and ``mov`` chains — are fused
  at compile time by forwarding a just-written register value through a
  Python local, so the consumer reads the local instead of re-indexing
  the register file.  Fused statements still store to the register file
  (later blocks may read it), so machine state stays exact.

* **Block-level statistics.**  Instead of per-step ``counts[pc] += 1``
  updates, a block increments one entry counter (and one taken counter
  per conditional exit).  Because every instruction of a basic block
  executes exactly as many times as the block is entered, a single
  post-run replay expands the block counters into the per-pc ``counts``
  and ``taken`` arrays — bit-identical to the reference loop's.

The backend is *semantics-complete or honest*: any construct it cannot
compile (an unknown escape, a fall-off-the-end block, an indirect jump
into the middle of a block) compiles to a bail-out, and any bail-out or
machine fault at run time falls back to one clean re-run on the
reference loop — programs are deterministic, so the reference re-run
reproduces the exact result or the exact fault.  ``EmulationResult``
equality between the two backends is enforced by the differential fuzz
suite (``tests/test_fuzz_equivalence.py``).
"""

from array import array

from repro.terms import tags
from repro.emulator.machine import (
    EmulationResult, Emulator, decode, initial_memory, initial_registers,
    render_term,
    _LD, _ST, _BTAG, _BNTAG, _MOV, _LEA, _LDI, _BEQ, _BNE, _JMP, _CALL,
    _JMPR, _ADD, _SUB, _MUL, _DIV, _MOD, _AND, _OR, _XOR, _SLL, _SRA,
    _BLTV, _BLEV, _BGTV, _BGEV, _MKTAG, _GETTAG, _ESC, _HALT)

__all__ = ["ThreadedEmulator", "threaded_code", "basic_blocks"]

#: control transfers that terminate a basic block
_TERMINATORS = frozenset([
    _BTAG, _BNTAG, _BEQ, _BNE, _BLTV, _BLEV, _BGTV, _BGEV,
    _JMP, _CALL, _JMPR, _HALT])

#: conditional branches (the ops that contribute to ``taken``)
_CONDITIONAL = frozenset([
    _BTAG, _BNTAG, _BEQ, _BNE, _BLTV, _BLEV, _BGTV, _BGEV])

_CMP_OPERATOR = {_BEQ: "==", _BNE: "!=", _BLTV: "<", _BLEV: "<=",
                 _BGTV: ">", _BGEV: ">="}
_ALU_OPERATOR = {_ADD: "+", _SUB: "-", _MUL: "*", _AND: "&", _OR: "|",
                 _XOR: "^", _SLL: "<<", _SRA: ">>"}

#: dispatch-loop step-limit check cadence (in blocks); between checks the
#: run can overshoot the limit by at most this many blocks of work before
#: bailing out to the reference loop for the exact fault
_CHECK_INTERVAL = 65536

#: how many *extra* basic blocks one closure may inline past its entry
#: block (following fall-through and ``jmp`` edges).  Each inlined block
#: removes one dispatch round trip; the budget bounds generated-code
#: growth.
_INLINE_BUDGET = 12

_TCOD_BITS = tags.TCOD << 1  # the link-register tag bits of `call`


class _Bailout(Exception):
    """Internal: the threaded run hit something only the reference loop
    handles exactly (step-limit edge, unsupported construct, wild jump).
    """


def _unsupported_target():
    raise _Bailout


def basic_blocks(program):
    """The basic-block partition of *program*'s decoded code.

    Returns a list of ``(start, end)`` index pairs.  Leaders are the
    entry point, every label (all branch targets are labels, and any
    label may be reached indirectly through ``ldi``/``jmpr``), and the
    instruction after every control transfer (which covers ``call``
    return addresses).
    """
    code, _ = decode(program)
    n = len(code)
    leaders = {program.entry_pc}
    for index in program.labels.values():
        if index < n:
            leaders.add(index)
    for pc, ins in enumerate(code):
        if ins[0] in _TERMINATORS and pc + 1 < n:
            leaders.add(pc + 1)
    starts = sorted(leaders)
    return [(start, end) for start, end in
            zip(starts, starts[1:] + [n])]


def _reachable_indices(code, spans, entry_pc):
    """The block indices codegen must cover, or None for "all of them".

    Compiling every basic block makes the generated module proportional
    to *static* program size, which for one-shot programs (the fuzz
    suite, `repro run`) is dominated by never-called library predicates.
    This walks the static control flow instead: from the entry block,
    follow branch/jump/call targets, fall-throughs, call return sites,
    and every code address materialised by an `ldi` in reachable code
    (the only way a label reaches a register, hence the only possible
    `jmpr` targets — plus pc 0, where the initial CP/RL point).

    Unreached blocks get no closure; an indirect jump into one hits the
    bail-out sentinel and re-runs on the reference loop, so pruning can
    cost a fallback but never an incorrect result.  If reachable code
    manufactures code-tagged words out of thin air (`mktag`/`lea` with
    the TCOD tag), the analysis gives up and returns None.
    """
    index_of = {start: index for index, (start, _end) in enumerate(spans)}
    n = len(code)
    roots = [index_of[entry_pc]]
    if 0 in index_of:
        roots.append(index_of[0])
    reachable = set()
    work = list(roots)
    while work:
        index = work.pop()
        if index in reachable:
            continue
        reachable.add(index)
        start, end = spans[index]
        targets = []
        terminated = False
        for pc in range(start, end):
            ins = code[pc]
            op = ins[0]
            if op == _LDI:
                word = ins[2]
                if word >= 0 and word & 0b1110 == _TCOD_BITS \
                        and (word >> 4) in index_of:
                    targets.append(index_of[word >> 4])
            elif (op == _MKTAG and ins[3] == tags.TCOD) \
                    or (op == _LEA and ins[4] == tags.TCOD):
                return None
            elif op in _TERMINATORS:
                terminated = True
                if op == _JMP:
                    targets.append(index_of[ins[1]])
                elif op == _CALL:
                    targets.append(index_of[ins[2]])
                    if pc + 1 in index_of:
                        targets.append(index_of[pc + 1])
                elif op in _CONDITIONAL:
                    targets.append(index_of[ins[3]])
                    if end < n:
                        targets.append(index_of[end])
                break
        if not terminated and end < n:
            targets.append(index_of[end])
        work.extend(target for target in targets
                    if target not in reachable)
    return reachable


# --------------------------------------------------------------------------
# Code generation.

def _const(value):
    """An atomic Python expression for an integer constant."""
    return "(%d)" % value if value < 0 else "%d" % value


class _BlockCompiler:
    """Generates the closure bodies for a program's basic blocks."""

    def __init__(self, code, spans, lines):
        self.code = code
        self.n = len(code)
        self.spans = spans
        self.index_of = {start: index
                         for index, (start, _end) in enumerate(spans)}
        self.lines = lines
        self.avail = {}      # register index -> forwarding expression
        self.next_temp = 0

    def emit(self, text, depth=2):
        self.lines.append("    " * depth + text)

    def read(self, reg):
        """The expression for a register operand (forwarded if fused)."""
        return self.avail.get(reg, "regs[%d]" % reg)

    @staticmethod
    def _reads(ins):
        op = ins[0]
        if op in (_LD, _MOV, _LEA, _MKTAG, _GETTAG):
            return (ins[2],)
        if op == _ST:
            return (ins[1], ins[2])
        if op in (_BTAG, _BNTAG, _JMPR):
            return (ins[1],)
        if op in _CMP_OPERATOR:
            return (ins[1], ins[2])
        if op in _ALU_OPERATOR or op in (_DIV, _MOD):
            return (ins[2], ins[3])
        if op == _ESC and ins[2] is not None:
            return (ins[2],)
        return ()

    @staticmethod
    def _writes(ins):
        op = ins[0]
        if op in (_LD, _MOV, _LDI, _LEA, _MKTAG, _GETTAG) \
                or op in _ALU_OPERATOR or op in (_DIV, _MOD):
            return ins[1]
        return None

    def _forwarded(self, position, end, reg):
        """Is the value written to *reg* read again inside this block
        before being overwritten?  (The superinstruction test.)"""
        for later in range(position + 1, end):
            ins = self.code[later]
            if reg in self._reads(ins):
                return True
            if self._writes(ins) == reg:
                return False
        return False

    def _overwritten(self, position, end, reg):
        """Is *reg* written again before this block's exit?  Then the
        register-file store at *position* is dead: in-block consumers
        read the forwarding local, control cannot leave the closure
        before the overwrite, and a mid-block fault discards all
        threaded state (the fallback re-runs on the reference loop)."""
        for later in range(position + 1, end):
            ins = self.code[later]
            if ins[0] in _TERMINATORS:
                return False
            if self._writes(ins) == reg:
                return True
        return False

    def _store(self, reg, rhs, forward, atomic=False, keep=True):
        """Assign *rhs* to register *reg*, routing through a forwarding
        local when a later instruction in the block consumes the value.
        With ``keep=False`` (register overwritten before the block's
        exit) the register-file store is elided; *rhs* is still
        evaluated unless it is atomic, so data faults surface exactly
        where the reference loop raises them.
        """
        if not keep:
            if not forward:
                self.avail.pop(reg, None)
                if not atomic:
                    self.emit(rhs)
            elif atomic:
                self.avail[reg] = rhs
            else:
                temp = "t%d" % self.next_temp
                self.next_temp += 1
                self.emit("%s = %s" % (temp, rhs))
                self.avail[reg] = temp
        elif not forward:
            self.avail.pop(reg, None)
            self.emit("regs[%d] = %s" % (reg, rhs))
        elif atomic:
            # Constants and already-forwarded locals need no new temp.
            self.avail[reg] = rhs
            self.emit("regs[%d] = %s" % (reg, rhs))
        else:
            temp = "t%d" % self.next_temp
            self.next_temp += 1
            self.emit("%s = %s" % (temp, rhs))
            self.emit("regs[%d] = %s" % (reg, temp))
            self.avail[reg] = temp

    def _address(self, base_expr, offset):
        if offset:
            return "(%s >> 4) + %s" % (base_expr, _const(offset))
        return "%s >> 4" % base_expr

    def compile_closure(self, entry_index):
        """Emit the closure for the block at *entry_index*.

        The closure inlines its entry block and then keeps going through
        fall-through and unconditional-``jmp`` successors (up to
        ``_INLINE_BUDGET`` extra blocks, never revisiting one), so the
        dispatch loop is only re-entered at calls, indirect jumps, taken
        conditional branches and back edges.  Every block crossed bumps
        its own entry counter, so the statistics replay stays exact no
        matter which closure executed a block.
        """
        code = self.code
        self.avail.clear()
        self.next_temp = 0
        # The state containers are passed as defaults so the block body
        # reads them as locals (LOAD_FAST) instead of closure cells.
        self.emit("def b%d(regs=regs, mem=mem, bc=bc, bt=bt, "
                  "OUT_append=OUT_append, PCB=PCB, H=H, W=W, Bail=Bail):"
                  % self.spans[entry_index][0], depth=1)
        budget = _INLINE_BUDGET
        visited = set()
        index = entry_index
        while True:
            visited.add(index)
            start, end = self.spans[index]
            self.emit("bc[%d] += 1" % index)
            resume = None
            terminated = False
            for position in range(start, end):
                ins = code[position]
                if ins[0] in _TERMINATORS:
                    resume = self._compile_terminator(index, position,
                                                      ins, end)
                    terminated = True
                    break
                self._compile_straightline(position, end, ins)
            if not terminated:
                # Fallthrough into the next block (or off the end of the
                # code, which only the reference loop faults on exactly).
                if end < self.n:
                    resume = end
                else:
                    self.emit("raise Bail")
            if resume is None:
                return
            successor = self.index_of[resume]
            if budget > 0 and successor not in visited:
                budget -= 1
                index = successor
                continue
            self.emit("return b%d" % resume)
            return

    def _compile_straightline(self, position, end, ins):
        op = ins[0]
        if op == _ST:
            value = self.read(ins[1])
            self.emit("mem[%s] = %s"
                      % (self._address(self.read(ins[2]), ins[3]), value))
            return
        if op == _ESC:
            if ins[1] == "write" and ins[2] is not None:
                self.emit("OUT_append(W(%s))" % self.read(ins[2]))
            elif ins[1] == "nl":
                self.emit('OUT_append("\\n")')
            else:
                self.emit("raise Bail")
            return
        rd = self._writes(ins)
        forward = self._forwarded(position, end, rd)
        keep = not self._overwritten(position, end, rd)
        if op == _LD:
            rhs = "mem[%s]" % self._address(self.read(ins[2]), ins[3])
        elif op == _MOV:
            source = self.read(ins[2])
            self._store(rd, source, forward, keep=keep,
                        atomic=source in self.avail.values())
            return
        elif op == _LDI:
            self._store(rd, _const(ins[2]), forward, atomic=True,
                        keep=keep)
            return
        elif op == _LEA:
            rhs = "((%s) << 4) | %d" % (
                self._address(self.read(ins[2]), ins[3]), ins[4] << 1)
        elif op == _MKTAG:
            rhs = "(%s & -15) | %d" % (self.read(ins[2]), ins[3] << 1)
        elif op == _GETTAG:
            rhs = "(((%s >> 1) & 7) << 4) | 4" % self.read(ins[2])
        elif op in _ALU_OPERATOR:
            rhs = "(((%s >> 4) %s (%s >> 4)) << 4) | 4" % (
                self.read(ins[2]), _ALU_OPERATOR[op], self.read(ins[3]))
        elif op in (_DIV, _MOD):
            self.emit("a = %s >> 4" % self.read(ins[2]))
            self.emit("b = %s >> 4" % self.read(ins[3]))
            self.emit("q = abs(a) // abs(b)")
            self.emit("if (a < 0) != (b < 0):")
            self.emit("    q = -q")
            rhs = "(q << 4) | 4" if op == _DIV \
                else "((a - q * b) << 4) | 4"
        else:
            raise AssertionError("unreachable opcode %d" % op)
        self._store(rd, rhs, forward, keep=keep)

    def _compile_terminator(self, index, position, ins, end):
        """Emit a block's control transfer.  Returns the pc the closure
        may keep inlining at (fall-through / jump target), or None when
        the transfer was emitted in full."""
        op = ins[0]
        if op == _JMP:
            return ins[1]
        if op == _CALL:
            link = (position + 1) << 4 | _TCOD_BITS
            self.emit("regs[%d] = %d" % (ins[1], link))
            self.emit("return b%d" % ins[2])
            return None
        if op == _JMPR:
            self.emit("return PCB[%s >> 4]" % self.read(ins[1]))
            return None
        if op == _HALT:
            self.emit("H[0] = %d" % ins[1])
            self.emit("return None")
            return None
        if op == _BTAG:
            test = "((%s >> 1) & 7) == %d" % (self.read(ins[1]), ins[2])
        elif op == _BNTAG:
            test = "((%s >> 1) & 7) != %d" % (self.read(ins[1]), ins[2])
        elif op in (_BEQ, _BNE):
            test = "%s %s %s" % (self.read(ins[1]), _CMP_OPERATOR[op],
                                 self.read(ins[2]))
        else:
            test = "(%s >> 4) %s (%s >> 4)" % (
                self.read(ins[1]), _CMP_OPERATOR[op], self.read(ins[2]))
        self.emit("if %s:" % test)
        self.emit("    bt[%d] += 1" % index)
        self.emit("    return b%d" % ins[3])
        if end < self.n:
            return end
        self.emit("raise Bail")
        return None


class _ThreadedCode:
    """One program's compiled threaded code (cached on the Program)."""

    __slots__ = ("make", "spans", "starts", "lengths", "cond_pc", "n",
                 "source", "runtime")

    def __init__(self, make, spans, starts, lengths, cond_pc, n, source):
        self.make = make        # state -> tuple of block closures
        self.spans = spans      # per block: (start, end)
        self.starts = starts    # start pc of each compiled closure
        self.lengths = lengths  # per block: end - start
        self.cond_pc = cond_pc  # per block: pc of its conditional branch
        self.n = n              # program length in instructions
        self.source = source    # generated Python (for debugging)
        self.runtime = None     # lazily instantiated _Runtime


def threaded_code(program):
    """Compile *program* to threaded code, memoised on the Program."""
    cached = program._threaded
    if cached is not None:
        return cached
    code, _ = decode(program)
    spans = basic_blocks(program)
    reachable = _reachable_indices(code, spans, program.entry_pc)
    if reachable is None:
        compiled = range(len(spans))
    else:
        compiled = sorted(reachable)
    lines = ["def _make(regs, mem, bc, bt, OUT, H, PCB, W, Bail):",
             "    OUT_append = OUT.append"]
    compiler = _BlockCompiler(code, spans, lines)
    for index in compiled:
        compiler.compile_closure(index)
    cond_pc = [end - 1 if code[end - 1][0] in _CONDITIONAL else -1
               for _start, end in spans]
    lines.append("    return (%s,)" % ", ".join(
        "b%d" % spans[index][0] for index in compiled))
    source = "\n".join(lines) + "\n"
    namespace = {}
    exec(compile(source, "<threaded:%s>" % program.entry, "exec"),
         namespace)
    program._threaded = _ThreadedCode(
        namespace["_make"], spans, [spans[index][0] for index in compiled],
        [end - start for start, end in spans],
        cond_pc, len(code), source)
    return program._threaded


# --------------------------------------------------------------------------
# Execution.

def _total_steps(block_counts, lengths):
    total = 0
    for count, length in zip(block_counts, lengths):
        total += count * length
    return total


class _Runtime:
    """The mutable machine state one program's closures are bound to.

    The block closures capture their state containers (register file,
    memory, counters) by reference, so instead of re-instantiating every
    closure on each run, the runtime is built once per program and the
    containers are reset *in place* before a run.  Resets happen at run
    start, so a run abandoned by an exception leaves nothing stale.
    """

    __slots__ = ("regs", "mem", "bc", "bt", "out", "halt", "pcb",
                 "entry", "_regs0", "_mem0", "_zeros")

    def __init__(self, program, compiled, reg_index):
        n_blocks = len(compiled.spans)
        self.regs = []
        self.mem = {}
        self.bc = [0] * n_blocks
        self.bt = [0] * n_blocks
        self.out = []
        self.halt = [None]
        self.pcb = [_unsupported_target] * compiled.n
        self._regs0 = initial_registers(program, reg_index)
        self._mem0 = initial_memory(program)
        self._zeros = [0] * n_blocks
        mem = self.mem
        symbols = program.symbols

        def write_term(word):
            return render_term(mem, symbols, word)

        functions = compiled.make(self.regs, mem, self.bc, self.bt,
                                  self.out, self.halt, self.pcb,
                                  write_term, _Bailout)
        for start, function in zip(compiled.starts, functions):
            self.pcb[start] = function
        self.entry = self.pcb[program.entry_pc]

    def reset(self):
        self.regs[:] = self._regs0
        self.mem.clear()
        self.mem.update(self._mem0)
        self.bc[:] = self._zeros
        self.bt[:] = self._zeros
        del self.out[:]
        self.halt[0] = None


class ThreadedEmulator:
    """Drop-in twin of :class:`~repro.emulator.machine.Emulator` running
    the threaded-code backend."""

    def __init__(self, program, max_steps=500_000_000):
        self.program = program
        self.max_steps = max_steps
        self.code, self.reg_index = decode(program)
        self.compiled = threaded_code(program)

    def _fallback(self):
        """Re-run on the reference loop (deterministic programs: exact
        same result, or the exact same fault with its precise pc)."""
        from repro.observability import tracing as observe
        observe.add("emulator.threaded.fallbacks")
        return Emulator(self.program, max_steps=self.max_steps).run()

    def run(self):
        program = self.program
        compiled = self.compiled
        runtime = compiled.runtime
        if runtime is None:
            runtime = _Runtime(program, compiled, self.reg_index)
            compiled.runtime = runtime
        runtime.reset()
        bc = runtime.bc
        bt = runtime.bt
        limit = self.max_steps
        lengths = compiled.lengths
        check = _CHECK_INTERVAL if limit > _CHECK_INTERVAL \
            else max(1, limit)
        fn = runtime.entry
        fuel = check
        try:
            while fn is not None:
                fn = fn()
                fuel -= 1
                if not fuel:
                    fuel = check
                    if _total_steps(bc, lengths) > limit:
                        raise _Bailout
            steps = _total_steps(bc, lengths)
            if steps > limit:
                raise _Bailout
        except (_Bailout, KeyError, ZeroDivisionError, IndexError):
            return self._fallback()

        counts = array("q", bytes(8 * compiled.n))
        taken = array("q", bytes(8 * compiled.n))
        for index, (start, end) in enumerate(compiled.spans):
            count = bc[index]
            if not count:
                continue
            for pc in range(start, end):
                counts[pc] = count
            branch = compiled.cond_pc[index]
            if branch >= 0:
                taken[branch] = bt[index]
        return EmulationResult(program, runtime.halt[0], steps,
                               "".join(runtime.out),
                               list(counts), list(taken),
                               backend="threaded")
