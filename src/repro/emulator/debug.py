"""Single-step debug executor.

A slow, instrumentable twin of the production emulator loop: it exposes
machine state (registers, memory, pc) after every instruction, which the
test suite and interactive exploration use to probe compiled code.  The
production loop in :mod:`repro.emulator.machine` stays monolithic for
speed; this one trades speed for visibility.  Both implement the same
semantics, and the test suite cross-checks them.
"""

from repro.terms import tags
from repro.intcode import layout
from repro.emulator.machine import (
    decode, EmulatorError,
    _LD, _ST, _BTAG, _BNTAG, _MOV, _LEA, _LDI, _BEQ, _BNE, _JMP, _CALL,
    _JMPR, _ADD, _SUB, _MUL, _DIV, _MOD, _AND, _OR, _XOR, _SLL, _SRA,
    _BLTV, _BLEV, _BGTV, _BGEV, _MKTAG, _GETTAG, _ESC, _HALT,
    render_term)


class DebugMachine:
    """Steppable machine state for one program."""

    def __init__(self, program):
        self.program = program
        self.code, self.reg_index = decode(program)
        self.regs = [tags.pack(0, tags.TRAW)] * len(self.reg_index)
        for name, value in layout.MACHINE_REGISTERS.items():
            tag = tags.TCOD if name in ("CP", "RL") else tags.TRAW
            self.regs[self.reg_index[name]] = tags.pack(value, tag)
        self.mem = {}
        for index in range(program.symbols.functor_count):
            self.mem[layout.FTAB_BASE + index] = tags.pack(
                program.symbols.functor_arity(index), tags.TINT)
        self.pc = program.entry_pc
        self.steps = 0
        self.output = []
        self.status = None

    @property
    def halted(self):
        return self.status is not None

    def register(self, name):
        """Current whole-word value of a register by name."""
        return self.regs[self.reg_index[name]]

    def render(self, word):
        """Reconstruct and render the term a word denotes."""
        return render_term(self.mem, self.program.symbols, word)

    def step(self):
        """Execute one instruction; returns the pc that was executed."""
        if self.halted:
            raise EmulatorError("machine has halted")
        regs = self.regs
        mem = self.mem
        pc = self.pc
        ins = self.code[pc]
        op = ins[0]
        self.steps += 1
        next_pc = pc + 1

        if op == _LD:
            regs[ins[1]] = mem[(regs[ins[2]] >> 4) + ins[3]]
        elif op == _ST:
            mem[(regs[ins[2]] >> 4) + ins[3]] = regs[ins[1]]
        elif op == _MOV:
            regs[ins[1]] = regs[ins[2]]
        elif op == _LDI:
            regs[ins[1]] = ins[2]
        elif op == _LEA:
            regs[ins[1]] = (((regs[ins[2]] >> 4) + ins[3]) << 4) \
                | (ins[4] << 1)
        elif op == _MKTAG:
            regs[ins[1]] = (regs[ins[2]] & ~0b1110) | (ins[3] << 1)
        elif op == _GETTAG:
            regs[ins[1]] = (((regs[ins[2]] >> 1) & 7) << 4) | 4
        elif op in (_ADD, _SUB, _MUL, _DIV, _MOD, _AND, _OR, _XOR,
                    _SLL, _SRA):
            a = regs[ins[2]] >> 4
            b = regs[ins[3]] >> 4
            if op == _ADD:
                v = a + b
            elif op == _SUB:
                v = a - b
            elif op == _MUL:
                v = a * b
            elif op in (_DIV, _MOD):
                if b == 0:
                    raise EmulatorError("division by zero at pc=%d" % pc)
                q = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    q = -q
                v = q if op == _DIV else a - q * b
            elif op == _AND:
                v = a & b
            elif op == _OR:
                v = a | b
            elif op == _XOR:
                v = a ^ b
            elif op == _SLL:
                v = a << b
            else:
                v = a >> b
            regs[ins[1]] = (v << 4) | 4
        elif op == _BTAG:
            if ((regs[ins[1]] >> 1) & 7) == ins[2]:
                next_pc = ins[3]
        elif op == _BNTAG:
            if ((regs[ins[1]] >> 1) & 7) != ins[2]:
                next_pc = ins[3]
        elif op == _BEQ:
            if regs[ins[1]] == regs[ins[2]]:
                next_pc = ins[3]
        elif op == _BNE:
            if regs[ins[1]] != regs[ins[2]]:
                next_pc = ins[3]
        elif op in (_BLTV, _BLEV, _BGTV, _BGEV):
            a = regs[ins[1]] >> 4
            b = regs[ins[2]] >> 4
            taken = {_BLTV: a < b, _BLEV: a <= b,
                     _BGTV: a > b, _BGEV: a >= b}[op]
            if taken:
                next_pc = ins[3]
        elif op == _JMP:
            next_pc = ins[1]
        elif op == _CALL:
            regs[ins[1]] = ((pc + 1) << 4) | (tags.TCOD << 1)
            next_pc = ins[2]
        elif op == _JMPR:
            next_pc = regs[ins[1]] >> 4
        elif op == _ESC:
            if ins[1] == "write":
                self.output.append(self.render(regs[ins[2]]))
            elif ins[1] == "nl":
                self.output.append("\n")
            else:
                raise EmulatorError("unknown escape %r" % ins[1])
        elif op == _HALT:
            self.status = ins[1]
            return pc
        else:
            raise EmulatorError("bad opcode %d" % op)
        self.pc = next_pc
        return pc

    def run(self, max_steps=1_000_000):
        """Step until halt; returns (status, output_text)."""
        while not self.halted:
            if self.steps >= max_steps:
                raise EmulatorError("debug run exceeded %d steps"
                                    % max_steps)
            self.step()
        return self.status, "".join(self.output)
