"""Sequential ICI emulator and dynamic statistics."""

from repro.emulator.machine import (
    Emulator,
    EmulationResult,
    EmulatorError,
    run_program,
    render_term,
    decode,
)
from repro.emulator.debug import DebugMachine

__all__ = [
    "Emulator",
    "EmulationResult",
    "EmulatorError",
    "run_program",
    "render_term",
    "decode",
    "DebugMachine",
]
