"""Sequential ICI emulator and dynamic statistics.

Three backends share one contract (bit-identical
:class:`~repro.emulator.machine.EmulationResult` data):

* ``reference`` — the plain interpreter loop in
  :mod:`repro.emulator.machine`;
* ``threaded`` — the compiled threaded-code backend in
  :mod:`repro.emulator.threaded` (basic blocks as Python closures);
* ``codegen`` — the compiled-function backend in
  :mod:`repro.emulator.codegen` (the default; the whole program emitted
  as one Python function with registers as locals, an order of
  magnitude faster than the reference loop).

:func:`run_program` selects between them (``backend=`` argument or the
``REPRO_EMULATOR_BACKEND`` environment variable).
"""

from repro.emulator.machine import (
    BACKENDS,
    Emulator,
    EmulationResult,
    EmulatorError,
    resolve_backend,
    run_program,
    render_term,
    decode,
)
from repro.emulator.threaded import ThreadedEmulator, threaded_code
from repro.emulator.codegen import CodegenEmulator, codegen_code
from repro.emulator.debug import DebugMachine

__all__ = [
    "BACKENDS",
    "Emulator",
    "EmulationResult",
    "EmulatorError",
    "ThreadedEmulator",
    "CodegenEmulator",
    "codegen_code",
    "resolve_backend",
    "run_program",
    "render_term",
    "decode",
    "threaded_code",
    "DebugMachine",
]
