"""Sequential ICI emulator and dynamic statistics.

Two backends share one contract (bit-identical
:class:`~repro.emulator.machine.EmulationResult` data):

* ``reference`` — the plain interpreter loop in
  :mod:`repro.emulator.machine`;
* ``threaded`` — the compiled threaded-code backend in
  :mod:`repro.emulator.threaded` (the default; several times faster).

:func:`run_program` selects between them (``backend=`` argument or the
``REPRO_EMULATOR_BACKEND`` environment variable).
"""

from repro.emulator.machine import (
    BACKENDS,
    Emulator,
    EmulationResult,
    EmulatorError,
    resolve_backend,
    run_program,
    render_term,
    decode,
)
from repro.emulator.threaded import ThreadedEmulator, threaded_code
from repro.emulator.debug import DebugMachine

__all__ = [
    "BACKENDS",
    "Emulator",
    "EmulationResult",
    "EmulatorError",
    "ThreadedEmulator",
    "resolve_backend",
    "run_program",
    "render_term",
    "decode",
    "threaded_code",
    "DebugMachine",
]
