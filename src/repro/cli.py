"""Command-line interface.

::

    python -m repro run program.pl            # compile + emulate
    python -m repro listing program.pl        # BAM and ICI listings
    python -m repro speedup program.pl -m vliw3
    python -m repro analyze program.pl        # mix + branch statistics
    python -m repro analyze --jobs 2          # dataflow passes + static
                                              # ILP bound over the suite
    python -m repro analyze --format json --output analyze.json
    python -m repro bench [--quick]           # time emulator backends
    python -m repro bench --backend codegen --backend reference mu
    python -m repro evaluate [--extras]       # the paper's tables/figures
    python -m repro evaluate --jobs 4 --bench qsort --bench nreverse
    python -m repro evaluate --bench conc30 --trace trace.jsonl
    python -m repro trace summary trace.jsonl # inspect a recorded trace
    python -m repro lint program.pl           # ICI well-formedness lint
    python -m repro verify [--bench qsort]    # independent checker sweep
    python -m repro corpus --quick --jobs 2   # generated-corpus sweep

``evaluate`` and ``verify`` fan their benchmark x machine-configuration
cells out across ``--jobs`` worker processes (default: all cores)
through :mod:`repro.evaluation.parallel`; results are memoised in the
content-addressed cache, so warm re-runs are served without
re-emulation.  ``--jobs 1`` runs everything in-process (pdb-friendly).

Evaluation sweeps run under the fault-tolerant supervisor
(:mod:`repro.evaluation.supervisor`): per-cell deadlines, bounded
retry with deterministic backoff, pool resurrection, and graceful
degradation to in-process execution.  ``--cell-timeout`` /
``--max-attempts`` tune the policy, a per-task outcome summary is
printed after each sweep, and ``--report PATH`` writes the structured
:class:`EvaluationReport` as JSON.

Exit codes: 0 = success/clean, 1 = violations found (lint/verify) or a
failing program status, 2 = usage error, 130 = interrupted (SIGINT).
Diagnostics go to stderr.
"""

import argparse
import os
import sys

from repro.bam import compile_source, CompilerOptions
from repro.intcode import translate_module, optimize_program
from repro.emulator import run_program
from repro.compaction import (
    sequential, bam_like, vliw, ideal, symbol3)
from repro.intcode.ici import OP_CLASS, MEM, ALU, MOVE, CTRL

_MACHINES = {
    "seq": sequential,
    "bam": bam_like,
    "vliw1": lambda: vliw(1), "vliw2": lambda: vliw(2),
    "vliw3": lambda: vliw(3), "vliw4": lambda: vliw(4),
    "vliw5": lambda: vliw(5),
    "ideal": ideal,
    "symbol3": symbol3,
}


def _load(args):
    with open(args.file) as handle:
        source = handle.read()
    options = CompilerOptions(indexing=not args.no_indexing,
                              lco=not args.no_lco)
    module = compile_source(source, entry=(args.entry, 0),
                            options=options)
    program = translate_module(module)
    if args.optimize:
        program, _ = optimize_program(program)
    return module, program


def _add_compile_flags(parser):
    parser.add_argument("file", help="Prolog source file")
    parser.add_argument("--entry", default="main",
                        help="entry predicate (arity 0; default main)")
    parser.add_argument("--optimize", action="store_true",
                        help="run the block-local ICI optimiser")
    parser.add_argument("--no-indexing", action="store_true",
                        help="disable first-argument indexing")
    parser.add_argument("--no-lco", action="store_true",
                        help="disable last-call optimisation")


def cmd_run(args, out, err):
    _, program = _load(args)
    result = run_program(program, max_steps=args.max_steps)
    out.write(result.output)
    if args.stats:
        out.write("%% status=%d steps=%d code=%d ops\n"
                  % (result.status, result.steps, len(program)))
    return result.status


def cmd_listing(args, out, err):
    module, program = _load(args)
    if args.level in ("bam", "both"):
        out.write(module.listing() + "\n")
    if args.level in ("ici", "both"):
        out.write(program.listing() + "\n")
    return 0


def cmd_speedup(args, out, err):
    import repro
    _, program = _load(args)
    for name in args.machine:
        config = _MACHINES[name]()
        regioning = "bb" if name in ("seq", "bam") else "trace"
        value = repro.measure_speedup(program, config,
                                      regioning=regioning)
        out.write("%-8s %.2fx\n" % (name, value))
    return 0


def cmd_analyze(args, out, err):
    if args.file:
        return _analyze_file(args, out, err)
    return _analyze_suite(args, out, err)


def _analyze_file(args, out, err):
    """Per-file analysis: instruction mix + branch statistics."""
    from repro.analysis.branch_stats import branch_records, average_p_fp
    _, program = _load(args)
    result = run_program(program, max_steps=args.max_steps)
    totals = {MEM: 0, ALU: 0, MOVE: 0, CTRL: 0}
    for pc, count in enumerate(result.counts):
        if count:
            totals[OP_CLASS[program.instructions[pc].op]] += count
    steps = sum(totals.values())
    out.write("dynamic operations: %d\n" % steps)
    for cls in (MEM, ALU, MOVE, CTRL):
        out.write("  %-5s %5.1f%%\n" % (cls, 100 * totals[cls] / steps))
    records = branch_records(program, result.counts, result.taken)
    out.write("branches: %d static, %d dynamic, average P_fp %.3f\n"
              % (len(records), sum(r.executed for r in records),
                 average_p_fp(records)))
    return 0


def _analyze_target(spec):
    """Analyze one suite benchmark (pool worker)."""
    from repro.analysis.driver import timed_analyze
    record, seconds = timed_analyze(spec["bench"], spec["budget"])
    return record, seconds


def _analyze_suite(args, out, err):
    """Dataflow-pass sweep + static ILP bound over suite benchmarks."""
    import json
    from repro.analysis.report import (
        diagnostics_document, validate_analysis)
    from repro.benchmarks import PROGRAMS, TABLE_BENCHMARKS
    from repro.evaluation.parallel import EvaluationError, configure

    names = args.bench or list(TABLE_BENCHMARKS)
    unknown = [name for name in names if name not in PROGRAMS]
    if unknown:
        err.write("unknown benchmark(s) %s; available: %s\n"
                  % (", ".join(sorted(unknown)),
                     ", ".join(sorted(PROGRAMS))))
        return 2
    engine = configure(jobs=_resolve_jobs(args),
                       policy=_supervisor_policy(args))
    specs = [{"bench": name, "budget": args.tail_dup_budget}
             for name in names]
    import time
    started = time.perf_counter()
    try:
        results = engine.map(_analyze_target, specs)
    except EvaluationError as error:
        err.write(str(error) + "\n")
        _write_supervisor_report(args, engine, out)
        return 1
    elapsed = time.perf_counter() - started

    records = [record for record, _seconds in results]
    document = diagnostics_document("analyze", records)
    problems = validate_analysis(document)
    for problem in problems:
        err.write("analyze: schema problem: %s\n" % problem)

    if args.perf:
        from repro.analysis.driver import (
            analyze_bench_document, validate_analyze_bench,
            write_analyze_bench)
        entries = [{"target": record["target"], "ops": record["ops"],
                    "seconds": round(seconds, 4)}
                   for record, seconds in results]
        perf = analyze_bench_document(entries, elapsed)
        for problem in validate_analyze_bench(perf):
            err.write("analyze: perf schema problem: %s\n" % problem)
            problems.append(problem)
        write_analyze_bench(perf, args.perf)
        # Keep stdout pure JSON in --format json; notices go to stderr.
        notice = err if args.format == "json" else out
        notice.write("wrote %s\n" % args.perf)

    if args.output:
        from repro.atomicio import atomic_write_json
        atomic_write_json(args.output, document, indent=2,
                          sort_keys=True)
        notice = err if args.format == "json" else out
        notice.write("wrote %s\n" % args.output)
    if args.format == "json":
        out.write(json.dumps(document, indent=2, sort_keys=True) + "\n")
    else:
        out.write("%-12s %9s %9s %9s %8s %8s %6s %6s\n"
                  % ("benchmark", "seq", "achieved", "dfl-limit",
                     "ach-ilp", "dfl-ilp", "gap", "diags"))
        for record in records:
            ilp = record["ilp"]
            out.write("%-12s %9d %9d %9d %8.2f %8.2f %6.2f %6d\n"
                      % (record["target"], ilp["sequential_cycles"],
                         ilp["achieved_cycles"],
                         ilp["dataflow_limit_cycles"],
                         ilp["achieved_speedup"],
                         ilp["dataflow_limit_speedup"], ilp["gap"],
                         record["count"]))
        total = document["count"]
        out.write("analyze: %d benchmark(s), %d diagnostic(s), %.1fs\n"
                  % (len(records), total, elapsed))
    _write_supervisor_report(args, engine, out)
    return 1 if problems else 0


def cmd_bench(args, out, err):
    from repro.benchmarks import PROGRAMS, TABLE_BENCHMARKS
    from repro.benchmarks.perf import (
        QUICK_BENCHMARKS, bench_document, format_bench, validate_bench,
        write_bench)
    if args.name and args.quick:
        err.write("bench: give benchmark names or --quick, not both\n")
        return 2
    if args.quick:
        names = list(QUICK_BENCHMARKS)
    elif args.name:
        names = args.name
    else:
        names = list(TABLE_BENCHMARKS)
    unknown = [name for name in names if name not in PROGRAMS]
    if unknown:
        err.write("unknown benchmark(s) %s; available: %s\n"
                  % (", ".join(sorted(unknown)),
                     ", ".join(sorted(PROGRAMS))))
        return 2
    try:
        document = bench_document(
            names, repeats=args.repeat, backends=args.backend,
            progress=lambda entry: out.write(format_bench(entry) + "\n"))
    except ValueError as error:
        err.write("bench: %s\n" % error)
        return 2
    summary = document["summary"]
    totals = " ".join(
        "%s=%.4fs" % (backend, seconds)
        for backend, seconds in summary["total_seconds"].items())
    speedups = " ".join(
        "%s %.2fx" % (backend, speedup)
        for backend, speedup in summary["speedups"].items())
    out.write("total: %s%s over %d benchmark(s)\n"
              % (totals, (" " + speedups if speedups else ""),
                 summary["benchmarks"]))
    problems = validate_bench(document)
    if problems:
        for problem in problems:
            err.write("bench: schema problem: %s\n" % problem)
        return 1
    path = write_bench(document, args.output)
    out.write("wrote %s\n" % path)
    if not summary["all_identical"]:
        err.write("bench: backend results differ — see 'identical' "
                  "fields in %s\n" % path)
        return 1
    return 0


def _resolve_jobs(args):
    return args.jobs if args.jobs else (os.cpu_count() or 1)


def _supervisor_policy(args):
    """A SupervisorPolicy reflecting the --cell-timeout/--max-attempts
    flags (defaults where the flags are absent)."""
    from repro.evaluation.supervisor import SupervisorPolicy
    policy = SupervisorPolicy()
    if getattr(args, "max_attempts", None):
        policy.max_attempts = max(1, args.max_attempts)
    timeout = getattr(args, "cell_timeout", None)
    if timeout is not None:
        # 0 (or negative) disables the watchdog entirely.
        policy.deadline = timeout if timeout > 0 else None
    return policy


def _write_supervisor_report(args, engine, out):
    """Print the supervised sweep's outcome summary; with --report,
    also publish the structured JSON form (atomically)."""
    report = engine.report
    if report.records or report.interrupted:
        out.write(report.summary() + "\n")
    path = getattr(args, "report", None)
    if path:
        from repro.atomicio import atomic_write_json
        atomic_write_json(path, report.to_json(), indent=2,
                          sort_keys=True)
        out.write("wrote %s\n" % path)


def _add_supervisor_flags(parser):
    parser.add_argument("--cell-timeout", type=float, metavar="SECONDS",
                        help="watchdog deadline per evaluation task "
                             "(default 300; 0 disables)")
    parser.add_argument("--max-attempts", type=int, metavar="N",
                        help="executions per task before it is marked "
                             "failed (default 3)")
    parser.add_argument("--report", metavar="PATH",
                        help="write the structured EvaluationReport "
                             "(per-task status/attempts/timings) as "
                             "JSON")


def _trace_seed():
    """The CLI tracer's seed: ``REPRO_TRACE_SEED`` (default 0), as an
    int when it parses as one (any string seeds the run id too)."""
    from repro.observability.tracing import SEED_ENV
    raw = os.environ.get(SEED_ENV, "0")
    try:
        return int(raw)
    except ValueError:
        return raw


def _traced(path, body, out, err):
    """Run *body* under an active tracer rooted at an ``evaluate`` span
    and publish the trace at *path* (validated first).

    ``REPRO_TRACE_DETERMINISTIC=1`` drops wall-clock timings so reruns
    at the same seed render byte-identical documents.
    """
    from repro.observability import (
        activation, trace_lines, validate_trace, write_trace)
    timings = os.environ.get("REPRO_TRACE_DETERMINISTIC",
                             "") in ("", "0")
    with activation(seed=_trace_seed()) as tracer:
        try:
            with tracer.span("evaluate"):
                status = body()
        except BaseException:
            # Cancellation/crash: span contexts closed on unwind and
            # the supervisor abandoned its task spans, so publish the
            # partial trace before the exception surfaces.
            write_trace(path, tracer, timings=timings)
            raise
    problems = validate_trace(trace_lines(tracer, timings=timings))
    for problem in problems:
        err.write("trace: invariant violated: %s\n" % problem)
    write_trace(path, tracer, timings=timings)
    out.write("wrote trace %s (%d span(s), run %s)\n"
              % (path, len(tracer.spans), tracer.run_id))
    return 1 if problems else status


def cmd_evaluate(args, out, err):
    if args.trace:
        body = lambda: _cmd_evaluate(args, out, err)
        return _traced(args.trace, body, out, err)
    return _cmd_evaluate(args, out, err)


def _cmd_evaluate(args, out, err):
    from repro.evaluation.parallel import configure
    from repro.experiments import run_all
    engine = configure(jobs=_resolve_jobs(args),
                       policy=_supervisor_policy(args))
    if args.bench:
        return _evaluate_smoke(args, engine, out, err)
    for name, text in run_all(extras=args.extras).items():
        out.write(text + "\n\n")
    _report_profile_backends(out)
    _write_supervisor_report(args, engine, out)
    return 0


def _report_profile_backends(out):
    """Summarise which emulator backend produced each profile artefact
    (a cached profile may come from a different backend than the active
    one — that difference should be diagnosable, not silent)."""
    from repro.experiments.data import profile_backends
    backends = profile_backends()
    if not backends:
        return
    by_backend = {}
    for name, backend in backends.items():
        by_backend.setdefault(backend, []).append(name)
    parts = ["%s x%d" % (backend, len(names))
             for backend, names in sorted(by_backend.items())]
    out.write("profiles: %s\n" % ", ".join(parts))
    if len(by_backend) > 1:
        for backend, names in sorted(by_backend.items()):
            out.write("  %s: %s\n" % (backend, ", ".join(sorted(names))))


def _evaluate_smoke(args, engine, out, err):
    """Evaluate a named subset of benchmarks (the CI smoke sweep)."""
    from repro.benchmarks import PROGRAMS
    from repro.evaluation import EvaluationError
    from repro.experiments.data import master_configs
    unknown = [name for name in args.bench if name not in PROGRAMS]
    if unknown:
        err.write("unknown benchmark(s) %s; available: %s\n"
                  % (", ".join(sorted(unknown)),
                     ", ".join(sorted(PROGRAMS))))
        return 2
    configs = master_configs()
    try:
        evaluations = engine.evaluate_many(
            [{"name": name, "configs": configs} for name in args.bench])
    except EvaluationError as error:
        err.write(str(error) + "\n")
        _write_supervisor_report(args, engine, out)
        return 1
    keys = sorted(configs)
    out.write("%-12s %s %10s\n" % ("benchmark", " ".join(
        "%10s" % key for key in keys), "profile"))
    for evaluation in evaluations:
        out.write("%-12s %s %10s\n" % (evaluation.name, " ".join(
            "%10d" % evaluation.cycles(key) for key in keys),
            evaluation.data.get("backend", "?")))
    stats = engine.store.stats()
    out.write("cache: %d hit(s), %d miss(es), %d corrupt entr%s "
              "recomputed\n" % (stats["hits"], stats["misses"],
                                stats["corrupt"],
                                "y" if stats["corrupt"] == 1 else "ies"))
    _write_supervisor_report(args, engine, out)
    return 0


def cmd_trace(args, out, err):
    from repro.observability import (
        load_trace, summarize_trace, validate_trace)
    try:
        lines = load_trace(args.trace_file)
    except OSError as error:
        err.write("trace: cannot read %s: %s\n"
                  % (args.trace_file, error))
        return 2
    except ValueError as error:
        err.write("trace: %s is not JSONL: %s\n"
                  % (args.trace_file, error))
        return 1
    problems = validate_trace(lines)
    if problems:
        for problem in problems:
            err.write("trace: %s\n" % problem)
        err.write("trace: %d problem(s) in %s\n"
                  % (len(problems), args.trace_file))
        return 1
    if args.action == "validate":
        out.write("%s: valid (%d span(s))\n"
                  % (args.trace_file, lines[0]["spans"]))
        return 0
    info = summarize_trace(lines)
    out.write("run %s  %d span(s)%s\n"
              % (info["run_id"], info["spans"],
                 "  [deterministic]" if info["deterministic"] else ""))
    for name, entry in info["by_name"].items():
        elapsed = "" if entry["elapsed"] is None \
            else "  %8.4fs" % entry["elapsed"]
        errors = "" if not entry["errors"] \
            else "  %d error(s)" % entry["errors"]
        out.write("  %-24s x%-5d%s%s\n"
                  % (name, entry["count"], elapsed, errors))
    if info["counters"]:
        out.write("counters:\n")
        for name, value in info["counters"].items():
            out.write("  %-32s %d\n" % (name, value))
    if info["gauges"]:
        out.write("gauges:\n")
        for name, value in info["gauges"].items():
            out.write("  %-32s %r\n" % (name, value))
    return 0


def _emit_diagnostics_json(tool, entries, out, err):
    """Serialize per-target diagnostics as the shared JSON document
    (self-validated before it is printed)."""
    import json
    from repro.analysis.report import (
        diagnostics_document, validate_diagnostics)
    document = diagnostics_document(tool, entries)
    problems = validate_diagnostics(document)
    for problem in problems:
        err.write("%s: schema problem: %s\n" % (tool, problem))
    out.write(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return bool(problems)


def cmd_lint(args, out, err):
    from repro.analysis import lint_program, format_diagnostics
    from repro.analysis.report import target_entry
    _, program = _load(args)
    diagnostics = lint_program(program)
    if args.format == "json":
        broken = _emit_diagnostics_json(
            "lint",
            [target_entry(args.file, diagnostics, ops=len(program))],
            out, err)
        return 1 if (diagnostics or broken) else 0
    if diagnostics:
        err.write(format_diagnostics(diagnostics) + "\n")
        err.write("%s: %d lint finding(s)\n"
                  % (args.file, len(diagnostics)))
        return 1
    out.write("%s: clean (%d ops)\n" % (args.file, len(program)))
    return 0


def cmd_corpus(args, out, err):
    from repro.evaluation.parallel import EvaluationError, configure
    from repro.experiments.corpus_sweep import (
        run_corpus_sweep, validate_corpus_bench, write_corpus_bench)

    if args.quick and args.count is not None:
        err.write("corpus: give --count or --quick, not both\n")
        return 2
    count = 10 if args.quick else (args.count
                                   if args.count is not None else 200)
    engine = configure(jobs=_resolve_jobs(args),
                       policy=_supervisor_policy(args))
    try:
        document = run_corpus_sweep(count, args.base_seed, engine=engine,
                                    budget=args.tail_dup_budget,
                                    saturation=args.quick
                                    or args.saturation)
    except EvaluationError as error:
        err.write(str(error) + "\n")
        _write_supervisor_report(args, engine, out)
        return 1

    summary = document["summary"]
    claim = summary["claim"]
    out.write("corpus: %d program(s) = %d generated + %d DCG "
              "workload(s), %d steps in %.1fs\n"
              % (summary["programs"], summary["generated"],
                 summary["dcg_workloads"], summary["total_steps"],
                 summary["total_seconds"]))
    out.write("oracle: %d mismatch(es); verifier: %d program(s) with "
              "findings\n"
              % (len(summary["oracle_mismatches"]),
                 len(summary["verify_finding_programs"])))
    out.write("branch claim (P_fp <= %.2f): holds for %d/%d "
              "(median %.3f, worst %.3f)\n"
              % (claim["threshold_p_fp"], claim["predictable"],
                 claim["programs_with_branches"],
                 claim["p_fp_distribution"]["median"],
                 claim["p_fp_distribution"]["max"]))
    for outlier in claim["worst"][:3]:
        out.write("  breaks on %-12s P_fp=%.3f %s\n"
                  % (outlier["name"], outlier["avg_p_fp"],
                     ",".join(outlier["schemes"]) or "dcg workload"))
    gap = summary["ilp"]["gap"]
    out.write("static ILP gap: median %.2fx (p25 %.2fx, p75 %.2fx, "
              "max %.2fx)\n"
              % (gap["median"], gap["p25"], gap["p75"], gap["max"]))
    if "saturation" in summary:
        curve = summary["saturation"]
        out.write("saturation (mean speedup): %s\n"
                  % "  ".join("%s %.2fx" % (key, curve[key]["mean"])
                              for key in sorted(curve)))

    problems = validate_corpus_bench(document)
    if problems:
        for problem in problems:
            err.write("corpus: schema problem: %s\n" % problem)
        return 1
    path = write_corpus_bench(document, args.output)
    out.write("wrote %s\n" % path)
    _write_supervisor_report(args, engine, out)
    if summary["oracle_mismatches"]:
        err.write("corpus: differential oracle mismatches: %s\n"
                  % ", ".join(summary["oracle_mismatches"]))
        return 1
    if summary["verify_finding_programs"]:
        err.write("corpus: checker findings on: %s\n"
                  % ", ".join(summary["verify_finding_programs"]))
        return 1
    return 0


def _verify_target(spec):
    """Run the independent checker over one target (pool worker)."""
    from repro.benchmarks.suite import compile_benchmark, \
        run_program_cached
    from repro.evaluation.pipeline import verify_evaluation

    if "file" in spec:
        with open(spec["file"]) as handle:
            source = handle.read()
        module = compile_source(source, entry=(spec["entry"], 0),
                                options=CompilerOptions())
        program = translate_module(module)
        if spec["optimize"]:
            program, _ = optimize_program(program)
    else:
        program = compile_benchmark(spec["bench"])
    hint = os.path.basename(spec.get("file") or spec["bench"]) + "-"
    result = run_program_cached(program, hint)
    diagnostics = verify_evaluation(
        program, result, spec["configs"],
        tail_dup_budget=spec["tail_dup_budget"],
        cache_hint=hint, bank_size=spec["bank_size"])
    return len(program), diagnostics


def cmd_verify(args, out, err):
    from repro.analysis import format_diagnostics
    from repro.benchmarks import PROGRAMS, TABLE_BENCHMARKS
    from repro.evaluation.parallel import configure
    from repro.experiments.data import master_configs

    configs = master_configs()
    if args.machine:
        unknown = [m for m in args.machine if m not in configs]
        if unknown:
            err.write("unknown machine key(s) %s; available: %s\n"
                      % (", ".join(sorted(unknown)),
                         ", ".join(sorted(configs))))
            return 2
        configs = {key: configs[key] for key in args.machine}

    common = {"configs": configs, "tail_dup_budget": args.tail_dup_budget,
              "bank_size": args.bank_size}
    specs = []
    if args.file:
        specs.append(dict(common, file=args.file, entry=args.entry,
                          optimize=args.optimize))
    names = args.bench or ([] if args.file else list(TABLE_BENCHMARKS))
    for name in names:
        if name not in PROGRAMS:
            err.write("unknown benchmark %r; available: %s\n"
                      % (name, ", ".join(sorted(PROGRAMS))))
            return 2
        specs.append(dict(common, bench=name))

    # The checker sweep is one independent task per target; fan the
    # targets over the shared engine's worker pool (supervised:
    # deadlines, bounded retry, pool resurrection).
    from repro.evaluation.parallel import EvaluationError
    engine = configure(jobs=_resolve_jobs(args),
                       policy=_supervisor_policy(args))
    try:
        results = engine.map(_verify_target, specs)
    except EvaluationError as error:
        err.write(str(error) + "\n")
        _write_supervisor_report(args, engine, out)
        return 1

    if args.format == "json":
        from repro.analysis.report import target_entry
        entries = []
        any_findings = False
        for spec, (n_ops, diagnostics) in zip(specs, results):
            name = spec.get("file") or spec["bench"]
            any_findings = any_findings or bool(diagnostics)
            entries.append(target_entry(
                name, diagnostics, ops=n_ops,
                machine_configs=sorted(configs)))
        broken = _emit_diagnostics_json("verify", entries, out, err)
        _write_supervisor_report(args, engine, out)
        return 1 if (any_findings or broken) else 0

    status = 0
    total = 0
    for spec, (n_ops, diagnostics) in zip(specs, results):
        name = spec.get("file") or spec["bench"]
        if diagnostics:
            status = 1
            total += len(diagnostics)
            err.write("== %s ==\n" % name)
            err.write(format_diagnostics(diagnostics) + "\n")
            out.write("%-12s FAIL  %d finding(s)\n"
                      % (name, len(diagnostics)))
        else:
            out.write("%-12s ok    %d ops, %d machine config(s)\n"
                      % (name, n_ops, len(configs)))
    if status:
        err.write("verify: %d finding(s) across %d target(s)\n"
                  % (total, len(specs)))
    else:
        out.write("verify: all %d target(s) clean\n" % len(specs))
    _write_supervisor_report(args, engine, out)
    return status


def _serve_config(args):
    from repro.serve.service import ServiceConfig
    return ServiceConfig(
        host=args.host, port=args.port, jobs=_resolve_jobs(args),
        shards=args.shards, cache_root=args.cache_dir,
        queue_limit=args.queue_limit, batch_max=args.batch_max,
        default_deadline=args.deadline,
        breaker_threshold=args.breaker_threshold,
        cell_timeout=(args.cell_timeout
                      if getattr(args, "cell_timeout", None)
                      else 300.0),
        max_attempts=(args.max_attempts
                      if getattr(args, "max_attempts", None) else 3))


async def _serve_async(config, out):
    import asyncio
    import signal as signals

    from repro.serve.service import EvaluationService
    service = EvaluationService(config)
    port = await service.start()
    out.write("repro-serve: listening on http://%s:%d "
              "(%d worker(s), queue limit %d)\n"
              % (config.host, port, config.jobs, config.queue_limit))
    out.flush()
    loop = asyncio.get_running_loop()
    for signum in (signals.SIGTERM, signals.SIGINT):
        try:
            loop.add_signal_handler(signum, service.begin_drain)
        except (NotImplementedError, ValueError, RuntimeError):
            pass
    await service.wait_closed()
    out.write("repro-serve: drained after %d request(s)\n"
              % service.metrics.count("serve.requests"))
    out.flush()


def cmd_serve(args, out, err):
    if args.load_test:
        from repro.serve.loadtest import (
            run_load_test, validate_serve_bench, write_serve_bench)
        document = run_load_test(
            requests=args.load_test, concurrency=args.concurrency,
            jobs=_resolve_jobs(args), url=args.url,
            shards=args.shards or 8, queue_limit=args.queue_limit,
            progress=lambda text: out.write("serve: %s\n" % text))
        latency = document["latency_ms"]
        out.write("serve: %d request(s), p50 %.1fms p99 %.1fms, "
                  "ok %d shed %d failed %d, degraded %d retried %d, "
                  "warm hit rate %s, wrong answers %d\n"
                  % (document["requests"], latency["p50"],
                     latency["p99"], document["outcomes"]["ok"],
                     document["outcomes"]["shed"],
                     document["outcomes"]["failed"],
                     document["responses"]["degraded"],
                     document["responses"]["retried"],
                     "n/a" if document["warm_hit_rate"] is None
                     else "%.1f%%" % (100 * document["warm_hit_rate"]),
                     document["wrong_answers"]))
        problems = validate_serve_bench(document)
        path = write_serve_bench(document, args.output)
        out.write("wrote %s\n" % path)
        if problems:
            for problem in problems:
                err.write("serve: schema problem: %s\n" % problem)
            return 1
        return 0
    import asyncio
    asyncio.run(_serve_async(_serve_config(args), out))
    return 0


def cmd_query(args, out, err):
    if args.sweep:
        return _query_sweep(args, out, err)
    if bool(args.benchmark) == bool(args.file):
        err.write("query: give a suite benchmark name or --file "
                  "(one of them, not both)\n")
        return 2
    if args.file:
        try:
            with open(args.file) as handle:
                source = handle.read()
        except OSError as error:
            err.write("query: cannot read %s: %s\n"
                      % (args.file, error))
            return 2
    else:
        from repro.benchmarks.suite import resolve_program
        try:
            source = resolve_program(args.benchmark).source
        except KeyError as error:
            err.write("query: %s\n" % error.args[0])
            return 2

    from repro.evaluation.parallel import EvaluationError, configure
    from repro.interp.engine import PrologError
    from repro.interp.orparallel import or_solutions, sequential_answers
    engine = configure(jobs=max(1, args.or_jobs),
                       policy=_supervisor_policy(args))
    try:
        result = or_solutions(source, args.goal, engine=engine,
                              use_memo=not args.no_memo,
                              limit=args.limit)
    except PrologError as error:
        err.write("query: %s\n" % error)
        return 1
    except EvaluationError as error:
        err.write(str(error) + "\n")
        _write_supervisor_report(args, engine, out)
        return 1

    if result["output"]:
        out.write(result["output"])
        if not result["output"].endswith("\n"):
            out.write("\n")
    for answer in result["answers"]:
        out.write(answer + "\n")
    summary = ("query: mode=%s branches=%d answers=%d or-jobs=%d"
               % (result["mode"], result["branches"], result["count"],
                  engine.jobs))
    if result.get("fallback"):
        summary += " (fallback: %s)" % result["fallback"]
    if result["truncated"]:
        summary += " [truncated at %d]" % args.limit
    out.write(summary + "\n")

    status = 0
    if args.compare:
        oracle = sequential_answers(source, args.goal,
                                    limit=args.limit)
        if (result["answers"] == oracle["answers"]
                and result["output"] == oracle["output"]):
            out.write("differential: answers and output match the "
                      "sequential engine\n")
        else:
            err.write("differential: MISMATCH against the sequential "
                      "engine (%d vs %d answer(s))\n"
                      % (result["count"], oracle["count"]))
            status = 1
    _write_supervisor_report(args, engine, out)
    return status


def _query_sweep(args, out, err):
    from repro.evaluation.parallel import EvaluationError
    from repro.experiments.orparallel_bench import (
        run_orparallel_bench, validate_orparallel_bench,
        write_orparallel_bench)
    try:
        document = run_orparallel_bench(
            quick=args.quick, policy=_supervisor_policy(args),
            progress=lambda name: out.write("query: %s\n" % name))
    except EvaluationError as error:
        err.write(str(error) + "\n")
        return 1

    differential = document["differential"]
    out.write("differential: %d program(s) x or-jobs %s: "
              "%d mismatch(es), %d split / %d fallback run(s)\n"
              % (differential["checked"],
                 ",".join(str(level)
                          for level in differential["jobs_levels"]),
                 len(differential["mismatches"]),
                 differential["splits"], differential["fallbacks"]))
    for workload in document["search"]["workloads"]:
        speedups = workload["or_speedup_by_jobs"]
        out.write("search %-13s %d branch(es), %d answer(s): %s, "
                  "memo hit rate %.0f%%\n"
                  % (workload["name"], workload["branches"],
                     workload["answers"],
                     "  ".join("j%s %.2fx" % (jobs, speedups[jobs])
                               for jobs in sorted(speedups, key=int)),
                     100 * workload["memo"]["hit_rate"]))
    for entry in document["stacking"]["benchmarks"]:
        out.write("stacking %-10s ilp %.2fx x or %.2fx = %.2fx\n"
                  % (entry["name"], entry["ilp_speedup"],
                     entry["or_speedup"], entry["stacked_speedup"]))

    problems = validate_orparallel_bench(document)
    if problems:
        for problem in problems:
            err.write("query: schema problem: %s\n" % problem)
        return 1
    path = write_orparallel_bench(
        document, args.output or "results/BENCH_orparallel.json")
    out.write("wrote %s\n" % path)
    if differential["mismatches"]:
        err.write("query: differential mismatches: %s\n"
                  % ", ".join(differential["mismatches"]))
        return 1
    if differential["fallback_violations"]:
        err.write("query: fallback expectation violated: %s\n"
                  % ", ".join(differential["fallback_violations"]))
        return 1
    return 0


def cmd_cache(args, out, err):
    from repro.evaluation.cache import open_store
    store = open_store(args.dir, args.shards)
    if args.action == "stats":
        usage = store.usage()
        out.write("cache %s: %d entr(ies), %d byte(s), %d shard(s), "
                  "%d quarantined (%d byte(s))\n"
                  % (usage["root"], usage["entries"], usage["bytes"],
                     usage["shards"], usage["quarantined_files"],
                     usage["quarantined_bytes"]))
        return 0
    # gc: size-budgeted LRU eviction + quarantine purge
    result = store.gc(args.budget)
    out.write("cache gc: removed %d entr(ies) (%d byte(s) freed), "
              "kept %d (%d byte(s)) within budget %d\n"
              % (result["removed"], result["freed_bytes"],
                 result["kept"], result["kept_bytes"],
                 result["budget_bytes"]))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SYMBOL: instruction-level parallelism in Prolog")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="compile and emulate a program")
    _add_compile_flags(p)
    p.add_argument("--stats", action="store_true")
    p.add_argument("--max-steps", type=int, default=500_000_000)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("listing", help="show compiled code")
    _add_compile_flags(p)
    p.add_argument("--level", choices=("bam", "ici", "both"),
                   default="both")
    p.set_defaults(func=cmd_listing)

    p = sub.add_parser("speedup", help="measure machine speedups")
    _add_compile_flags(p)
    p.add_argument("-m", "--machine", action="append",
                   choices=sorted(_MACHINES),
                   help="machine model (repeatable; default vliw3)")
    p.set_defaults(func=cmd_speedup)

    p = sub.add_parser("analyze",
                       help="per-file: instruction mix + branch stats; "
                            "without a file: dataflow passes + static "
                            "ILP bound over suite benchmarks")
    p.add_argument("file", nargs="?",
                   help="Prolog source file (omit for the suite sweep)")
    p.add_argument("--entry", default="main",
                   help="entry predicate (arity 0; default main)")
    p.add_argument("--optimize", action="store_true",
                   help="run the block-local ICI optimiser")
    p.add_argument("--no-indexing", action="store_true",
                   help="disable first-argument indexing")
    p.add_argument("--no-lco", action="store_true",
                   help="disable last-call optimisation")
    p.add_argument("--max-steps", type=int, default=500_000_000)
    p.add_argument("--bench", action="append", metavar="NAME",
                   help="suite benchmark to analyze (repeatable; "
                        "default: the paper's table benchmarks)")
    p.add_argument("--format", choices=("text", "json"),
                   default="text",
                   help="suite-sweep output format (default text)")
    p.add_argument("--output", metavar="PATH",
                   help="also write the JSON analyze document to PATH")
    p.add_argument("--perf", metavar="PATH",
                   help="write the analysis overhead record "
                        "(BENCH_analyze.json layout) to PATH")
    p.add_argument("--tail-dup-budget", type=int, default=48)
    p.add_argument("-j", "--jobs", type=int, metavar="N",
                   help="analysis worker processes (default: all "
                        "cores; 1 = in-process)")
    _add_supervisor_flags(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("bench",
                       help="time the emulator backends over the "
                            "paper suite")
    p.add_argument("name", nargs="*",
                   help="suite benchmark(s) to time (default: the "
                        "paper's table benchmarks)")
    p.add_argument("--quick", action="store_true",
                   help="time only the two cheapest benchmarks (the "
                        "CI smoke subset)")
    p.add_argument("--backend", action="append", metavar="NAME",
                   choices=("reference", "threaded", "codegen"),
                   help="emulator backend to time (repeatable; "
                        "default: all backends)")
    p.add_argument("--repeat", type=int, default=3, metavar="N",
                   help="timing repeats per backend; best-of-N is "
                        "recorded (default 3)")
    p.add_argument("--output", default="BENCH_emulator.json",
                   metavar="PATH",
                   help="where to write the perf record (default "
                        "BENCH_emulator.json)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("evaluate", help="regenerate the paper's tables")
    p.add_argument("--extras", action="store_true",
                   help="include ablations / future-work studies")
    p.add_argument("-j", "--jobs", type=int, metavar="N",
                   help="evaluation worker processes (default: all "
                        "cores; 1 = in-process)")
    p.add_argument("--bench", action="append", metavar="NAME",
                   help="smoke-sweep only these benchmarks under the "
                        "master configs (repeatable)")
    p.add_argument("--trace", metavar="PATH",
                   help="record a structured trace of the sweep "
                        "(spans + metrics) as JSONL at PATH; see "
                        "'repro trace summary'")
    _add_supervisor_flags(p)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("trace",
                       help="inspect a trace written by evaluate "
                            "--trace")
    p.add_argument("action", choices=("summary", "validate"),
                   help="summary: aggregate spans/metrics; validate: "
                        "schema + invariant check only")
    p.add_argument("trace_file", metavar="FILE",
                   help="JSONL trace file")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("lint",
                       help="check a compiled program's ICI for "
                            "well-formedness")
    _add_compile_flags(p)
    p.add_argument("--format", choices=("text", "json"),
                   default="text",
                   help="diagnostics as human text (default) or the "
                        "shared JSON document")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("corpus",
                       help="sweep the generated corpus + DCG workloads "
                            "through the differential oracle, the "
                            "checker and the static ILP bound")
    p.add_argument("--count", type=int, metavar="N",
                   help="generated programs to sweep (default 200)")
    p.add_argument("--quick", action="store_true",
                   help="small fixed seed set (10 programs; CI smoke); "
                        "implies --saturation")
    p.add_argument("--saturation", action="store_true",
                   help="also sweep the vliw1..vliw5 issue-width "
                        "saturation curve per program")
    p.add_argument("--base-seed", type=int, default=1992, metavar="SEED",
                   help="first generator seed (default 1992)")
    p.add_argument("--tail-dup-budget", type=int, default=48)
    p.add_argument("--output", default="results/BENCH_corpus.json",
                   metavar="PATH",
                   help="corpus document path (default "
                        "results/BENCH_corpus.json)")
    p.add_argument("-j", "--jobs", type=int, metavar="N",
                   help="sweep worker processes (default: all cores; "
                        "1 = in-process)")
    _add_supervisor_flags(p)
    p.set_defaults(func=cmd_corpus)

    p = sub.add_parser("verify",
                       help="run the independent checker over the "
                            "evaluation pipeline")
    p.add_argument("--bench", action="append", metavar="NAME",
                   help="suite benchmark to verify (repeatable; "
                        "default: the paper's table benchmarks)")
    p.add_argument("--file", help="verify a Prolog source file instead")
    p.add_argument("--entry", default="main",
                   help="entry predicate for --file (default main)")
    p.add_argument("--optimize", action="store_true",
                   help="optimise the --file program before verifying")
    p.add_argument("-m", "--machine", action="append", metavar="KEY",
                   help="machine config key (repeatable; default: all "
                        "master configs)")
    p.add_argument("--tail-dup-budget", type=int, default=48)
    p.add_argument("--bank-size", type=int, default=16,
                   help="register bank size for allocation checking")
    p.add_argument("--format", choices=("text", "json"),
                   default="text",
                   help="diagnostics as human text (default) or the "
                        "shared JSON document")
    p.add_argument("-j", "--jobs", type=int, metavar="N",
                   help="verification worker processes (default: all "
                        "cores; 1 = in-process)")
    _add_supervisor_flags(p)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("serve",
                       help="run the evaluation service (HTTP/JSON); "
                            "--load-test drives it instead")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (default 0 = ephemeral, printed "
                        "at startup)")
    p.add_argument("-j", "--jobs", type=int, metavar="N",
                   help="evaluation worker processes (default: all "
                        "cores; 1 = in-process)")
    p.add_argument("--shards", type=int, metavar="N",
                   help="cache shard count (default: "
                        "REPRO_CACHE_SHARDS, else unsharded)")
    p.add_argument("--cache-dir", metavar="PATH",
                   help="cache root (default: REPRO_CACHE_DIR)")
    p.add_argument("--queue-limit", type=int, default=64, metavar="N",
                   help="admission queue bound; beyond it requests "
                        "are shed with 429 (default 64)")
    p.add_argument("--batch-max", type=int, default=16, metavar="N",
                   help="max requests fused into one engine sweep "
                        "(default 16)")
    p.add_argument("--deadline", type=float, default=120.0,
                   metavar="SECONDS",
                   help="default per-request deadline (default 120)")
    p.add_argument("--breaker-threshold", type=int, default=2,
                   metavar="N",
                   help="pool deaths before the backend's circuit "
                        "breaker opens (default 2)")
    p.add_argument("--load-test", type=int, metavar="N",
                   help="run the load test (N mixed requests) instead "
                        "of serving")
    p.add_argument("--concurrency", type=int, default=64, metavar="N",
                   help="load-test client concurrency (default 64)")
    p.add_argument("--url", metavar="URL",
                   help="load-test an already running service instead "
                        "of self-hosting one")
    p.add_argument("--output", default="BENCH_serve.json",
                   metavar="PATH",
                   help="load-test document path (default "
                        "BENCH_serve.json)")
    _add_supervisor_flags(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("query",
                       help="enumerate a goal with the or-parallel "
                            "search engine (answers memoized; "
                            "--sweep measures ILP x or stacking)")
    p.add_argument("benchmark", nargs="?",
                   help="suite benchmark whose program to query "
                        "(or use --file)")
    p.add_argument("--file", metavar="PATH",
                   help="query a Prolog source file instead of a "
                        "suite benchmark")
    p.add_argument("--goal", default="main", metavar="GOAL",
                   help="goal to enumerate (default main)")
    p.add_argument("--or-jobs", type=int, default=1, metavar="N",
                   help="or-parallel branch workers (default 1 = "
                        "sequential)")
    p.add_argument("--limit", type=int, metavar="N",
                   help="stop after N answers")
    p.add_argument("--no-memo", action="store_true",
                   help="bypass the answer-memo table")
    p.add_argument("--compare", action="store_true",
                   help="differentially check answers + output "
                        "against the sequential engine (exit 1 on "
                        "mismatch)")
    p.add_argument("--sweep", action="store_true",
                   help="run the differential + stacking bench and "
                        "write results/BENCH_orparallel.json")
    p.add_argument("--quick", action="store_true",
                   help="with --sweep: the CI smoke subset (or-jobs "
                        "1,2; fewer programs)")
    p.add_argument("--output", metavar="PATH",
                   help="with --sweep: bench document path (default "
                        "results/BENCH_orparallel.json)")
    _add_supervisor_flags(p)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("cache",
                       help="inspect or garbage-collect the "
                            "content-addressed artefact cache")
    p.add_argument("action", choices=("stats", "gc"))
    p.add_argument("--dir", metavar="PATH",
                   help="cache root (default: REPRO_CACHE_DIR)")
    p.add_argument("--shards", type=int, metavar="N",
                   help="shard count of the store layout (default: "
                        "REPRO_CACHE_SHARDS, else unsharded)")
    p.add_argument("--budget", type=int, default=256 * 1024 * 1024,
                   metavar="BYTES",
                   help="gc: evict least-recently-used entries until "
                        "the cache fits (default 256 MiB)")
    p.set_defaults(func=cmd_cache)
    return parser


def main(argv=None, out=None, err=None):
    out = out or sys.stdout
    err = err or sys.stderr
    args = build_parser().parse_args(argv)
    # Fail fast on a typo'd fault-injection spec: an armed fault that
    # can never fire is itself a bug, not a no-op.
    from repro.testing import faults
    try:
        faults.validate_environment()
    except ValueError as error:
        err.write("repro: %s\n" % error)
        return 2
    if args.command == "speedup" and not args.machine:
        args.machine = ["vliw3"]
    try:
        return args.func(args, out, err)
    except KeyboardInterrupt:
        # Cooperative cancellation (the supervisor converts
        # SIGINT/SIGTERM into this): completed artefacts are already
        # atomically published, so a re-run resumes from the cache.
        err.write("repro: interrupted — partial results are in the "
                  "cache; re-run to resume\n")
        return 130


if __name__ == "__main__":
    sys.exit(main())
