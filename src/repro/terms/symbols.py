"""Interning tables shared by the compiler and the emulator.

Atoms and functors are represented at the machine level by small integer
indices (the *value* field of ``TATM`` / ``TFUN`` words).  A single
:class:`SymbolTable` instance travels with a compiled program so that the
emulator can render machine terms back to source syntax.
"""


class SymbolTable:
    """Bidirectional atom and functor interning.

    Atoms map ``name -> index``; functors map ``(name, arity) -> index``.
    The two spaces are independent, mirroring the BAM where an atom and a
    functor word carry different tags.
    """

    def __init__(self):
        self._atoms = {}
        self._atom_names = []
        self._functors = {}
        self._functor_keys = []
        # Pre-intern atoms the runtime itself relies on so their indices
        # are stable across programs.
        self.nil = self.atom("[]")
        self.atom("true")
        self.atom("fail")

    # -- atoms ---------------------------------------------------------

    def atom(self, name):
        """Intern *name*, returning its atom index."""
        index = self._atoms.get(name)
        if index is None:
            index = len(self._atom_names)
            self._atoms[name] = index
            self._atom_names.append(name)
        return index

    def atom_name(self, index):
        """The source name of atom *index*."""
        return self._atom_names[index]

    @property
    def atom_count(self):
        return len(self._atom_names)

    # -- functors ------------------------------------------------------

    def functor(self, name, arity):
        """Intern the functor ``name/arity``, returning its index."""
        key = (name, arity)
        index = self._functors.get(key)
        if index is None:
            index = len(self._functor_keys)
            self._functors[key] = index
            self._functor_keys.append(key)
        return index

    def functor_key(self, index):
        """The ``(name, arity)`` pair of functor *index*."""
        return self._functor_keys[index]

    def functor_arity(self, index):
        return self._functor_keys[index][1]

    @property
    def functor_count(self):
        return len(self._functor_keys)
