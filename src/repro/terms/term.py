"""Source-level Prolog term representation.

These classes are used by the reader, the reference interpreter and the
compiler front-end.  They are deliberately plain: an :class:`Atom` or
:class:`Int` is immutable, a :class:`Var` carries a mutable binding slot
(used only by the interpreter), and a :class:`Struct` is a functor applied
to argument terms.  Lists are ordinary ``'.'/2`` structures terminated by
the atom ``[]``, exactly as in standard Prolog.
"""


class Term:
    """Base class for all Prolog terms."""

    __slots__ = ()


class Atom(Term):
    """A Prolog atom.  Atoms with equal names compare equal."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __eq__(self, other):
        return isinstance(other, Atom) and other.name == self.name

    def __hash__(self):
        return hash(("atom", self.name))

    def __repr__(self):
        return "Atom(%r)" % self.name


class Int(Term):
    """A Prolog integer."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, Int) and other.value == self.value

    def __hash__(self):
        return hash(("int", self.value))

    def __repr__(self):
        return "Int(%d)" % self.value


class Var(Term):
    """A logic variable.

    ``ref`` is the interpreter's binding slot (``None`` when unbound).
    Identity is object identity; ``name`` is only for printing.
    """

    __slots__ = ("name", "ref")

    _counter = [0]

    def __init__(self, name=None):
        if name is None:
            Var._counter[0] += 1
            name = "_G%d" % Var._counter[0]
        self.name = name
        self.ref = None

    def __repr__(self):
        return "Var(%s)" % self.name


class Struct(Term):
    """A compound term ``name(arg1, ..., argN)`` with N >= 1."""

    __slots__ = ("name", "args")

    def __init__(self, name, args):
        if not args:
            raise ValueError("Struct needs at least one argument; use Atom")
        self.name = name
        self.args = list(args)

    @property
    def arity(self):
        return len(self.args)

    @property
    def indicator(self):
        """The predicate indicator ``(name, arity)``."""
        return (self.name, len(self.args))

    def __repr__(self):
        return "Struct(%r, %r)" % (self.name, self.args)


NIL = Atom("[]")
TRUE = Atom("true")


def make_list(items, tail=NIL):
    """Build a Prolog list term from a Python sequence."""
    result = tail
    for item in reversed(list(items)):
        result = Struct(".", [item, result])
    return result


def deref(term):
    """Follow interpreter variable bindings to the representative term."""
    while isinstance(term, Var) and term.ref is not None:
        term = term.ref
    return term


def list_items(term):
    """Return (items, tail) of a (possibly partial) Prolog list term."""
    items = []
    term = deref(term)
    while isinstance(term, Struct) and term.name == "." and term.arity == 2:
        items.append(deref(term.args[0]))
        term = deref(term.args[1])
    return items, term


_SYMBOL_ATOM_CHARS = set("+-*/\\^<>=~:.?@#&$")


def _atom_needs_quotes(name):
    if name == "":
        return True
    if name in ("[]", "!", ";", "{}", ","):
        return False
    if name[0].islower() and all(c.isalnum() or c == "_" for c in name):
        return False
    if all(c in _SYMBOL_ATOM_CHARS for c in name):
        # A bare "." is the clause terminator and a leading "/*" opens
        # a block comment — unquoted, neither reads back as an atom.
        return name == "." or name.startswith("/*")
    return True


def term_to_string(term):
    """Render a term in canonical syntax (lists sugared, atoms quoted
    when necessary).  Used by the interpreter and emulator so their outputs
    can be compared textually in tests."""
    term = deref(term)
    if isinstance(term, Atom):
        if _atom_needs_quotes(term.name):
            return "'%s'" % term.name.replace("\\", "\\\\").replace("'", "\\'")
        return term.name
    if isinstance(term, Int):
        return str(term.value)
    if isinstance(term, Var):
        return "_" + term.name.lstrip("_")
    if isinstance(term, Struct):
        if term.name == "." and term.arity == 2:
            items, tail = list_items(term)
            inner = ",".join(term_to_string(i) for i in items)
            if isinstance(tail, Atom) and tail.name == "[]":
                return "[%s]" % inner
            return "[%s|%s]" % (inner, term_to_string(tail))
        args = ",".join(term_to_string(a) for a in term.args)
        head = term.name
        # "[]" and "{}" are single atoms but lex as bracket pairs, so
        # in functor position they only read back when quoted.
        if _atom_needs_quotes(head) or head in ("[]", "{}"):
            head = "'%s'" % head.replace("\\", "\\\\").replace("'", "\\'")
        return "%s(%s)" % (head, args)
    raise TypeError("not a term: %r" % (term,))
