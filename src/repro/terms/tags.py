"""Tagged-word model of the SYMBOL datapath.

The ISCA'92 prototype packs every 32-bit register/memory word into three
independently addressable fields: a 28-bit *value*, a 3-bit *tag* and a
1-bit *cdr* flag (paper section 5.2).  We keep exactly the same field
structure but let the value field be an arbitrary-precision Python int so
host-sized integers fit; the field widths below are only used by the
instruction-encoding model (:mod:`repro.evaluation.encoding`), which enforces the
prototype's 28-bit limit.

A word is packed as ``(value << 4) | (tag << 1) | cdr``.  Python's
arbitrary-precision two's-complement bit operations make packing and
unpacking exact for negative values as well.
"""

# --- tag values (3 bits) ----------------------------------------------------

TREF = 0  #: unbound variable / reference cell
TATM = 1  #: atom (value = symbol-table index)
TINT = 2  #: integer (value = the integer)
TLST = 3  #: list cell pointer (value = heap address of a 2-word cons)
TSTR = 4  #: structure pointer (value = heap address of functor word)
TFUN = 5  #: functor word on the heap (value = functor-table index)
TCOD = 6  #: code address (continuation pointers saved in frames)
TRAW = 7  #: untyped machine word (stack bookkeeping values)

TAG_NAMES = {
    TREF: "ref",
    TATM: "atm",
    TINT: "int",
    TLST: "lst",
    TSTR: "str",
    TFUN: "fun",
    TCOD: "cod",
    TRAW: "raw",
}

#: Prototype field widths (section 5.2).  Only checked by the encoder.
VALUE_BITS = 28
TAG_BITS = 3
CDR_BITS = 1
WORD_BITS = VALUE_BITS + TAG_BITS + CDR_BITS


def pack(value, tag, cdr=0):
    """Pack a (value, tag, cdr) triple into a single tagged word."""
    return (value << 4) | (tag << 1) | cdr


def tag_of(word):
    """Extract the 3-bit tag field of a tagged word."""
    return (word >> 1) & 0b111


def value_of(word):
    """Extract the (signed) value field of a tagged word."""
    return word >> 4


def cdr_of(word):
    """Extract the 1-bit cdr field of a tagged word."""
    return word & 1


def with_tag(word, tag):
    """Return *word* with its tag field replaced (the prototype's ``mktag``)."""
    return (word & ~0b1110) | (tag << 1)


def describe(word):
    """Human-readable rendering of a tagged word, for debugging dumps."""
    return "%s(%d)%s" % (
        TAG_NAMES[tag_of(word)],
        value_of(word),
        "+cdr" if cdr_of(word) else "",
    )
