"""Prolog term model, tagged-word representation and interning tables."""

from repro.terms.term import (
    Term,
    Atom,
    Int,
    Var,
    Struct,
    NIL,
    TRUE,
    make_list,
    deref,
    list_items,
    term_to_string,
)
from repro.terms.symbols import SymbolTable
from repro.terms import tags

__all__ = [
    "Term",
    "Atom",
    "Int",
    "Var",
    "Struct",
    "NIL",
    "TRUE",
    "make_list",
    "deref",
    "list_items",
    "term_to_string",
    "SymbolTable",
    "tags",
]
