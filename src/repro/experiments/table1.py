"""Table 1 — available concurrency: basic blocks versus traces.

Paper result: with unbounded units and the single shared-memory port,
basic-block compaction reaches an average speedup of 1.65 at an average
block length of ~6 operations; global (trace) compaction reaches 2.15 at
an average region length of 11.6 — "about 30% faster than simple
basic-blocks optimizations".
"""

from repro.experiments.data import get_evaluations, table_benchmarks
from repro.experiments.render import render_table, fmt


def compute(benchmarks=None):
    benchmarks = benchmarks or table_benchmarks()
    evaluations = get_evaluations(benchmarks)
    rows = {}
    for name in benchmarks:
        evaluation = evaluations[name]
        rows[name] = {
            "trace_speedup": evaluation.speedup("tr_ideal"),
            "trace_length": evaluation.region_stats["trace"]["mean_length"],
            "bb_speedup": evaluation.speedup("bb_ideal"),
            "bb_length": evaluation.region_stats["bb"]["mean_length"],
        }
    count = len(benchmarks)
    average = {key: sum(r[key] for r in rows.values()) / count
               for key in next(iter(rows.values()))}
    return {"benchmarks": rows, "average": average,
            "trace_gain": average["trace_speedup"] / average["bb_speedup"]}


def render(data=None):
    data = data or compute()
    rows = []
    for name in sorted(data["benchmarks"]):
        entry = data["benchmarks"][name]
        rows.append([name, fmt(entry["trace_speedup"]),
                     fmt(entry["trace_length"], 1),
                     fmt(entry["bb_speedup"]),
                     fmt(entry["bb_length"], 1)])
    average = data["average"]
    rows.append(["AVERAGE", fmt(average["trace_speedup"]),
                 fmt(average["trace_length"], 1),
                 fmt(average["bb_speedup"]),
                 fmt(average["bb_length"], 1)])
    return render_table(
        "Table 1 -- available concurrency (unbounded units, 1 memory port)",
        ["benchmark", "trace s.u.", "trace len",
         "bblock s.u.", "bblock len"],
        rows,
        note="Paper averages: traces 2.15 / length 11.6; "
             "basic blocks 1.65 / length ~6.  Trace/block speedup gain "
             "here: %.0f%% (paper ~30%%)."
             % (100 * (data["trace_gain"] - 1)))


if __name__ == "__main__":
    print(render())
