"""The corpus sweep: every generated program is a differential test.

``repro corpus`` pushes the whole generated corpus (plus the three DCG
application workloads) through the full paper pipeline:

1. **Differential oracle** — the compiled ICI emulation must agree with
   the reference interpreter on status and (variable-normalised)
   output.
2. **Independent checker** — :func:`repro.evaluation.pipeline
   .verify_evaluation` re-proves lint, transform bisimulation, schedule
   legality and register allocation over a config slice (``seq``,
   ``vliw3``, ``tr_ideal``).
3. **Paper statistics** — the executed instruction mix (Table 3
   classes), branch predictability (Table 2's execution-weighted
   ``P_fp`` and the 90/50 taken-rule split) and the static ILP triple
   (sequential / achieved / dataflow-limit cycles, PR 6's gap).

Every program fans out as one supervised task on the shared evaluation
engine; profiles and cycle cells land in the same content-addressed
cache as ``repro evaluate``/``analyze``, so re-sweeps are incremental.

The sweep's product is ``results/BENCH_corpus.json`` — per-program
records plus corpus-level distributions asking where the paper's
"Prolog branches are predictable" claim (average ``P_fp`` ≈ 0.15,
section 4.4) holds or breaks at corpus scale.
"""

import time

from repro.analysis.branch_stats import (
    average_p_fp, branch_records, taken_rule_stats)
from repro.intcode.ici import OP_CLASS

__all__ = [
    "CORPUS_BENCH_SCHEMA",
    "CORPUS_CONFIG_KEYS",
    "PREDICTABLE_P_FP",
    "SATURATION_WIDTHS",
    "build_corpus_specs",
    "corpus_document",
    "run_corpus_sweep",
    "sweep_target",
    "validate_corpus_bench",
    "write_corpus_bench",
]

CORPUS_BENCH_SCHEMA = 1

#: the master-config slice every corpus program is verified under —
#: the sequential reference, a realistic 3-unit VLIW and the paper's
#: ideal trace machine (one per regioning/speculation shape)
CORPUS_CONFIG_KEYS = ("seq", "vliw3", "tr_ideal")

#: the paper's section 4.4 yardstick: an execution-weighted average
#: faulty-prediction probability at or below this is "predictable"
#: (the suite-wide figure reproduced in Table 2 is ~0.15)
PREDICTABLE_P_FP = 0.15

#: tail-duplication budget (the evaluation default)
DEFAULT_BUDGET = 48

#: the VLIW issue widths of the saturation curve (Figure 2's sweep):
#: how per-program speedup grows — and flattens — as units are added
SATURATION_WIDTHS = (1, 2, 3, 4, 5)


def _corpus_configs():
    from repro.experiments.data import master_configs
    full = master_configs()
    return {key: full[key] for key in CORPUS_CONFIG_KEYS}


def _instruction_mix(program, counts):
    """Executed instruction mix over the Figure 5 operation classes."""
    totals = {"mem": 0, "alu": 0, "move": 0, "ctrl": 0}
    for pc, instruction in enumerate(program.instructions):
        totals[OP_CLASS[instruction.op]] += counts[pc]
    executed = sum(totals.values())
    if executed == 0:
        return dict.fromkeys(totals, 0.0)
    return {key: value / executed for key, value in totals.items()}


def sweep_target(spec):
    """Process one corpus program end to end (pool worker).

    *spec* is a plain dict (picklable): ``name``, ``source``, ``kind``
    (``generated``/``dcg``), ``seed`` (or None), ``schemes``, ``budget``
    and ``max_steps``.  Returns the per-program record of the corpus
    document.
    """
    import re

    from repro.analysis.driver import _cycles_cell, _limit_cell
    from repro.bam import compile_source
    from repro.benchmarks.suite import (
        program_fingerprint, run_program_cached)
    from repro.compaction.machine_model import ideal, sequential
    from repro.evaluation.pipeline import (
        basic_block_regions, superblock_regions, verify_evaluation)
    from repro.intcode import translate_module
    from repro.interp import Engine

    name = spec["name"]
    budget = spec["budget"]
    program = translate_module(compile_source(spec["source"]))
    fingerprint = program_fingerprint(program)
    hint = name + "-"

    # 1. Differential oracle: reference interpreter vs compiled
    # emulation.  The profile is cached; the interpreter run is cheap
    # (corpus programs are small by construction).
    result = run_program_cached(program, hint)
    if result.steps > spec["max_steps"]:
        # cached profiles bypass the emulator's own ceiling
        raise AssertionError("%s: %d steps exceeds the corpus ceiling %d"
                             % (name, result.steps, spec["max_steps"]))
    engine = Engine()
    engine.consult(spec["source"])
    interp_ok = engine.run_query("main")
    normalise = lambda text: re.sub(r"_[A-Za-z0-9]+", "_", text)
    oracle_match = (interp_ok == result.succeeded
                    and normalise(engine.output_text())
                    == normalise(result.output))

    # 2. The independent checker over the config slice.
    configs = _corpus_configs()
    diagnostics = verify_evaluation(program, result, configs,
                                    tail_dup_budget=budget,
                                    cache_hint=hint)

    # 3. Paper statistics: mix, branches, static ILP triple.
    mix = _instruction_mix(program, result.counts)
    records = branch_records(program, result.counts, result.taken)
    taken = taken_rule_stats(records)
    branch = {
        "static_branches": len(records),
        "dynamic_branches": sum(r.executed for r in records),
        "avg_p_fp": average_p_fp(records),
        "backward_taken": taken["backward"]["mean_taken"],
        "forward_taken": taken["forward"]["mean_taken"],
    }

    bb_set = basic_block_regions(program, result)
    trace_set = superblock_regions(program, result, budget, hint)
    seq_cycles = _cycles_cell(fingerprint, "bb", None, sequential(),
                              bb_set, True)
    achieved_cycles = _cycles_cell(fingerprint, "trace", budget,
                                   ideal("ideal_tr"), trace_set, True)
    limit_cycles = _limit_cell(fingerprint, budget, ideal("dataflow"),
                               trace_set, True)
    achieved = seq_cycles / achieved_cycles
    bound = seq_cycles / limit_cycles
    ilp = {
        "sequential_cycles": seq_cycles,
        "achieved_cycles": achieved_cycles,
        "dataflow_limit_cycles": limit_cycles,
        "achieved_speedup": achieved,
        "dataflow_limit_speedup": bound,
        "gap": bound / achieved,
    }

    record = {
        "name": name,
        "kind": spec["kind"],
        "seed": spec["seed"],
        "schemes": spec["schemes"],
        "ops": len(program),
        "steps": result.steps,
        "oracle": {
            "match": oracle_match,
            "interpreter_succeeded": interp_ok,
            "emulator_succeeded": result.succeeded,
        },
        "verify_findings": len(diagnostics),
        "mix": mix,
        "branch": branch,
        "ilp": ilp,
    }

    if spec.get("saturation"):
        # ILP saturation: speedup over the sequential machine as the
        # VLIW issue width grows (the corpus-scale twin of Figure 2's
        # width sweep).  Cells land in the same memoised cache as the
        # master evaluation, so the curve is incremental too.
        from repro.experiments.data import master_configs
        widths = master_configs()
        curve = {}
        for width in SATURATION_WIDTHS:
            config, _regioning = widths["vliw%d" % width]
            cycles = _cycles_cell(fingerprint, "trace", budget, config,
                                  trace_set, True)
            curve["vliw%d" % width] = (seq_cycles / cycles
                                       if cycles else 0.0)
        record["saturation"] = curve

    return record


def build_corpus_specs(count, base_seed, budget=DEFAULT_BUDGET,
                       include_workloads=True, saturation=False):
    """The sweep's task list: *count* generated programs (+ workloads)."""
    from repro.corpus.generate import (
        GENERATOR_MAX_STEPS, corpus_programs)
    from repro.corpus.workloads import DCG_WORKLOADS

    specs = []
    if include_workloads:
        for name in sorted(DCG_WORKLOADS):
            workload = DCG_WORKLOADS[name]
            specs.append({
                "name": name, "source": workload.source, "kind": "dcg",
                "seed": None, "schemes": [], "budget": budget,
                "max_steps": GENERATOR_MAX_STEPS,
                "saturation": saturation,
            })
    for generated in corpus_programs(count, base_seed):
        specs.append({
            "name": generated.name, "source": generated.source,
            "kind": "generated", "seed": generated.seed,
            "schemes": generated.schemes, "budget": budget,
            "max_steps": GENERATOR_MAX_STEPS,
            "saturation": saturation,
        })
    return specs


# --------------------------------------------------------------------------
# Corpus-level distributions and the paper-claim report.

def _quantiles(values):
    """min / quartiles / max of a value list (empty-safe)."""
    if not values:
        return {"min": 0.0, "p25": 0.0, "median": 0.0, "p75": 0.0,
                "max": 0.0, "mean": 0.0}
    ordered = sorted(values)

    def at(fraction):
        index = min(len(ordered) - 1,
                    int(round(fraction * (len(ordered) - 1))))
        return ordered[index]

    return {
        "min": ordered[0],
        "p25": at(0.25),
        "median": at(0.5),
        "p75": at(0.75),
        "max": ordered[-1],
        "mean": sum(ordered) / len(ordered),
    }


def _p_fp_bins(values):
    """Histogram of per-program average P_fp over [0, 0.5]."""
    edges = [0.05, 0.10, 0.15, 0.25, 0.50]
    labels = ["<0.05", "0.05-0.10", "0.10-0.15", "0.15-0.25", ">=0.25"]
    counts = [0] * len(labels)
    for value in values:
        for index, edge in enumerate(edges):
            if value < edge or index == len(edges) - 1:
                counts[index] += 1
                break
    return dict(zip(labels, counts))


def _claim_report(records):
    """Where the paper's predictability claim holds or breaks.

    Section 4.4 claims Prolog branches are predictable (suite average
    ``P_fp`` ≈ 0.15) *and* that the numeric-code 90/50 taken rule does
    not transfer.  We score both per program and name the outliers.
    """
    with_branches = [r for r in records
                     if r["branch"]["dynamic_branches"] > 0]
    p_fps = [r["branch"]["avg_p_fp"] for r in with_branches]
    predictable = [r for r in with_branches
                   if r["branch"]["avg_p_fp"] <= PREDICTABLE_P_FP]
    breakers = sorted(
        (r for r in with_branches
         if r["branch"]["avg_p_fp"] > PREDICTABLE_P_FP),
        key=lambda r: r["branch"]["avg_p_fp"], reverse=True)
    ninety_fifty = [
        r for r in with_branches
        if r["branch"]["backward_taken"] >= 0.85
        and abs(r["branch"]["forward_taken"] - 0.5) <= 0.15]
    return {
        "threshold_p_fp": PREDICTABLE_P_FP,
        "programs_with_branches": len(with_branches),
        "predictable": len(predictable),
        "predictable_fraction": (len(predictable) / len(with_branches)
                                 if with_branches else 0.0),
        "p_fp_distribution": _quantiles(p_fps),
        "p_fp_histogram": _p_fp_bins(p_fps),
        "worst": [{"name": r["name"],
                   "avg_p_fp": r["branch"]["avg_p_fp"],
                   "schemes": r["schemes"]}
                  for r in breakers[:10]],
        # how many programs *do* follow numeric code's 90/50 rule
        # (the paper says the suite doesn't; does the corpus?)
        "ninety_fifty_rule_holds": len(ninety_fifty),
    }


def corpus_document(records, elapsed_seconds, count, base_seed):
    """The ``BENCH_corpus.json`` document for one sweep."""
    from repro.benchmarks.perf import git_revision

    mismatches = [r["name"] for r in records if not r["oracle"]["match"]]
    findings = [r["name"] for r in records if r["verify_findings"]]
    gaps = [r["ilp"]["gap"] for r in records]
    achieved = [r["ilp"]["achieved_speedup"] for r in records]
    limits = [r["ilp"]["dataflow_limit_speedup"] for r in records]
    generated = [r for r in records if r["kind"] == "generated"]
    dcg = [r for r in records if r["kind"] == "dcg"]
    with_curve = [r for r in records if "saturation" in r]
    saturation = {
        "vliw%d" % width: _quantiles(
            [r["saturation"]["vliw%d" % width] for r in with_curve])
        for width in SATURATION_WIDTHS
    } if with_curve else None
    document = {
        "schema": CORPUS_BENCH_SCHEMA,
        "kind": "corpus-sweep",
        "revision": git_revision(),
        "parameters": {
            "count": count,
            "base_seed": base_seed,
            "machine_configs": list(CORPUS_CONFIG_KEYS),
        },
        "programs": list(records),
        "summary": {
            "programs": len(records),
            "generated": len(generated),
            "dcg_workloads": len(dcg),
            "total_steps": sum(r["steps"] for r in records),
            "total_seconds": round(elapsed_seconds, 4),
            "oracle_mismatches": mismatches,
            "verify_finding_programs": findings,
            "ilp": {
                "achieved_speedup": _quantiles(achieved),
                "dataflow_limit_speedup": _quantiles(limits),
                "gap": _quantiles(gaps),
            },
            "claim": _claim_report(records),
        },
    }
    if saturation is not None:
        document["summary"]["saturation"] = saturation
    return document


def validate_corpus_bench(document):
    """Schema problems of a BENCH_corpus.json document (empty=valid)."""
    problems = []

    def require(condition, message):
        if not condition:
            problems.append(message)
        return condition

    if not require(isinstance(document, dict),
                   "document is not an object"):
        return problems
    require(document.get("schema") == CORPUS_BENCH_SCHEMA,
            "'schema' is not %d" % CORPUS_BENCH_SCHEMA)
    require(document.get("kind") == "corpus-sweep",
            "'kind' is not 'corpus-sweep'")
    require(isinstance(document.get("revision"), str),
            "'revision' is not a string")
    parameters = document.get("parameters")
    if require(isinstance(parameters, dict),
               "'parameters' is not an object"):
        require(isinstance(parameters.get("count"), int),
                "'parameters.count' is not an int")
        require(isinstance(parameters.get("base_seed"), int),
                "'parameters.base_seed' is not an int")
    programs = document.get("programs")
    if require(isinstance(programs, list) and programs,
               "'programs' is not a non-empty list"):
        for index, record in enumerate(programs):
            where = "programs[%d]" % index
            if not require(isinstance(record, dict),
                           "%s is not an object" % where):
                continue
            require(isinstance(record.get("name"), str),
                    "%s: 'name' is not a string" % where)
            require(record.get("kind") in ("generated", "dcg"),
                    "%s: 'kind' is not generated/dcg" % where)
            oracle = record.get("oracle")
            require(isinstance(oracle, dict)
                    and isinstance(oracle.get("match"), bool),
                    "%s: 'oracle.match' is not a bool" % where)
            require(isinstance(record.get("verify_findings"), int),
                    "%s: 'verify_findings' is not an int" % where)
            branch = record.get("branch")
            require(isinstance(branch, dict)
                    and isinstance(branch.get("avg_p_fp"),
                                   (int, float)),
                    "%s: 'branch.avg_p_fp' is not a number" % where)
            ilp = record.get("ilp")
            require(isinstance(ilp, dict)
                    and isinstance(ilp.get("gap"), (int, float)),
                    "%s: 'ilp.gap' is not a number" % where)
            if "saturation" in record:
                curve = record["saturation"]
                require(isinstance(curve, dict)
                        and sorted(curve) == sorted(
                            "vliw%d" % w for w in SATURATION_WIDTHS)
                        and all(isinstance(v, (int, float))
                                for v in curve.values()),
                        "%s: 'saturation' is not a full vliw1..vliw%d "
                        "number curve" % (where, SATURATION_WIDTHS[-1]))
            mix = record.get("mix")
            if require(isinstance(mix, dict),
                       "%s: 'mix' is not an object" % where):
                require(abs(sum(mix.values()) - 1.0) < 1e-6,
                        "%s: 'mix' does not sum to 1" % where)
    summary = document.get("summary")
    if require(isinstance(summary, dict), "'summary' is not an object"):
        require(summary.get("programs") == len(programs or []),
                "'summary.programs' does not count the records")
        require(isinstance(summary.get("oracle_mismatches"), list),
                "'summary.oracle_mismatches' is not a list")
        require(isinstance(summary.get("verify_finding_programs"), list),
                "'summary.verify_finding_programs' is not a list")
        claim = summary.get("claim")
        if require(isinstance(claim, dict),
                   "'summary.claim' is not an object"):
            require(isinstance(claim.get("predictable_fraction"),
                               (int, float)),
                    "'claim.predictable_fraction' is not a number")
            require(isinstance(claim.get("p_fp_histogram"), dict),
                    "'claim.p_fp_histogram' is not an object")
        ilp = summary.get("ilp")
        if require(isinstance(ilp, dict),
                   "'summary.ilp' is not an object"):
            for key in ("achieved_speedup", "dataflow_limit_speedup",
                        "gap"):
                require(isinstance(ilp.get(key), dict),
                        "'summary.ilp.%s' is not an object" % key)
        if "saturation" in summary:
            curve = summary["saturation"]
            require(isinstance(curve, dict)
                    and sorted(curve) == sorted(
                        "vliw%d" % w for w in SATURATION_WIDTHS)
                    and all(isinstance(v, dict)
                            for v in (curve or {}).values()),
                    "'summary.saturation' is not a full vliw1..vliw%d "
                    "quantile curve" % SATURATION_WIDTHS[-1])
    return problems


def write_corpus_bench(document, path="results/BENCH_corpus.json"):
    """Atomically publish the corpus sweep record."""
    import os

    from repro.atomicio import atomic_write_json
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    atomic_write_json(path, document, indent=2, sort_keys=True)
    return path


def run_corpus_sweep(count, base_seed, engine=None,
                     budget=DEFAULT_BUDGET, include_workloads=True,
                     progress=None, saturation=False):
    """Sweep the corpus through :func:`sweep_target`; returns the
    BENCH document.  Tasks fan out over *engine* (or the shared one),
    supervised and cache-backed.  With *saturation*, every program
    also sweeps the vliw1..vliw5 width curve."""
    from repro.evaluation.parallel import shared_engine

    engine = engine or shared_engine()
    specs = build_corpus_specs(count, base_seed, budget,
                               include_workloads, saturation)
    started = time.perf_counter()
    records = engine.map(sweep_target, specs)
    elapsed = time.perf_counter() - started
    if progress is not None:
        for record in records:
            progress(record)
    return corpus_document(records, elapsed, count, base_seed)
