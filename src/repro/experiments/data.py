"""Shared evaluation data for all experiments.

Every table pulls from one master configuration set so each benchmark is
compiled, transformed and scheduled exactly once per configuration, with
results memoised on disk by :mod:`repro.evaluation.pipeline`.
"""

from repro.compaction import (
    sequential, bam_like, vliw, ideal, symbol3, symbol3_sequential)
from repro.evaluation import evaluate_benchmark
from repro.benchmarks import PROGRAMS, TABLE_BENCHMARKS, run_benchmark, \
    compile_benchmark


def master_configs():
    """Result key -> (MachineConfig, regioning) for the whole evaluation."""
    configs = {
        "seq": (sequential(), "bb"),
        "bam": (bam_like(), "bb"),
        "bb_ideal": (ideal("ideal_bb"), "bb"),
        "tr_ideal": (ideal("ideal_tr"), "trace"),
        "symbol3": (symbol3(), "trace"),
        "symbol_seq": (symbol3_sequential(), "bb"),
    }
    for n_units in range(1, 6):
        configs["vliw%d" % n_units] = (vliw(n_units), "trace")
    return configs


_evaluations = {}


def get_evaluation(name):
    """Evaluate benchmark *name* under the master configuration set."""
    if name not in _evaluations:
        _evaluations[name] = evaluate_benchmark(name, master_configs())
    return _evaluations[name]


def get_profile(name):
    """(program, emulation result) for benchmark *name*."""
    return compile_benchmark(name), run_benchmark(name)


def table_benchmarks():
    """The benchmarks of the paper's Tables 1/3/4/5."""
    return list(TABLE_BENCHMARKS)


def all_benchmarks():
    return list(PROGRAMS)
