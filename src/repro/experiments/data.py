"""Shared evaluation data for all experiments.

Every table pulls from one master configuration set so each benchmark is
compiled, transformed and scheduled exactly once per configuration.  All
work is submitted through the shared
:class:`~repro.evaluation.parallel.EvaluationEngine` — experiments ask
for *batches* (:func:`get_evaluations`, :func:`get_profiles`) so the
engine can fan the independent benchmark x configuration cells out
across worker processes, with every artefact memoised in the
content-addressed cache.
"""

from repro.compaction import (
    sequential, bam_like, vliw, ideal, symbol3, symbol3_sequential)
from repro.evaluation.parallel import shared_engine
from repro.benchmarks import PROGRAMS, TABLE_BENCHMARKS, run_benchmark, \
    compile_benchmark


def master_configs():
    """Result key -> (MachineConfig, regioning) for the whole evaluation."""
    configs = {
        "seq": (sequential(), "bb"),
        "bam": (bam_like(), "bb"),
        "bb_ideal": (ideal("ideal_bb"), "bb"),
        "tr_ideal": (ideal("ideal_tr"), "trace"),
        "symbol3": (symbol3(), "trace"),
        "symbol_seq": (symbol3_sequential(), "bb"),
    }
    for n_units in range(1, 6):
        configs["vliw%d" % n_units] = (vliw(n_units), "trace")
    return configs


_evaluations = {}


def get_evaluations(names):
    """Evaluate *names* under the master configuration set, as a batch.

    Missing benchmarks are submitted to the shared engine in one task
    DAG — with ``--jobs N`` every cell runs in parallel — and memoised
    for the rest of the process.  Returns ``{name: evaluation}``.
    """
    missing = [name for name in names if name not in _evaluations]
    if missing:
        configs = master_configs()
        evaluations = shared_engine().evaluate_many(
            [{"name": name, "configs": configs} for name in missing])
        for name, evaluation in zip(missing, evaluations):
            _evaluations[name] = evaluation
    return {name: _evaluations[name] for name in names}


def get_evaluation(name):
    """Evaluate benchmark *name* under the master configuration set."""
    return get_evaluations([name])[name]


def profile_backends():
    """benchmark -> emulator backend that produced its profile artefact.

    Covers the benchmarks evaluated so far in this process; a cached
    profile reports the backend that originally computed it, which may
    differ from the currently active backend.
    """
    return {name: evaluation.data.get("backend", "reference")
            for name, evaluation in sorted(_evaluations.items())
            if evaluation is not None}


def get_profile(name):
    """(program, emulation result) for benchmark *name*."""
    return compile_benchmark(name), run_benchmark(name)


def get_profiles(names):
    """Profiles for *names*, emulating cold ones in parallel."""
    shared_engine().prewarm_profiles(names)
    return {name: get_profile(name) for name in names}


def table_benchmarks():
    """The benchmarks of the paper's Tables 1/3/4/5."""
    return list(TABLE_BENCHMARKS)


def all_benchmarks():
    return list(PROGRAMS)
