"""Figure 3 — Amdahl's-law speedup bounds for the shared-memory model.

Uses the memory fraction measured by Figure 2 (the paper rounds it to
0.32, giving the asymptotic speedup of 3.0).
"""

from repro.analysis.amdahl import (
    figure3_series, memory_bound_speedup, useful_concurrency_limit)
from repro.experiments import figure2
from repro.experiments.render import render_curve
from repro.intcode.ici import MEM


def compute(mem_fraction=None, max_enhancement=16, points=31):
    if mem_fraction is None:
        mem_fraction = figure2.compute()["average"][MEM]
    step = (max_enhancement - 1) / (points - 1)
    enhancements = [1 + i * step for i in range(points)]
    series = figure3_series(mem_fraction, enhancements)
    return {
        "mem_fraction": mem_fraction,
        "asymptote": memory_bound_speedup(mem_fraction),
        "useful_limit": useful_concurrency_limit(mem_fraction),
        "series": series,
    }


def render(data=None):
    data = data or compute()
    series = data["series"]
    plot = render_curve(
        "Figure 3 -- maximum speedup vs enhancement of non-memory ops",
        series["enhancement"],
        {"memory separate": series["separate"],
         "memory overlapped": series["overlapped"]})
    return "%s\n\nmeasured memory fraction = %.3f -> Amdahl bound %.2f " \
        "(paper: 0.32 -> 3.0); concurrency useless beyond %.2f" % (
            plot, data["mem_fraction"], data["asymptote"],
            data["useful_limit"])


if __name__ == "__main__":
    print(render())
