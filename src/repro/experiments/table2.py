"""Table 2 — probability of faulty prediction of branch direction.

Paper: execution-weighted average P_fp is about 0.15 across the suite,
"value which guarantees a low performance decay due to run-time
unpredictable execution flow" — the statistical justification for trace
scheduling on symbolic code.
"""

from repro.analysis.branch_stats import branch_records, average_p_fp
from repro.experiments.data import get_profiles, all_benchmarks
from repro.experiments.render import render_table, fmt


def compute(benchmarks=None):
    benchmarks = benchmarks or all_benchmarks()
    profiles = get_profiles(benchmarks)
    rows = {}
    for name in benchmarks:
        program, result = profiles[name]
        records = branch_records(program, result.counts, result.taken)
        rows[name] = {
            "p_fp": average_p_fp(records),
            "static_branches": len(records),
            "dynamic_branches": sum(r.executed for r in records),
        }
    average = sum(r["p_fp"] for r in rows.values()) / len(rows)
    return {"benchmarks": rows, "average": average}


def render(data=None):
    data = data or compute()
    rows = []
    for name in sorted(data["benchmarks"]):
        entry = data["benchmarks"][name]
        rows.append([name, fmt(entry["p_fp"], 4),
                     entry["static_branches"],
                     entry["dynamic_branches"]])
    rows.append(["AVERAGE", fmt(data["average"], 4), "", ""])
    return render_table(
        "Table 2 -- average probability of faulty branch prediction",
        ["benchmark", "P_fp", "static br", "dynamic br"],
        rows,
        note="Paper average: 0.1475.")


if __name__ == "__main__":
    print(render())
