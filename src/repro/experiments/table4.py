"""Table 4 — absolute execution times of Prolog implementations.

The Quintus / VLSI-PLM / KCM / BAM columns are the published numbers from
the paper (milliseconds); they are reference data, not something we can
re-measure.  The SYMBOL-3 column is regenerated: cycles of the 3-unit
prototype model at the measured 30 MHz clock.  Because our benchmark
inputs are sized for Python-hosted emulation, absolute milliseconds are
not comparable row by row; the reproducible observable is the
*cycle-count ratio* between the BAM stand-in and SYMBOL-3, which the
paper reports as SYMBOL-3 reaching 83% of BAM performance.

Section 5.3's headline MLIPS number (2.1 on NREVERSE) is recomputed from
counted logical inferences.
"""

from repro.experiments.data import get_evaluation, get_evaluations, \
    get_profile, table_benchmarks
from repro.experiments.render import render_table, fmt

CLOCK_HZ = 30e6

#: milliseconds from the paper's Table 4 (None = not reported)
PAPER_MS = {
    #                Quintus   VLSI-PLM   KCM      BAM      Symbol-3
    "divide10":     (0.41,     0.38,      0.091,   0.0387,  0.0423),
    "log10":        (0.15,     0.109,     0.039,   0.0201,  0.0146),
    "mu":           (12.407,   4.644,     None,    0.8557,  1.2913),
    "nreverse":     (1.62,     2.10,      0.65,    0.2057,  0.2401),
    "ops8":         (0.24,     0.214,     0.059,   0.0251,  0.0274),
    "prover":       (8.67,     6.83,      None,    0.9722,  1.2995),
    "qsort":        (4.82,     4.24,      1.32,    0.2253,  0.2192),
    "queens_8":     (21.20,    28.80,     1.205,   1.2017,  1.549),
    "sendmore":     (490.00,   None,      None,    42.3364, 44.0939),
    "serialise":    (3.10,     2.47,      1.22,    0.5133,  0.6556),
    "tak":          (1120.00,  940.00,    None,    31.047,  32.067),
    "times10":      (0.345,    0.2470,    0.082,   0.0346,  0.0363),
    "zebra":        (425.00,   None,      None,    86.890,  119.184),
}


def logical_inferences(name):
    """Dynamic count of predicate invocations (calls + tail calls)."""
    program, result = get_profile(name)
    total = 0
    for pc, instruction in enumerate(program.instructions):
        if instruction.op in ("call", "jmp") \
                and instruction.label is not None \
                and instruction.label.startswith("P:"):
            total += result.counts[pc]
    return total


def compute(benchmarks=None):
    benchmarks = benchmarks or table_benchmarks()
    evaluations = get_evaluations(benchmarks)
    rows = {}
    ratios = []
    for name in benchmarks:
        evaluation = evaluations[name]
        cycles = evaluation.cycles("symbol3")
        milliseconds = cycles / CLOCK_HZ * 1e3
        bam_ratio = evaluation.cycles("bam") / cycles
        ratios.append(bam_ratio)
        rows[name] = {
            "symbol3_cycles": cycles,
            "symbol3_ms": milliseconds,
            "bam_over_symbol3": bam_ratio,
            "paper_ms": PAPER_MS.get(name),
        }
    nrev_li = logical_inferences("nreverse")
    nrev_cycles = get_evaluation("nreverse").cycles("symbol3")
    mlips = nrev_li / (nrev_cycles / CLOCK_HZ) / 1e6
    return {
        "benchmarks": rows,
        "mean_bam_over_symbol3": sum(ratios) / len(ratios),
        "nreverse_mlips": mlips,
        "nreverse_inferences": nrev_li,
    }


def render(data=None):
    data = data or compute()
    rows = []
    for name in sorted(data["benchmarks"]):
        entry = data["benchmarks"][name]
        paper = entry["paper_ms"] or (None,) * 5
        rows.append([
            name,
            fmt(paper[0], 3), fmt(paper[1], 3), fmt(paper[2], 3),
            fmt(paper[3], 4), fmt(paper[4], 4),
            fmt(entry["symbol3_ms"], 4),
            fmt(entry["bam_over_symbol3"]),
        ])
    rows.append(["MEAN", "", "", "", "", "", "",
                 fmt(data["mean_bam_over_symbol3"])])
    return render_table(
        "Table 4 -- absolute times (ms); paper columns are published data",
        ["benchmark", "Quintus*", "VLSI-PLM*", "KCM*", "BAM*",
         "Symbol-3*", "Symbol-3 (ours)", "BAM/Sym3 cycles"],
        rows,
        note="* = values reported in the paper.  Paper: SYMBOL-3 reaches "
             "0.83x BAM.  NREVERSE: %.2f MLIPS at 30 MHz from %d "
             "inferences (paper: 2.1 MLIPS peak)."
             % (data["nreverse_mlips"], data["nreverse_inferences"]))


if __name__ == "__main__":
    print(render())
