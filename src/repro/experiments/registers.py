"""Register-pressure study: does the prototype's 16-register bank pay?

Section 5.2 commits SYMBOL-3 to a 16 x 32-bit register bank with no
reserved registers.  This experiment measures the pressure the compiler
actually generates: peak simultaneous live values per scheduled region
(execution weighted) and the fraction of dynamic region executions that
would need spills with banks of 8, 16, 32 registers.
"""

from repro.compaction import symbol3
from repro.compaction.regalloc import region_pressure
from repro.compaction.scheduler import schedule_region
from repro.evaluation.parallel import (
    config_signature, memoised, shared_engine)
from repro.evaluation.pipeline import superblock_regions
from repro.benchmarks import compile_benchmark, run_program_cached
from repro.benchmarks.suite import program_fingerprint
from repro.experiments.render import render_table, fmt

DEFAULT_BENCHMARKS = ["nreverse", "qsort", "serialise", "queens_8", "mu",
                      "zebra"]
BANKS = (8, 16, 32)


def benchmark_pressure(name, config=None):
    """Execution-weighted pressure statistics for one benchmark."""
    config = config or symbol3()
    program = compile_benchmark(name)
    result = run_program_cached(program, name + "-")
    region_set = superblock_regions(program, result, cache_hint=name + "-")

    weighted_maxlive = 0.0
    peak = 0
    total_entries = 0
    spill_entries = {bank: 0 for bank in BANKS}
    for region in region_set.executed_regions():
        entries = region_set.counts[region.start]
        ops = region_set.program.instructions[region.start:region.end]
        schedule = schedule_region(ops, config)
        report = region_pressure(ops, schedule)
        weighted_maxlive += entries * report.max_live
        peak = max(peak, report.max_live)
        total_entries += entries
        for bank in BANKS:
            if report.spills_for(bank) > 0:
                spill_entries[bank] += entries
    return {
        "mean_maxlive": weighted_maxlive / total_entries,
        "peak_maxlive": peak,
        "spill_fraction": {bank: spill_entries[bank] / total_entries
                           for bank in BANKS},
    }


def _pressure_cell(name):
    """Content-cached :func:`benchmark_pressure` (JSON string keys)."""
    fingerprint = program_fingerprint(compile_benchmark(name))

    def compute_cell():
        report = benchmark_pressure(name)
        return dict(report, spill_fraction={
            str(bank): value
            for bank, value in report["spill_fraction"].items()})

    payload = memoised(
        "pressure",
        {"fingerprint": fingerprint,
         "config": config_signature(symbol3()), "budget": 48},
        compute_cell)
    return dict(payload, spill_fraction={
        int(bank): value
        for bank, value in payload["spill_fraction"].items()})


def compute(benchmarks=None):
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    reports = shared_engine().map(_pressure_cell, benchmarks)
    rows = dict(zip(benchmarks, reports))
    count = len(rows)
    average = {
        "mean_maxlive": sum(r["mean_maxlive"]
                            for r in rows.values()) / count,
        "spill_fraction": {bank: sum(r["spill_fraction"][bank]
                                     for r in rows.values()) / count
                           for bank in BANKS},
    }
    return {"benchmarks": rows, "average": average}


def render(data=None):
    data = data or compute()
    rows = []
    for name in sorted(data["benchmarks"]):
        entry = data["benchmarks"][name]
        rows.append([name, fmt(entry["mean_maxlive"], 1),
                     entry["peak_maxlive"]]
                    + [fmt(100 * entry["spill_fraction"][b], 1)
                       for b in BANKS])
    average = data["average"]
    rows.append(["AVERAGE", fmt(average["mean_maxlive"], 1), ""]
                + [fmt(100 * average["spill_fraction"][b], 1)
                   for b in BANKS])
    return render_table(
        "Register pressure on the SYMBOL-3 prototype",
        ["benchmark", "mean maxlive", "peak",
         "spill% @8", "spill% @16", "spill% @32"],
        rows,
        note="maxlive counts local values plus the resident abstract-"
             "machine state; spill% = dynamic region executions whose "
             "locals do not fit the bank.")


if __name__ == "__main__":
    print(render())
