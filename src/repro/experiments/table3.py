"""Table 3 / Figure 6 — cycles and speedup versus number of units.

Paper shape: the BAM stand-in reaches ~1.6 (near the basic-block limit);
trace-scheduled VLIW configurations improve with units and saturate at
3-4 units "as it was forecast by Amdahl's law"; the incremental gain
beyond the first unit is modest.
"""

from repro.experiments.data import get_evaluations, table_benchmarks
from repro.experiments.render import render_table, render_curve, fmt

UNIT_KEYS = ["vliw1", "vliw2", "vliw3", "vliw4", "vliw5"]


def compute(benchmarks=None):
    benchmarks = benchmarks or table_benchmarks()
    evaluations = get_evaluations(benchmarks)
    rows = {}
    for name in benchmarks:
        evaluation = evaluations[name]
        entry = {"seq_cycles": evaluation.cycles("seq"),
                 "bam": evaluation.speedup("bam")}
        for key in UNIT_KEYS:
            entry[key] = evaluation.speedup(key)
            entry[key + "_cycles"] = evaluation.cycles(key)
        rows[name] = entry
    count = len(benchmarks)
    average = {}
    for key in ["bam"] + UNIT_KEYS:
        average[key] = sum(r[key] for r in rows.values()) / count
    return {"benchmarks": rows, "average": average}


def render(data=None):
    data = data or compute()
    rows = []
    for name in sorted(data["benchmarks"]):
        entry = data["benchmarks"][name]
        rows.append([name, entry["seq_cycles"], fmt(entry["bam"])]
                    + [fmt(entry[k]) for k in UNIT_KEYS])
    average = data["average"]
    rows.append(["AVERAGE", "", fmt(average["bam"])]
                + [fmt(average[k]) for k in UNIT_KEYS])
    table = render_table(
        "Table 3 -- speedup vs sequential for parallel configurations",
        ["benchmark", "seq cycles", "BAM", "1 unit", "2 units", "3 units",
         "4 units", "5 units"],
        rows,
        note="Paper averages: BAM 1.58; units rise then saturate at 3-4 "
             "(Amdahl).")
    curve = render_curve(
        "Figure 6 -- average speedup vs number of units",
        [1, 2, 3, 4, 5],
        {"trace-scheduled VLIW": [average[k] for k in UNIT_KEYS],
         "BAM": [average["bam"]] * 5})
    return table + "\n\n" + curve


if __name__ == "__main__":
    print(render())
