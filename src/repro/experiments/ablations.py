"""Ablation studies on the design choices DESIGN.md calls out.

These go beyond the paper's tables and quantify its central assumptions:

* ``memory_ports`` — relax the single shared-memory port.  The paper's
  whole Amdahl argument (section 4.2) rests on this resource; extra ports
  should lift the saturation ceiling.
* ``speculation`` — disable upward code motion past branches.  Global
  compaction without speculation degenerates towards basic-block quality.
* ``inter_unit_moves`` — charge a cycle for operands produced on another
  unit (the prototype's bus reality; section 3.2's "register movement
  insertion").
* ``tail_dup_budget`` — sweep the compensation-code budget: the
  trace-length / code-growth trade-off of section 4.4.
"""

from repro.compaction import sequential, vliw
from repro.evaluation.parallel import shared_engine
from repro.experiments.render import render_table, fmt

#: representative subset (full sweep would multiply evaluation time)
DEFAULT_BENCHMARKS = ["nreverse", "qsort", "serialise", "queens_8"]


def _average_speedup(benchmarks, configs, **kwargs):
    evaluations = shared_engine().evaluate_many(
        [dict(name=name, configs=configs, **kwargs)
         for name in benchmarks])
    speedups = {key: [] for key in configs if key != "seq"}
    for evaluation in evaluations:
        for key in speedups:
            speedups[key].append(evaluation.speedup(key))
    return {key: sum(values) / len(values)
            for key, values in speedups.items()}


def memory_ports(benchmarks=None, ports=(1, 2, 4)):
    """Average speedup of a 4-unit machine as memory ports increase."""
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    configs = {"seq": (sequential(), "bb")}
    for n_ports in ports:
        configs["ports%d" % n_ports] = (
            vliw(4, name="vliw4p%d" % n_ports, mem_ports=n_ports),
            "trace")
    averages = _average_speedup(benchmarks, configs)
    return {"ports": list(ports),
            "speedup": [averages["ports%d" % p] for p in ports]}


def speculation(benchmarks=None):
    """Average 3-unit speedup with and without branch speculation."""
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    configs = {
        "seq": (sequential(), "bb"),
        "spec_on": (vliw(3, name="vliw3s1"), "trace"),
        "spec_off": (vliw(3, name="vliw3s0", speculation=False), "trace"),
    }
    return _average_speedup(benchmarks, configs)


def inter_unit_moves(benchmarks=None):
    """Average 3-unit speedup with free versus 1-cycle cross-unit reads."""
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    configs = {
        "seq": (sequential(), "bb"),
        "free": (vliw(3, name="vliw3m0"), "trace"),
        "penalty": (vliw(3, name="vliw3m1", inter_unit_penalty=1),
                    "trace"),
    }
    return _average_speedup(benchmarks, configs)


def tail_dup_budget(benchmarks=None, budgets=(0, 16, 48, 128)):
    """Speedup and region length as the duplication budget grows."""
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    # One DAG across the whole budget x benchmark grid: the sequential
    # baseline cells are shared between budgets (basic-block artefacts
    # do not depend on the duplication budget), everything else fans
    # out in parallel.
    configs = {"seq": (sequential(), "bb"),
               "ideal_tr": (vliw(64, name="ideal_budget"), "trace")}
    requests = [dict(name=name, configs=configs, tail_dup_budget=budget)
                for budget in budgets for name in benchmarks]
    evaluations = iter(shared_engine().evaluate_many(requests))
    rows = []
    for budget in budgets:
        speedups = []
        lengths = []
        for _ in benchmarks:
            evaluation = next(evaluations)
            speedups.append(evaluation.speedup("ideal_tr"))
            lengths.append(
                evaluation.region_stats["trace"]["mean_length"])
        rows.append({"budget": budget,
                     "speedup": sum(speedups) / len(speedups),
                     "length": sum(lengths) / len(lengths)})
    return rows


def render_all():
    """Render every ablation as one text report."""
    ports = memory_ports()
    spec = speculation()
    moves = inter_unit_moves()
    budgets = tail_dup_budget()
    sections = [
        render_table(
            "Ablation -- shared-memory ports (4-unit machine)",
            ["memory ports", "avg speedup"],
            [[p, fmt(s)] for p, s in zip(ports["ports"],
                                         ports["speedup"])],
            note="One port is the paper's model; more ports lift the "
                 "Amdahl ceiling."),
        render_table(
            "Ablation -- speculation above branches (3 units)",
            ["configuration", "avg speedup"],
            [["speculation on", fmt(spec["spec_on"])],
             ["speculation off", fmt(spec["spec_off"])]]),
        render_table(
            "Ablation -- inter-unit communication cost (3 units)",
            ["configuration", "avg speedup"],
            [["free cross-unit reads", fmt(moves["free"])],
             ["1-cycle cross-unit reads", fmt(moves["penalty"])]]),
        render_table(
            "Ablation -- tail-duplication budget (ideal machine)",
            ["budget (ops)", "avg speedup", "avg region length"],
            [[row["budget"], fmt(row["speedup"]), fmt(row["length"], 1)]
             for row in budgets]),
    ]
    return "\n\n".join(sections)
