"""Figure 2 — dynamic instruction frequency by operation class.

Paper: "memory operations take about 32% of the whole execution time
... computed as an average of the values obtained via sequential
simulation of the benchmarks and with the hypothesis that all operations
have the same duration", and branches are "more than 15%".
"""

from repro.intcode.ici import OP_CLASS, MEM, ALU, MOVE, CTRL
from repro.experiments.data import get_profile, get_profiles, \
    all_benchmarks
from repro.experiments.render import render_table, fmt

CLASSES = (MEM, ALU, MOVE, CTRL)


def benchmark_mix(name):
    """Dynamic operation-class fractions of one benchmark."""
    program, result = get_profile(name)
    totals = {cls: 0 for cls in CLASSES}
    for pc, count in enumerate(result.counts):
        if count:
            totals[OP_CLASS[program.instructions[pc].op]] += count
    steps = sum(totals.values())
    return {cls: totals[cls] / steps for cls in CLASSES}, steps


def compute(benchmarks=None):
    benchmarks = benchmarks or all_benchmarks()
    get_profiles(benchmarks)  # emulate cold profiles in parallel
    rows = {}
    weight_sum = {cls: 0.0 for cls in CLASSES}
    for name in benchmarks:
        mix, steps = benchmark_mix(name)
        rows[name] = {"mix": mix, "steps": steps}
        for cls in CLASSES:
            weight_sum[cls] += mix[cls]
    average = {cls: weight_sum[cls] / len(benchmarks) for cls in CLASSES}
    return {"benchmarks": rows, "average": average}


def render(data=None):
    data = data or compute()
    rows = []
    for name in sorted(data["benchmarks"]):
        entry = data["benchmarks"][name]
        mix = entry["mix"]
        rows.append([name] + [fmt(100 * mix[c], 1) for c in CLASSES]
                    + [entry["steps"]])
    average = data["average"]
    rows.append(["AVERAGE"] + [fmt(100 * average[c], 1) for c in CLASSES]
                + [""])
    return render_table(
        "Figure 2 -- dynamic instruction mix (%)",
        ["benchmark", "memory", "alu", "move", "control", "ops"],
        rows,
        note="Paper: memory ~32%, control >15% (unit durations).")


if __name__ == "__main__":
    print(render())
