"""Figure 4 — distribution of the faulty-prediction probability.

The paper's distribution has most of its mass near zero (branches are
almost deterministic) with a small data-dependent peak around 0.4, and
the accompanying text refutes the "90/50 branch-taken rule" for Prolog:
branch predictability does not come from loop structure.
"""

from repro.analysis.branch_stats import (
    branch_records, p_fp_histogram, taken_rule_stats)
from repro.experiments.data import get_profiles, all_benchmarks
from repro.experiments.render import render_histogram


def compute(benchmarks=None, bins=10):
    benchmarks = benchmarks or all_benchmarks()
    profiles = get_profiles(benchmarks)
    records = []
    for name in benchmarks:
        program, result = profiles[name]
        records.extend(branch_records(program, result.counts,
                                      result.taken))
    edges, weights = p_fp_histogram(records, bins)
    return {
        "edges": edges,
        "weights": weights,
        "taken_rule": taken_rule_stats(records),
        "mass_below_01": sum(w for e, w in zip(edges, weights) if e < 0.1),
    }


def render(data=None):
    data = data or compute()
    chart = render_histogram(
        "Figure 4 -- distribution of P_fp (execution weighted)",
        data["edges"], data["weights"])
    rule = data["taken_rule"]
    lines = [chart, "",
             "mass with P_fp < 0.1: %.1f%% (paper: dominant)"
             % (100 * data["mass_below_01"]),
             "90/50 rule check (weighted mean taken probability):",
             "  backward branches: %.2f over %d static sites"
             % (rule["backward"]["mean_taken"],
                rule["backward"]["branches"]),
             "  forward branches:  %.2f over %d static sites"
             % (rule["forward"]["mean_taken"],
                rule["forward"]["branches"]),
             "Numeric code would show ~0.9 / ~0.5; Prolog branches are",
             "predictable without being loop branches."]
    return "\n".join(lines)


if __name__ == "__main__":
    print(render())
