"""Section 6 future-work projections: dynamic scheduling and distributed
memory.

The paper closes by naming the only two architectural escapes from the
shared-memory Amdahl ceiling — dynamic scheduling and distributed-memory
models.  These experiments quantify both on the same workloads:

* **dataflow limit** — an idealised out-of-order machine with perfect
  per-address memory disambiguation and perfect prediction, still behind
  one shared memory port (:mod:`repro.evaluation.dynamic`);
* **multi-bank memory** — static bank disambiguation (the compiler knows
  which data *area* an access touches whenever its base register is an
  area pointer), with and without extra ports.
"""

from repro.compaction import sequential, ideal
from repro.evaluation.dynamic import dataflow_limit
from repro.evaluation.parallel import memoised, shared_engine
from repro.experiments.render import render_table, fmt
from repro.benchmarks import compile_benchmark
from repro.benchmarks.suite import program_fingerprint
from repro.experiments.data import get_evaluations

#: programs small enough for the (slow) dataflow re-execution
DEFAULT_BENCHMARKS = ["conc30", "nreverse", "qsort", "serialise",
                      "queens_8", "mu", "divide10", "times10"]


def _dataflow_cell(name):
    """Dataflow-limit cycles/ILP for one benchmark (content-cached)."""
    program = compile_benchmark(name)

    def compute():
        flow = dataflow_limit(program)
        return {"cycles": flow.cycles, "ilp": flow.ilp}

    return memoised("dataflow",
                    {"fingerprint": program_fingerprint(program)},
                    compute)


def dynamic_vs_static(benchmarks=None):
    """Dataflow-limit speedup vs trace-scheduled static speedup."""
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    evaluations = get_evaluations(benchmarks)
    flows = shared_engine().map(_dataflow_cell, benchmarks)
    rows = {}
    for name, flow in zip(benchmarks, flows):
        evaluation = evaluations[name]
        seq = evaluation.cycles("seq")
        rows[name] = {
            "static": evaluation.speedup("tr_ideal"),
            "dynamic": seq / flow["cycles"],
            "dynamic_ilp": flow["ilp"],
        }
    count = len(rows)
    average = {key: sum(r[key] for r in rows.values()) / count
               for key in ("static", "dynamic", "dynamic_ilp")}
    average["captured"] = average["static"] / average["dynamic"]
    return {"benchmarks": rows, "average": average}


def multibank(benchmarks=None):
    """Static speedup with bank disambiguation and extra ports."""
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    configs = {
        "seq": (sequential(), "bb"),
        "shared": (ideal("fw_shared"), "trace"),
        "banked": (ideal("fw_banked"), "trace"),
        "banked4": (ideal("fw_banked4"), "trace"),
    }
    configs["banked"][0].bank_disambiguation = True
    configs["banked4"][0].bank_disambiguation = True
    configs["banked4"][0].mem_ports = 4
    evaluations = shared_engine().evaluate_many(
        [{"name": name, "configs": configs} for name in benchmarks])
    speedups = {key: [] for key in ("shared", "banked", "banked4")}
    for evaluation in evaluations:
        for key in speedups:
            speedups[key].append(evaluation.speedup(key))
    return {key: sum(values) / len(values)
            for key, values in speedups.items()}


def render():
    dynamic = dynamic_vs_static()
    banks = multibank()
    rows = []
    for name in sorted(dynamic["benchmarks"]):
        entry = dynamic["benchmarks"][name]
        rows.append([name, fmt(entry["static"]), fmt(entry["dynamic"]),
                     fmt(entry["dynamic_ilp"])])
    average = dynamic["average"]
    rows.append(["AVERAGE", fmt(average["static"]),
                 fmt(average["dynamic"]), fmt(average["dynamic_ilp"])])
    table_a = render_table(
        "Future work A -- static trace scheduling vs the dataflow limit",
        ["benchmark", "static s.u.", "dynamic s.u.", "dataflow ILP"],
        rows,
        note="Static compaction captures %.0f%% of the idealised "
             "dynamic machine's speedup (one shared memory port in "
             "both)." % (100 * average["captured"]))
    table_b = render_table(
        "Future work B -- multi-bank memory (ideal units)",
        ["memory model", "avg speedup"],
        [["shared, 1 port (the paper's model)", fmt(banks["shared"])],
         ["banked order relaxation, 1 port", fmt(banks["banked"])],
         ["banked, 4 ports", fmt(banks["banked4"])]],
        note="Bank disambiguation relaxes ordering; extra ports attack "
             "the Amdahl ceiling itself (section 6's distributed-memory "
             "direction).")
    return table_a + "\n\n" + table_b


if __name__ == "__main__":
    print(render())
