"""Static ILP bound — the dataflow limit versus the achieved schedule.

The paper measures how much instruction-level parallelism Prolog
exposes (Tables 1/3) with a *scheduler in the loop*: the reported
speedups include the shared memory port, the branch-order rule and the
greedy scheduler's decisions.  The lattice framework
(:mod:`repro.analysis.dataflow`) lets us price the pure dependence
height of the same regions — every operation issued as soon as its
true dependences allow, memory references disambiguated by the
must/may-alias pass — which is the classic *dataflow limit* on ILP.

This table reports, per benchmark, the achieved ideal-machine speedup
(``tr_ideal``, the Table 1 concurrency limit) next to the dataflow
limit, and the gap between them: the price of the memory port and the
scheduling heuristics that ROADMAP item 4 (optimal scheduling via SMT)
wants to quantify further.
"""

from repro.experiments.data import get_evaluations, table_benchmarks
from repro.experiments.render import render_table, fmt

#: the evaluation's tail-duplication budget (shared cache keys)
BUDGET = 48


def _dataflow_limit(name, budget=BUDGET):
    """Memoised dataflow-limit cycles of *name*'s trace regions."""
    from repro.analysis.dataflow import dataflow_limit_cycles
    from repro.benchmarks.suite import (
        compile_benchmark, program_fingerprint, run_program_cached)
    from repro.compaction.machine_model import ideal
    from repro.evaluation.parallel import config_signature, memoised
    from repro.evaluation.pipeline import superblock_regions

    program = compile_benchmark(name)
    fingerprint = program_fingerprint(program)
    config = ideal("dataflow")

    def compute():
        result = run_program_cached(program, name + "-")
        region_set = superblock_regions(program, result, budget,
                                        name + "-")
        return {"cycles": dataflow_limit_cycles(region_set, config)}

    payload = memoised(
        "static_ilp",
        {"fingerprint": fingerprint, "regioning": "trace",
         "budget": budget, "config": config_signature(config)},
        compute)
    return payload["cycles"]


def compute(benchmarks=None):
    benchmarks = benchmarks or table_benchmarks()
    evaluations = get_evaluations(benchmarks)
    rows = {}
    for name in benchmarks:
        evaluation = evaluations[name]
        seq = evaluation.cycles("seq")
        achieved_cycles = evaluation.cycles("tr_ideal")
        limit_cycles = _dataflow_limit(name)
        achieved = seq / achieved_cycles
        bound = seq / limit_cycles
        rows[name] = {
            "achieved_cycles": achieved_cycles,
            "limit_cycles": limit_cycles,
            "achieved_speedup": achieved,
            "limit_speedup": bound,
            "gap": bound / achieved,
        }
    count = len(benchmarks)
    average = {key: sum(r[key] for r in rows.values()) / count
               for key in next(iter(rows.values()))}
    return {"benchmarks": rows, "average": average}


def render(data=None):
    data = data or compute()
    rows = []
    for name in sorted(data["benchmarks"]):
        entry = data["benchmarks"][name]
        rows.append([name,
                     "%d" % entry["achieved_cycles"],
                     "%d" % entry["limit_cycles"],
                     fmt(entry["achieved_speedup"]),
                     fmt(entry["limit_speedup"]),
                     fmt(entry["gap"])])
    average = data["average"]
    rows.append(["AVERAGE", "", "",
                 fmt(average["achieved_speedup"]),
                 fmt(average["limit_speedup"]),
                 fmt(average["gap"])])
    return render_table(
        "Static ILP bound -- dataflow limit vs achieved schedule "
        "(ideal machine, trace regions)",
        ["benchmark", "sched cyc", "limit cyc",
         "achieved", "dfl limit", "gap"],
        rows,
        note="The dataflow limit replays ASAP issue times under true "
             "dependences only (memory pairs disambiguated "
             "must/may-alias, branch order kept).  'gap' = limit "
             "speedup / achieved speedup: what the shared memory "
             "port, speculation limits and greedy scheduling cost.")


if __name__ == "__main__":
    print(render())
