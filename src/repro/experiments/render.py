"""Plain-text rendering of tables and figures for the experiment harness."""


def render_table(title, headers, rows, note=None):
    """Monospace table with a title rule."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    text_rows = []
    for row in rows:
        cells = ["%s" % ("" if cell is None else cell) for cell in row]
        cells += [""] * (columns - len(cells))
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
        text_rows.append(cells)

    def line(cells):
        return "  ".join(cell.rjust(widths[i])
                         for i, cell in enumerate(cells))

    out = [title, "=" * len(title),
           line([str(h) for h in headers]),
           line(["-" * w for w in widths])]
    out.extend(line(cells) for cells in text_rows)
    if note:
        out.append("")
        out.append(note)
    return "\n".join(out)


def render_histogram(title, edges, weights, width=50):
    """ASCII bar chart of a binned distribution."""
    out = [title, "=" * len(title)]
    peak = max(weights) if weights else 1.0
    for index, weight in enumerate(weights):
        bar = "#" * int(round(width * weight / peak)) if peak else ""
        out.append("[%.2f,%.2f)  %6.1f%%  %s"
                   % (edges[index], edges[index + 1], 100 * weight, bar))
    return "\n".join(out)


def render_curve(title, xs, series, width=60, height=18):
    """ASCII plot of one or more named series against *xs*."""
    out = [title, "=" * len(title)]
    all_values = [v for values in series.values() for v in values]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = "*+ox"
    for serie_index, (name, values) in enumerate(sorted(series.items())):
        mark = marks[serie_index % len(marks)]
        for index, value in enumerate(values):
            column = int(round((width - 1) * index / max(len(xs) - 1, 1)))
            row = int(round((height - 1) * (value - lo) / (hi - lo)))
            grid[height - 1 - row][column] = mark
    out.append("%.2f" % hi)
    out.extend("  |" + "".join(row) for row in grid)
    out.append("%.2f" % lo + "  x: %.2f .. %.2f" % (xs[0], xs[-1]))
    for serie_index, name in enumerate(sorted(series)):
        out.append("  %s = %s" % (marks[serie_index % len(marks)], name))
    return "\n".join(out)


def fmt(value, digits=2):
    if value is None:
        return "-"
    if isinstance(value, float):
        return ("%." + str(digits) + "f") % value
    return str(value)
