"""Table 5 / section 5.3 — prototype speedup over its own sequential
baseline.

"In order to demonstrate the effectiveness of the Global Compaction
technique, we can consider the speed-up of the architecture relative to a
sequential implementation which obeys the same operation duration
hypotheses.  We notice how a Trace Scheduling compilation succeeds in
reaching a level of speedup (1.9) which is slightly higher than the BAM
(1.5)."

Both machines here run under the prototype's durations: 3-cycle memory
and control pipelines, two squashed delay cycles on taken transfers, and
the two 64-bit instruction formats for the parallel machine.
"""

from repro.experiments.data import get_evaluations, table_benchmarks
from repro.experiments.render import render_table, fmt


def compute(benchmarks=None):
    benchmarks = benchmarks or table_benchmarks()
    evaluations = get_evaluations(benchmarks)
    rows = {}
    for name in benchmarks:
        evaluation = evaluations[name]
        seq = evaluation.cycles("symbol_seq")
        rows[name] = {
            "seq_cycles": seq,
            "symbol3_cycles": evaluation.cycles("symbol3"),
            "speedup": seq / evaluation.cycles("symbol3"),
            "bam_speedup": evaluation.speedup("bam"),
        }
    count = len(benchmarks)
    return {
        "benchmarks": rows,
        "average_speedup": sum(r["speedup"] for r in rows.values()) / count,
        "average_bam": sum(r["bam_speedup"] for r in rows.values()) / count,
    }


def render(data=None):
    data = data or compute()
    rows = []
    for name in sorted(data["benchmarks"]):
        entry = data["benchmarks"][name]
        rows.append([name, entry["seq_cycles"], entry["symbol3_cycles"],
                     fmt(entry["speedup"])])
    rows.append(["AVERAGE", "", "", fmt(data["average_speedup"])])
    return render_table(
        "Table 5 -- SYMBOL-3 prototype vs sequential (same durations)",
        ["benchmark", "seq cycles", "symbol3 cycles", "speedup"],
        rows,
        note="Paper: prototype ~1.9 vs BAM ~1.5.  Our BAM stand-in "
             "average: %.2f." % data["average_bam"])


if __name__ == "__main__":
    print(render())
