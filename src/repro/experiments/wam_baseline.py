"""Section 2's claim: the BAM's "model improvement ... and more
sophisticated compiler optimizations" are worth roughly a factor of three
over Warren-machine implementations.

We rebuild the comparison on our own substrate: each benchmark compiled
twice — once with the full BAM-style feature set (first-argument
indexing, determinism extraction, last-call optimisation) and once as a
naive Warren-style baseline (plain try/retry/trust chains, every call
returns through an environment) — and executed on the same sequential
machine.  The ratio of cycle counts is the reproducible part of the
paper's "factor of three" (the rest came from clock technology).
"""

from repro.bam import compile_source, CompilerOptions
from repro.intcode import translate_module
from repro.compaction import sequential
from repro.evaluation.parallel import memoised, shared_engine
from repro.evaluation.pipeline import basic_block_regions, machine_cycles
from repro.benchmarks import PROGRAMS, run_program_cached
from repro.benchmarks.suite import program_fingerprint
from repro.experiments.render import render_table, fmt

DEFAULT_BENCHMARKS = ["conc30", "nreverse", "qsort", "serialise",
                      "queens_8", "divide10", "times10", "mu"]


def _seq_cycles(program, hint):
    result = run_program_cached(program, hint)
    return machine_cycles(basic_block_regions(program, result),
                          sequential()), result


def benchmark_ratio(name):
    """(BAM-style cycles, Warren-style cycles, output check) for one
    benchmark."""
    source = PROGRAMS[name].source
    bam_program = translate_module(compile_source(source))
    wam_program = translate_module(compile_source(
        source, options=CompilerOptions(indexing=False, lco=False)))
    bam_cycles, bam_result = _seq_cycles(bam_program, name + "-")
    wam_cycles, wam_result = _seq_cycles(wam_program, name + "-wam-")
    if (wam_result.status, wam_result.output) != (bam_result.status,
                                                  bam_result.output):
        raise AssertionError(
            "Warren-style compilation changed %s's behaviour" % name)
    return bam_cycles, wam_cycles


def _ratio_cell(name):
    """Content-cached :func:`benchmark_ratio` for one benchmark."""
    source = PROGRAMS[name].source
    bam_fingerprint = program_fingerprint(
        translate_module(compile_source(source)))
    wam_fingerprint = program_fingerprint(translate_module(compile_source(
        source, options=CompilerOptions(indexing=False, lco=False))))

    def compute_cell():
        bam_cycles, wam_cycles = benchmark_ratio(name)
        return {"bam_cycles": bam_cycles, "wam_cycles": wam_cycles}

    return memoised("wam", {"bam_fingerprint": bam_fingerprint,
                            "wam_fingerprint": wam_fingerprint},
                    compute_cell)


def compute(benchmarks=None):
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    cells = shared_engine().map(_ratio_cell, benchmarks)
    rows = {}
    for name, cell in zip(benchmarks, cells):
        bam_cycles, wam_cycles = cell["bam_cycles"], cell["wam_cycles"]
        rows[name] = {
            "bam_cycles": bam_cycles,
            "wam_cycles": wam_cycles,
            "ratio": wam_cycles / bam_cycles,
        }
    average = sum(r["ratio"] for r in rows.values()) / len(rows)
    return {"benchmarks": rows, "average_ratio": average}


def render(data=None):
    data = data or compute()
    rows = []
    for name in sorted(data["benchmarks"]):
        entry = data["benchmarks"][name]
        rows.append([name, entry["wam_cycles"], entry["bam_cycles"],
                     fmt(entry["ratio"])])
    rows.append(["AVERAGE", "", "", fmt(data["average_ratio"])])
    return render_table(
        "Section 2 -- Warren-style vs BAM-style compilation "
        "(sequential cycles)",
        ["benchmark", "warren cycles", "bam cycles", "ratio"],
        rows,
        note="Paper: model + compiler improvements give 'roughly a "
             "factor of three' of the BAM's 10x over the PLM.")


if __name__ == "__main__":
    print(render())
