"""Experiment harness: one module per table/figure of the paper, plus
the beyond-the-paper studies (ablations, future-work projections,
register pressure)."""

from repro.experiments import (
    data, figure2, figure3, figure4, table1, table2, table3, table4,
    table5, ablations, future_work, registers, static_ilp, wam_baseline)

#: the paper's own evaluation artefacts
ALL_EXPERIMENTS = {
    "figure2": figure2,
    "figure3": figure3,
    "table1": table1,
    "table2": table2,
    "figure4": figure4,
    "table3": table3,
    "table4": table4,
    "table5": table5,
}

#: studies this reproduction adds on top
EXTRA_EXPERIMENTS = {
    "ablations": ablations,
    "future_work": future_work,
    "registers": registers,
    "static_ilp": static_ilp,
    "wam_baseline": wam_baseline,
}

__all__ = (["data", "ALL_EXPERIMENTS", "EXTRA_EXPERIMENTS"]
           + sorted(ALL_EXPERIMENTS) + sorted(EXTRA_EXPERIMENTS))


def run_all(extras=False, jobs=None):
    """Render every experiment; returns {name: text}.

    With *jobs* the shared evaluation engine is (re)configured to fan
    the benchmark x machine-configuration cells out over that many
    worker processes; the rendering itself stays sequential, so the
    produced artefacts are byte-identical for every jobs count.
    """
    if jobs is not None:
        from repro.evaluation.parallel import configure
        configure(jobs=jobs)
    out = {name: module.render()
           for name, module in ALL_EXPERIMENTS.items()}
    if extras:
        for name, module in EXTRA_EXPERIMENTS.items():
            render = getattr(module, "render", None) \
                or getattr(module, "render_all")
            out[name] = render()
    return out
