"""The or-parallel bench: differential lockdown + ILP x or stacking.

``repro query --sweep`` produces ``results/BENCH_orparallel.json``,
which records two things about the or-parallel search engine
(:mod:`repro.interp.orparallel`):

1. **Differential correctness** — every target program (the paper's
   table suite, the three DCG application workloads, a slice of the
   generated corpus, the pure search workloads below, and the
   cut/negation/if-then-else adversarial programs) is enumerated at
   every or-jobs level and the answers + output are compared, byte
   for byte, against the sequential reference engine.  The memo is
   disabled here — a cache hit would make the comparison vacuous.
   Adversarial targets additionally assert that the conservative
   splitter *refused* to split them.

2. **Speedup stacking** — the paper mines instruction-level
   parallelism (its VLIW speedups); or-parallelism is an orthogonal
   source-level axis.  The bench times the pure search workloads at
   each jobs level (``or_speedup``), measures the answer-memo hit
   rate on a repeated query, takes the ILP speedup (``seq`` vs
   ``vliw3`` cycles) for a couple of table benchmarks from the
   evaluation pipeline, and reports the modelled product
   ``stacked = ilp x or`` — the two levels multiply because one
   lives inside a branch's instruction stream and the other across
   branches.

The search workloads are *designed* to split: their top predicate has
one clause per branch of the first real choice point, each branch
carrying an equal share of pure, recursion-heavy work (naive fib,
permutation enumeration, an all-solutions 7-queens).  Paper-suite
``main`` goals are deterministic drivers with side-effecting output,
so they exercise the sequential-fallback path instead — both paths
are part of the contract.
"""

import os
import time

__all__ = [
    "ADVERSARIAL_PROGRAMS",
    "DIFFERENTIAL_JOBS",
    "ORPARALLEL_BENCH_SCHEMA",
    "SEARCH_WORKLOADS",
    "run_orparallel_bench",
    "validate_orparallel_bench",
    "write_orparallel_bench",
]

ORPARALLEL_BENCH_SCHEMA = 1

#: or-jobs levels the differential section checks
DIFFERENTIAL_JOBS = (1, 2, 4)

#: generated-corpus programs included in the differential section
CORPUS_SLICE = 50

#: answer cap for differential targets (deterministic ``main`` goals
#: yield one answer; corpus goals may enumerate)
DIFFERENTIAL_LIMIT = 32

#: table benchmarks whose seq/vliw3 cycle ratio anchors the stacking
STACKING_BENCHMARKS = ("qsort", "queens_8")

_FIB = """
fib(N, F) :- N < 2, F = N.
fib(N, F) :- N >= 2, N1 is N - 1, N2 is N - 2,
             fib(N1, F1), fib(N2, F2), F is F1 + F2.
"""

_PERM = """
select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).
perm([], []).
perm(L, [X|P]) :- select(X, L, R), perm(R, P).
"""

#: pure, branch-balanced workloads whose first choice point fans out
SEARCH_WORKLOADS = {
    # eight equal branches of naive double-recursive fib: the
    # embarrassingly parallel end of the spectrum
    "fanout_fib": {
        "goal": "probe(K, F)",
        "source": _FIB + "".join(
            "probe(%d, F) :- fib(16, G), F is G + %d.\n" % (k, k)
            for k in range(1, 9)),
    },
    # all 5040 permutations of [1..7], split seven ways on the first
    # element: a large ordered answer set reassembled across branches
    "perm_split": {
        "goal": "route(K, P)",
        "source": _PERM + "".join(
            "route(%d, [%d|P]) :- perm([%s], P).\n"
            % (k, k, ",".join(str(j) for j in range(1, 8) if j != k))
            for k in range(1, 8)),
    },
    # all-solutions 7-queens via permute-and-check, split on the
    # first queen's column; arithmetic guards keep it cut-free
    "queens_split": {
        "goal": "queens(K, Qs)",
        "source": _PERM + """
no_attack(_, [], _).
no_attack(Q, [Q2|Qs], D) :-
    Q2 =\\= Q + D, Q2 =\\= Q - D, D1 is D + 1, no_attack(Q, Qs, D1).
safe([]).
safe([Q|Qs]) :- no_attack(Q, Qs, 1), safe(Qs).
""" + "".join(
            "queens(%d, [%d|Qs]) :- perm([%s], Qs), safe([%d|Qs]).\n"
            % (k, k, ",".join(str(j) for j in range(1, 8) if j != k), k)
            for k in range(1, 8)),
    },
}

#: programs the splitter must *refuse*: each enumerates several
#: answers whose multiset/order depends on the impure construct, so a
#: naive split would corrupt them
ADVERSARIAL_PROGRAMS = {
    "adversarial_cut": {
        "goal": "picked(X)",
        "source": """
item(a). item(b). item(c).
pick(X) :- item(X), !.
picked(X) :- pick(X).
picked(X) :- item(X).
""",
    },
    "adversarial_negation": {
        "goal": "odd_one(X)",
        "source": """
item(a). item(b). item(c).
chosen(b).
odd_one(X) :- item(X), \\+ chosen(X).
odd_one(none) :- \\+ item(d).
""",
    },
    "adversarial_ite": {
        "goal": "classify(X, C)",
        "source": """
item(1). item(2). item(3).
classify(X, C) :- item(X), (X > 2 -> C = big ; C = small).
classify(0, zero).
""",
    },
}


def _warm(item):
    """Pool warm-up no-op (spawn cost must not pollute timings)."""
    return item


def _differential_targets(quick):
    """(name, kind, source, goal, expect_fallback) tuples to check."""
    from repro.benchmarks import TABLE_BENCHMARKS
    from repro.benchmarks.suite import resolve_program
    from repro.corpus.generate import corpus_programs

    suite = [name for name in TABLE_BENCHMARKS
             if not (quick and name == "tak")]
    if quick:
        suite = suite[:4]
    targets = [(name, "suite", resolve_program(name).source, "main",
                None) for name in suite]
    targets += [(name, "dcg", resolve_program(name).source, "main",
                 None)
                for name in ("dcg_calc", "dcg_grammar", "dcg_json")]
    count = 10 if quick else CORPUS_SLICE
    targets += [(program.name, "corpus", program.source, "main", None)
                for program in corpus_programs(count)]
    targets += [(name, "search", workload["source"], workload["goal"],
                 False)
                for name, workload in sorted(SEARCH_WORKLOADS.items())]
    targets += [(name, "adversarial", program["source"],
                 program["goal"], True)
                for name, program in sorted(ADVERSARIAL_PROGRAMS.items())]
    return targets


def _run_differential(engines, quick, progress):
    from repro.interp.orparallel import or_solutions, sequential_answers

    records = []
    splits = fallbacks = 0
    for name, kind, source, goal, expect_fallback in \
            _differential_targets(quick):
        oracle = sequential_answers(source, goal,
                                    limit=DIFFERENTIAL_LIMIT)
        record = {"name": name, "kind": kind, "goal": goal,
                  "limit": DIFFERENTIAL_LIMIT,
                  "answers": oracle["count"],
                  "mode_by_jobs": {}, "match_by_jobs": {}}
        for jobs, engine in engines.items():
            result = or_solutions(source, goal, engine=engine,
                                  use_memo=False,
                                  limit=DIFFERENTIAL_LIMIT)
            match = (result["answers"] == oracle["answers"]
                     and result["output"] == oracle["output"])
            record["mode_by_jobs"][str(jobs)] = result["mode"]
            record["match_by_jobs"][str(jobs)] = match
            if result["mode"] == "parallel":
                splits += 1
            else:
                fallbacks += 1
        if expect_fallback is not None:
            modes = set(record["mode_by_jobs"].values())
            record["fallback_enforced"] = (
                modes == {"sequential"} if expect_fallback
                else "parallel" in modes)
        records.append(record)
        if progress is not None:
            progress(name)
    mismatches = sorted(r["name"] for r in records
                        if not all(r["match_by_jobs"].values()))
    broken = sorted(r["name"] for r in records
                    if not r.get("fallback_enforced", True))
    return {
        "jobs_levels": sorted(engines),
        "programs": records,
        "checked": len(records),
        "mismatches": mismatches,
        "fallback_violations": broken,
        "splits": splits,
        "fallbacks": fallbacks,
    }


def _run_search(engines, store_factory, progress):
    from repro.interp.orparallel import or_solutions, sequential_answers

    workloads = []
    for name, workload in sorted(SEARCH_WORKLOADS.items()):
        source, goal = workload["source"], workload["goal"]
        start = time.perf_counter()
        oracle = sequential_answers(source, goal)
        seq_seconds = time.perf_counter() - start
        record = {"name": name, "answers": oracle["count"],
                  "seq_seconds": round(seq_seconds, 4),
                  "seconds_by_jobs": {}, "or_speedup_by_jobs": {},
                  "branches": None}
        for jobs, engine in sorted(engines.items()):
            start = time.perf_counter()
            result = or_solutions(source, goal, engine=engine,
                                  use_memo=False)
            elapsed = time.perf_counter() - start
            assert result["answers"] == oracle["answers"], name
            record["branches"] = max(record["branches"] or 0,
                                     result["branches"])
            record["seconds_by_jobs"][str(jobs)] = round(elapsed, 4)
            record["or_speedup_by_jobs"][str(jobs)] = round(
                seq_seconds / elapsed, 3) if elapsed > 0 else None
        # memo behaviour on a repeated query: cold computes, warm is
        # served; the hit rate comes from the store's per-kind counts
        store = store_factory()
        engine = engines[max(engines)]
        cold = or_solutions(source, goal, engine=engine, store=store)
        warm = or_solutions(source, goal, engine=engine, store=store)
        assert warm["answers"] == oracle["answers"], name
        stats = store.kind_stats("orparallel")
        total = stats["hits"] + stats["misses"]
        record["memo"] = {
            "cold_mode": cold["mode"],
            "warm_mode": warm["mode"],
            "hits": stats["hits"],
            "misses": stats["misses"],
            "hit_rate": round(stats["hits"] / total, 3) if total else 0.0,
        }
        workloads.append(record)
        if progress is not None:
            progress(name)
    return {"workloads": workloads}


def _run_stacking(search, engine, quick):
    """Model the ILP x or-parallel product for the stacking claim."""
    from repro.experiments.data import master_configs

    names = STACKING_BENCHMARKS[:1] if quick else STACKING_BENCHMARKS
    configs = {key: value for key, value in master_configs().items()
               if key in ("seq", "vliw3")}
    top_jobs = None
    best_or = 1.0
    for workload in search["workloads"]:
        for jobs, speedup in workload["or_speedup_by_jobs"].items():
            if speedup is not None and speedup > best_or:
                best_or, top_jobs = speedup, int(jobs)
    entries = []
    for name in names:
        evaluation = engine.evaluate(name, configs)
        ilp = evaluation.cycles("seq") / evaluation.cycles("vliw3")
        entries.append({
            "name": name,
            "ilp_speedup": round(ilp, 3),
            "or_speedup": round(best_or, 3),
            "stacked_speedup": round(ilp * best_or, 3),
        })
    return {
        "benchmarks": entries,
        "or_jobs": top_jobs,
        "note": "stacked = (seq/vliw3 cycle ratio) x (best measured "
                "or-parallel wall-clock speedup); the two levels are "
                "orthogonal, so the product models a machine running "
                "stolen branches on ILP cores",
    }


def run_orparallel_bench(quick=False, policy=None, progress=None):
    """Run the whole bench; returns the document (not yet written)."""
    import platform
    import tempfile

    from repro.benchmarks.perf import git_revision
    from repro.evaluation.cache import CacheStore
    from repro.evaluation.parallel import EvaluationEngine

    levels = DIFFERENTIAL_JOBS[:2] if quick else DIFFERENTIAL_JOBS
    scratch = tempfile.mkdtemp(prefix="orparallel-bench-")
    stores = iter(range(1000000))

    def store_factory():
        return CacheStore(os.path.join(scratch,
                                       "store-%d" % next(stores)))

    started = time.perf_counter()
    engines = {jobs: EvaluationEngine(jobs=jobs, store=store_factory(),
                                      policy=policy)
               for jobs in levels}
    try:
        for jobs, engine in engines.items():
            if jobs > 1:
                engine.map(_warm, list(range(jobs * 2)))
        differential = _run_differential(engines, quick, progress)
        search = _run_search(engines, store_factory, progress)
        stacking = _run_stacking(search, engines[max(engines)], quick)
    finally:
        for engine in engines.values():
            engine.close()
    return {
        "schema": ORPARALLEL_BENCH_SCHEMA,
        "kind": "orparallel-bench",
        "revision": git_revision(),
        "python": platform.python_version(),
        "parameters": {
            "jobs_levels": list(levels),
            "quick": bool(quick),
            "corpus_slice": 10 if quick else CORPUS_SLICE,
            "differential_limit": DIFFERENTIAL_LIMIT,
            # wall-clock or-speedups are bounded by physical cores;
            # on a 1-CPU host ~1.0x at any jobs level is the honest
            # reading and the differential oracle is the point
            "cpu_count": os.cpu_count() or 1,
        },
        "differential": differential,
        "search": search,
        "stacking": stacking,
        "total_seconds": round(time.perf_counter() - started, 3),
    }


def validate_orparallel_bench(document):
    """Schema problems of a BENCH_orparallel.json doc (empty=valid)."""
    problems = []

    def require(condition, message):
        if not condition:
            problems.append(message)
        return condition

    if not require(isinstance(document, dict),
                   "document is not an object"):
        return problems
    require(document.get("schema") == ORPARALLEL_BENCH_SCHEMA,
            "'schema' is not %d" % ORPARALLEL_BENCH_SCHEMA)
    require(document.get("kind") == "orparallel-bench",
            "'kind' is not 'orparallel-bench'")
    require(isinstance(document.get("revision"), str),
            "'revision' is not a string")
    require(isinstance(document.get("python"), str),
            "'python' is not a string")
    parameters = document.get("parameters")
    levels = []
    if require(isinstance(parameters, dict),
               "'parameters' is not an object"):
        levels = parameters.get("jobs_levels")
        require(isinstance(levels, list) and levels
                and all(isinstance(level, int) and level >= 1
                        for level in levels),
                "'parameters.jobs_levels' is not a list of ints >= 1")
    differential = document.get("differential")
    if require(isinstance(differential, dict),
               "'differential' is not an object"):
        programs = differential.get("programs")
        if require(isinstance(programs, list) and programs,
                   "'differential.programs' is not a non-empty list"):
            keys = [str(level) for level in (levels or [])]
            for index, record in enumerate(programs):
                where = "differential.programs[%d]" % index
                if not require(isinstance(record, dict),
                               "%s is not an object" % where):
                    continue
                require(isinstance(record.get("name"), str),
                        "%s: 'name' is not a string" % where)
                require(record.get("kind") in
                        ("suite", "dcg", "corpus", "search",
                         "adversarial"),
                        "%s: unknown 'kind'" % where)
                for field in ("mode_by_jobs", "match_by_jobs"):
                    table = record.get(field)
                    require(isinstance(table, dict)
                            and (not keys or sorted(table) ==
                                 sorted(keys)),
                            "%s: '%s' does not cover every jobs "
                            "level" % (where, field))
        require(differential.get("checked") == len(programs or []),
                "'differential.checked' does not count the records")
        require(isinstance(differential.get("mismatches"), list),
                "'differential.mismatches' is not a list")
        require(isinstance(differential.get("fallback_violations"),
                           list),
                "'differential.fallback_violations' is not a list")
        require(isinstance(differential.get("splits"), int)
                and differential.get("splits", 0) > 0,
                "'differential.splits' is not a positive int (no "
                "goal actually split)")
    search = document.get("search")
    if require(isinstance(search, dict), "'search' is not an object"):
        workloads = search.get("workloads")
        if require(isinstance(workloads, list)
                   and len(workloads or []) == len(SEARCH_WORKLOADS),
                   "'search.workloads' does not cover every workload"):
            for record in workloads:
                where = "search.workloads[%s]" % record.get("name")
                require(isinstance(record.get("branches"), int)
                        and record["branches"] >= 2,
                        "%s: 'branches' is not an int >= 2" % where)
                memo = record.get("memo")
                if require(isinstance(memo, dict),
                           "%s: 'memo' is not an object" % where):
                    require(memo.get("warm_mode") == "memo",
                            "%s: warm query was not served from the "
                            "memo" % where)
                    require(isinstance(memo.get("hit_rate"),
                                       (int, float))
                            and memo["hit_rate"] > 0,
                            "%s: 'memo.hit_rate' is not positive"
                            % where)
    stacking = document.get("stacking")
    if require(isinstance(stacking, dict),
               "'stacking' is not an object"):
        entries = stacking.get("benchmarks")
        if require(isinstance(entries, list) and entries,
                   "'stacking.benchmarks' is not a non-empty list"):
            for entry in entries:
                where = "stacking.benchmarks[%s]" % entry.get("name")
                for field in ("ilp_speedup", "or_speedup",
                              "stacked_speedup"):
                    require(isinstance(entry.get(field), (int, float))
                            and entry.get(field, 0) > 0,
                            "%s: '%s' is not a positive number"
                            % (where, field))
    return problems


def write_orparallel_bench(document,
                           path="results/BENCH_orparallel.json"):
    """Atomically publish the or-parallel bench record."""
    from repro.atomicio import atomic_write_json
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    atomic_write_json(path, document, indent=2, sort_keys=True)
    return path
