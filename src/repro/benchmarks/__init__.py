"""The Aquarius-style benchmark programs and suite driver."""

from repro.benchmarks.programs import (
    PROGRAMS, ALL_PROGRAMS, TABLE_BENCHMARKS, BenchmarkProgram)
from repro.benchmarks.extended import EXTENDED_PROGRAMS
from repro.benchmarks.suite import (
    compile_benchmark, run_benchmark, run_program_cached,
    interpret_benchmark, validate_benchmark, program_fingerprint,
    cache_dir, suite_catalogue, resolve_program)

__all__ = [
    "PROGRAMS",
    "ALL_PROGRAMS",
    "TABLE_BENCHMARKS",
    "EXTENDED_PROGRAMS",
    "BenchmarkProgram",
    "suite_catalogue",
    "resolve_program",
    "compile_benchmark",
    "run_benchmark",
    "run_program_cached",
    "interpret_benchmark",
    "validate_benchmark",
    "program_fingerprint",
    "cache_dir",
]
