"""Extended benchmark set.

Classical Prolog workloads beyond the paper's Aquarius subset.  They are
not part of any reproduced table — the paper's suite is fixed — but they
broaden compiler coverage (deep deterministic recursion, structure-heavy
arithmetic, accumulator idioms) and give downstream users more workloads
to experiment with.  All are registered in
:data:`repro.benchmarks.extended.EXTENDED_PROGRAMS` and validated against
the reference interpreter by the test suite.
"""

from repro.benchmarks.programs import BenchmarkProgram

FIB = BenchmarkProgram("fib", "naive doubly-recursive Fibonacci", """
fib(0, 0).
fib(1, 1).
fib(N, F) :- N > 1, N1 is N - 1, N2 is N - 2,
             fib(N1, F1), fib(N2, F2), F is F1 + F2.
main :- fib(17, F), write(F), nl.
""", in_table1=False)

HANOI = BenchmarkProgram("hanoi", "towers of Hanoi move list", """
hanoi(0, _, _, _, []) :- !.
hanoi(N, A, B, C, Moves) :-
    M is N - 1,
    hanoi(M, A, C, B, M1),
    hanoi(M, C, B, A, M2),
    app(M1, [mv(A, B)|M2], Moves).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
main :- hanoi(8, left, right, mid, Moves), len(Moves, N),
        write(N), nl.
""", in_table1=False)

PRIMES = BenchmarkProgram("primes", "sieve of Eratosthenes", """
range(N, N, [N]) :- !.
range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).
sieve([], []).
sieve([P|Xs], [P|Ps]) :- strike(P, Xs, Ys), sieve(Ys, Ps).
strike(_, [], []).
strike(P, [X|Xs], Ys) :- X mod P =:= 0, !, strike(P, Xs, Ys).
strike(P, [X|Xs], [X|Ys]) :- strike(P, Xs, Ys).
main :- range(2, 200, L), sieve(L, Ps), last(Ps, Biggest),
        len(Ps, N), write(N-Biggest), nl.
last([X], X) :- !.
last([_|T], X) :- last(T, X).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
""", in_table1=False)

POLY = BenchmarkProgram("poly", "symbolic polynomial power (1+x)^12", """
% Polynomials are coefficient lists, lowest degree first.
poly_add([], Q, Q).
poly_add(P, [], P) :- P = [_|_].
poly_add([A|P], [B|Q], [C|R]) :- C is A + B, poly_add(P, Q, R).
poly_scale(_, [], []).
poly_scale(K, [A|P], [B|Q]) :- B is K * A, poly_scale(K, P, Q).
poly_mul([], _, []).
poly_mul([A|P], Q, R) :-
    poly_scale(A, Q, AQ),
    poly_mul(P, Q, PQ),
    poly_add(AQ, [0|PQ], R).
poly_pow(0, _, [1]) :- !.
poly_pow(N, P, R) :- M is N - 1, poly_pow(M, P, R1), poly_mul(P, R1, R).
nth(1, [X|_], X) :- !.
nth(N, [_|T], X) :- N > 1, M is N - 1, nth(M, T, X).
main :- poly_pow(12, [1, 1], R), nth(7, R, Middle),
        write(Middle), nl.
""", in_table1=False)

BTREE = BenchmarkProgram("btree", "ordered binary tree insert + walk", """
insert(X, void, tree(void, X, void)).
insert(X, tree(L, Y, R), tree(L1, Y, R)) :-
    X < Y, !, insert(X, L, L1).
insert(X, tree(L, Y, R), tree(L, Y, R1)) :-
    X > Y, !, insert(X, R, R1).
insert(_, T, T).
build([], T, T).
build([X|Xs], T0, T) :- insert(X, T0, T1), build(Xs, T1, T).
walk(void, A, A).
walk(tree(L, X, R), A0, A) :- walk(R, A0, A1), walk(L, [X|A1], A).
main :- build([17,4,23,8,42,1,15,30,11,2,28,5,19,3,35,7], void, T),
        walk(T, [], Sorted), write(Sorted), nl.
""", in_table1=False)

ACKERMANN = BenchmarkProgram("ackermann", "Ackermann function a(2,6)", """
ack(0, N, R) :- !, R is N + 1.
ack(M, 0, R) :- !, M1 is M - 1, ack(M1, 1, R).
ack(M, N, R) :- M1 is M - 1, N1 is N - 1, ack(M, N1, R1),
                ack(M1, R1, R).
main :- ack(2, 6, R), write(R), nl.
""", in_table1=False)

EXTENDED_LIST = [FIB, HANOI, PRIMES, POLY, BTREE, ACKERMANN]
EXTENDED_PROGRAMS = {p.name: p for p in EXTENDED_LIST}

#: expected outputs (strong known-answer checks)
EXPECTED_OUTPUT = {
    "fib": "1597\n",
    "hanoi": "255\n",
    "primes": "-(46,199)\n",
    "poly": "924\n",      # C(12,6)
    "btree": "[1,2,3,4,5,7,8,11,15,17,19,23,28,30,35,42]\n",
    "ackermann": "15\n",
}
