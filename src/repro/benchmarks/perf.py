"""Emulator performance measurement: the ``repro bench`` harness.

Times both emulator backends over (a subset of) the paper suite and
emits ``BENCH_emulator.json``, the repository's perf-trajectory record:
per-benchmark wall time and ICI throughput for each backend, the
backend-vs-backend speedup, and enough provenance (git revision, Python
version, repeat count) to compare runs across commits.  CI validates
the document against :func:`validate_bench` and archives it; no timing
gate is applied — the file is a trajectory, not a pass/fail check.

Every timed run also cross-checks the two backends' results field by
field, so a perf run doubles as a differential test.
"""

import platform
import subprocess
import sys
import timeit

from repro.atomicio import atomic_write_json
from repro.benchmarks.programs import TABLE_BENCHMARKS
from repro.benchmarks.suite import compile_benchmark
from repro.emulator import (
    BACKENDS, Emulator, ThreadedEmulator, resolve_backend)

__all__ = [
    "BENCH_SCHEMA",
    "QUICK_BENCHMARKS",
    "bench_document",
    "format_bench",
    "git_revision",
    "time_backends",
    "validate_bench",
    "write_bench",
]

#: bump when the BENCH_emulator.json layout changes
BENCH_SCHEMA = 1

#: the two cheapest suite members — the CI smoke subset
QUICK_BENCHMARKS = ("conc30", "divide10")

_RUNNERS = {"reference": Emulator, "threaded": ThreadedEmulator}


def git_revision():
    """The working tree's commit hash, or ``"unknown"`` outside git."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip()


def _identical(left, right):
    """Field-by-field equality of two EmulationResults."""
    return (left.status == right.status and left.steps == right.steps
            and left.output == right.output
            and left.counts == right.counts
            and left.taken == right.taken)


def time_backends(program, repeats=3):
    """Best-of-*repeats* wall time per backend for one program.

    Returns ``(results, seconds)``: backend name -> EmulationResult and
    backend name -> best wall-clock seconds for a full run.
    """
    results = {}
    seconds = {}
    for backend in BACKENDS:
        emulator = _RUNNERS[backend](program)
        results[backend] = emulator.run()
        seconds[backend] = min(timeit.repeat(
            emulator.run, number=1, repeat=repeats))
    return results, seconds


def bench_document(names=None, repeats=3, progress=None):
    """Time both backends over *names* (default: the paper suite).

    Returns the ``BENCH_emulator.json`` document.  *progress*, when
    given, is called with each finished per-benchmark entry.
    """
    names = list(names) if names is not None else list(TABLE_BENCHMARKS)
    entries = []
    totals = {backend: 0.0 for backend in BACKENDS}
    for name in names:
        program = compile_benchmark(name)
        results, seconds = time_backends(program, repeats=repeats)
        steps = results["reference"].steps
        entry = {
            "name": name,
            "steps": steps,
            "identical": _identical(results["reference"],
                                    results["threaded"]),
            "backends": {
                backend: {
                    "seconds": seconds[backend],
                    "icis_per_sec": steps / seconds[backend]
                    if seconds[backend] > 0 else 0.0,
                }
                for backend in BACKENDS
            },
            "speedup": seconds["reference"] / seconds["threaded"]
            if seconds["threaded"] > 0 else 0.0,
        }
        for backend in BACKENDS:
            totals[backend] += seconds[backend]
        entries.append(entry)
        if progress is not None:
            progress(entry)
    return {
        "schema": BENCH_SCHEMA,
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        # The active backend selection (REPRO_EMULATOR_BACKEND or the
        # default) the run executed under.  Both backends are always
        # timed; this records which one the rest of the evaluation
        # would have used.
        "backend": resolve_backend(None),
        "repeats": repeats,
        "benchmarks": entries,
        "summary": {
            "benchmarks": len(entries),
            "total_seconds": {backend: totals[backend]
                              for backend in BACKENDS},
            "speedup": totals["reference"] / totals["threaded"]
            if totals["threaded"] > 0 else 0.0,
            "all_identical": all(entry["identical"]
                                 for entry in entries),
        },
    }


def validate_bench(document):
    """Schema problems of a BENCH_emulator.json document (empty = valid).

    Checked by CI after the bench smoke run, and by any future PR that
    wants to read the perf trajectory programmatically.
    """
    problems = []

    def require(condition, message):
        if not condition:
            problems.append(message)

    require(isinstance(document, dict), "document is not an object")
    if not isinstance(document, dict):
        return problems
    require(document.get("schema") == BENCH_SCHEMA,
            "schema is not %d" % BENCH_SCHEMA)
    for field in ("git_rev", "python"):
        require(isinstance(document.get(field), str),
                "%s is not a string" % field)
    require(document.get("backend") in BACKENDS,
            "backend is not one of %s" % (sorted(BACKENDS),))
    require(isinstance(document.get("repeats"), int)
            and document.get("repeats", 0) >= 1,
            "repeats is not a positive integer")
    entries = document.get("benchmarks")
    require(isinstance(entries, list) and entries,
            "benchmarks is not a non-empty list")
    for index, entry in enumerate(entries or []):
        where = "benchmarks[%d]" % index
        if not isinstance(entry, dict):
            problems.append("%s is not an object" % where)
            continue
        require(isinstance(entry.get("name"), str),
                "%s.name is not a string" % where)
        require(isinstance(entry.get("steps"), int)
                and entry.get("steps", -1) >= 0,
                "%s.steps is not a non-negative integer" % where)
        require(entry.get("identical") is True,
                "%s.identical is not true" % where)
        backends = entry.get("backends")
        if not isinstance(backends, dict):
            problems.append("%s.backends is not an object" % where)
            continue
        require(sorted(backends) == sorted(BACKENDS),
                "%s.backends keys != %s" % (where, sorted(BACKENDS)))
        for backend, timing in backends.items():
            for field in ("seconds", "icis_per_sec"):
                value = timing.get(field) if isinstance(timing, dict) \
                    else None
                require(isinstance(value, (int, float))
                        and value >= 0,
                        "%s.backends.%s.%s is not a non-negative "
                        "number" % (where, backend, field))
        require(isinstance(entry.get("speedup"), (int, float)),
                "%s.speedup is not a number" % where)
    summary = document.get("summary")
    require(isinstance(summary, dict), "summary is not an object")
    if isinstance(summary, dict):
        require(summary.get("benchmarks") == len(entries or []),
                "summary.benchmarks does not match the entry count")
        require(isinstance(summary.get("speedup"), (int, float)),
                "summary.speedup is not a number")
    return problems


def write_bench(document, path):
    """Publish *document* as JSON at *path* (atomically: an interrupted
    bench run never leaves a truncated or invalid record behind)."""
    return atomic_write_json(path, document, indent=2, sort_keys=True)


def format_bench(entry):
    """One human-readable progress line for a per-benchmark entry."""
    timings = entry["backends"]
    return ("%-12s steps=%-9d ref=%8.4fs thr=%8.4fs  %5.2fx  %s"
            % (entry["name"], entry["steps"],
               timings["reference"]["seconds"],
               timings["threaded"]["seconds"], entry["speedup"],
               "ok" if entry["identical"] else "MISMATCH"))
