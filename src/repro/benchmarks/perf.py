"""Emulator performance measurement: the ``repro bench`` harness.

Times the emulator backends over (a subset of) the paper suite and
emits ``BENCH_emulator.json``, the repository's perf-trajectory record:
per-benchmark wall time and ICI throughput for each backend, the
backend-vs-reference speedups, and enough provenance (git revision,
Python version, repeat count, producing backend per row) to compare
runs across commits.  CI validates the document against
:func:`validate_bench` and archives it; no timing gate is applied —
the file is a trajectory, not a pass/fail check.

Every timed run also cross-checks all backends' results field by
field, so a perf run doubles as a differential test.  Each backend
row additionally records ``produced_by`` — the backend that actually
produced the profile (:attr:`EmulationResult.backend`) — which is how
a silent codegen fallback to the reference loop becomes visible in
the record.

Timing is *interleaved*: rather than timing backend A's repeats and
then backend B's, each repeat round times every backend once and the
best round per backend wins.  Thermal throttling drifts wall time by
tens of percent over a bench run; interleaving puts every backend
under the same drift instead of charging it all to whichever ran
last.
"""

import platform
import subprocess
import sys
import timeit

from repro.atomicio import atomic_write_json
from repro.benchmarks.programs import TABLE_BENCHMARKS
from repro.benchmarks.suite import compile_benchmark
from repro.emulator import (
    BACKENDS, CodegenEmulator, Emulator, ThreadedEmulator,
    resolve_backend)

__all__ = [
    "BENCH_SCHEMA",
    "QUICK_BENCHMARKS",
    "bench_document",
    "format_bench",
    "git_revision",
    "time_backends",
    "validate_bench",
    "write_bench",
]

#: bump when the BENCH_emulator.json layout changes
BENCH_SCHEMA = 2

#: the two cheapest suite members — the CI smoke subset
QUICK_BENCHMARKS = ("conc30", "divide10")

_RUNNERS = {
    "reference": Emulator,
    "threaded": ThreadedEmulator,
    "codegen": CodegenEmulator,
}

_ABBREV = {"reference": "ref", "threaded": "thr", "codegen": "cg"}


def git_revision():
    """The working tree's commit hash, or ``"unknown"`` outside git."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip()


def _identical(left, right):
    """Field-by-field equality of two EmulationResults."""
    return (left.status == right.status and left.steps == right.steps
            and left.output == right.output
            and left.counts == right.counts
            and left.taken == right.taken)


def _resolve_timed(backends):
    """Normalise a backend selection to BACKENDS order."""
    if backends is None:
        return list(BACKENDS)
    unknown = [name for name in backends if name not in BACKENDS]
    if unknown:
        raise ValueError("unknown backend(s) %s; available: %s"
                         % (", ".join(sorted(unknown)),
                            ", ".join(sorted(BACKENDS))))
    return [name for name in BACKENDS if name in set(backends)]


def time_backends(program, repeats=3, backends=None):
    """Best-of-*repeats* wall time per backend for one program.

    Returns ``(results, seconds)``: backend name -> EmulationResult and
    backend name -> best wall-clock seconds for a full run.  The
    codegen backend is warmed with one extra run before timing so the
    tier-2 recompile (and the compiled template) are in place and the
    timings reflect steady state — which is also what a cached-artefact
    second evaluation observes.
    """
    timed = _resolve_timed(backends)
    emulators = {}
    results = {}
    seconds = {backend: float("inf") for backend in timed}
    for backend in timed:
        emulator = _RUNNERS[backend](program)
        emulators[backend] = emulator
        results[backend] = emulator.run()
        if backend == "codegen":
            emulator.run()
    for _ in range(repeats):
        for backend in timed:
            elapsed = timeit.timeit(emulators[backend].run, number=1)
            if elapsed < seconds[backend]:
                seconds[backend] = elapsed
    return results, seconds


def bench_document(names=None, repeats=3, progress=None, backends=None):
    """Time the selected *backends* over *names*.

    Defaults: all of :data:`BACKENDS` over the paper suite.  Returns
    the ``BENCH_emulator.json`` document.  *progress*, when given, is
    called with each finished per-benchmark entry.
    """
    names = list(names) if names is not None else list(TABLE_BENCHMARKS)
    timed = _resolve_timed(backends)
    entries = []
    totals = {backend: 0.0 for backend in timed}
    for name in names:
        program = compile_benchmark(name)
        results, seconds = time_backends(program, repeats=repeats,
                                         backends=timed)
        baseline = results[timed[0]]
        steps = baseline.steps
        entry = {
            "name": name,
            "steps": steps,
            "identical": all(_identical(baseline, results[backend])
                             for backend in timed[1:]),
            "backends": {
                backend: {
                    "seconds": seconds[backend],
                    "icis_per_sec": steps / seconds[backend]
                    if seconds[backend] > 0 else 0.0,
                    "produced_by": results[backend].backend,
                }
                for backend in timed
            },
            "speedups": {
                backend: seconds["reference"] / seconds[backend]
                for backend in timed
                if backend != "reference" and "reference" in seconds
                and seconds[backend] > 0
            },
        }
        for backend in timed:
            totals[backend] += seconds[backend]
        entries.append(entry)
        if progress is not None:
            progress(entry)
    return {
        "schema": BENCH_SCHEMA,
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        # The active backend selection (REPRO_EMULATOR_BACKEND or the
        # default) the run executed under — which backend the rest of
        # the evaluation would have used, independent of which ones
        # were timed here.
        "backend": resolve_backend(None),
        "backends_timed": timed,
        "repeats": repeats,
        "benchmarks": entries,
        "summary": {
            "benchmarks": len(entries),
            "total_seconds": {backend: totals[backend]
                              for backend in timed},
            "speedups": {
                backend: totals["reference"] / totals[backend]
                for backend in timed
                if backend != "reference" and "reference" in totals
                and totals[backend] > 0
            },
            "all_identical": all(entry["identical"]
                                 for entry in entries),
        },
    }


def validate_bench(document):
    """Schema problems of a BENCH_emulator.json document (empty = valid).

    Checked by CI after the bench smoke run, and by any future PR that
    wants to read the perf trajectory programmatically.
    """
    problems = []

    def require(condition, message):
        if not condition:
            problems.append(message)

    require(isinstance(document, dict), "document is not an object")
    if not isinstance(document, dict):
        return problems
    require(document.get("schema") == BENCH_SCHEMA,
            "schema is not %d" % BENCH_SCHEMA)
    for field in ("git_rev", "python"):
        require(isinstance(document.get(field), str),
                "%s is not a string" % field)
    require(document.get("backend") in BACKENDS,
            "backend is not one of %s" % (sorted(BACKENDS),))
    timed = document.get("backends_timed")
    require(isinstance(timed, list) and timed
            and all(backend in BACKENDS for backend in timed),
            "backends_timed is not a non-empty subset of %s"
            % (sorted(BACKENDS),))
    if not isinstance(timed, list):
        timed = []
    require(isinstance(document.get("repeats"), int)
            and document.get("repeats", 0) >= 1,
            "repeats is not a positive integer")
    entries = document.get("benchmarks")
    require(isinstance(entries, list) and entries,
            "benchmarks is not a non-empty list")
    for index, entry in enumerate(entries or []):
        where = "benchmarks[%d]" % index
        if not isinstance(entry, dict):
            problems.append("%s is not an object" % where)
            continue
        require(isinstance(entry.get("name"), str),
                "%s.name is not a string" % where)
        require(isinstance(entry.get("steps"), int)
                and entry.get("steps", -1) >= 0,
                "%s.steps is not a non-negative integer" % where)
        require(entry.get("identical") is True,
                "%s.identical is not true" % where)
        backends = entry.get("backends")
        if not isinstance(backends, dict):
            problems.append("%s.backends is not an object" % where)
            continue
        require(sorted(backends) == sorted(timed),
                "%s.backends keys != backends_timed" % where)
        for backend, timing in backends.items():
            if not isinstance(timing, dict):
                problems.append("%s.backends.%s is not an object"
                                % (where, backend))
                continue
            for field in ("seconds", "icis_per_sec"):
                value = timing.get(field)
                require(isinstance(value, (int, float))
                        and value >= 0,
                        "%s.backends.%s.%s is not a non-negative "
                        "number" % (where, backend, field))
            require(timing.get("produced_by") in BACKENDS,
                    "%s.backends.%s.produced_by is not one of %s"
                    % (where, backend, sorted(BACKENDS)))
        speedups = entry.get("speedups")
        require(isinstance(speedups, dict)
                and all(isinstance(value, (int, float))
                        for value in (speedups or {}).values()),
                "%s.speedups is not an object of numbers" % where)
    summary = document.get("summary")
    require(isinstance(summary, dict), "summary is not an object")
    if isinstance(summary, dict):
        require(summary.get("benchmarks") == len(entries or []),
                "summary.benchmarks does not match the entry count")
        require(isinstance(summary.get("speedups"), dict),
                "summary.speedups is not an object")
        totals = summary.get("total_seconds")
        require(isinstance(totals, dict)
                and sorted(totals or {}) == sorted(timed),
                "summary.total_seconds keys != backends_timed")
    return problems


def write_bench(document, path):
    """Publish *document* as JSON at *path* (atomically: an interrupted
    bench run never leaves a truncated or invalid record behind)."""
    return atomic_write_json(path, document, indent=2, sort_keys=True)


def format_bench(entry):
    """One human-readable progress line for a per-benchmark entry."""
    parts = ["%-12s steps=%-9d" % (entry["name"], entry["steps"])]
    for backend, timing in entry["backends"].items():
        parts.append("%s=%8.4fs" % (_ABBREV.get(backend, backend),
                                    timing["seconds"]))
    for backend, speedup in entry.get("speedups", {}).items():
        parts.append("%s %5.2fx" % (_ABBREV.get(backend, backend),
                                    speedup))
    parts.append("ok" if entry["identical"] else "MISMATCH")
    return " ".join(parts)
