"""The benchmark programs.

Re-implementations of the classical Warren / Aquarius benchmark set used
in the paper (section 1: "Prolog benchmarks extracted from the Aquarius
Benchmark Suite").  The original suite is not redistributable, so each
program is written from its well-known published formulation; input sizes
are chosen so the Python-hosted ICI emulation of every program completes
in seconds (the paper's observables are ratios and distributions, not
absolute cycle counts).

Every program defines ``main/0``, prints its result (so compiled code can
be validated against the reference interpreter) and succeeds exactly when
the computation finds its expected answer.
"""


class BenchmarkProgram:
    """One benchmark: source text plus catalogue metadata."""

    def __init__(self, name, description, source, in_table1=True):
        self.name = name
        self.description = description
        self.source = source
        #: benchmarks appearing in the paper's Tables 1/3/4 (crypt and
        #: query appear only in the branch-prediction study, Table 2)
        self.in_table1 = in_table1

    def __repr__(self):
        return "BenchmarkProgram(%r)" % self.name


_LIST_LIB = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
"""

_DERIV_LIB = """
d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
d(U / V, X, (DU * V - U * DV) / (V * V)) :- !, d(U, X, DU), d(V, X, DV).
d(U ^ N, X, DU * N * U ^ N1) :- !, integer(N), N1 is N - 1, d(U, X, DU).
d(- U, X, - DU) :- !, d(U, X, DU).
d(exp(U), X, exp(U) * DU) :- !, d(U, X, DU).
d(log(U), X, DU / U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).
"""

CONC30 = BenchmarkProgram("conc30", "concatenate a 30-element list", """
conc([], L, L).
conc([H|T], L, [H|R]) :- conc(T, L, R).
main :-
    conc([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,
          21,22,23,24,25,26,27,28,29,30], [a,b,c], R),
    write(R), nl.
""")

NREVERSE = BenchmarkProgram("nreverse", "naive reverse of a 30-element list",
                            _LIST_LIB + """
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
main :-
    nrev([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,
          21,22,23,24,25,26,27,28,29,30], R),
    write(R), nl.
""")

QSORT = BenchmarkProgram("qsort", "quicksort of Warren's 50-element list", """
qsort([], R, R).
qsort([X|L], R, R0) :-
    partition(L, X, L1, L2),
    qsort(L2, R1, R0),
    qsort(L1, R, [X|R1]).
partition([], _, [], []).
partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
main :-
    qsort([27,74,17,33,94,18,46,83,65,2,32,53,28,85,99,47,28,82,6,11,
           55,29,39,81,90,37,10,0,66,51,7,21,85,27,31,63,75,4,95,99,
           11,28,61,74,18,92,40,53,59,8], S, []),
    write(S), nl.
""")

OPS8 = BenchmarkProgram("ops8", "symbolic differentiation: operator mix",
                        _DERIV_LIB + """
main :- d((x + 1) * ((x ^ 2 + 2) * (x ^ 3 + 3)), x, E), write(E), nl.
""")

DIVIDE10 = BenchmarkProgram("divide10", "symbolic differentiation: quotients",
                            _DERIV_LIB + """
main :-
    d(((((((((x / x) / x) / x) / x) / x) / x) / x) / x) / x, x, E),
    write(E), nl.
""")

LOG10 = BenchmarkProgram("log10", "symbolic differentiation: logarithms",
                         _DERIV_LIB + """
main :-
    d(log(log(log(log(log(log(log(log(log(log(x)))))))))), x, E),
    write(E), nl.
""")

TIMES10 = BenchmarkProgram("times10", "symbolic differentiation: products",
                           _DERIV_LIB + """
main :-
    d(((((((((x * x) * x) * x) * x) * x) * x) * x) * x) * x, x, E),
    write(E), nl.
""")

TAK = BenchmarkProgram("tak", "Takeuchi function (heavy integer recursion)", """
tak(X, Y, Z, A) :- X =< Y, !, Z = A.
tak(X, Y, Z, A) :-
    X1 is X - 1, Y1 is Y - 1, Z1 is Z - 1,
    tak(X1, Y, Z, A1),
    tak(Y1, Z, X, A2),
    tak(Z1, X, Y, A3),
    tak(A1, A2, A3, A).
main :- tak(12, 6, 0, A), write(A), nl.
""")

SERIALISE = BenchmarkProgram("serialise", "Warren's palin25 serialiser", """
serialise(L, R) :-
    pairlists(L, R, A),
    arrange(A, T),
    numbered(T, 1, _).
pairlists([X|L], [Y|R], [pair(X,Y)|A]) :- pairlists(L, R, A).
pairlists([], [], []).
arrange([X|L], tree(T1, X, T2)) :-
    split(L, X, L1, L2),
    arrange(L1, T1),
    arrange(L2, T2).
arrange([], void).
split([X|L], X, L1, L2) :- !, split(L, X, L1, L2).
split([X|L], Y, [X|L1], L2) :- before(X, Y), !, split(L, Y, L1, L2).
split([X|L], Y, L1, [X|L2]) :- before(Y, X), !, split(L, Y, L1, L2).
split([], _, [], []).
before(pair(X1, _), pair(X2, _)) :- X1 < X2.
numbered(tree(T1, pair(_, N1), T2), N0, N) :-
    numbered(T1, N0, N1),
    N2 is N1 + 1,
    numbered(T2, N2, N).
numbered(void, N, N).
main :- serialise("ABLE WAS I ERE I SAW ELBA", R), write(R), nl.
""")

MU = BenchmarkProgram("mu", "Hofstadter's MU puzzle (depth-bounded search)",
                      _LIST_LIB + """
theorem(D, R) :- derive([m, i], R, D).
derive(S, S, _).
derive(S, T, D) :-
    D > 0, D1 is D - 1,
    rewrite(S, S1),
    derive(S1, T, D1).
rewrite(S, S1) :- rule1(S, S1).
rewrite(S, S1) :- rule2(S, S1).
rewrite(S, S1) :- rule3(S, S1).
rewrite(S, S1) :- rule4(S, S1).
rule1(S, S1) :- app(X, [i], S), app(X, [i, u], S1).
rule2([m|X], [m|S1]) :- app(X, X, S1).
rule3(S, S1) :- app(X, T, S), app([i, i, i], Y, T), app(X, [u|Y], S1).
rule4(S, S1) :- app(X, T, S), app([u, u], Y, T), app(X, Y, S1).
main :- theorem(5, [m, u, i, i, u]), !, write(proved), nl.
""")

QUEENS8 = BenchmarkProgram("queens_8", "first solution of 8 queens", """
queens(N, Qs) :- range(1, N, Ns), place(Ns, [], Qs).
range(N, N, [N]) :- !.
range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).
place([], Qs, Qs).
place(Unplaced, Safe, Qs) :-
    sel(Q, Unplaced, Rest),
    \\+ attack(Q, Safe),
    place(Rest, [Q|Safe], Qs).
sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).
attack(X, Xs) :- attack(X, 1, Xs).
attack(X, N, [Y|_]) :- X =:= Y + N.
attack(X, N, [Y|_]) :- X =:= Y - N.
attack(X, N, [_|Ys]) :- N1 is N + 1, attack(X, N1, Ys).
main :- queens(8, Qs), !, write(Qs), nl.
""")

QUERY = BenchmarkProgram("query", "Warren's database query benchmark", """
main :- query(Q), write(Q), nl, fail.
main.
query([C1, D1, C2, D2]) :-
    density(C1, D1),
    density(C2, D2),
    D1 > D2,
    20 * D1 < 21 * D2.
density(C, D) :- pop(C, P), area(C, A), D is P * 100 // A.
pop(china, 8250).       area(china, 3380).
pop(india, 5863).       area(india, 1139).
pop(ussr, 2521).        area(ussr, 8708).
pop(usa, 2119).         area(usa, 3609).
pop(indonesia, 1276).   area(indonesia, 570).
pop(japan, 1097).       area(japan, 148).
pop(brazil, 1042).      area(brazil, 3288).
pop(bangladesh, 750).   area(bangladesh, 55).
pop(pakistan, 682).     area(pakistan, 311).
pop(w_germany, 620).    area(w_germany, 96).
pop(nigeria, 613).      area(nigeria, 373).
pop(mexico, 581).       area(mexico, 764).
pop(uk, 559).           area(uk, 86).
pop(italy, 554).        area(italy, 116).
pop(france, 525).       area(france, 213).
pop(philippines, 415).  area(philippines, 90).
pop(thailand, 410).     area(thailand, 200).
pop(turkey, 383).       area(turkey, 296).
pop(egypt, 364).        area(egypt, 386).
pop(spain, 352).        area(spain, 190).
pop(poland, 337).       area(poland, 121).
pop(s_korea, 335).      area(s_korea, 37).
pop(iran, 320).         area(iran, 628).
pop(ethiopia, 272).     area(ethiopia, 350).
pop(argentina, 251).    area(argentina, 1080).
""", in_table1=False)

CRYPT = BenchmarkProgram("crypt", "cryptomultiplication puzzle", """
odd(1). odd(3). odd(5). odd(7). odd(9).
even(0). even(2). even(4). even(6). even(8).
crypt([A, B, C, D, E]) :-
    odd(A), even(B), even(C),
    even(D), D =\\= 0,
    even(E), E =\\= 0,
    N is A * 100 + B * 10 + C,
    P1 is N * E,
    P1 >= 1000, P1 =< 9999,
    F is P1 // 1000, even(F), F =\\= 0,
    G is P1 // 100 mod 10, odd(G),
    H is P1 // 10 mod 10, even(H),
    I is P1 mod 10, even(I),
    P2 is N * D,
    P2 >= 100, P2 =< 999,
    J is P2 // 100, even(J), J =\\= 0,
    K is P2 // 10 mod 10, odd(K),
    L is P2 mod 10, even(L),
    T is P1 + P2 * 10,
    T >= 1000, T =< 9999,
    M is T // 1000, odd(M),
    N2 is T // 100 mod 10, odd(N2),
    O is T // 10 mod 10, even(O),
    P is T mod 10, even(P).
main :- crypt(S), !, write(S), nl.
""", in_table1=False)

SENDMORE = BenchmarkProgram("sendmore", "SEND + MORE = MONEY", """
sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).
solve([S, E, N, D, M, O, R, Y]) :-
    sel(D, [0,1,2,3,4,5,6,7,8,9], R1),
    sel(E, R1, R2),
    Y0 is D + E, Y is Y0 mod 10, C1 is Y0 // 10,
    sel(Y, R2, R3),
    sel(N, R3, R4),
    sel(R, R4, R5),
    E0 is N + R + C1, E =:= E0 mod 10, C2 is E0 // 10,
    sel(O, R5, R6),
    N0 is E + O + C2, N =:= N0 mod 10, C3 is N0 // 10,
    sel(S, R6, R7), S =\\= 0,
    sel(M, R7, _), M =\\= 0,
    O0 is S + M + C3, O =:= O0 mod 10, M =:= O0 // 10.
main :- solve(L), !, write(L), nl.
""")

ZEBRA = BenchmarkProgram("zebra", "the five-houses puzzle", """
memb(X, [X|_]).
memb(X, [_|T]) :- memb(X, T).
nextto(A, B, [A, B|_]).
nextto(A, B, [_|T]) :- nextto(A, B, T).
right_of(A, B, L) :- nextto(B, A, L).
beside(A, B, L) :- nextto(A, B, L).
beside(A, B, L) :- nextto(B, A, L).
zebra(Zebra, Water) :-
    Houses = [house(norwegian, _, _, _, _), _,
              house(_, _, _, milk, _), _, _],
    memb(house(englishman, _, _, _, red), Houses),
    right_of(house(_, _, _, _, green),
             house(_, _, _, _, ivory), Houses),
    beside(house(norwegian, _, _, _, _),
           house(_, _, _, _, blue), Houses),
    memb(house(_, kools, _, _, yellow), Houses),
    memb(house(spaniard, _, dog, _, _), Houses),
    memb(house(_, _, _, coffee, green), Houses),
    memb(house(ukrainian, _, _, tea, _), Houses),
    memb(house(_, luckystrike, _, orangejuice, _), Houses),
    memb(house(japanese, parliaments, _, _, _), Houses),
    memb(house(_, oldgold, snails, _, _), Houses),
    beside(house(_, chesterfields, _, _, _),
           house(_, _, fox, _, _), Houses),
    beside(house(_, kools, _, _, _),
           house(_, _, horse, _, _), Houses),
    memb(house(Zebra, _, zebra, _, _), Houses),
    memb(house(Water, _, _, water, _), Houses).
main :- zebra(Z, W), !, write(Z), write(W), nl.
""")

PROVER = BenchmarkProgram("prover", "propositional sequent prover", """
prove(F) :- pr([], [F]).
pr(L, R) :- memb(X, L), memb(X, R), !.
pr(L, R) :- sel(and(A, B), L, L1), !, pr([A, B|L1], R).
pr(L, R) :- sel(or(A, B), R, R1), !, pr(L, [A, B|R1]).
pr(L, R) :- sel(imp(A, B), R, R1), !, pr([A|L], [B|R1]).
pr(L, R) :- sel(neg(A), L, L1), !, pr(L1, [A|R]).
pr(L, R) :- sel(neg(A), R, R1), !, pr([A|L], R1).
pr(L, R) :- sel(and(A, B), R, R1), !, pr(L, [A|R1]), pr(L, [B|R1]).
pr(L, R) :- sel(or(A, B), L, L1), !, pr([A|L1], R), pr([B|L1], R).
pr(L, R) :- sel(imp(A, B), L, L1), !, pr(L1, [A|R]), pr([B|L1], R).
memb(X, [X|_]).
memb(X, [_|T]) :- memb(X, T).
sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).
theorem(1, imp(and(p, q), p)).
theorem(2, imp(p, or(p, q))).
theorem(3, imp(imp(imp(p, q), p), p)).
theorem(4, imp(and(imp(p, q), imp(q, r)), imp(p, r))).
theorem(5, imp(neg(neg(p)), p)).
theorem(6, imp(and(or(p, q), and(or(neg(p), r), or(neg(q), r))), r)).
theorem(7, or(p, neg(p))).
theorem(8, imp(and(p, imp(p, q)), q)).
theorem(9, imp(neg(and(p, q)), or(neg(p), neg(q)))).
theorem(10, imp(or(neg(p), neg(q)), neg(and(p, q)))).
main :- check(1), check(2), check(3), check(4), check(5),
        check(6), check(7), check(8), check(9), check(10),
        write(proved), nl.
check(N) :- theorem(N, F), prove(F).
""")


ALL_PROGRAMS = [
    CONC30, CRYPT, DIVIDE10, LOG10, MU, NREVERSE, OPS8, PROVER, QSORT,
    QUEENS8, QUERY, SENDMORE, SERIALISE, TAK, TIMES10, ZEBRA,
]

PROGRAMS = {program.name: program for program in ALL_PROGRAMS}

#: the benchmark set of the paper's Tables 1 and 3 (crypt/query appear
#: only in the predictability study, section 4.4)
TABLE_BENCHMARKS = [p.name for p in ALL_PROGRAMS if p.in_table1]
