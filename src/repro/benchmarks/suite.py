"""Benchmark suite driver: compile, emulate, validate, cache.

Emulating the larger benchmarks costs seconds of host CPU, and the
evaluation pipeline needs each dynamic profile several times (instruction
mix, branch statistics, compaction input).  ``run_benchmark`` therefore
memoises :class:`~repro.emulator.machine.EmulationResult` data on disk,
keyed by a hash of the generated code, so a profile is computed once per
compiled program ever.
"""

import hashlib
import json
import os

from repro.atomicio import FileLock, atomic_write_json
from repro.benchmarks.programs import PROGRAMS, TABLE_BENCHMARKS
from repro.bam import compile_source
from repro.intcode import translate_module
from repro.emulator import EmulationResult, resolve_backend, run_program
from repro.interp import Engine
from repro.observability import tracing as observe

_CACHE_ENV = "REPRO_CACHE_DIR"


def cache_dir():
    path = os.environ.get(_CACHE_ENV)
    if path is None:
        path = os.path.join(os.path.expanduser("~"), ".cache",
                            "repro-symbol")
    os.makedirs(path, exist_ok=True)
    return path


def program_fingerprint(program):
    """Stable hash of a compiled ICI program."""
    digest = hashlib.sha256()
    for instruction in program.instructions:
        digest.update(repr(instruction).encode())
    for name in sorted(program.labels):
        digest.update(("%s=%d" % (name, program.labels[name])).encode())
    return digest.hexdigest()[:24]


def suite_catalogue():
    """Every registered program: the paper suite, the extended set and
    the DCG application workloads.

    Built lazily — the corpus package imports the suite for its cache
    and fingerprints, so importing it at module scope would be a cycle.
    """
    from repro.benchmarks.extended import EXTENDED_PROGRAMS
    from repro.corpus.workloads import DCG_PROGRAMS
    catalogue = dict(PROGRAMS)
    catalogue.update(EXTENDED_PROGRAMS)
    catalogue.update(DCG_PROGRAMS)
    return catalogue


def resolve_program(name):
    """Look up *name* across the whole catalogue (paper suite first)."""
    if name in PROGRAMS:
        return PROGRAMS[name]
    catalogue = suite_catalogue()
    if name not in catalogue:
        raise KeyError("unknown benchmark %r; available: %s"
                       % (name, ", ".join(sorted(catalogue))))
    return catalogue[name]


def compile_benchmark(name):
    """Compile benchmark *name* to an ICI program."""
    with observe.span("pipeline.translate", benchmark=name) as sp:
        program = translate_module(
            compile_source(resolve_program(name).source))
        sp.set(instructions=len(program.instructions))
        return program


def run_program_cached(program, key_hint="", backend=None):
    """Emulate *program*, consulting the on-disk profile cache first.

    Both emulator backends produce bit-identical profiles, but the
    payload records which backend actually produced it
    (``EmulationResult.backend``) and callers rely on that provenance —
    the bench document's ``backend`` field must reflect the backend the
    run was asked for.  A hit whose recorded backend differs from the
    resolved request is therefore recomputed (and republished) under
    the requested backend rather than served as-is.
    """
    wanted = resolve_backend(backend)
    key = key_hint + program_fingerprint(program)
    path = os.path.join(cache_dir(), key + ".json")
    if os.path.exists(path):
        try:
            with open(path) as handle:
                data = json.load(handle)
            cached_backend = data.get("backend", "reference")
            if cached_backend == wanted:
                observe.add("profile_cache.hits")
                return EmulationResult(program, data["status"],
                                       data["steps"], data["output"],
                                       data["counts"], data["taken"],
                                       backend=cached_backend)
            observe.add("profile_cache.backend_mismatches")
        except (ValueError, KeyError):
            os.remove(path)
    observe.add("profile_cache.misses")
    with observe.span("pipeline.profile", backend=wanted) as sp:
        # cached-profile producers are exactly the programs worth
        # keeping compiled codegen artefacts for (sweeps re-run them)
        result = run_program(program, backend=wanted,
                             persist_artifacts=True)
        sp.set(steps=result.steps, status=result.status)
    # Crash-safe publish: parallel evaluation workers (and concurrent
    # CLI runs) may race on the same profile; a reader must never see
    # a torn file, and a kill mid-write must never leave one.
    with FileLock(os.path.join(os.path.dirname(path), ".lock")):
        atomic_write_json(
            path, {"status": result.status, "steps": result.steps,
                   "output": result.output, "counts": result.counts,
                   "taken": result.taken, "backend": result.backend})
    return result


def run_benchmark(name):
    """Compile and emulate benchmark *name* (cached)."""
    return run_program_cached(compile_benchmark(name), name + "-")


def interpret_benchmark(name):
    """Run benchmark *name* on the reference interpreter.

    Returns ``(succeeded, output_text)``.
    """
    engine = Engine()
    engine.consult(resolve_program(name).source)
    return engine.run_query("main"), engine.output_text()


def validate_benchmark(name):
    """Check compiled execution against the reference interpreter."""
    result = run_benchmark(name)
    ok, text = interpret_benchmark(name)
    return (result.succeeded == ok) and (result.output == text)


__all__ = [
    "PROGRAMS",
    "TABLE_BENCHMARKS",
    "suite_catalogue",
    "resolve_program",
    "compile_benchmark",
    "run_benchmark",
    "run_program_cached",
    "interpret_benchmark",
    "validate_benchmark",
    "program_fingerprint",
    "cache_dir",
]
