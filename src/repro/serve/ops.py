"""Request validation and canonical result computation.

The service and the load-test client share this module so both sides
agree, byte for byte, on what a request *means*: :func:`parse_request`
reduces a JSON body to a canonical spec (sorted configs, defaulted
budget, deadline split out — the deadline shapes scheduling, never the
answer), and :func:`compute_result` maps a spec to a deterministic
result payload.  Results deliberately exclude run provenance (which
emulator backend produced the profile, timings): a degraded request
served by the reference interpreter must be **byte-identical** to the
same request on the codegen backend, which is the invariant the chaos
suite pins.
"""

import json

from repro.analysis.report import target_entry
from repro.benchmarks.suite import (
    compile_benchmark, program_fingerprint, run_program_cached,
    suite_catalogue)
from repro.experiments.data import master_configs

__all__ = [
    "OPS",
    "RequestError",
    "canonical_json",
    "compute_result",
    "parse_request",
    "request_label",
]

#: the operations the service accepts, as POST /v1/<op>
OPS = ("compile", "evaluate", "verify", "analyze", "query")

#: configs evaluated when a request names none
DEFAULT_CONFIG_KEYS = ("seq", "vliw3")


class RequestError(ValueError):
    """A request that can never succeed (HTTP 400, not retried)."""


def _normalise(value):
    """JSON round-trip: coerce *value* to what a client receives.

    Non-string dict keys (the analyzer's per-block tables are
    int-keyed) become strings here, deterministically, *before* the
    payload is checksummed into the cache or compared byte-for-byte —
    ``sort_keys`` orders int keys numerically but their post-transport
    string forms lexicographically, so skipping this step would make a
    payload disagree with its own round-tripped self.
    """
    return json.loads(json.dumps(value))


def canonical_json(value):
    """Deterministic encoding used for byte-identity comparison."""
    return json.dumps(_normalise(value), sort_keys=True,
                      separators=(",", ":"))


def parse_request(op, body):
    """Validate one request body into ``(spec, deadline)``.

    The spec is canonical — config keys sorted and de-duplicated, the
    tail-duplication budget defaulted — so equal requests hash to the
    same service-level cache key however the client spelt them.  The
    per-request *deadline* (seconds, optional) is returned separately:
    it bounds execution but must not split the result cache.
    """
    if op not in OPS:
        raise RequestError("unknown operation %r (expected one of %s)"
                           % (op, ", ".join(OPS)))
    if not isinstance(body, dict):
        raise RequestError("request body must be a JSON object")
    benchmark = body.get("benchmark")
    if not isinstance(benchmark, str) or not benchmark:
        raise RequestError("'benchmark' must be a non-empty string")
    if benchmark not in suite_catalogue():
        raise RequestError("unknown benchmark %r" % benchmark)
    if op == "query":
        return _parse_query_request(body, benchmark)
    config_keys = body.get("configs", list(DEFAULT_CONFIG_KEYS))
    if (not isinstance(config_keys, (list, tuple)) or not config_keys
            or not all(isinstance(key, str) for key in config_keys)):
        raise RequestError("'configs' must be a non-empty list of "
                           "configuration names")
    known = master_configs()
    unknown = sorted(set(config_keys) - set(known))
    if unknown:
        raise RequestError(
            "unknown machine configuration(s) %s (expected a subset "
            "of %s)" % (", ".join(unknown), ", ".join(sorted(known))))
    budget = body.get("tail_dup_budget", 48)
    if not isinstance(budget, int) or isinstance(budget, bool) \
            or budget < 0:
        raise RequestError("'tail_dup_budget' must be a non-negative "
                           "integer")
    deadline = body.get("deadline")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) \
                or isinstance(deadline, bool) or deadline <= 0:
            raise RequestError("'deadline' must be a positive number "
                               "of seconds")
        deadline = float(deadline)
    unknown_fields = sorted(set(body)
                            - {"benchmark", "configs",
                               "tail_dup_budget", "deadline", "op"})
    if unknown_fields:
        raise RequestError("unknown request field(s): %s"
                           % ", ".join(unknown_fields))
    spec = {
        "op": op,
        "benchmark": benchmark,
        "configs": sorted(set(config_keys)),
        "tail_dup_budget": budget,
    }
    return spec, deadline


def _parse_query_request(body, benchmark):
    """The ``query`` op: enumerate a goal with the or-parallel engine.

    ``or_jobs`` is part of the spec — it is what the client asked the
    service to *do* — but the result payload carries no execution
    provenance, so the same query at any ``or_jobs`` is byte-identical
    (the invariant the serve suite pins)."""
    goal = body.get("goal", "main")
    if not isinstance(goal, str) or not goal.strip():
        raise RequestError("'goal' must be a non-empty string")
    limit = body.get("limit", 64)
    if not isinstance(limit, int) or isinstance(limit, bool) \
            or not 1 <= limit <= 10000:
        raise RequestError("'limit' must be an integer in 1..10000")
    or_jobs = body.get("or_jobs", 1)
    if not isinstance(or_jobs, int) or isinstance(or_jobs, bool) \
            or not 1 <= or_jobs <= 64:
        raise RequestError("'or_jobs' must be an integer in 1..64")
    deadline = body.get("deadline")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) \
                or isinstance(deadline, bool) or deadline <= 0:
            raise RequestError("'deadline' must be a positive number "
                               "of seconds")
        deadline = float(deadline)
    unknown_fields = sorted(set(body)
                            - {"benchmark", "goal", "limit", "or_jobs",
                               "deadline", "op"})
    if unknown_fields:
        raise RequestError("unknown request field(s): %s"
                           % ", ".join(unknown_fields))
    spec = {
        "op": "query",
        "benchmark": benchmark,
        "goal": goal.strip(),
        "limit": limit,
        "or_jobs": or_jobs,
    }
    return spec, deadline


def request_label(spec):
    """A stable human-readable label (retry backoff is seeded by it)."""
    return "serve/%s/%s" % (spec["op"], spec["benchmark"])


def _selected_configs(spec):
    known = master_configs()
    return {key: known[key] for key in spec["configs"]}


def compute_result(spec, engine):
    """The deterministic result payload for *spec*.

    ``compile`` needs no engine; the other operations fan their cells
    out through *engine* (and therefore inherit its supervisor policy,
    cache store and — via the service — clamped deadlines).  The
    payload is normalised to its transport form (see
    :func:`_normalise`) so serving it from the result cache is
    byte-identical to computing it fresh.
    """
    return _normalise(_compute_result(spec, engine))


def _compute_result(spec, engine):
    op = spec["op"]
    name = spec["benchmark"]
    if op == "compile":
        program = compile_benchmark(name)
        return {
            "op": op,
            "benchmark": name,
            "fingerprint": program_fingerprint(program),
            "instructions": len(program.instructions),
            "labels": len(program.labels),
        }
    if op == "evaluate":
        evaluation = engine.evaluate(
            name, _selected_configs(spec),
            tail_dup_budget=spec["tail_dup_budget"])
        return {
            "op": op,
            "benchmark": name,
            "cycles": dict(evaluation.data["cycles"]),
            "region_stats": evaluation.data["region_stats"],
            "steps": evaluation.data["steps"],
        }
    if op == "verify":
        from repro.evaluation.pipeline import verify_evaluation
        program = compile_benchmark(name)
        result = run_program_cached(program, name + "-")
        diagnostics = verify_evaluation(
            program, result, _selected_configs(spec),
            tail_dup_budget=spec["tail_dup_budget"],
            cache_hint=name + "-")
        entry = target_entry(name, diagnostics,
                             machine_configs=spec["configs"])
        entry["op"] = op
        return entry
    if op == "analyze":
        from repro.analysis.driver import analyze_benchmark
        record = analyze_benchmark(name,
                                   budget=spec["tail_dup_budget"])
        return {"op": op, "benchmark": name, "record": record}
    if op == "query":
        from repro.benchmarks.suite import resolve_program
        from repro.interp.orparallel import or_solutions
        source = resolve_program(name).source
        result = or_solutions(source, spec["goal"], engine=engine,
                              jobs=spec["or_jobs"],
                              limit=spec["limit"])
        # Execution provenance (mode, branch count, memo hits) is
        # deliberately dropped: the answers at or_jobs=4 must be
        # byte-identical to the answers at or_jobs=1.
        return {"op": op, "benchmark": name, "goal": spec["goal"],
                "answers": result["answers"],
                "output": result["output"],
                "count": result["count"],
                "truncated": result["truncated"]}
    raise RequestError("unknown operation %r" % op)
