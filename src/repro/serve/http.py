"""Minimal asyncio HTTP/1.1 framing for the evaluation service.

Only what ``repro serve`` needs, hardened at the edges: request lines
and headers are size-capped, bodies are bounded by ``Content-Length``
(no chunked encoding), and every malformed input maps to a clean 4xx
instead of an exception escaping into the connection handler.  The
stdlib's ``http.server`` is threaded and blocking, which is exactly
what the single-loop service must not be — hence this ~150-line
parser instead of a dependency.
"""

import asyncio
import json

__all__ = ["HttpError", "Request", "read_request", "response_bytes"]

MAX_LINE = 16 * 1024
MAX_HEADERS = 64
MAX_BODY = 1024 * 1024

STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A protocol-level problem that maps to one 4xx/5xx response."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = status
        self.message = message


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method, path, headers, body):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def json(self):
        """The request body as JSON; raises :class:`HttpError` 400."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise HttpError(400, "invalid JSON body: %s" % error)


async def _read_line(reader, timeout):
    try:
        line = await asyncio.wait_for(
            reader.readuntil(b"\n"), timeout=timeout)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return b""                       # clean EOF between requests
        raise HttpError(400, "truncated request")
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line too long")
    except asyncio.TimeoutError:
        raise HttpError(408, "timed out reading request")
    if len(line) > MAX_LINE:
        raise HttpError(400, "request line too long")
    return line


async def read_request(reader, timeout=None):
    """Parse one request from *reader*; None on a clean EOF.

    *timeout* bounds each read (idle keep-alive connections are
    reaped with :class:`HttpError` 408).
    """
    line = await _read_line(reader, timeout)
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers = {}
    while True:
        line = await _read_line(reader, timeout)
        if line in (b"", b"\r\n", b"\n"):
            break
        if len(headers) >= MAX_HEADERS:
            raise HttpError(400, "too many headers")
        try:
            name, value = line.decode("latin-1").split(":", 1)
        except ValueError:
            raise HttpError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length")
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY:
            raise HttpError(413, "request body exceeds %d bytes"
                            % MAX_BODY)
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=timeout)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body")
        except asyncio.TimeoutError:
            raise HttpError(408, "timed out reading request body")
    elif "transfer-encoding" in headers:
        raise HttpError(400, "chunked bodies are not supported")
    path = target.split("?", 1)[0]
    return Request(method, path, headers, body)


def response_bytes(status, payload, headers=None, keep_alive=True):
    """Serialise one JSON response (deterministic key order)."""
    body = (json.dumps(payload, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")
    lines = [
        "HTTP/1.1 %d %s" % (status, STATUS_TEXT.get(status, "Status")),
        "Content-Type: application/json",
        "Content-Length: %d" % len(body),
        "Connection: %s" % ("keep-alive" if keep_alive else "close"),
    ]
    for name, value in (headers or {}).items():
        lines.append("%s: %s" % (name, value))
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body
