"""``repro serve`` — the fault-tolerant evaluation service.

A long-running asyncio HTTP/JSON service (stdlib only) that accepts
compile/evaluate/verify/analyze requests, batches them into the
profile → regions → cell task DAG via the parallel engine and the
supervisor, and streams results back.  Engineered for failure first:
per-request deadlines propagate into supervisor cell timeouts, a
bounded admission queue sheds load explicitly (429 + ``Retry-After``),
a per-backend circuit breaker degrades to the reference interpreter
after repeated pool deaths, transient request failures retry with the
supervisor's deterministic backoff, and SIGTERM drains in-flight work
before exiting 0.  See ``docs/serve.md``.
"""

from repro.serve.service import (
    CircuitBreaker, EvaluationService, ServiceConfig, ServiceThread)

__all__ = [
    "CircuitBreaker",
    "EvaluationService",
    "ServiceConfig",
    "ServiceThread",
]
