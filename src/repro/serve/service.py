"""The evaluation service: admission, batching, failure management.

One asyncio loop owns the sockets; one worker thread owns the
evaluation engine (whose process pool does the heavy lifting).  The
request path is engineered for failure first:

* **bounded admission** — requests wait in a fixed-size queue; when it
  is full the service sheds load explicitly with 429 + ``Retry-After``
  instead of buffering without bound.
* **deadline propagation** — each request carries a wall-clock budget
  (default :attr:`ServiceConfig.default_deadline`); the remaining
  budget is clamped onto the supervisor's per-cell watchdog
  (:meth:`SupervisorPolicy.clamped`) so a request with two seconds
  left never sits behind a five-minute cell timeout.  An expired
  budget is a 504, never a silent stall.
* **server-side retry** — transient failures (injected or real) retry
  up to :attr:`ServiceConfig.max_attempts` times with the supervisor's
  crc32-seeded deterministic backoff, bounded by the deadline.
* **circuit breaker** — repeated pool deaths under one emulator
  backend trip a per-backend breaker; while it is open, requests are
  served by an in-process reference-interpreter engine (results are
  byte-identical by the backend contract, responses are flagged
  ``degraded``).  After a cooldown one probe request tests the
  primary again.
* **graceful drain** — SIGTERM/SIGINT stop the listener, let queued
  and in-flight requests finish, flush the engine, and exit 0.

Whole-request results are memoised in the shared content-addressed
store under the ``serve`` kind, which is what makes a repeated-query
workload (the memoing access pattern of the or-parallel papers) serve
from cache instead of recomputing.  The ``query`` op runs a goal
through the or-parallel search engine (:mod:`repro.interp.orparallel`)
on the service's evaluation engine, so its branch fan-out inherits the
same pool, supervisor policy and clamped deadlines as evaluation
cells; its answer-memo hit/miss counts surface per cache kind in
``/metrics`` (``cache.kinds``).
"""

import asyncio
import contextlib
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.emulator.machine import _BACKEND_ENV, resolve_backend
from repro.evaluation.cache import open_store
from repro.evaluation.parallel import EvaluationEngine, memoised
from repro.evaluation.supervisor import SupervisorPolicy
from repro.observability.metrics import MetricsRegistry
from repro.serve import http
from repro.serve.ops import (
    OPS, RequestError, compute_result, parse_request, request_label)
from repro.testing import faults

__all__ = ["CircuitBreaker", "EvaluationService", "ServiceConfig",
           "ServiceThread"]

_STOP = object()


class ServiceConfig:
    """Tunable service parameters (every knob has a CLI flag)."""

    def __init__(self, host="127.0.0.1", port=0, jobs=1, shards=None,
                 cache_root=None, queue_limit=64, batch_max=16,
                 default_deadline=120.0, max_deadline=600.0,
                 max_attempts=3, retry_after=1.0,
                 breaker_threshold=2, breaker_cooldown=30.0,
                 cell_timeout=300.0, pool_restarts=2,
                 idle_timeout=30.0, drain_grace=60.0,
                 backoff_base=0.02, backoff_cap=0.5, seed=0):
        self.host = host
        self.port = port
        self.jobs = max(1, jobs)
        self.shards = shards
        self.cache_root = cache_root
        self.queue_limit = max(1, queue_limit)
        self.batch_max = max(1, batch_max)
        self.default_deadline = default_deadline
        self.max_deadline = max_deadline
        self.max_attempts = max(1, max_attempts)
        self.retry_after = retry_after
        self.breaker_threshold = max(1, breaker_threshold)
        self.breaker_cooldown = breaker_cooldown
        self.cell_timeout = cell_timeout
        self.pool_restarts = max(0, pool_restarts)
        self.idle_timeout = idle_timeout
        self.drain_grace = drain_grace
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.seed = seed

    def policy(self):
        return SupervisorPolicy(
            max_attempts=self.max_attempts, deadline=self.cell_timeout,
            backoff_base=self.backoff_base, backoff_cap=self.backoff_cap,
            seed=self.seed, max_pool_restarts=self.pool_restarts)


class CircuitBreaker:
    """Closed → open → half-open breaker over one emulator backend.

    ``record_failure`` counts pool deaths (restarts reported by the
    supervisor); at *threshold* the breaker opens and :meth:`allow`
    answers False until *cooldown* seconds pass, after which exactly
    one probe request is let through — its success closes the breaker,
    its failure re-opens it.  Driven from the single batch-executor
    thread, so no locking is needed.
    """

    def __init__(self, threshold=2, cooldown=30.0, clock=time.monotonic):
        self.threshold = max(1, threshold)
        self.cooldown = cooldown
        self.clock = clock
        self.state = "closed"
        self.failures = 0
        self.trips = 0
        self.opened_at = None
        self._probing = False

    def allow(self):
        """True when the primary backend may be tried."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self.clock() - self.opened_at < self.cooldown:
                return False
            self.state = "half-open"
            self._probing = False
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self):
        self._probing = False
        self.failures = 0
        self.state = "closed"

    def record_failure(self, count=1):
        self._probing = False
        self.failures += count
        if self.state != "open" and self.failures >= self.threshold:
            self.state = "open"
            self.opened_at = self.clock()
            self.trips += 1

    def snapshot(self):
        return {"state": self.state, "failures": self.failures,
                "trips": self.trips}


class _Pending:
    """One admitted request travelling queue → batch → future."""

    __slots__ = ("spec", "label", "deadline", "future")

    def __init__(self, spec, label, deadline, future):
        self.spec = spec
        self.label = label
        self.deadline = deadline
        self.future = future


@contextlib.contextmanager
def _backend_override(backend):
    """Temporarily pin ``REPRO_EMULATOR_BACKEND`` (degraded mode)."""
    if backend is None:
        yield
        return
    saved = os.environ.get(_BACKEND_ENV)
    os.environ[_BACKEND_ENV] = backend
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(_BACKEND_ENV, None)
        else:
            os.environ[_BACKEND_ENV] = saved


class EvaluationService:
    """The asyncio HTTP service wrapping one evaluation engine."""

    def __init__(self, config=None):
        self.config = config or ServiceConfig()
        faults.validate_environment()
        self.store = open_store(self.config.cache_root,
                                self.config.shards)
        self.engine = EvaluationEngine(jobs=self.config.jobs,
                                       store=self.store,
                                       policy=self.config.policy())
        self.metrics = MetricsRegistry()
        self.breakers = {}
        self.port = None
        self._fallback = None
        self._loop = None
        self._server = None
        self._queue = None
        self._batcher = None
        self._done = None
        self._draining = False
        self._drain_started = False
        self._inflight = 0
        self._started = time.monotonic()
        self._writers = set()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve")

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        """Bind the listener and start the batcher; returns the port."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.config.queue_limit)
        self._done = asyncio.Event()
        self._server = await asyncio.start_server(
            self._client, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._batcher = self._loop.create_task(self._batch_loop())
        return self.port

    async def wait_closed(self):
        await self._done.wait()

    def begin_drain(self):
        """Start a graceful drain (idempotent; loop thread only)."""
        if self._loop is None or self._drain_started:
            return
        self._drain_started = True
        self._loop.create_task(self._drain())

    def drain_threadsafe(self):
        """Schedule :meth:`begin_drain` from any thread."""
        if self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(self.begin_drain)
        except RuntimeError:
            pass                            # loop already closed: drained

    async def _drain(self):
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        grace = self.config.drain_grace
        deadline = None if grace is None \
            else time.monotonic() + grace
        while self._queue.qsize() or self._inflight:
            if deadline is not None and time.monotonic() >= deadline:
                break
            await asyncio.sleep(0.02)
        await self._queue.put(_STOP)
        try:
            await self._batcher
        except asyncio.CancelledError:
            pass
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        self._executor.shutdown(wait=True)
        self.engine.close()
        if self._fallback is not None:
            self._fallback.close()
        self._done.set()

    # -- connection handling -----------------------------------------------

    async def _client(self, reader, writer):
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await http.read_request(
                        reader, timeout=self.config.idle_timeout)
                except http.HttpError as error:
                    writer.write(http.response_bytes(
                        error.status, {"ok": False,
                                       "error": error.message},
                        keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                status, payload, headers = await self._handle(request)
                close = request.headers.get(
                    "connection", "").lower() == "close"
                writer.write(http.response_bytes(
                    status, payload, headers=headers,
                    keep_alive=not close))
                await writer.drain()
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _handle(self, request):
        """Route one request; returns ``(status, payload, headers)``."""
        path = request.path
        if request.method == "GET":
            if path == "/healthz":
                return 200, self._health(), None
            if path == "/readyz":
                ready = not self._draining
                return (200 if ready else 503), self._readiness(), None
            if path == "/metrics":
                return 200, self._metric_state(), None
            if path.startswith("/v1/"):
                return 405, {"ok": False,
                             "error": "use POST for operations"}, None
            return 404, {"ok": False, "error": "not found"}, None
        if request.method == "POST" and path.startswith("/v1/"):
            op = path[len("/v1/"):]
            if op not in OPS:
                return 404, {"ok": False,
                             "error": "unknown operation %r (expected "
                             "one of %s)" % (op, ", ".join(OPS))}, None
            return await self._admit(op, request)
        return 405, {"ok": False, "error": "method not allowed"}, None

    async def _admit(self, op, request):
        if self._draining:
            self.metrics.add("serve.rejected.draining")
            return 503, {"ok": False, "error": "draining"}, None
        try:
            body = request.json()
            spec, deadline = parse_request(op, body)
        except (http.HttpError, RequestError) as error:
            self.metrics.add("serve.rejected.invalid")
            message = getattr(error, "message", None) or str(error)
            return 400, {"ok": False, "error": message}, None
        budget = min(deadline or self.config.default_deadline,
                     self.config.max_deadline)
        pending = _Pending(spec, request_label(spec),
                           time.monotonic() + budget,
                           self._loop.create_future())
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self.metrics.add("serve.shed")
            return 429, {"ok": False, "error": "admission queue full",
                         "retry_after": self.config.retry_after}, \
                {"Retry-After": "%g" % self.config.retry_after}
        self.metrics.add("serve.requests")
        outcome = await pending.future
        headers = outcome.get("headers")
        return outcome["status"], outcome["payload"], headers

    # -- batching ----------------------------------------------------------

    async def _batch_loop(self):
        while True:
            item = await self._queue.get()
            if item is _STOP:
                return
            batch = [item]
            while len(batch) < self.config.batch_max:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is _STOP:
                    # re-park the sentinel; it is only enqueued once
                    # the queue is otherwise empty, so this is safety
                    self._queue.put_nowait(extra)
                    break
                batch.append(extra)
            self.metrics.add("serve.batches")
            self._inflight += len(batch)
            try:
                await self._loop.run_in_executor(
                    self._executor, self._run_batch, batch)
            except Exception as error:
                detail = "batch execution failed: %s" % error
                for pending in batch:
                    self._resolve(pending, {
                        "status": 500,
                        "payload": {"ok": False, "error": detail}})
            finally:
                self._inflight -= len(batch)

    def _resolve(self, pending, outcome):
        def deliver():
            if not pending.future.done():
                pending.future.set_result(outcome)
        self._loop.call_soon_threadsafe(deliver)

    # -- execution (batch-executor thread from here down) ------------------

    def _run_batch(self, batch):
        self._prewarm(batch)
        for pending in batch:
            try:
                outcome = self._run_one(pending)
            except Exception as error:
                self.metrics.add("serve.failed")
                outcome = {"status": 500,
                           "payload": {"ok": False,
                                       "error": "internal error: %s"
                                       % error}}
            self._resolve(pending, outcome)

    def _prewarm(self, batch):
        """Fan every distinct evaluate spec of *batch* into one DAG.

        This is where batching pays: profile and region nodes shared
        between requests are computed once by one supervisor sweep.
        Failures are ignored here — the per-request path retries and
        reports them individually.
        """
        requests = []
        seen = set()
        remaining = []
        from repro.experiments.data import master_configs
        known = master_configs()
        for pending in batch:
            spec = pending.spec
            if spec["op"] != "evaluate":
                continue
            key = (spec["benchmark"], tuple(spec["configs"]),
                   spec["tail_dup_budget"])
            if key in seen:
                continue
            seen.add(key)
            remaining.append(pending.deadline - time.monotonic())
            requests.append({
                "name": spec["benchmark"],
                "configs": {k: known[k] for k in spec["configs"]},
                "tail_dup_budget": spec["tail_dup_budget"]})
        if len(requests) < 2:
            return
        try:
            with self.engine.policy.clamped(max(0.1, min(remaining))):
                self.engine.evaluate_many(requests)
        except Exception:
            pass

    def _engine_for(self, degraded):
        if not degraded:
            return self.engine
        if self._fallback is None:
            self._fallback = EvaluationEngine(
                jobs=1, store=self.store, policy=self.config.policy())
        return self._fallback

    def _breaker(self, backend):
        breaker = self.breakers.get(backend)
        if breaker is None:
            breaker = CircuitBreaker(self.config.breaker_threshold,
                                     self.config.breaker_cooldown)
            self.breakers[backend] = breaker
        return breaker

    def _run_one(self, pending):
        attempts = 0
        while True:
            attempts += 1
            now = time.monotonic()
            if now >= pending.deadline:
                self.metrics.add("serve.deadline_exceeded")
                return {"status": 504, "payload": {
                    "ok": False, "error": "deadline exceeded",
                    "meta": {"attempts": attempts - 1}}}
            backend = resolve_backend(None)
            breaker = self._breaker(backend)
            degraded = not breaker.allow()
            try:
                if faults.armed("serve.request") \
                        and faults.fire("serve.request") == "shed":
                    self.metrics.add("serve.shed")
                    return {"status": 429, "payload": {
                        "ok": False, "error": "shed by fault injection",
                        "retry_after": self.config.retry_after},
                        "headers": {"Retry-After": "%g"
                                    % self.config.retry_after}}
                payload, cached, pain, swept_degraded = \
                    self._compute(pending, degraded)
            except RequestError as error:
                self.metrics.add("serve.rejected.invalid")
                return {"status": 400, "payload": {
                    "ok": False, "error": str(error)}}
            except Exception as error:
                if attempts >= self.config.max_attempts:
                    self.metrics.add("serve.failed")
                    return {"status": 500, "payload": {
                        "ok": False, "error": str(error),
                        "meta": {"attempts": attempts}}}
                self.metrics.add("serve.retries")
                delay = self.engine.policy.backoff(pending.label,
                                                   attempts)
                time.sleep(max(0.0, min(
                    delay, pending.deadline - time.monotonic())))
                continue
            if not degraded:
                if pain:
                    breaker.record_failure(pain)
                    self.metrics.add("serve.breaker.failures", pain)
                else:
                    breaker.record_success()
            was_degraded = degraded or swept_degraded
            if was_degraded:
                self.metrics.add("serve.degraded")
            self.metrics.add("serve.cache_hits" if cached
                             else "serve.computed")
            self.metrics.add("serve.ok")
            meta = {
                "attempts": attempts,
                "cached": cached,
                "degraded": was_degraded,
                "backend": "reference" if degraded else backend,
            }
            return {"status": 200, "payload": {
                "ok": True, "result": payload, "meta": meta}}

    def _compute(self, pending, degraded):
        """Run one spec; returns (payload, cached, pool_pain, swept)."""
        engine = self._engine_for(degraded)
        restarts_before = engine.report.pool_restarts
        degraded_before = engine.report.degraded
        remaining = max(0.1, pending.deadline - time.monotonic())
        computed = []

        def compute():
            computed.append(True)
            return compute_result(pending.spec, engine)

        with engine.policy.clamped(remaining):
            with _backend_override("reference" if degraded else None):
                payload = memoised("serve",
                                   {"request": pending.spec}, compute,
                                   store=self.store)
        pain = engine.report.pool_restarts - restarts_before
        swept = engine.report.degraded and not degraded_before
        return payload, not computed, pain, swept

    # -- introspection (loop thread) ---------------------------------------

    def _health(self):
        return {
            "status": "ok",
            "draining": self._draining,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "requests": self.metrics.count("serve.requests"),
        }

    def _readiness(self):
        return {
            "ready": not self._draining,
            "draining": self._draining,
            "queue_depth": self._queue.qsize(),
            "queue_limit": self.config.queue_limit,
            "inflight": self._inflight,
            "jobs": self.config.jobs,
            "breakers": {name: breaker.snapshot()
                         for name, breaker in
                         sorted(self.breakers.items())},
            "cache": self.store.counters(),
            "supervisor": self.engine.report.counts(),
        }

    def _metric_state(self):
        return {
            "counters": {name: self.metrics.counters[name]
                         for name in sorted(self.metrics.counters)},
            "cache": dict(self.store.counters(),
                          kinds=self.store.kind_stats()),
            "breakers": {name: breaker.snapshot()
                         for name, breaker in
                         sorted(self.breakers.items())},
            "queue_depth": self._queue.qsize(),
            "inflight": self._inflight,
            "supervisor": self.engine.report.counts(),
            "uptime_s": round(time.monotonic() - self._started, 3),
        }


class ServiceThread:
    """Run an :class:`EvaluationService` on a private loop thread.

    The in-process harness used by the tests and the self-hosted load
    test: enter the context manager to get a bound, running service;
    exit drains it gracefully and joins the thread.
    """

    def __init__(self, config=None):
        self.config = config or ServiceConfig()
        self.service = None
        self._thread = None
        self._ready = threading.Event()
        self._error = None

    @property
    def port(self):
        return self.service.port

    def __enter__(self):
        self._thread = threading.Thread(target=self._main,
                                        name="repro-serve-loop",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=60.0):
            raise RuntimeError("service failed to start in time")
        if self._error is not None:
            raise self._error
        return self

    def _main(self):
        try:
            asyncio.run(self._amain())
        except BaseException as error:    # surfaced to the entering thread
            self._error = error
        finally:
            self._ready.set()

    async def _amain(self):
        self.service = EvaluationService(self.config)
        await self.service.start()
        self._ready.set()
        await self.service.wait_closed()

    def stop(self, timeout=300.0):
        if self.service is not None:
            self.service.drain_threadsafe()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __exit__(self, *exc_info):
        self.stop()
