"""Concurrent load generation and ``BENCH_serve.json``.

The load test is the service's proof of correctness under pressure,
not just a latency probe.  It first computes **reference results** for
every distinct request template in a clean environment (fault
injection suspended, a private cache directory, an in-process engine)
— exactly what a single-shot CLI run would produce — then fires
thousands of concurrent mixed requests at a live service and asserts
every 200 response is **byte-identical** to its reference under
canonical JSON encoding.  Shedding (429) is retried by the client
honouring ``Retry-After``; a wrong answer is terminal.

The resulting schema-1 document records p50/p99 latency, warm-cache
hit rate, and shed/retried/degraded counts; CI uploads it as the
``BENCH_serve`` artifact and ``results/BENCH_serve.json`` pins the
committed run.
"""

import asyncio
import json
import os
import platform
import tempfile
import time
import urllib.parse

from repro.atomicio import atomic_write_json
from repro.benchmarks.perf import git_revision
from repro.evaluation.cache import SHARDS_ENV, open_store
from repro.evaluation.parallel import EvaluationEngine
from repro.serve.ops import canonical_json, compute_result, parse_request
from repro.serve.service import ServiceConfig, ServiceThread
from repro.testing import faults

__all__ = [
    "SERVE_BENCH_SCHEMA",
    "mixed_templates",
    "run_load_test",
    "validate_serve_bench",
    "write_serve_bench",
]

SERVE_BENCH_SCHEMA = 1

DEFAULT_BENCHMARKS = ("conc30", "divide10")
DEFAULT_CONFIGS = ("seq", "vliw3")


def mixed_templates(benchmarks=DEFAULT_BENCHMARKS,
                    configs=DEFAULT_CONFIGS):
    """The distinct request templates of the mixed workload.

    Four operations per benchmark.  Small on purpose: a *repeated*
    query mix is the memoing access pattern the sharded cache must
    turn into warm hits (the acceptance bar is a ≥ 90% warm rate).
    """
    templates = []
    for benchmark in benchmarks:
        for op in ("compile", "evaluate", "verify", "analyze"):
            templates.append({
                "op": op,
                "body": {"benchmark": benchmark,
                         "configs": list(configs)},
            })
    return templates


def reference_results(templates, cache_root):
    """Canonical result text per template, as single-shot CLI runs.

    Computed with fault injection suspended and a private cache so the
    references are what a clean, non-concurrent run produces.
    """
    saved = {}
    for name in (faults.ENV_SPEC, faults.ENV_STATE, SHARDS_ENV,
                 "REPRO_CACHE_DIR"):
        saved[name] = os.environ.pop(name, None)
    os.environ["REPRO_CACHE_DIR"] = cache_root
    try:
        engine = EvaluationEngine(jobs=1,
                                  store=open_store(cache_root, 1))
        references = {}
        for template in templates:
            spec, _ = parse_request(template["op"], template["body"])
            references[canonical_json(spec)] = canonical_json(
                compute_result(spec, engine))
        engine.close()
        return references
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


# --------------------------------------------------------------------------
# The asyncio client.

async def _http_json(host, port, method, path, body=None, timeout=60.0):
    """One HTTP exchange; returns ``(status, headers, payload)``."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout)
    try:
        data = b""
        if body is not None:
            data = json.dumps(body).encode("utf-8")
        head = ("%s %s HTTP/1.1\r\nHost: %s\r\n"
                "Content-Length: %d\r\nConnection: close\r\n\r\n"
                % (method, path, host, len(data))).encode("latin-1")
        writer.write(head + data)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(-1), timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        if ":" in line:
            name, value = line.split(":", 1)
            headers[name.strip().lower()] = value.strip()
    try:
        payload = json.loads(body_blob.decode("utf-8"))
    except ValueError:
        payload = None
    return status, headers, payload


async def _drive(host, port, sequence, concurrency, deadline_s=300.0):
    """Fire *sequence* with bounded concurrency; returns records."""
    semaphore = asyncio.Semaphore(concurrency)
    overall = time.monotonic() + deadline_s

    async def one(index, template):
        async with semaphore:
            started = time.monotonic()
            retries = 0
            sheds = 0
            while True:
                try:
                    status, headers, payload = await _http_json(
                        host, port, "POST",
                        "/v1/%s" % template["op"], template["body"])
                except (OSError, asyncio.TimeoutError):
                    status, headers, payload = 0, {}, None
                if status == 429 and time.monotonic() < overall:
                    sheds += 1
                    retries += 1
                    try:
                        pause = float(headers.get("retry-after", "1"))
                    except ValueError:
                        pause = 1.0
                    await asyncio.sleep(min(pause, 2.0))
                    continue
                if status in (0, 500) and retries < 3 \
                        and time.monotonic() < overall:
                    retries += 1
                    await asyncio.sleep(0.1)
                    continue
                break
            return {
                "index": index,
                "op": template["op"],
                "benchmark": template["body"]["benchmark"],
                "status": status,
                "latency_s": time.monotonic() - started,
                "client_retries": retries,
                "client_sheds": sheds,
                "payload": payload,
            }

    return await asyncio.gather(*[
        one(index, template)
        for index, template in enumerate(sequence)])


def _percentile(values, fraction):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[index]


# --------------------------------------------------------------------------
# Document assembly, validation, publication.

def _assemble(records, references, templates, server_metrics, extras):
    ok_records = [r for r in records if r["status"] == 200]
    latencies = [r["latency_s"] * 1000.0 for r in ok_records]
    wrong = []
    for record in records:
        if record["status"] != 200 or record["payload"] is None:
            continue
        template = templates[record["index"] % len(templates)]
        spec, _ = parse_request(template["op"], template["body"])
        expected = references[canonical_json(spec)]
        actual = canonical_json(record["payload"].get("result"))
        if actual != expected:
            wrong.append({"index": record["index"],
                          "op": record["op"],
                          "benchmark": record["benchmark"]})
    outcomes = {"ok": len(ok_records), "shed": 0, "failed": 0,
                "deadline": 0, "unreachable": 0}
    for record in records:
        if record["status"] == 429:
            outcomes["shed"] += 1
        elif record["status"] == 504:
            outcomes["deadline"] += 1
        elif record["status"] == 0:
            outcomes["unreachable"] += 1
        elif record["status"] not in (0, 200):
            outcomes["failed"] += 1
    degraded = sum(1 for r in ok_records
                   if (r["payload"] or {}).get("meta", {})
                   .get("degraded"))
    cached = sum(1 for r in ok_records
                 if (r["payload"] or {}).get("meta", {}).get("cached"))
    warm_hit_rate = None
    server_counters = {}
    if server_metrics:
        cache = server_metrics.get("cache", {})
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        if lookups:
            warm_hit_rate = cache.get("hits", 0) / lookups
        server_counters = server_metrics.get("counters", {})
    document = {
        "schema": SERVE_BENCH_SCHEMA,
        "git_revision": git_revision(),
        "python": platform.python_version(),
        "requests": len(records),
        "unique_requests": len(templates),
        "faults": os.environ.get(faults.ENV_SPEC),
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50), 3),
            "p99": round(_percentile(latencies, 0.99), 3),
            "mean": round(sum(latencies) / len(latencies), 3)
            if latencies else 0.0,
            "max": round(max(latencies), 3) if latencies else 0.0,
        },
        "outcomes": outcomes,
        "responses": {
            "degraded": degraded,
            "cached": cached,
            "retried": sum(r["client_retries"] for r in records),
            "sheds_seen": sum(r["client_sheds"] for r in records),
        },
        "server": {
            "counters": server_counters,
            "cache": (server_metrics or {}).get("cache", {}),
            "breakers": (server_metrics or {}).get("breakers", {}),
            "supervisor": (server_metrics or {}).get("supervisor", {}),
        },
        "warm_hit_rate": (None if warm_hit_rate is None
                          else round(warm_hit_rate, 4)),
        "wrong_answers": len(wrong),
        "wrong_detail": wrong[:20],
    }
    document.update(extras)
    return document


def validate_serve_bench(document):
    """Schema problems of a BENCH_serve.json document (empty = valid)."""
    problems = []

    def require(condition, message):
        if not condition:
            problems.append(message)

    require(isinstance(document, dict), "document is not an object")
    if not isinstance(document, dict):
        return problems
    require(document.get("schema") == SERVE_BENCH_SCHEMA,
            "schema != %d" % SERVE_BENCH_SCHEMA)
    for field in ("git_revision", "python"):
        require(isinstance(document.get(field), str),
                "%s missing or not a string" % field)
    for field in ("requests", "unique_requests", "concurrency",
                  "wrong_answers"):
        value = document.get(field)
        require(isinstance(value, int) and not isinstance(value, bool)
                and value >= 0,
                "%s missing or not a non-negative int" % field)
    latency = document.get("latency_ms")
    require(isinstance(latency, dict), "latency_ms missing")
    if isinstance(latency, dict):
        for field in ("p50", "p99", "mean", "max"):
            value = latency.get(field)
            require(isinstance(value, (int, float))
                    and not isinstance(value, bool) and value >= 0,
                    "latency_ms.%s missing or negative" % field)
        if all(isinstance(latency.get(k), (int, float))
               for k in ("p50", "p99")):
            require(latency["p50"] <= latency["p99"],
                    "latency p50 exceeds p99")
    outcomes = document.get("outcomes")
    require(isinstance(outcomes, dict), "outcomes missing")
    if isinstance(outcomes, dict):
        for field in ("ok", "shed", "failed", "deadline"):
            value = outcomes.get(field)
            require(isinstance(value, int)
                    and not isinstance(value, bool) and value >= 0,
                    "outcomes.%s missing or not an int" % field)
        require(outcomes.get("ok", 0) >= 1, "no successful requests")
    responses = document.get("responses")
    require(isinstance(responses, dict), "responses missing")
    if isinstance(responses, dict):
        for field in ("degraded", "cached", "retried", "sheds_seen"):
            value = responses.get(field)
            require(isinstance(value, int)
                    and not isinstance(value, bool) and value >= 0,
                    "responses.%s missing or not an int" % field)
    rate = document.get("warm_hit_rate")
    require(rate is None or (isinstance(rate, (int, float))
                             and 0.0 <= rate <= 1.0),
            "warm_hit_rate out of [0, 1]")
    require(document.get("wrong_answers") == 0,
            "wrong_answers != 0 — service returned a payload that "
            "differs from the single-shot reference")
    seconds = document.get("seconds")
    require(isinstance(seconds, (int, float))
            and not isinstance(seconds, bool) and seconds >= 0,
            "seconds missing or negative")
    return problems


def write_serve_bench(document, path):
    """Publish *document* atomically (never a torn record)."""
    return atomic_write_json(path, document, indent=2, sort_keys=True)


# --------------------------------------------------------------------------
# The orchestrator.

def run_load_test(requests=2000, concurrency=64, jobs=2, url=None,
                  benchmarks=DEFAULT_BENCHMARKS,
                  configs=DEFAULT_CONFIGS, shards=8, queue_limit=None,
                  breaker_threshold=2, progress=None):
    """Run the full load test; returns the bench document.

    Self-hosted by default: a :class:`ServiceThread` with *jobs* pool
    workers and a fresh sharded cache serves the run, so cold-compute,
    warm-hit, shedding and drain behaviour are all exercised in one
    process tree.  Pass *url* to drive an externally started service
    instead (CI's smoke job does both).
    """
    templates = mixed_templates(benchmarks, configs)
    sequence = [templates[index % len(templates)]
                for index in range(requests)]

    def note(text):
        if progress is not None:
            progress(text)

    with tempfile.TemporaryDirectory(prefix="repro-serve-ref-") \
            as reference_root:
        note("computing %d reference result(s) (faults suspended)"
             % len(templates))
        references = reference_results(templates, reference_root)

    started = time.monotonic()
    if url:
        parsed = urllib.parse.urlsplit(url)
        host = parsed.hostname or "127.0.0.1"
        port = parsed.port or 80
        note("driving %d request(s) at %s (concurrency %d)"
             % (requests, url, concurrency))
        records, server_metrics = asyncio.run(
            _drive_and_snapshot(host, port, sequence, concurrency))
        extras = {"concurrency": concurrency, "jobs": None,
                  "url": url, "benchmarks": list(benchmarks),
                  "seconds": round(time.monotonic() - started, 3)}
        return _assemble(records, references, templates,
                         server_metrics, extras)

    with tempfile.TemporaryDirectory(prefix="repro-serve-cache-") \
            as cache_root:
        saved_cache = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = cache_root
        try:
            config = ServiceConfig(
                jobs=jobs, shards=shards, cache_root=cache_root,
                queue_limit=queue_limit or max(16, concurrency // 2),
                breaker_threshold=breaker_threshold)
            note("starting service: %d worker(s), %d shard(s), "
                 "queue limit %d" % (jobs, shards,
                                     config.queue_limit))
            with ServiceThread(config) as served:
                note("driving %d request(s) (concurrency %d)"
                     % (requests, concurrency))
                records, server_metrics = asyncio.run(
                    _drive_and_snapshot("127.0.0.1", served.port,
                                        sequence, concurrency))
        finally:
            if saved_cache is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = saved_cache
    extras = {"concurrency": concurrency, "jobs": jobs, "url": None,
              "benchmarks": list(benchmarks),
              "seconds": round(time.monotonic() - started, 3)}
    return _assemble(records, references, templates, server_metrics,
                     extras)


async def _drive_and_snapshot(host, port, sequence, concurrency):
    records = await _drive(host, port, sequence, concurrency)
    try:
        status, _, metrics = await _http_json(host, port, "GET",
                                              "/metrics")
        server_metrics = metrics if status == 200 else None
    except (OSError, asyncio.TimeoutError):
        server_metrics = None
    return records, server_metrics
