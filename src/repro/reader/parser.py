"""Operator-precedence Prolog parser.

Reads clause-at-a-time from a token stream produced by
:mod:`repro.reader.lexer`, building :mod:`repro.terms` trees.  Variables
with the same name inside one clause share a single :class:`~repro.terms.Var`
object; ``_`` is always fresh.
"""

from repro.reader.lexer import tokenize
from repro.reader import operators
from repro.terms import Atom, Int, Var, Struct, make_list, NIL


class ParseError(Exception):
    """Raised on syntactically invalid input."""

    def __init__(self, message, token=None):
        if token is not None:
            message = "%s at line %d (near %r)" % (
                message, token.line, token.value)
        super().__init__(message)


class _ClauseParser:
    """Parses one clause (up to the terminating full stop)."""

    def __init__(self, tokens, pos):
        self.tokens = tokens
        self.pos = pos
        self.varmap = {}

    def peek(self):
        return self.tokens[self.pos]

    def next(self):
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect_punct(self, value):
        token = self.next()
        if not (token.kind == "punct" and token.value == value):
            raise ParseError("expected %r" % value, token)

    def var(self, name):
        if name == "_":
            return Var("_")
        if name not in self.varmap:
            self.varmap[name] = Var(name)
        return self.varmap[name]

    # -- expression parsing ---------------------------------------------

    def parse(self, max_priority):
        """Parse a term whose priority does not exceed *max_priority*."""
        left, left_priority = self.parse_primary(max_priority)
        return self.parse_infix(left, left_priority, max_priority)

    def parse_infix(self, left, left_priority, max_priority):
        while True:
            token = self.peek()
            if token.kind != "atom":
                return left
            name = token.value
            if name == "|":
                name = ";"  # '|' as an infix alias for disjunction
            entry = operators.infix(name)
            if entry is None:
                return left
            priority, left_max, right_max = entry
            if priority > max_priority or left_priority > left_max:
                return left
            self.next()
            right = self.parse(right_max)
            left = Struct(name, [left, right])
            left_priority = priority

    def parse_primary(self, max_priority):
        """Parse a primary term; returns (term, priority)."""
        token = self.next()

        if token.kind == "int":
            return Int(token.value), 0

        if token.kind == "var":
            return self.var(token.value), 0

        if token.kind == "string":
            return make_list([Int(ord(c)) for c in token.value]), 0

        if token.kind == "punct":
            if token.value == "(":
                term = self.parse(1200)
                self.expect_punct(")")
                return term, 0
            if token.value == "[":
                return self.parse_list(), 0
            if token.value == "{":
                nxt = self.peek()
                if nxt.kind == "punct" and nxt.value == "}":
                    self.next()
                    return Atom("{}"), 0
                inner = self.parse(1200)
                self.expect_punct("}")
                return Struct("{}", [inner]), 0
            raise ParseError("unexpected punctuation", token)

        if token.kind == "atom":
            name = token.value
            nxt = self.peek()
            # Functor application: no layout between atom and '('.
            if (nxt.kind == "punct" and nxt.value == "("
                    and not nxt.layout_before):
                self.next()
                args = [self.parse(999)]
                while True:
                    sep = self.next()
                    if sep.kind == "atom" and sep.value == ",":
                        args.append(self.parse(999))
                        continue
                    if sep.kind == "punct" and sep.value == ")":
                        break
                    raise ParseError("expected ',' or ')'", sep)
                return Struct(name, args), 0
            # Negative number literal.
            if name == "-" and nxt.kind == "int" and not nxt.layout_before:
                self.next()
                return Int(-nxt.value), 0
            # Prefix operator.
            entry = operators.prefix(name)
            if entry is not None and self._starts_term(nxt):
                priority, arg_max = entry
                if priority <= max_priority:
                    arg = self.parse(arg_max)
                    return Struct(name, [arg]), priority
            return Atom(name), 0

        raise ParseError("unexpected token", token)

    def _starts_term(self, token):
        """Can *token* begin a term (so a prefix op applies)?"""
        if token.kind in ("int", "var", "string"):
            return True
        if token.kind == "punct":
            return token.value in "([{"
        if token.kind == "atom":
            # An atom that is purely an infix operator does not start a term.
            if token.value in (",", "|", ")"):
                return False
            if (operators.infix(token.value)
                    and not operators.prefix(token.value)
                    and token.value not in ("[", "(")):
                return False
            return True
        return False

    def parse_list(self):
        token = self.peek()
        if token.kind == "punct" and token.value == "]":
            self.next()
            return NIL
        items = [self.parse(999)]
        while True:
            token = self.next()
            if token.kind == "atom" and token.value == ",":
                items.append(self.parse(999))
                continue
            if token.kind == "atom" and token.value == "|":
                tail = self.parse(999)
                self.expect_punct("]")
                return make_list(items, tail)
            if token.kind == "punct" and token.value == "]":
                return make_list(items)
            raise ParseError("expected ',', '|' or ']'", token)


def parse_program(text):
    """Parse *text* into a list of clause terms.

    Each returned term is either a fact (head term), a rule
    ``':-'(Head, Body)``, or a directive ``':-'(Goal)``.
    """
    tokens = tokenize(text)
    clauses = []
    pos = 0
    while tokens[pos].kind != "eof":
        parser = _ClauseParser(tokens, pos)
        term = parser.parse(1200)
        token = parser.next()
        if token.kind != "end":
            raise ParseError("expected '.' ending a clause", token)
        clauses.append(term)
        pos = parser.pos
    return clauses


def parse_term(text):
    """Parse a single term (no trailing full stop required)."""
    tokens = tokenize(text)
    parser = _ClauseParser(tokens, 0)
    term = parser.parse(1200)
    token = parser.peek()
    if token.kind not in ("end", "eof"):
        raise ParseError("trailing input after term", token)
    return term
