"""Standard Prolog operator table.

Priorities and types follow the classical DEC-10 / ISO table; only the
operators used by the benchmark suite and common library code are defined.
Types: ``xfx``/``xfy``/``yfx`` are infix, ``fy``/``fx`` prefix.
"""

#: infix operators: name -> (priority, type)
INFIX = {
    ":-": (1200, "xfx"),
    "-->": (1200, "xfx"),
    ";": (1100, "xfy"),
    "->": (1050, "xfy"),
    ",": (1000, "xfy"),
    "=": (700, "xfx"),
    "\\=": (700, "xfx"),
    "==": (700, "xfx"),
    "\\==": (700, "xfx"),
    "@<": (700, "xfx"),
    "@>": (700, "xfx"),
    "@=<": (700, "xfx"),
    "@>=": (700, "xfx"),
    "is": (700, "xfx"),
    "=:=": (700, "xfx"),
    "=\\=": (700, "xfx"),
    "<": (700, "xfx"),
    ">": (700, "xfx"),
    "=<": (700, "xfx"),
    ">=": (700, "xfx"),
    "=..": (700, "xfx"),
    "+": (500, "yfx"),
    "-": (500, "yfx"),
    "/\\": (500, "yfx"),
    "\\/": (500, "yfx"),
    "xor": (500, "yfx"),
    "*": (400, "yfx"),
    "/": (400, "yfx"),
    "//": (400, "yfx"),
    "mod": (400, "yfx"),
    "rem": (400, "yfx"),
    ">>": (400, "yfx"),
    "<<": (400, "yfx"),
    "**": (200, "xfx"),
    "^": (200, "xfy"),
}

#: prefix operators: name -> (priority, type)
PREFIX = {
    ":-": (1200, "fx"),
    "?-": (1200, "fx"),
    "\\+": (900, "fy"),
    "-": (200, "fy"),
    "+": (200, "fy"),
    "\\": (200, "fy"),
}


def infix(name):
    """Return (priority, left_max, right_max) for an infix op, or None."""
    entry = INFIX.get(name)
    if entry is None:
        return None
    priority, kind = entry
    left = priority if kind == "yfx" else priority - 1
    right = priority if kind == "xfy" else priority - 1
    return priority, left, right


def prefix(name):
    """Return (priority, arg_max) for a prefix op, or None."""
    entry = PREFIX.get(name)
    if entry is None:
        return None
    priority, kind = entry
    arg = priority if kind == "fy" else priority - 1
    return priority, arg
