"""Prolog source reader: tokenizer and operator-precedence parser."""

from repro.reader.lexer import tokenize, Token, LexError
from repro.reader.parser import parse_program, parse_term, ParseError

__all__ = [
    "tokenize",
    "Token",
    "LexError",
    "parse_program",
    "parse_term",
    "ParseError",
]
