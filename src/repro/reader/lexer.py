"""Tokenizer for ISO-flavoured Prolog source text.

Supports the subset needed by the Aquarius-style benchmark programs:
atoms (alphanumeric, symbolic, quoted), variables, integers (decimal and
``0'c`` character codes), double-quoted strings (read as code lists),
punctuation, and both ``%`` line and ``/* */`` block comments.
"""


class LexError(Exception):
    """Raised on malformed input, with a line number attached."""

    def __init__(self, message, line):
        super().__init__("%s (line %d)" % (message, line))
        self.line = line


class Token:
    """A single lexical token.

    ``kind`` is one of ``atom``, ``var``, ``int``, ``string``, ``punct``,
    ``end`` (the clause-terminating full stop) or ``eof``.
    """

    __slots__ = ("kind", "value", "line", "layout_before")

    def __init__(self, kind, value, line, layout_before=False):
        self.kind = kind
        self.value = value
        self.line = line
        # Whether whitespace preceded the token: distinguishes the
        # functor-open ``f(`` from the expression ``f (``.
        self.layout_before = layout_before

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.value)


_SYMBOL_CHARS = set("+-*/\\^<>=~:.?@#&$")
_SOLO = set("!,;|")
_PUNCT = set("()[]{}")


def tokenize(text):
    """Tokenize *text* into a list of :class:`Token`, ending with ``eof``."""
    tokens = []
    i = 0
    n = len(text)
    line = 1
    layout = True

    def error(msg):
        raise LexError(msg, line)

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            layout = True
            continue
        if c in " \t\r\f":
            i += 1
            layout = True
            continue
        if c == "%":
            while i < n and text[i] != "\n":
                i += 1
            layout = True
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                i += 1
            if i + 1 >= n:
                error("unterminated block comment")
            i += 2
            layout = True
            continue

        start_line = line
        had_layout = layout
        layout = False

        # Integers, including 0'c character codes.
        if c.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            if text[i:j] == "0" and j < n and text[j] == "'":
                if j + 1 >= n:
                    error("bad character code")
                ch = text[j + 1]
                if ch == "\\":
                    code, j2 = _escape(text, j + 2, error)
                    tokens.append(Token("int", code, start_line, had_layout))
                    i = j2
                else:
                    tokens.append(Token("int", ord(ch), start_line, had_layout))
                    i = j + 2
                continue
            tokens.append(Token("int", int(text[i:j]), start_line, had_layout))
            i = j
            continue

        # Variables and alphanumeric atoms.
        if c == "_" or c.isalpha():
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if c == "_" or c.isupper():
                tokens.append(Token("var", word, start_line, had_layout))
            else:
                tokens.append(Token("atom", word, start_line, had_layout))
            i = j
            continue

        # Quoted atoms.
        if c == "'":
            value, i = _quoted(text, i + 1, "'", error)
            tokens.append(Token("atom", value, start_line, had_layout))
            continue

        # Double-quoted strings -> list of character codes (DEC-10 default).
        if c == '"':
            value, i = _quoted(text, i + 1, '"', error)
            tokens.append(Token("string", value, start_line, had_layout))
            continue

        # Solo characters.
        if c in _SOLO:
            tokens.append(Token("atom", c, start_line, had_layout))
            i += 1
            continue
        if c in _PUNCT:
            tokens.append(Token("punct", c, start_line, had_layout))
            i += 1
            continue

        # Symbolic atoms; a '.' followed by layout or EOF ends the clause.
        if c in _SYMBOL_CHARS:
            j = i
            while j < n and text[j] in _SYMBOL_CHARS:
                j += 1
            word = text[i:j]
            if word == "." and (j >= n or text[j] in " \t\r\n%"):
                tokens.append(Token("end", ".", start_line, had_layout))
                i = j
                continue
            if word[0] == "." and len(word) == 1:
                tokens.append(Token("end", ".", start_line, had_layout))
                i = j
                continue
            tokens.append(Token("atom", word, start_line, had_layout))
            i = j
            continue

        error("unexpected character %r" % c)

    tokens.append(Token("eof", None, line, True))
    return tokens


def _escape(text, i, error):
    """Decode one escape sequence starting at *i*; returns (code, next_i)."""
    mapping = {"n": 10, "t": 9, "r": 13, "a": 7, "b": 8, "f": 12, "v": 11,
               "\\": 92, "'": 39, '"': 34, "`": 96, "0": 0}
    if i >= len(text):
        error("unterminated escape")
    c = text[i]
    if c in mapping:
        return mapping[c], i + 1
    error("unknown escape \\%s" % c)


def _quoted(text, i, quote, error):
    """Scan a quoted item; handles doubled quotes and backslash escapes."""
    out = []
    n = len(text)
    while i < n:
        c = text[i]
        if c == quote:
            if i + 1 < n and text[i + 1] == quote:
                out.append(quote)
                i += 2
                continue
            return "".join(out), i + 1
        if c == "\\":
            if i + 1 < n and text[i + 1] == "\n":
                i += 2
                continue
            code, i = _escape(text, i + 1, error)
            out.append(chr(code))
            continue
        out.append(c)
        i += 1
    error("unterminated quoted item")
