"""Grammar application workloads, written as DCGs.

Three workloads exercise the parsing profile the paper's 14
list-crunching microbenchmarks miss (grammar code branches on token
shape, not list structure):

* ``dcg_grammar`` — a grammar-of-grammars that parses a token encoding
  of *its own* rule set, counting productions,
* ``dcg_json`` — a JSON-ish token parser building a tree, plus walkers
  summing the numbers and counting the nodes,
* ``dcg_calc`` — a precedence-correct expression parser compiling its
  AST to stack code and executing it on a stack machine.

Each workload is authored in ``-->`` form here and registered in the
benchmark suite *post-translation* (:data:`DCG_PROGRAMS`), so the rest
of the pipeline — compiler, emulators, verifier, analysis — never sees
a grammar rule.  The raw DCG sources stay available in
:data:`DCG_WORKLOADS` for the round-trip tests.
"""

from repro.benchmarks.programs import BenchmarkProgram
from repro.corpus.dcg import translate_source

__all__ = ["DCG_PROGRAMS", "DCG_WORKLOADS", "DcgWorkload"]


class DcgWorkload:
    """A DCG-authored workload: raw grammar source + translation."""

    __slots__ = ("name", "description", "dcg_source", "source")

    def __init__(self, name, description, dcg_source):
        self.name = name
        self.description = description
        self.dcg_source = dcg_source
        self.source = translate_source(dcg_source)

    def __repr__(self):
        return "DcgWorkload(%r)" % self.name


_GRAMMAR = r"""
% A grammar of grammar rules, applied to the token encoding of its own
% eight productions.  Tokens: nt(Name), t(Name), arrow, comma, stop.

grammar(0) --> [].
grammar(N) --> rule_, grammar(M), {N is M + 1}.

rule_ --> [nt(_)], [arrow], body, [stop].

body --> item, body_tail.

body_tail --> [comma], item, body_tail.
body_tail --> [].

item --> [nt(_)].
item --> [t(_)].

self_tokens([nt(grammar), arrow, t(empty), stop,
             nt(grammar), arrow, nt(rule), comma, nt(grammar), stop,
             nt(rule), arrow, t(nt), comma, t(arrow), comma, nt(body),
             comma, t(stop), stop,
             nt(body), arrow, nt(item), comma, nt(btail), stop,
             nt(btail), arrow, t(comma), comma, nt(item), comma,
             nt(btail), stop,
             nt(btail), arrow, t(empty), stop,
             nt(item), arrow, t(nt), stop,
             nt(item), arrow, t(t), stop]).

count_terminals([], 0).
count_terminals([t(_)|Ts], N) :- !, count_terminals(Ts, M), N is M + 1.
count_terminals([_|Ts], N) :- count_terminals(Ts, N).

main :-
    self_tokens(Ts),
    grammar(Rules, Ts, []),
    count_terminals(Ts, Terminals),
    write(rules(Rules)), nl,
    write(terminals(Terminals)), nl.
"""


_JSON = r"""
% A JSON-ish token parser.  Tokens: lbrace, rbrace, lbrack, rbrack,
% colon, comma, key(K), num(N), str(S), true, false, null.

jvalue(obj(Ms)) --> [lbrace], jmembers(Ms), [rbrace].
jvalue(arr(Vs)) --> [lbrack], jelements(Vs), [rbrack].
jvalue(num(N)) --> [num(N)].
jvalue(str(S)) --> [str(S)].
jvalue(true) --> [true].
jvalue(false) --> [false].
jvalue(null) --> [null].

jmembers([M|Ms]) --> jpair(M), jmembers_tail(Ms).
jmembers([]) --> [].

jmembers_tail([M|Ms]) --> [comma], jpair(M), jmembers_tail(Ms).
jmembers_tail([]) --> [].

jpair(pair(K, V)) --> [key(K)], [colon], jvalue(V).

jelements([V|Vs]) --> jvalue(V), jelements_tail(Vs).
jelements([]) --> [].

jelements_tail([V|Vs]) --> [comma], jvalue(V), jelements_tail(Vs).
jelements_tail([]) --> [].

jsum(obj(Ms), S) :- jsum_pairs(Ms, S).
jsum(arr(Vs), S) :- jsum_list(Vs, S).
jsum(num(N), N).
jsum(str(_), 0).
jsum(true, 1).
jsum(false, 0).
jsum(null, 0).

jsum_pairs([], 0).
jsum_pairs([pair(_, V)|Ms], S) :-
    jsum(V, A), jsum_pairs(Ms, B), S is A + B.

jsum_list([], 0).
jsum_list([V|Vs], S) :- jsum(V, A), jsum_list(Vs, B), S is A + B.

jcount(obj(Ms), N) :- jcount_pairs(Ms, M), N is M + 1.
jcount(arr(Vs), N) :- jcount_list(Vs, M), N is M + 1.
jcount(num(_), 1).
jcount(str(_), 1).
jcount(true, 1).
jcount(false, 1).
jcount(null, 1).

jcount_pairs([], 0).
jcount_pairs([pair(_, V)|Ms], N) :-
    jcount(V, A), jcount_pairs(Ms, B), N is A + B.

jcount_list([], 0).
jcount_list([V|Vs], N) :- jcount(V, A), jcount_list(Vs, B), N is A + B.

doc_tokens([lbrace,
            key(name), colon, str(repro), comma,
            key(year), colon, num(1992), comma,
            key(tags), colon,
                lbrack, str(ilp), comma, str(prolog), comma,
                num(3), rbrack, comma,
            key(meta), colon,
                lbrace, key(ok), colon, true, comma,
                key(depth), colon, num(7), comma,
                key(inner), colon,
                    lbrack, lbrace, key(k), colon, num(40),
                    rbrace, comma, null, comma, false, rbrack,
                rbrace,
            rbrace]).

main :-
    doc_tokens(Ts),
    jvalue(Doc, Ts, []),
    jsum(Doc, Sum),
    jcount(Doc, Nodes),
    write(sum(Sum)), nl,
    write(nodes(Nodes)), nl.
"""


_CALC = r"""
% An infix expression compiler: parse tokens into an AST with correct
% precedence, compile the AST to stack code, execute the stack code.
% Tokens: num(N), plus, minus, times, lpar, rpar.

expr(T) --> term(F), expr_tail(F, T).

expr_tail(A, T) --> [plus], !, term(B), expr_tail(add(A, B), T).
expr_tail(A, T) --> [minus], !, term(B), expr_tail(sub(A, B), T).
expr_tail(A, A) --> [].

term(T) --> factor(F), term_tail(F, T).

term_tail(A, T) --> [times], !, factor(B), term_tail(mul(A, B), T).
term_tail(A, A) --> [].

factor(num(N)) --> [num(N)].
factor(T) --> [lpar], expr(T), [rpar].

comp(num(N), [push(N)|C], C).
comp(add(A, B), C0, C) :- comp(A, C0, C1), comp(B, C1, [add|C]).
comp(sub(A, B), C0, C) :- comp(A, C0, C1), comp(B, C1, [sub|C]).
comp(mul(A, B), C0, C) :- comp(A, C0, C1), comp(B, C1, [mul|C]).

exec([], [V], V).
exec([push(N)|C], S, V) :- exec(C, [N|S], V).
exec([add|C], [B, A|S], V) :- X is A + B, exec(C, [X|S], V).
exec([sub|C], [B, A|S], V) :- X is A - B, exec(C, [X|S], V).
exec([mul|C], [B, A|S], V) :- X is A * B, exec(C, [X|S], V).

run(Ts, V) :-
    expr(Ast, Ts, []),
    comp(Ast, Code, []),
    exec(Code, [], V).

main :-
    run([lpar, num(1), plus, num(2), rpar, times, num(3),
         plus, num(4), times, num(5)], V1),
    write(V1), nl,
    run([num(2), times, lpar, num(3), plus, num(4), times,
         lpar, num(5), plus, num(6), rpar, rpar], V2),
    write(V2), nl,
    run([num(100), minus, num(7), times, num(8), minus,
         lpar, num(9), minus, num(4), rpar], V3),
    write(V3), nl.
"""


DCG_WORKLOADS = {
    "dcg_grammar": DcgWorkload(
        "dcg_grammar",
        "grammar-of-grammars parsing a token encoding of itself",
        _GRAMMAR),
    "dcg_json": DcgWorkload(
        "dcg_json",
        "JSON-ish token parser with summing and node-counting walkers",
        _JSON),
    "dcg_calc": DcgWorkload(
        "dcg_calc",
        "infix expression parser compiling to stack code and executing it",
        _CALC),
}

#: the translated workloads as suite-registrable benchmark programs;
#: excluded from Table 1 so the paper tables stay the paper's.
DCG_PROGRAMS = {
    name: BenchmarkProgram(workload.name, workload.description,
                           workload.source, in_table1=False)
    for name, workload in DCG_WORKLOADS.items()
}
