"""Definite-clause-grammar translation.

Rewrites grammar rules of the form ``Head --> Body`` into plain Prolog
clauses threading a difference list through the body, exactly as a
classical DCG expansion does::

    greeting --> [hello], name.
    name --> [world].

becomes::

    greeting(S0, S) :- S0 = [hello|S1], name(S1, S).
    name(S0, S) :- S0 = [world|S].

Supported body elements: nonterminals (atoms or compound terms, given
two extra threading arguments), terminal lists (proper lists, including
the double-quoted-string code lists the reader produces), the empty
production ``[]``, embedded goals ``{Goal}`` (called without consuming
input), cut, conjunction, disjunction, if-then-else and negation
``\\+``.  Variable nonterminals (``call//N``) and pushback rules
(``Head, Pushback --> Body``) are outside the subset the compiler
handles and raise :class:`DcgError`.

The module also renders translated clauses back to canonical source
text (:func:`clause_to_string`, :func:`translate_source`): the rendered
text re-reads to the same structure, which makes translation a *fixed
point* on already-translated programs — the property the round-trip
tests pin.
"""

from repro.reader import parse_program
from repro.terms import Atom, Int, Struct, Var, term_to_string

__all__ = [
    "DcgError",
    "alpha_equal",
    "clause_to_string",
    "is_dcg_rule",
    "translate_dcg_rule",
    "translate_source",
    "translate_term",
]

_NIL = Atom("[]")


class DcgError(Exception):
    """A grammar rule outside the translatable subset."""


def is_dcg_rule(term):
    """Is *term* a ``Head --> Body`` grammar rule?"""
    return isinstance(term, Struct) and term.indicator == ("-->", 2)


class _Threader:
    """Fresh difference-list variables, avoiding the rule's own names."""

    def __init__(self, used):
        self.used = set(used)
        self.counter = 0

    def fresh(self):
        while True:
            name = "S%d" % self.counter
            self.counter += 1
            if name not in self.used:
                self.used.add(name)
                return Var(name)


def _collect_var_names(term, names):
    if isinstance(term, Var):
        names.add(term.name)
    elif isinstance(term, Struct):
        for arg in term.args:
            _collect_var_names(arg, names)


def _proper_list_items(term):
    """Items of a proper list term, or None if it is not one."""
    items = []
    while isinstance(term, Struct) and term.indicator == (".", 2):
        items.append(term.args[0])
        term = term.args[1]
    if term == _NIL:
        return items
    return None


def _conj(left, right):
    if left is None:
        return right
    if right is None:
        return left
    return Struct(",", [left, right])


def _translate_body(body, s_in, threader):
    """Translate one body element starting at list variable *s_in*.

    Returns ``(goal, s_out)`` where *goal* is the threaded goal term (or
    ``None`` for the empty production) and *s_out* the list variable the
    element leaves off at — ``s_in`` itself when nothing is consumed.
    """
    if isinstance(body, Var):
        raise DcgError("variable nonterminal (call//N) is not supported")
    if isinstance(body, Int):
        raise DcgError("integer %d cannot appear as a grammar body"
                       % body.value)
    if isinstance(body, Atom):
        if body.name == "[]":
            return None, s_in
        if body.name == "!":
            return Atom("!"), s_in
        s_out = threader.fresh()
        return Struct(body.name, [s_in, s_out]), s_out

    indicator = body.indicator
    if indicator == (",", 2):
        left, mid = _translate_body(body.args[0], s_in, threader)
        right, s_out = _translate_body(body.args[1], mid, threader)
        return _conj(left, right), s_out
    if indicator == (";", 2):
        s_out = threader.fresh()
        first = body.args[0]
        if isinstance(first, Struct) and first.indicator == ("->", 2):
            condition, mid = _translate_body(first.args[0], s_in,
                                             threader)
            then = _force(first.args[1], mid, s_out, threader)
            otherwise = _force(body.args[1], s_in, s_out, threader)
            return Struct(";", [
                Struct("->", [condition or Atom("true"), then]),
                otherwise]), s_out
        left = _force(first, s_in, s_out, threader)
        right = _force(body.args[1], s_in, s_out, threader)
        return Struct(";", [left, right]), s_out
    if indicator == ("->", 2):
        condition, mid = _translate_body(body.args[0], s_in, threader)
        s_out = threader.fresh()
        then = _force(body.args[1], mid, s_out, threader)
        return Struct("->", [condition or Atom("true"), then]), s_out
    if indicator == ("{}", 1):
        return body.args[0], s_in
    if indicator == ("\\+", 1):
        inner, _ = _translate_body(body.args[0], s_in, threader)
        return Struct("\\+", [inner or Atom("true")]), s_in
    if indicator == (".", 2):
        items = _proper_list_items(body)
        if items is None:
            raise DcgError("terminal list must be proper: %s"
                           % term_to_string(body))
        s_out = threader.fresh()
        chain = s_out
        for item in reversed(items):
            chain = Struct(".", [item, chain])
        return Struct("=", [s_in, chain]), s_out

    # A compound nonterminal: thread two extra arguments.
    s_out = threader.fresh()
    return Struct(body.name, list(body.args) + [s_in, s_out]), s_out


def _force(body, s_in, s_out, threader):
    """Translate *body* so it lands exactly on *s_out* (branch joins)."""
    goal, out = _translate_body(body, s_in, threader)
    if out is s_out:
        return goal or Atom("true")
    join = Struct("=", [s_out, out])
    return join if goal is None else _conj(goal, join)


def translate_dcg_rule(term):
    """Translate one ``Head --> Body`` rule into a plain clause term."""
    if not is_dcg_rule(term):
        raise DcgError("not a grammar rule: %s" % term_to_string(term))
    head, body = term.args
    if isinstance(head, Struct) and head.indicator == (",", 2):
        raise DcgError("pushback grammar rules are not supported")
    if not isinstance(head, (Atom, Struct)):
        raise DcgError("grammar head must be an atom or compound term")
    used = set()
    _collect_var_names(term, used)
    threader = _Threader(used)
    s_in = threader.fresh()
    goal, s_out = _translate_body(body, s_in, threader)
    if isinstance(head, Atom):
        new_head = Struct(head.name, [s_in, s_out])
    else:
        new_head = Struct(head.name, list(head.args) + [s_in, s_out])
    if goal is None:
        return new_head
    return Struct(":-", [new_head, goal])


def translate_term(term):
    """Translate a clause term: DCG rules are rewritten, everything else
    (facts, ``:-`` rules, directives) passes through unchanged."""
    if is_dcg_rule(term):
        return translate_dcg_rule(term)
    return term


def _flatten_conjunction(goal):
    goals = []
    while isinstance(goal, Struct) and goal.indicator == (",", 2):
        goals.append(goal.args[0])
        goal = goal.args[1]
    goals.append(goal)
    return goals


def clause_to_string(term):
    """Render a clause term as re-readable source text.

    Heads and goals are rendered in canonical functor syntax (which the
    reader parses back to the identical structure); the top-level
    conjunction is laid out one goal per line for readability.
    """
    if isinstance(term, Struct) and term.indicator == (":-", 2):
        head, body = term.args
        goals = _flatten_conjunction(body)
        return "%s :-\n    %s." % (
            term_to_string(head),
            ",\n    ".join(term_to_string(goal) for goal in goals))
    if isinstance(term, (Atom, Struct)):
        return term_to_string(term) + "."
    raise DcgError("not a clause: %r" % (term,))


def translate_source(text):
    """Translate every DCG rule in *text*; returns plain Prolog source.

    Non-DCG clauses are re-rendered but otherwise untouched, so applying
    :func:`translate_source` to its own output is the identity — the
    fixed-point property the round-trip tests rely on.
    """
    clauses = [translate_term(clause) for clause in parse_program(text)]
    return "\n".join(clause_to_string(clause) for clause in clauses) + "\n"


def alpha_equal(left, right, mapping=None):
    """Structural equality of two terms up to variable renaming.

    The correspondence must be a bijection: two distinct variables on
    one side can never map to the same variable on the other.
    """
    if mapping is None:
        mapping = ({}, {})
    forward, backward = mapping
    if isinstance(left, Var) or isinstance(right, Var):
        if not (isinstance(left, Var) and isinstance(right, Var)):
            return False
        bound = forward.get(id(left))
        if bound is not None:
            return bound is right
        if id(right) in backward:
            return False
        forward[id(left)] = right
        backward[id(right)] = left
        return True
    if isinstance(left, Atom):
        return isinstance(right, Atom) and left.name == right.name
    if isinstance(left, Int):
        return isinstance(right, Int) and left.value == right.value
    if isinstance(left, Struct):
        if not (isinstance(right, Struct)
                and left.indicator == right.indicator):
            return False
        return all(alpha_equal(a, b, mapping)
                   for a, b in zip(left.args, right.args))
    raise TypeError("not a term: %r" % (left,))
