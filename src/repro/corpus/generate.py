"""Seeded, property-based Prolog program generator.

Emits type-correct, terminating programs from a grammar of clause
skeletons — the recursion schemes the paper's benchmarks are made of:
deterministic list recursion (map/filter/fold), bounded arithmetic
recursion (countdown, binary recursion), list builders, and the
cut / if-then-else shapes the hand-written fuzz grammar of
``tests/test_fuzz_equivalence.py`` misses.

Determinism contract
--------------------

:func:`generate_program` is a pure function of its seed: the same seed
regenerates the identical source text byte for byte, on any platform
(only ``random.Random`` integer draws are used — no hashing, no set
iteration, no wall clock).  That makes every corpus program a stable,
content-addressable differential test: the sweep in
:mod:`repro.experiments.corpus_sweep` caches its artefacts under the
compiled fingerprint exactly like the paper suite.

Termination contract
--------------------

Every scheme recurses structurally on a ground list or counts a
non-negative integer down to zero, and every ``main/0`` goal is ground
at entry, so every program terminates; :data:`GENERATOR_MAX_STEPS` is a
hard ceiling the test suite enforces with a large margin.
"""

import random

__all__ = [
    "BASE_SEED",
    "DEFAULT_COUNT",
    "GENERATOR_MAX_STEPS",
    "GeneratedProgram",
    "SCHEME_NAMES",
    "corpus_programs",
    "corpus_seeds",
    "generate_program",
]

#: default first seed of the corpus (the paper's publication year)
BASE_SEED = 1992

#: default corpus size (ROADMAP item 5: "grow the corpus to hundreds")
DEFAULT_COUNT = 200

#: emulation step ceiling every generated program must finish under
GENERATOR_MAX_STEPS = 2_000_000


class GeneratedProgram:
    """One generated program: source text plus provenance."""

    __slots__ = ("name", "seed", "source", "schemes")

    def __init__(self, name, seed, source, schemes):
        self.name = name
        self.seed = seed
        self.source = source
        #: the clause-skeleton schemes instantiated, in program order
        self.schemes = list(schemes)

    def __repr__(self):
        return "GeneratedProgram(%r, seed=%d)" % (self.name, self.seed)


def _ints(rng, count, low, high):
    return [rng.randint(low, high) for _ in range(count)]


def _plist(items):
    return "[%s]" % ",".join(str(item) for item in items)


def _affine(variable, scale, offset):
    """Render ``variable * scale +- offset`` without a ``+ -3`` glitch."""
    text = "%s * %d" % (variable, scale)
    if offset > 0:
        return "%s + %d" % (text, offset)
    if offset < 0:
        return "%s - %d" % (text, -offset)
    return text


# --------------------------------------------------------------------------
# Clause skeleton schemes.  Each takes (rng, i) — the program's RNG and
# the instance index (predicate names are suffixed with it, so one
# program can instantiate the same scheme twice) — and returns
# (clauses_text, goal_text).  Every goal is ground, always succeeds,
# and writes its result.

def _scheme_map_affine(rng, i):
    scale = rng.randint(2, 5)
    offset = rng.randint(-3, 3)
    xs = _ints(rng, rng.randint(4, 9), -9, 9)
    defs = ("map%d([], []).\n"
            "map%d([X|T], [Y|R]) :- Y is %s, map%d(T, R).\n"
            % (i, i, _affine("X", scale, offset), i))
    goal = "map%d(%s, R%d), write(R%d), nl" % (i, _plist(xs), i, i)
    return defs, goal


def _scheme_filter_ite(rng, i):
    pivot = rng.randint(-4, 4)
    xs = _ints(rng, rng.randint(4, 10), -9, 9)
    defs = ("flt%d([], []).\n"
            "flt%d([X|T], R) :- ( X > %d -> R = [X|R1] ; R = R1 ), "
            "flt%d(T, R1).\n" % (i, i, pivot, i))
    goal = "flt%d(%s, R%d), write(R%d), nl" % (i, _plist(xs), i, i)
    return defs, goal


def _scheme_filter_cut(rng, i):
    modulus = rng.randint(2, 5)
    residue = rng.randint(0, modulus - 1)
    xs = _ints(rng, rng.randint(4, 10), 0, 19)
    defs = ("pck%d([], []).\n"
            "pck%d([X|T], [X|R]) :- X mod %d =:= %d, !, pck%d(T, R).\n"
            "pck%d([_|T], R) :- pck%d(T, R).\n"
            % (i, i, modulus, residue, i, i, i))
    goal = "pck%d(%s, R%d), write(R%d), nl" % (i, _plist(xs), i, i)
    return defs, goal


def _scheme_fold_acc(rng, i):
    weight = rng.randint(1, 4)
    xs = _ints(rng, rng.randint(4, 10), -9, 9)
    defs = ("acc%d([], A, A).\n"
            "acc%d([X|T], A0, A) :- A1 is A0 + X * %d, acc%d(T, A1, A).\n"
            % (i, i, weight, i))
    goal = "acc%d(%s, 0, R%d), write(R%d), nl" % (i, _plist(xs), i, i)
    return defs, goal


def _scheme_countdown(rng, i):
    modulus = rng.randint(2, 7)
    start = rng.randint(6, 15)
    defs = ("cnt%d(0, A, A) :- !.\n"
            "cnt%d(N, A0, A) :- N > 0, A1 is A0 + N mod %d, "
            "N1 is N - 1, cnt%d(N1, A1, A).\n" % (i, i, modulus, i))
    goal = "cnt%d(%d, 0, R%d), write(R%d), nl" % (i, start, i, i)
    return defs, goal


def _scheme_build_list(rng, i):
    scale = rng.randint(2, 6)
    modulus = rng.randint(5, 11)
    length = rng.randint(5, 12)
    defs = ("bld%d(0, []) :- !.\n"
            "bld%d(N, [X|T]) :- N > 0, X is N * %d mod %d, "
            "N1 is N - 1, bld%d(N1, T).\n"
            % (i, i, scale, modulus, i))
    goal = "bld%d(%d, R%d), write(R%d), nl" % (i, length, i, i)
    return defs, goal


def _scheme_binary_rec(rng, i):
    base0 = rng.randint(0, 3)
    base1 = rng.randint(1, 3)
    depth = rng.randint(7, 11)
    defs = ("fib%d(0, %d).\n"
            "fib%d(1, %d).\n"
            "fib%d(N, F) :- N > 1, N1 is N - 1, N2 is N - 2,\n"
            "    fib%d(N1, F1), fib%d(N2, F2), F is F1 + F2.\n"
            % (i, base0, i, base1, i, i, i))
    goal = "fib%d(%d, R%d), write(R%d), nl" % (i, depth, i, i)
    return defs, goal


def _scheme_classify(rng, i):
    low = rng.randint(-5, 0)
    high = rng.randint(1, 8)
    xs = _ints(rng, rng.randint(4, 10), -9, 12)
    defs = ("cls%d([], []).\n"
            "cls%d([X|T], [Y|R]) :-\n"
            "    ( X < %d -> Y = lo ; X < %d -> Y = mid ; Y = hi ),\n"
            "    cls%d(T, R).\n" % (i, i, low, high, i))
    goal = "cls%d(%s, R%d), write(R%d), nl" % (i, _plist(xs), i, i)
    return defs, goal


def _scheme_zip_struct(rng, i):
    xs = _ints(rng, rng.randint(3, 8), -6, 9)
    defs = ("zip%d([], []).\n"
            "zip%d([X|T], [p(X, Y)|R]) :- Y is X * X, zip%d(T, R).\n"
            % (i, i, i))
    goal = "zip%d(%s, R%d), write(R%d), nl" % (i, _plist(xs), i, i)
    return defs, goal


def _scheme_reverse_acc(rng, i):
    xs = _ints(rng, rng.randint(4, 11), -9, 9)
    defs = ("rev%d([], A, A).\n"
            "rev%d([H|T], A, R) :- rev%d(T, [H|A], R).\n" % (i, i, i))
    goal = "rev%d(%s, [], R%d), write(R%d), nl" % (i, _plist(xs), i, i)
    return defs, goal


def _scheme_search_cut(rng, i):
    modulus = rng.randint(2, 5)
    xs = _ints(rng, rng.randint(4, 9), 1, 17)
    defs = ("mem%d(X, [X|_]).\n"
            "mem%d(X, [_|T]) :- mem%d(X, T).\n" % (i, i, i))
    goal = ("( mem%d(X%d, %s), X%d mod %d =:= 0 -> write(X%d) "
            "; write(none) ), nl" % (i, i, _plist(xs), i, modulus, i))
    return defs, goal


def _scheme_negation(rng, i):
    probe = rng.randint(-9, 9)
    xs = _ints(rng, rng.randint(3, 8), -9, 9)
    defs = ("has%d(X, [X|_]).\n"
            "has%d(X, [_|T]) :- has%d(X, T).\n" % (i, i, i))
    goal = ("( \\+ has%d(%d, %s) -> write(absent) ; write(present) ), nl"
            % (i, probe, _plist(xs)))
    return defs, goal


_SCHEMES = [
    ("map_affine", _scheme_map_affine),
    ("filter_ite", _scheme_filter_ite),
    ("filter_cut", _scheme_filter_cut),
    ("fold_acc", _scheme_fold_acc),
    ("countdown", _scheme_countdown),
    ("build_list", _scheme_build_list),
    ("binary_rec", _scheme_binary_rec),
    ("classify", _scheme_classify),
    ("zip_struct", _scheme_zip_struct),
    ("reverse_acc", _scheme_reverse_acc),
    ("search_cut", _scheme_search_cut),
    ("negation", _scheme_negation),
]

SCHEME_NAMES = [name for name, _ in _SCHEMES]


def generate_program(seed):
    """Generate one program deterministically from *seed*."""
    rng = random.Random(seed)
    instances = rng.randint(2, 4)
    chosen = [_SCHEMES[rng.randrange(len(_SCHEMES))]
              for _ in range(instances)]
    parts = ["%% generated by repro.corpus.generate (seed=%d)" % seed]
    goals = []
    names = []
    for index, (name, scheme) in enumerate(chosen):
        names.append(name)
        defs, goal = scheme(rng, index)
        parts.append(defs.rstrip("\n"))
        goals.append(goal)
    parts.append("main :-\n    %s.\n" % ",\n    ".join(goals))
    source = "\n\n".join(parts)
    return GeneratedProgram("gen%05d" % seed, seed, source, names)


def corpus_seeds(count=DEFAULT_COUNT, base_seed=BASE_SEED):
    """The seed sequence of a *count*-program corpus."""
    return [base_seed + index for index in range(count)]


def corpus_programs(count=DEFAULT_COUNT, base_seed=BASE_SEED):
    """Generate the whole corpus (deterministic in both arguments)."""
    return [generate_program(seed)
            for seed in corpus_seeds(count, base_seed)]
