"""Generative benchmark corpus: DCG workloads + a seeded program generator.

The paper's analysis rests on 14 hand-picked benchmarks; this package
scales the workload axis (ROADMAP item 5).  It contributes

* :mod:`repro.corpus.dcg` — a definite-clause-grammar translator that
  rewrites ``-->`` rules into plain clauses with threaded
  difference-list arguments,
* :mod:`repro.corpus.workloads` — three grammar *application* workloads
  (a self-parsing grammar, a JSON-ish parser, a small expression
  compiler) registered in the benchmark suite as ``dcg_*`` programs,
* :mod:`repro.corpus.generate` — a seeded, property-based Prolog
  program generator emitting type-correct, terminating programs from a
  grammar of clause skeletons; every program carries a ground ``main/0``
  entry query and regenerates byte-identically from its seed.

The corpus sweep driving all of this through the differential oracle,
the independent checker and the static ILP bound lives in
:mod:`repro.experiments.corpus_sweep` (``repro corpus``).
"""

from repro.corpus.dcg import (
    DcgError, alpha_equal, clause_to_string, is_dcg_rule,
    translate_dcg_rule, translate_source, translate_term)
from repro.corpus.generate import (
    BASE_SEED, DEFAULT_COUNT, GENERATOR_MAX_STEPS, GeneratedProgram,
    corpus_programs, corpus_seeds, generate_program)
from repro.corpus.workloads import DCG_PROGRAMS, DCG_WORKLOADS

__all__ = [
    "BASE_SEED",
    "DCG_PROGRAMS",
    "DCG_WORKLOADS",
    "DEFAULT_COUNT",
    "DcgError",
    "GENERATOR_MAX_STEPS",
    "GeneratedProgram",
    "alpha_equal",
    "clause_to_string",
    "corpus_programs",
    "corpus_seeds",
    "generate_program",
    "is_dcg_rule",
    "translate_dcg_rule",
    "translate_source",
    "translate_term",
]
