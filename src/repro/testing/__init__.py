"""Test-support machinery shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection
registry the chaos suite uses to prove the evaluation supervisor's
resilience guarantees.  It lives under ``src`` (not ``tests``) because
the injection sites are compiled into the production modules and must
be importable wherever the package runs — including inside evaluation
worker processes.
"""

from repro.testing.faults import (
    InjectedFault,
    armed,
    fire,
    injected,
    mark_worker,
    parse_spec,
)

__all__ = [
    "InjectedFault",
    "armed",
    "fire",
    "injected",
    "mark_worker",
    "parse_spec",
]
