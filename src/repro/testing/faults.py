"""Deterministic fault injection for the evaluation pipeline.

The chaos suite does not prove resilience by luck: every failure mode
the supervisor claims to survive — a worker killed with ``SIGKILL``, a
task hanging past its deadline, a corrupted cache artefact, a write
torn between temp file and publish, an emulator step-limit fault — can
be *armed* at a named site and fires on an exact, reproducible
invocation ordinal.

Arming is environment-driven so evaluation worker processes inherit it::

    REPRO_FAULT_INJECT="parallel.task=crash:1,cache.read=corrupt:1"
    REPRO_FAULT_STATE=/tmp/fuses     # cross-process fire accounting

Each armed spec is ``site=kind[:times[:param]]``: the first *times*
invocations of :func:`fire` at *site* trip the fault, later ones pass
through.  Determinism across a pool of workers comes from **fuse
files**: every firing claims an ``O_CREAT | O_EXCL`` file named after
the spec and the fire ordinal under ``REPRO_FAULT_STATE``, so exactly
*times* faults fire globally no matter how invocations interleave
across processes, and a resurrected pool does not re-fire spent
faults.  Without a state directory the accounting is per-process
(fine for ``jobs=1``).

Sites and the kinds each supports:

=====================  ============================================
``parallel.task``      ``error`` / ``crash`` / ``hang`` — worker-side
                       evaluation task entry
``cache.read``         ``corrupt`` — flip a byte of the artefact on
                       disk before the store reads it
``cache.write``        ``torn`` — abandon an atomic write after the
                       temp file is written, before the publish rename
``pipeline.cycles``    ``error`` — schedule-and-replay of one cell
``pipeline.superblock``  ``error`` — the superblock transform
``emulator.run``       ``step-limit`` — emulation raises the step-limit
                       machine fault
``serve.request``      ``error`` / ``shed`` / ``hang`` — one request
                       inside the evaluation service (transient
                       failure, forced 429, slow execution)
``cache.shard``        ``corrupt`` / ``error`` — the sharded store's
                       read path (on-disk damage, transient I/O)
``orparallel.task``    ``error`` / ``crash`` / ``hang`` — one stolen
                       branch of an or-parallel search
=====================  ============================================

``crash`` sends ``SIGKILL`` to the current process — but only inside a
pool worker (processes that ran :func:`mark_worker`); anywhere else it
raises :class:`InjectedFault` instead, so a misconfigured spec degrades
to an ordinary exception rather than killing the test harness or a
user's session.  ``hang`` sleeps *param* seconds (default 30) and then
continues, which is what the supervisor's deadline watchdog must
recover from.  ``error`` raises :class:`InjectedFault`, the model of a
transient failure.  The remaining kinds are site-specific: :func:`fire`
returns the kind string and the call site enacts it.
"""

import os
import signal
import time

ENV_SPEC = "REPRO_FAULT_INJECT"
ENV_STATE = "REPRO_FAULT_STATE"

#: site name -> the fault kinds that make sense there
SITES = {
    "parallel.task": ("error", "crash", "hang"),
    "cache.read": ("corrupt",),
    "cache.write": ("torn",),
    "pipeline.cycles": ("error", "crash", "hang"),
    "pipeline.superblock": ("error", "crash", "hang"),
    "emulator.run": ("step-limit", "error"),
    "emulator.codegen.block": ("bail", "error"),
    # the evaluation service (repro serve): per-request transient
    # failures, forced load shedding, and slow-request hangs
    "serve.request": ("error", "shed", "hang"),
    # the sharded cache backend: on-disk corruption and transient
    # shard I/O errors on the read path
    "cache.shard": ("corrupt", "error"),
    # one stolen branch task of the or-parallel search engine
    # (repro.interp.orparallel): transient failure, worker SIGKILL,
    # a branch hanging past the supervisor's deadline
    "orparallel.task": ("error", "crash", "hang"),
}


class InjectedFault(RuntimeError):
    """A deliberately injected transient failure."""


class FaultSpec:
    """One armed fault: fire *kind* at *site* for the first *times*
    invocations.  *index* is the spec's position in the armed list
    (part of the fuse name, so two specs at one site keep separate
    accounting)."""

    __slots__ = ("site", "kind", "times", "param", "index")

    def __init__(self, site, kind, times=1, param=None, index=0):
        if site not in SITES:
            raise ValueError("unknown fault site %r (expected one of "
                             "%s)" % (site, ", ".join(sorted(SITES))))
        if kind not in SITES[site]:
            raise ValueError("fault kind %r not supported at site %r "
                             "(expected one of %s)"
                             % (kind, site, ", ".join(SITES[site])))
        if times < 1:
            raise ValueError("fault times must be >= 1, got %d" % times)
        self.site = site
        self.kind = kind
        self.times = times
        self.param = param
        self.index = index

    def __repr__(self):
        return "FaultSpec(%s=%s:%d%s)" % (
            self.site, self.kind, self.times,
            "" if self.param is None else ":%g" % self.param)


def parse_spec(text):
    """Parse a ``REPRO_FAULT_INJECT`` value into :class:`FaultSpec` s.

    Grammar: comma-separated ``site=kind[:times[:param]]`` items.
    Raises :class:`ValueError` on unknown sites/kinds or malformed
    counts — arming a fault that can never fire is itself a bug.
    """
    specs = []
    for index, item in enumerate(part.strip()
                                 for part in text.split(",")):
        if not item:
            continue
        try:
            site, rest = item.split("=", 1)
        except ValueError:
            raise ValueError("malformed fault spec %r (expected "
                             "site=kind[:times[:param]])" % item)
        pieces = rest.split(":")
        kind = pieces[0]
        times = int(pieces[1]) if len(pieces) > 1 else 1
        param = float(pieces[2]) if len(pieces) > 2 else None
        specs.append(FaultSpec(site.strip(), kind.strip(), times,
                               param, index=index))
    return specs


def known_sites_text():
    """One line per site: ``site: kind|kind|...`` (for error texts)."""
    return "\n".join("  %s: %s" % (site, " | ".join(SITES[site]))
                     for site in sorted(SITES))


def validate_environment(environ=None):
    """Eagerly validate the ``REPRO_FAULT_INJECT`` value, if any.

    A typo'd site or kind used to arm a fault that silently never
    fired; callers that honour injection (the CLI entry point, the
    evaluation service) validate at startup instead and fail fast.
    Returns the parsed specs (empty when nothing is armed); raises
    :class:`ValueError` naming every known site and kind otherwise.
    """
    text = (os.environ if environ is None else environ).get(ENV_SPEC)
    if not text:
        return []
    try:
        return parse_spec(text)
    except ValueError as error:
        raise ValueError(
            "invalid %s=%r: %s\nknown fault sites:\n%s"
            % (ENV_SPEC, text, error, known_sites_text())) from error


# --------------------------------------------------------------------------
# Worker marking: the 'crash' kind only kills marked processes.

_worker = False


def mark_worker():
    """Record that this process is an expendable pool worker (used as
    the ``ProcessPoolExecutor`` initializer)."""
    global _worker
    _worker = True


def in_worker():
    return _worker


# --------------------------------------------------------------------------
# Fire accounting.

_parsed = (None, None)      # (env string, parsed specs)
_local_counts = {}          # spec fuse key -> fires (no state dir)


def _active():
    """The armed specs, re-parsed whenever the env value changes."""
    global _parsed, _local_counts
    text = os.environ.get(ENV_SPEC)
    if not text:
        return None
    if _parsed[0] != text:
        _parsed = (text, parse_spec(text))
        _local_counts = {}
    return _parsed[1]


def armed(site):
    """True when any fault is armed at *site* (cheap hot-path guard;
    does not consume a fuse)."""
    specs = _active()
    if not specs:
        return False
    return any(spec.site == site for spec in specs)


def _claim(spec):
    """Claim the next free fuse of *spec*; False when all are spent."""
    state = os.environ.get(ENV_STATE)
    key = "fuse-%d-%s-%s" % (spec.index, spec.site, spec.kind)
    if not state:
        count = _local_counts.get(key, 0)
        if count >= spec.times:
            return False
        _local_counts[key] = count + 1
        return True
    os.makedirs(state, exist_ok=True)
    for ordinal in range(spec.times):
        path = os.path.join(state, "%s-%d" % (key, ordinal))
        try:
            descriptor = os.open(path, os.O_CREAT | os.O_EXCL
                                 | os.O_WRONLY)
        except FileExistsError:
            continue
        os.write(descriptor, str(os.getpid()).encode())
        os.close(descriptor)
        return True
    return False


def fire(site):
    """Trip the armed fault at *site*, if any fuse remains.

    Generic kinds are enacted here: ``error`` raises
    :class:`InjectedFault`, ``crash`` SIGKILLs a worker process (or
    raises outside one), ``hang`` sleeps and returns.  Site-specific
    kinds (``corrupt``, ``torn``, ``step-limit``) are returned as a
    string for the call site to enact.  Returns None when nothing
    fires.
    """
    specs = _active()
    if not specs:
        return None
    for spec in specs:
        if spec.site != site or not _claim(spec):
            continue
        if spec.kind == "error":
            raise InjectedFault("injected transient fault at %s" % site)
        if spec.kind == "crash":
            if in_worker():
                os.kill(os.getpid(), signal.SIGKILL)
            raise InjectedFault(
                "injected crash at %s outside a worker process "
                "(refusing to kill a non-worker)" % site)
        if spec.kind == "hang":
            time.sleep(30.0 if spec.param is None else spec.param)
            return None
        return spec.kind
    return None


def corrupt_file(path):
    """Deterministically damage *path*: flip the middle byte."""
    with open(path, "r+b") as handle:
        data = handle.read()
        if not data:
            return
        position = len(data) // 2
        handle.seek(position)
        handle.write(bytes([data[position] ^ 0xFF]))


class injected:
    """Context manager arming faults for a ``with`` block::

        with faults.injected("parallel.task=error:2", state_dir):
            ...

    Restores the previous environment on exit.  *state_dir* is the
    cross-process fuse directory (required for pool runs; optional for
    in-process ones).
    """

    def __init__(self, spec, state_dir=None):
        parse_spec(spec)                      # validate eagerly
        self.spec = spec
        self.state_dir = state_dir
        self._saved = {}

    def __enter__(self):
        for name, value in ((ENV_SPEC, self.spec),
                            (ENV_STATE, self.state_dir)):
            self._saved[name] = os.environ.get(name)
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        return self

    def __exit__(self, *exc_info):
        for name, value in self._saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
