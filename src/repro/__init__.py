"""SYMBOL: instruction-level parallelism in Prolog.

A from-scratch reproduction of De Gloria & Faraboschi, *Instruction-level
Parallelism in Prolog: Analysis and Architectural Support* (ISCA 1992):
a BAM-style Prolog compiler, an intermediate-code emulator, a trace-
scheduling / superblock VLIW back-end, machine models including the
SYMBOL-3 VLSI prototype, and the full evaluation suite.

Typical use::

    import repro

    program = repro.compile_prolog('''
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
        main :- app([1,2], [3], X), write(X), nl.
    ''')
    result = repro.emulate(program)
    assert result.succeeded and result.output == "[1,2,3]\\n"

    speedup = repro.measure_speedup(program, repro.vliw(3))

The experiment harness lives in :mod:`repro.experiments` (one module per
paper table/figure) and the benchmark suite in :mod:`repro.benchmarks`.
"""

from repro.bam import compile_source, compile_database, CompileError, \
    CompilerOptions
from repro.intcode import translate_module, optimize_program
from repro.emulator import run_program, Emulator, EmulationResult, \
    DebugMachine
from repro.interp import Engine, Database
from repro.compaction import (
    MachineConfig, sequential, bam_like, vliw, ideal, symbol3,
    symbol3_sequential)
from repro.evaluation import (
    basic_block_regions, superblock_regions, machine_cycles,
    evaluate_benchmark, EvaluationEngine, EvaluationError)

__version__ = "1.0.0"


def compile_prolog(source, entry=("main", 0), optimize=False):
    """Compile Prolog source text to an executable ICI program.

    ``optimize=True`` runs the block-local clean-up passes (copy
    propagation, constant reuse, dead-move elimination).  The paper's
    evaluation numbers are measured on unoptimised code, so that is the
    default.
    """
    program = translate_module(compile_source(source, entry))
    if optimize:
        program, _ = optimize_program(program)
    return program


def emulate(program, max_steps=500_000_000):
    """Run an ICI program on the sequential emulator."""
    return run_program(program, max_steps=max_steps)


def measure_speedup(program, config, baseline=None, regioning="trace",
                    tail_dup_budget=48):
    """Speedup of *config* over the sequential baseline for *program*.

    Profiles the program, forms regions (``"trace"`` superblocks or
    ``"bb"`` basic blocks), schedules, and replays the profile through
    both schedules.
    """
    baseline = baseline if baseline is not None else sequential()
    result = emulate(program)
    base_regions = basic_block_regions(program, result)
    if regioning == "trace":
        target_regions = superblock_regions(program, result,
                                            tail_dup_budget)
    else:
        target_regions = base_regions
    base_cycles = machine_cycles(base_regions, baseline)
    target_cycles = machine_cycles(target_regions, config)
    return base_cycles / target_cycles


__all__ = [
    "compile_prolog",
    "emulate",
    "measure_speedup",
    "compile_source",
    "compile_database",
    "CompileError",
    "CompilerOptions",
    "DebugMachine",
    "translate_module",
    "optimize_program",
    "run_program",
    "Emulator",
    "EmulationResult",
    "Engine",
    "Database",
    "MachineConfig",
    "sequential",
    "bam_like",
    "vliw",
    "ideal",
    "symbol3",
    "symbol3_sequential",
    "basic_block_regions",
    "superblock_regions",
    "machine_cycles",
    "evaluate_benchmark",
    "EvaluationEngine",
    "EvaluationError",
    "__version__",
]
