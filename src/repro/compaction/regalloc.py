"""Register pressure analysis and linear-scan binding.

The SYMBOL prototype has a 16-register bank with "no reserved registers
(apart from the Program Counter)", so "the code generator is free to
decide where to store a variable" (section 5.2).  ICIs, by design, name
unboundedly many virtual registers; this module measures what that
freedom costs: given a region's schedule, it computes live intervals,
peak pressure (MAXLIVE), and a greedy linear-scan binding onto a bank of
``k`` registers, counting the values that would have to spill.

Interface registers — the abstract machine state (H, E, B, ...) and the
argument/linkage registers live across region boundaries — are treated as
*reserved*: they occupy bank slots for the whole region, exactly the
pressure a real allocator for this compiler would face.
"""

from repro.intcode import layout

#: registers with cross-region lifetimes (always live, bank-resident)
INTERFACE_PREFIXES = ("a",)
INTERFACE_REGS = set(layout.MACHINE_REGISTERS) | {"B0", "u0", "u1", "EQR"}


def is_interface(name):
    if name in INTERFACE_REGS:
        return True
    return (name[0] in ("a",) and name[1:].isdigit())


class Interval:
    """Live range of one local virtual register within a region."""

    __slots__ = ("reg", "start", "end")

    def __init__(self, reg, start, end):
        self.reg = reg
        self.start = start
        self.end = end

    @property
    def length(self):
        return self.end - self.start + 1

    def __repr__(self):
        return "Interval(%s, [%d,%d])" % (self.reg, self.start, self.end)


class Allocation:
    """A concrete binding of one region's values onto a register bank.

    * ``assignment`` — local virtual register -> physical index;
    * ``spilled``    — locals that did not fit (stack-resident);
    * ``reserved``   — interface register -> pinned physical index;
    * ``bank_size``  — the bank the binding targets.

    The independent checker (:func:`repro.analysis.verify.
    check_allocation`) validates that no two simultaneously-live values
    share a physical register.
    """

    __slots__ = ("assignment", "spilled", "reserved", "bank_size")

    def __init__(self, assignment, spilled, reserved, bank_size):
        self.assignment = assignment
        self.spilled = spilled
        self.reserved = reserved
        self.bank_size = bank_size

    @property
    def spill_count(self):
        return len(self.spilled)

    def __repr__(self):
        return ("Allocation(bank=%d, placed=%d, spilled=%d, reserved=%d)"
                % (self.bank_size, len(self.assignment),
                   len(self.spilled), len(self.reserved)))


class PressureReport:
    """Pressure and allocation summary for one scheduled region."""

    def __init__(self, intervals, reserved, length):
        self.intervals = intervals
        self.reserved = reserved          # interface registers seen
        self.length = length

    @property
    def max_live(self):
        """Peak simultaneous live values (locals + reserved)."""
        if self.length == 0:
            return len(self.reserved)
        deltas = [0] * (self.length + 1)
        for interval in self.intervals:
            deltas[interval.start] += 1
            deltas[interval.end + 1 if interval.end + 1 <= self.length
                   else self.length] -= 1
        live = 0
        peak = 0
        for cycle in range(self.length):
            live += deltas[cycle]
            if live > peak:
                peak = live
        return peak + len(self.reserved)

    def spills_for(self, bank_size):
        """Linear-scan allocation: values that do not fit in the bank.

        Reserved registers are pinned; locals compete for the rest.
        Returns the number of spilled intervals.
        """
        available = bank_size - len(self.reserved)
        if available < 0:
            # Even the machine state exceeds the bank: everything local
            # spills, plus the shortfall is unrepresentable.
            return len(self.intervals) + (-available)
        active = []                      # end cycles of bank-resident
        spills = 0
        for interval in sorted(self.intervals, key=lambda i: i.start):
            active = [end for end in active if end >= interval.start]
            if len(active) < available:
                active.append(interval.end)
            else:
                # Spill the interval ending furthest away.
                active.sort()
                if active and active[-1] > interval.end:
                    active[-1] = interval.end
                spills += 1
        return spills

    def allocate(self, bank_size):
        """Concrete linear-scan binding onto a *bank_size* bank.

        Same policy as :meth:`spills_for` (interface registers pinned,
        furthest-end eviction), but returns the actual
        :class:`Allocation` so an independent checker can validate the
        binding.  ``allocation.spill_count == spills_for(bank_size)``
        whenever the machine state itself fits the bank.
        """
        reserved = {name: index
                    for index, name in enumerate(sorted(self.reserved))}
        assignment = {}
        spilled = set()
        available = bank_size - len(reserved)
        if available <= 0:
            spilled.update(interval.reg for interval in self.intervals)
            return Allocation(assignment, spilled, reserved, bank_size)
        free = list(range(len(reserved), bank_size))
        active = []                      # (end, phys, reg), bank-resident
        for interval in sorted(self.intervals, key=lambda i: i.start):
            expired = [entry for entry in active
                       if entry[0] < interval.start]
            active = [entry for entry in active
                      if entry[0] >= interval.start]
            for end, phys, reg in expired:
                free.append(phys)
            if free:
                free.sort()
                phys = free.pop(0)
                assignment[interval.reg] = phys
                active.append((interval.end, phys, interval.reg))
            else:
                # Spill the interval ending furthest away.
                active.sort()
                if active and active[-1][0] > interval.end:
                    end, phys, reg = active.pop()
                    assignment.pop(reg, None)
                    spilled.add(reg)
                    assignment[interval.reg] = phys
                    active.append((interval.end, phys, interval.reg))
                else:
                    spilled.add(interval.reg)
        return Allocation(assignment, spilled, reserved, bank_size)


def region_pressure(instructions, schedule):
    """Build the :class:`PressureReport` of a scheduled region."""
    cycles = schedule.cycles
    first_def = {}
    last_use = {}
    reserved = set()

    for index, instruction in enumerate(instructions):
        cycle = cycles[index]
        for reg in instruction.writes():
            if is_interface(reg):
                reserved.add(reg)
                continue
            if reg not in first_def or cycle < first_def[reg]:
                first_def[reg] = cycle
            duration = schedule.config.duration(instruction.op)
            end = cycle + duration - 1
            if reg not in last_use or end > last_use[reg]:
                last_use[reg] = end
        for reg in instruction.reads():
            if is_interface(reg):
                reserved.add(reg)
                continue
            if reg not in first_def:
                # Live-in local (defined upstream in the region's past or
                # a scheduling artefact): live from region start.
                first_def[reg] = 0
            if reg not in last_use or cycle > last_use[reg]:
                last_use[reg] = cycle

    intervals = [Interval(reg, first_def[reg],
                          max(last_use.get(reg, first_def[reg]),
                              first_def[reg]))
                 for reg in first_def]
    return PressureReport(intervals, reserved, schedule.length)
