"""Region scheduling: greedy list scheduling onto a machine model.

The code generator follows the Bottom-Up-Greedy spirit (section 3.2):
operations are picked by critical-path priority; functional units are
chosen by estimated completion cycle, preferring the unit that already
holds an operand when inter-unit communication has a cost; resource
feasibility covers the shared memory port, per-unit slot classes and the
prototype's two instruction formats.

A :class:`Schedule` knows the issue cycle of every operation, so the
timing replay can charge each dynamic region exit its exact cost.
"""

import heapq

from repro.intcode.ici import OP_CLASS, CONTROL_OPS, MEM, ALU, MOVE, CTRL
from repro.analysis.dependence import build_dag


class Schedule:
    """The static schedule of one region."""

    def __init__(self, instructions, cycles, config, units=None):
        self.instructions = instructions
        self.cycles = cycles
        self.config = config
        self.units = units
        self.length = (max(cycles) + 1) if cycles else 0

    def exit_cost(self, position):
        """Cycles consumed when the region is exited by the control
        operation at *position* (issue cycle + transfer penalty)."""
        return self.cycles[position] + 1 + self.config.taken_cost()

    @property
    def fall_through_cost(self):
        """Cycles consumed when execution falls off the region's end."""
        return self.length

    def utilisation(self):
        """Operations per cycle actually achieved."""
        return len(self.instructions) / self.length if self.length else 0.0


def _durations(instructions, config):
    return [config.duration(i.op) for i in instructions]


def schedule_region(instructions, config, off_live=None, reg_mask=None,
                    live_out=None, pruned=None):
    """Schedule one region's operations under *config*.

    ``off_live``/``reg_mask`` enable the off-live speculation rule for
    multi-block regions (see :mod:`repro.analysis.dependence`).

    With ``config.analysis_prune`` the dataflow analyses feed the DAG:
    must-not-alias memory pairs stay unordered and the WAW edge into a
    provably dead write (requires ``live_out``, the register bitmask
    live at the region's fall-through end) is dropped.  Every pruned
    edge is appended to *pruned* (when a list is given) as
    ``(kind, pred, index)`` for the independent verifier.
    """
    if not instructions:
        return Schedule(instructions, [], config)
    durations = _durations(instructions, config)
    independence = None
    dead = None
    if config.analysis_prune:
        from repro.analysis.dataflow import (
            RegionMemoryFacts, region_dead_writes)
        independence = RegionMemoryFacts(instructions)
        dead = region_dead_writes(instructions, live_out, off_live,
                                  reg_mask)
    if not config.speculation and off_live is None:
        # Forbid any motion above branches: every register is off-live.
        off_live = {i: -1 for i, ins in enumerate(instructions)
                    if ins.op in CONTROL_OPS}
        reg_mask = lambda name: 1
    dag = build_dag(instructions, durations, off_live, reg_mask,
                    config.branch_branch_latency,
                    config.bank_disambiguation,
                    independence=independence, dead=dead, pruned=pruned)
    if config.in_order:
        return _schedule_in_order(instructions, durations, config, dag)
    return _schedule_greedy(instructions, durations, config, dag)


def _schedule_in_order(instructions, durations, config, dag):
    """Single-issue, original order, interlock stalls (the sequential
    reference machine)."""
    cycles = [0] * len(instructions)
    clock = 0
    for index in range(len(instructions)):
        earliest = clock
        for pred, latency in dag.preds[index]:
            ready = cycles[pred] + latency
            if ready > earliest:
                earliest = ready
        cycles[index] = earliest
        clock = earliest + 1
    return Schedule(instructions, cycles, config)


def _schedule_greedy(instructions, durations, config, dag):
    n = len(instructions)
    heights = dag.heights(lambda i: durations[i])
    indegree = [len(dag.preds[i]) for i in range(n)]
    earliest = [0] * n
    cycles = [None] * n
    units = [0] * n

    heap = []
    for index in range(n):
        if indegree[index] == 0:
            heapq.heappush(heap, (-heights[index], index))

    penalty = config.inter_unit_penalty
    scheduled = 0
    clock = 0
    while scheduled < n:
        class_counts = {MEM: 0, ALU: 0, MOVE: 0, CTRL: 0}
        unit_usage = {}
        placed_in_cycle = False
        # Zero-latency edges (branch chains under multiway issue, WAR,
        # issue-order) allow producer and consumer in the same cycle, so
        # keep sweeping the ready set until a fixpoint for this cycle.
        while True:
            candidates = []
            deferred = []
            while heap:
                priority, index = heapq.heappop(heap)
                if earliest[index] <= clock:
                    candidates.append((priority, index))
                else:
                    deferred.append((priority, index))
            for item in deferred:
                heapq.heappush(heap, item)

            placed_in_sweep = False
            for priority, index in candidates:
                op_class = OP_CLASS[instructions[index].op]
                class_counts[op_class] += 1
                if not config.slots_feasible(class_counts):
                    class_counts[op_class] -= 1
                    heapq.heappush(heap, (priority, index))
                    continue
                unit = 0
                if penalty:
                    unit = _pick_unit(instructions, dag, cycles, units,
                                      durations, index, clock, config,
                                      unit_usage, op_class)
                    if unit is None:
                        class_counts[op_class] -= 1
                        heapq.heappush(heap, (priority, index))
                        continue
                    unit_usage[(unit, op_class)] = True
                cycles[index] = clock
                units[index] = unit
                scheduled += 1
                placed_in_sweep = True
                placed_in_cycle = True
                for succ, latency in dag.succs[index]:
                    ready = clock + latency
                    if ready > earliest[succ]:
                        earliest[succ] = ready
                    indegree[succ] -= 1
                    if indegree[succ] == 0:
                        heapq.heappush(heap, (-heights[succ], succ))
            if not placed_in_sweep:
                break
        clock += 1
        if not placed_in_cycle and heap:
            # Nothing could issue: jump to the next readiness time.
            next_ready = min(earliest[i] for _, i in heap)
            if next_ready > clock:
                clock = next_ready
    return Schedule(instructions, cycles, config, units)


def _pick_unit(instructions, dag, cycles, units, durations, index, clock,
               config, unit_usage, op_class):
    """BUG-style unit choice: the unit where the operation can start at
    this cycle, preferring one that already holds an operand."""
    penalty = config.inter_unit_penalty
    preferred = []
    for pred, latency in dag.preds[index]:
        if cycles[pred] is not None and latency > 0:
            preferred.append(units[pred])
    order = preferred + [u for u in range(config.n_units)
                         if u not in preferred]
    for unit in order:
        if unit >= config.n_units or unit_usage.get((unit, op_class)):
            continue
        start = 0
        for pred, latency in dag.preds[index]:
            if latency <= 0 or cycles[pred] is None:
                continue
            ready = cycles[pred] + latency
            if units[pred] != unit:
                ready += penalty
            if ready > start:
                start = ready
        if start <= clock:
            return unit
    return None
