"""Code layout transformation: traces to single-entry regions.

Rewrites an ICI program so every trace is laid out contiguously with the
on-trace direction falling through (branches inverted where the trace
follows the taken edge, unconditional jumps along the trace deleted), and
side entrances into trace interiors redirected to duplicated tails
(superblock tail duplication — our bookkeeping variant of Trace
Scheduling's compensation code).

The transformed program is *semantically identical* to the original — the
test suite re-executes it and compares status and output — and is executed
once more by the sequential emulator to obtain exact per-region entry and
exit counts for the timing replay.
"""

from repro.intcode.ici import Ici
from repro.intcode.program import Program
from repro.analysis.cfg import Cfg
from repro.compaction.trace import pick_traces, interior_joins

_INVERT = {
    "btag": "bntag", "bntag": "btag",
    "beq": "bne", "bne": "beq",
    "bltv": "bgev", "bgev": "bltv",
    "blev": "bgtv", "bgtv": "blev",
}


class Region:
    """A contiguous single-entry scheduling region in the new program."""

    __slots__ = ("start", "end", "is_dup")

    def __init__(self, start, end, is_dup=False):
        self.start = start
        self.end = end
        self.is_dup = is_dup

    @property
    def size(self):
        return self.end - self.start

    def __repr__(self):
        return "Region([%d,%d)%s)" % (self.start, self.end,
                                      " dup" if self.is_dup else "")


class TransformResult:
    """The superblock-formed program plus its region table."""

    def __init__(self, program, regions, duplicated_ops):
        self.program = program
        self.regions = regions
        self.duplicated_ops = duplicated_ops

    @property
    def code_growth(self):
        """Static code growth factor due to tail duplication."""
        original = len(self.program) - self.duplicated_ops
        return len(self.program) / original if original else 1.0


def _block_label(pc):
    return "B@%d" % pc


class _Layout:
    """Assembles the transformed instruction stream."""

    def __init__(self, cfg):
        self.cfg = cfg
        self.program = cfg.program
        self.instructions = []
        self.labels = {}
        self.regions = []
        self.duplicated_ops = 0

    def define_label(self, name):
        if name not in self.labels:
            self.labels[name] = len(self.instructions)

    def attach_block_labels(self, block, original_names=True):
        self.define_label(_block_label(block.start))
        if original_names:
            for name, target in self.program.labels.items():
                if target == block.start:
                    self.define_label(name)

    def emit_trace(self, trace, is_dup=False, attach_head=True):
        """Emit the blocks of *trace* contiguously; returns the Region."""
        start = len(self.instructions)
        blocks = trace if isinstance(trace, list) else trace.blocks
        if attach_head:
            self.attach_block_labels(blocks[0])
        instructions = self.program.instructions
        for position, block in enumerate(blocks):
            on_trace_next = blocks[position + 1].start \
                if position + 1 < len(blocks) else None
            body_end = block.end - 1
            terminator = instructions[body_end]
            if terminator.is_control:
                for pc in range(block.start, body_end):
                    self.instructions.append(instructions[pc])
                self._emit_terminator(block, terminator, on_trace_next)
            else:
                for pc in range(block.start, block.end):
                    self.instructions.append(instructions[pc])
                # Fall-through block: make the transfer explicit when the
                # successor is not laid out next.
                succ = block.succs[0] if block.succs else None
                if succ is not None and succ != on_trace_next:
                    self.instructions.append(
                        Ici("jmp", label=_block_label(succ)))
        end = len(self.instructions)
        region = Region(start, end, is_dup)
        self.regions.append(region)
        if is_dup:
            self.duplicated_ops += end - start
        return region

    def _emit_terminator(self, block, terminator, on_trace_next):
        if terminator.is_branch:
            taken_target = self.program.labels[terminator.label]
            fall_target = block.succs[1] if len(block.succs) > 1 else None
            if on_trace_next is not None and on_trace_next == taken_target \
                    and on_trace_next != fall_target:
                # Trace follows the taken edge: invert so it falls through.
                inverted = Ici(_INVERT[terminator.op],
                               ra=terminator.ra, rb=terminator.rb,
                               tag=terminator.tag,
                               label=_block_label(fall_target))
                self.instructions.append(inverted)
            else:
                self.instructions.append(
                    Ici(terminator.op, ra=terminator.ra, rb=terminator.rb,
                        tag=terminator.tag,
                        label=_block_label(taken_target)))
                if fall_target is not None and fall_target != on_trace_next:
                    self.instructions.append(
                        Ici("jmp", label=_block_label(fall_target)))
        elif terminator.op == "jmp":
            target = self.program.labels[terminator.label]
            if target == on_trace_next:
                pass  # redundant along the trace: deleted
            else:
                self.instructions.append(
                    Ici("jmp", label=_block_label(target)))
        else:
            # call / jmpr / halt: keep verbatim (call labels are symbolic
            # and resolved against the new label table).
            self.instructions.append(terminator)


def _call_return_pc(program, blocks):
    """If the trace's last block ends in ``call``, the original pc the
    callee will return to (the instruction after the call)."""
    last = blocks[-1]
    if program.instructions[last.end - 1].op == "call":
        return last.end
    return None


def form_superblocks(program, counts, taken, tail_dup_budget=48):
    """Transform *program* into superblock form using its profile.

    A ``call`` links to the *new* pc following it, so the region holding a
    call's return point must be laid out immediately after the call.  The
    emitter therefore chains each trace with its return trace; when the
    return trace was already placed (a predicate called from several
    duplicated sites), a one-instruction ``jmp`` stub restores control —
    honest compensation-code cost on the duplicated path.
    """
    cfg = Cfg(program)
    traces = pick_traces(cfg, counts, taken, tail_dup_budget)
    layout = _Layout(cfg)

    head_trace = {trace.head.start: trace for trace in traces}
    return_heads = set()
    for trace in traces:
        ret = _call_return_pc(program, trace.blocks)
        if ret is not None and ret in head_trace:
            return_heads.add(ret)

    emitted = set()
    pending_dups = []

    def emit_chain(trace):
        while True:
            layout.emit_trace(trace)
            emitted.add(trace.head.start)
            for join in interior_joins(cfg, trace):
                pending_dups.append(trace.blocks[join:])
            ret = _call_return_pc(program, trace.blocks)
            if ret is None:
                return
            next_trace = head_trace.get(ret)
            if next_trace is not None and ret not in emitted:
                trace = next_trace
                continue
            # Return point already placed elsewhere: bridge with a stub.
            start = len(layout.instructions)
            layout.instructions.append(
                Ici("jmp", label=_block_label(ret)))
            layout.regions.append(Region(start, start + 1))
            return

    for trace in traces:
        if trace.head.start in emitted or trace.head.start in return_heads:
            continue
        emit_chain(trace)
    for trace in traces:
        # Return traces whose caller chain was cut short by a stub.
        if trace.head.start not in emitted:
            emit_chain(trace)

    for blocks in pending_dups:
        # Side entrances land on a duplicate of the tail; the joined
        # block's labels resolve to the duplicate's head.
        layout.emit_trace(blocks, is_dup=True)
        ret = _call_return_pc(program, blocks)
        if ret is not None:
            start = len(layout.instructions)
            layout.instructions.append(
                Ici("jmp", label=_block_label(ret)))
            layout.regions.append(Region(start, start + 1, is_dup=True))
            layout.duplicated_ops += 1

    new_program = Program(layout.instructions, layout.labels,
                          program.symbols, program.entry)
    for instruction in layout.instructions:
        if instruction.label is not None \
                and instruction.label not in layout.labels:
            raise AssertionError("transform lost label %r"
                                 % instruction.label)
    return TransformResult(new_program, layout.regions,
                           layout.duplicated_ops)
