"""Compaction back-end: machine models, trace picking, scheduling."""

from repro.compaction.machine_model import (
    MachineConfig, sequential, bam_like, vliw, ideal, symbol3,
    symbol3_sequential)
from repro.compaction.trace import Trace, pick_traces, edge_counts, \
    interior_joins
from repro.compaction.transform import (
    form_superblocks, TransformResult, Region)
from repro.compaction.scheduler import Schedule, schedule_region
from repro.compaction.regalloc import (
    PressureReport, Allocation, region_pressure, is_interface)

__all__ = [
    "PressureReport",
    "Allocation",
    "region_pressure",
    "is_interface",
    "MachineConfig",
    "sequential",
    "bam_like",
    "vliw",
    "ideal",
    "symbol3",
    "symbol3_sequential",
    "Trace",
    "pick_traces",
    "edge_counts",
    "interior_joins",
    "form_superblocks",
    "TransformResult",
    "Region",
    "Schedule",
    "schedule_region",
]
