"""Machine models: the architecture family of Figure 5 plus baselines.

All models are *parallel synchronous non-homogeneous architectures* in the
paper's sense: one program counter, several functional units, statically
predictable operation times, one instruction issued per cycle.  Each basic
unit "can execute in the same cycle a memory access, a control operation,
an ALU operation and a local data movement"; memory is shared, so the
whole machine issues at most ``mem_ports`` memory operations per cycle —
the resource that Amdahl's law says bounds the speedup near 3.

Baselines:

* ``sequential()`` — one operation per cycle, original order, interlock
  stalls, untaken-branch-style penalties on every taken transfer.
* ``bam_like()`` — the BAM processor stand-in: still one operation per
  cycle but basic-block scheduled (stall filling) with one delay slot
  filled, matching the paper's observation that the BAM sits near the
  basic-block compaction limit.

The SYMBOL-3 prototype (section 5) adds the two 64-bit instruction
formats (format A: memory+ALU+move, format B: control+memory) and the
three-cycle memory and control pipelines.
"""

from repro.intcode.ici import OP_CLASS, MEM, ALU, MOVE, CTRL


class MachineConfig:
    """A point in the architecture space."""

    def __init__(self, name, n_units, mem_ports=1, mem_latency=2,
                 ctrl_latency=2, alu_latency=1, move_latency=1,
                 issue_width=None, multiway=True, delay_slots_filled=1,
                 formats=None, in_order=False, inter_unit_penalty=0,
                 speculation=True, bank_disambiguation=False,
                 analysis_prune=False):
        self.name = name
        self.n_units = n_units
        self.mem_ports = mem_ports
        self.latencies = {MEM: mem_latency, CTRL: ctrl_latency,
                          ALU: alu_latency, MOVE: move_latency}
        #: total operations issued per cycle (None = slot-limited only)
        self.issue_width = issue_width
        #: may several branches issue in one cycle (priority-resolved)?
        self.multiway = multiway
        #: delay slots assumed filled on a taken transfer
        self.delay_slots_filled = delay_slots_filled
        #: None, or "prototype" for the 2-format SYMBOL encoding
        self.formats = formats
        #: original program order (no compaction at all)
        self.in_order = in_order
        #: extra cycles to read an operand produced on another unit
        self.inter_unit_penalty = inter_unit_penalty
        #: allow upward code motion past branches (off-live-checked)
        self.speculation = speculation
        #: treat statically-distinct data areas as independent memory
        #: banks (section 6's distributed-memory direction; off in the
        #: paper's shared-memory model)
        self.bank_disambiguation = bank_disambiguation
        #: feed the dataflow analyses into the scheduler: must-not-alias
        #: memory pairs are left unordered and the WAW edge into a dead
        #: write is dropped.  Every pruned edge is cross-checked by the
        #: independent verifier; off by default so the paper's
        #: conservative no-disambiguation stance (section 4.1) holds.
        self.analysis_prune = analysis_prune

    def duration(self, op):
        return self.latencies[OP_CLASS[op]]

    @property
    def branch_branch_latency(self):
        return 0 if self.multiway else 1

    def taken_cost(self):
        """Extra cycles charged when control transfers off the fall-through
        path: pipeline refill minus filled delay slots."""
        penalty = self.latencies[CTRL] - 1 - self.delay_slots_filled
        return max(penalty, 0)

    def slots_feasible(self, class_counts):
        """Can this cycle's operation mix issue together?"""
        mem = class_counts.get(MEM, 0)
        alu = class_counts.get(ALU, 0)
        move = class_counts.get(MOVE, 0)
        ctrl = class_counts.get(CTRL, 0)
        total = mem + alu + move + ctrl
        if self.issue_width is not None and total > self.issue_width:
            return False
        if mem > min(self.mem_ports, self.n_units):
            return False
        if alu > self.n_units or move > self.n_units:
            return False
        if ctrl > (self.n_units if self.multiway else 1):
            return False
        if self.formats == "prototype":
            # Each unit issues one instruction: format A (mem, ALU, move)
            # or format B (control or immediate, mem).  A feasible split
            # needs ctrl units for every control op and format-A units for
            # the widest of the ALU/move demands.
            if ctrl + max(alu, move) > self.n_units:
                return False
        return True

    def __repr__(self):
        return "MachineConfig(%r, units=%d)" % (self.name, self.n_units)


def sequential():
    """The pure sequential reference machine of Tables 1/3."""
    return MachineConfig("seq", n_units=1, issue_width=1, multiway=False,
                         delay_slots_filled=0, in_order=True,
                         speculation=False)


def bam_like():
    """The BAM processor stand-in: one unit whose instruction set packs
    some parallelism (the BAM's compound instructions), basic-block
    scheduled with filled delay slots.  The paper observes the BAM sits
    "very close to the limit of basic blocks" — this model reproduces
    that structural relationship."""
    return MachineConfig("bam", n_units=1, multiway=False,
                         delay_slots_filled=1, speculation=False)


def vliw(n_units, name=None, **overrides):
    """An n-unit configuration of the Figure 5 architecture."""
    return MachineConfig(name or ("vliw%d" % n_units), n_units=n_units,
                         **overrides)


def ideal(name="ideal"):
    """Unbounded units (64 is past any region's width); only the shared
    memory port constrains issue.  Used for the Table 1 concurrency
    limits."""
    return MachineConfig(name, n_units=64)


def symbol3(n_units=3):
    """The VLSI prototype: two instruction formats, 3-cycle memory and
    control pipelines, two squashed delay cycles on taken jumps."""
    return MachineConfig("symbol%d" % n_units, n_units=n_units,
                         mem_latency=3, ctrl_latency=3,
                         delay_slots_filled=0, formats="prototype")


def symbol3_sequential():
    """Sequential machine under the prototype's operation durations
    (the Table 5 comparison baseline)."""
    return MachineConfig("symbol-seq", n_units=1, issue_width=1,
                         mem_latency=3, ctrl_latency=3, multiway=False,
                         delay_slots_filled=0, in_order=True,
                         speculation=False)
