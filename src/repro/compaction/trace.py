"""Trace picking.

"Trace choice is based on the statistical information about execution
frequency extracted by preliminary simulation" (section 3.1).  A trace is
grown forward from the hottest unassigned block, following the most
frequently executed successor edge, and stops at: an already-traced block,
a loop back into the trace, an indirect entry point (procedure entries,
retry addresses, return points — traces never cross calls or indirect
jumps), or a join whose tail duplication would exceed the budget.

The result partitions every basic block into exactly one trace.
"""


class Trace:
    """An ordered list of basic blocks forming one scheduling region."""

    __slots__ = ("blocks",)

    def __init__(self, blocks):
        self.blocks = blocks

    @property
    def head(self):
        return self.blocks[0]

    def __len__(self):
        return len(self.blocks)

    def __repr__(self):
        return "Trace(%r)" % [b.start for b in self.blocks]


def edge_counts(cfg, counts, taken):
    """Dynamic count of every CFG edge ``(src_start, dst_start)``."""
    edges = {}
    instructions = cfg.program.instructions
    for block in cfg.blocks:
        if not block.succs:
            continue
        terminator = instructions[block.end - 1]
        executed = counts[block.end - 1]
        if terminator.is_branch:
            taken_count = taken[block.end - 1]
            edges[(block.start, block.succs[0])] = taken_count
            if len(block.succs) > 1:
                edges[(block.start, block.succs[1])] = \
                    executed - taken_count
        else:
            edges[(block.start, block.succs[0])] = executed
    return edges


def pick_traces(cfg, counts, taken, tail_dup_budget=48):
    """Partition the CFG into traces using the dynamic profile.

    ``tail_dup_budget`` bounds the length (in operations) of a duplicated
    tail: absorbing a join block into a trace is only allowed while the
    tail that side entrances would need stays within the budget; larger
    joins start their own trace instead (section 4.3's guard against
    exponential growth of instruction copies).
    """
    edges = edge_counts(cfg, counts, taken)
    assigned = set()
    traces = []

    order = sorted(cfg.blocks,
                   key=lambda b: (-counts[b.start], b.start))
    for seed in order:
        if seed.start in assigned:
            continue
        blocks = [seed]
        assigned.add(seed.start)
        current = seed
        while True:
            best = None
            best_count = 0
            for succ in current.succs:
                count = edges.get((current.start, succ), 0)
                if count > best_count:
                    best, best_count = succ, count
            if best is None:
                break
            if best in assigned:
                break
            if best in cfg.indirect_entries:
                break
            candidate = cfg.block_at[best]
            has_side_entrance = any(p != current.start
                                    for p in cfg.predecessors(candidate))
            if has_side_entrance and candidate.size > tail_dup_budget:
                break
            blocks.append(candidate)
            assigned.add(candidate.start)
            current = candidate
        traces.append(Trace(blocks))

    _split_oversized_tails(cfg, traces, tail_dup_budget)
    return traces


def _split_oversized_tails(cfg, traces, budget):
    """Enforce the duplication budget exactly: any interior join whose
    tail (join..trace end) exceeds *budget* starts a new trace."""
    index = 0
    while index < len(traces):
        trace = traces[index]
        split_at = None
        for position in range(1, len(trace.blocks)):
            block = trace.blocks[position]
            prev = trace.blocks[position - 1]
            side = any(p != prev.start for p in cfg.predecessors(block))
            if not side:
                continue
            tail_ops = sum(b.size for b in trace.blocks[position:])
            if tail_ops > budget:
                split_at = position
                break
        if split_at is None:
            index += 1
            continue
        suffix = Trace(trace.blocks[split_at:])
        trace.blocks = trace.blocks[:split_at]
        traces.insert(index + 1, suffix)
        index += 1


def interior_joins(cfg, trace):
    """Positions of interior blocks with side entrances (these need a
    duplicated tail so the trace has a single entry)."""
    joins = []
    for position in range(1, len(trace.blocks)):
        block = trace.blocks[position]
        prev = trace.blocks[position - 1]
        if any(p != prev.start for p in cfg.predecessors(block)):
            joins.append(position)
    return joins
