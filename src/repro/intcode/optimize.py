"""Local ICI optimisation passes.

The translator deliberately emits naive code ("we avoid all optimizations
which are delayed to the back-end compiler", section 3.1).  This module
is that delayed clean-up: classical block-local passes that remove the
redundancy the mechanical expansion leaves behind —

* **copy propagation** — uses of ``rd`` after ``mov rd, rs`` read ``rs``
  directly while both stay unchanged;
* **constant-load reuse** — a repeated ``ldi`` of the same word within a
  block reuses the earlier register;
* **dead-move elimination** — ``mov``/``ldi`` results never read before
  redefinition and not live out of the block are dropped.

All passes preserve labels (only whole instructions at non-label-target
positions are removed) and are verified semantics-preserving by the test
suite's differential checks.
"""

from repro.intcode.ici import Ici
from repro.intcode.program import Program
from repro.analysis.cfg import Cfg
from repro.analysis.liveness import Liveness


class OptimizeStats:
    def __init__(self):
        self.copies_propagated = 0
        self.constants_reused = 0
        self.dead_removed = 0

    def __repr__(self):
        return ("OptimizeStats(propagated=%d, reused=%d, removed=%d)"
                % (self.copies_propagated, self.constants_reused,
                   self.dead_removed))


def _substitute(instruction, mapping):
    """Rewrite source registers of *instruction* through *mapping*."""
    ra = mapping.get(instruction.ra, instruction.ra)
    rb = mapping.get(instruction.rb, instruction.rb)
    if ra == instruction.ra and rb == instruction.rb:
        return instruction, False
    return Ici(instruction.op, rd=instruction.rd, ra=ra, rb=rb,
               imm=instruction.imm, tag=instruction.tag,
               label=instruction.label, esc=instruction.esc), True


def _propagate_block(instructions, stats):
    """Copy propagation + constant reuse over one block (in place)."""
    copies = {}          # rd -> rs currently valid
    constants = {}       # (imm, label) -> register holding it
    for index, instruction in enumerate(instructions):
        new, changed = _substitute(instruction, copies)
        if changed:
            instructions[index] = new
            stats.copies_propagated += 1
            instruction = new

        written = instruction.writes()
        # Invalidate facts about overwritten registers.
        for reg in written:
            copies.pop(reg, None)
            for src_reg in [k for k, v in copies.items() if v == reg]:
                copies.pop(src_reg)
            for key in [k for k, v in constants.items() if v == reg]:
                constants.pop(key)

        if instruction.op == "mov":
            copies[instruction.rd] = instruction.ra
        elif instruction.op == "ldi":
            key = (instruction.imm, instruction.label)
            holder = constants.get(key)
            if holder is not None and holder != instruction.rd:
                # Keep the ldi (its target may be live), but remember the
                # copy so later uses read the earlier register... actually
                # rewriting to a mov lets dead-code remove it entirely.
                instructions[index] = Ici("mov", rd=instruction.rd,
                                          ra=holder)
                copies[instruction.rd] = holder
                stats.constants_reused += 1
            else:
                constants[key] = instruction.rd


def _dead_moves_block(instructions, live_out_names, stats):
    """Drop mov/ldi whose result is never used (returns kept list)."""
    needed = set(live_out_names)
    keep = [True] * len(instructions)
    for index in range(len(instructions) - 1, -1, -1):
        instruction = instructions[index]
        written = instruction.writes()
        if instruction.op == "mov" and instruction.rd == instruction.ra:
            keep[index] = False          # identity move
            stats.dead_removed += 1
            continue
        if instruction.op in ("mov", "ldi") and written \
                and written[0] not in needed:
            keep[index] = False
            stats.dead_removed += 1
            continue
        for reg in written:
            needed.discard(reg)
        for reg in instruction.reads():
            needed.add(reg)
    return [ins for ins, k in zip(instructions, keep) if k]


def optimize_program(program, dead_code=True):
    """Apply the local passes; returns ``(new_program, stats)``."""
    cfg = Cfg(program)
    liveness = Liveness(cfg) if dead_code else None
    stats = OptimizeStats()

    id_to_name = {}
    if liveness is not None:
        id_to_name = {index: name
                      for name, index in liveness.reg_ids.items()}

    new_instructions = []
    new_labels = {}
    label_targets = {}
    for name, target in program.labels.items():
        label_targets.setdefault(target, []).append(name)

    referenced = {ins.label for ins in program.instructions
                  if ins.label is not None}

    for block in cfg.blocks:
        block_ops = list(program.instructions[block.start:block.end])
        _propagate_block(block_ops, stats)
        if liveness is not None:
            out_mask = liveness.live_out[block.start]
            live_names = [id_to_name[i]
                          for i in range(out_mask.bit_length())
                          if out_mask >> i & 1]
            block_ops = _dead_moves_block(block_ops, live_names, stats)
        new_start = len(new_instructions)
        for name in label_targets.get(block.start, []):
            new_labels[name] = new_start
        new_instructions.extend(block_ops)

    # Labels must only have pointed at block starts (anything else would
    # now be unanchored); verify nothing referenced was lost.
    for name in referenced:
        if name not in new_labels:
            raise AssertionError("optimisation lost label %r" % name)
    if program.entry not in new_labels:
        new_labels[program.entry] = program.entry_pc

    return Program(new_instructions, new_labels, program.symbols,
                   program.entry), stats
