"""BAM to ICI translation.

Expands every BAM instruction into a short sequence of primitive ICIs
(section 3.1 of the paper: "we avoid all optimizations which are delayed
to the back-end compiler. We only apply a variable renaming procedure in
order to eliminate redundant data-dependencies").  Renaming comes for free:
every intermediate value receives a fresh virtual register.

Safety note on variables: all logic variables are allocated as heap cells
(environment slots never hold unbound self-references), so values passed
in registers can never dangle into deallocated environment frames.  This
is the BAM convention and removes the WAM's unsafe-variable analysis.
"""

from repro.terms import tags
from repro.intcode.program import Builder
from repro.intcode import layout, runtime
from repro.bam import instructions as bam
from repro.bam.descriptors import DAtom, DInt, DVar, DList, DStruct


class TranslateError(Exception):
    pass


_ALU_OPS = {
    "+": "add", "-": "sub", "*": "mul", "//": "div", "/": "div",
    "mod": "mod", "rem": "mod", ">>": "sra", "<<": "sll",
    "/\\": "and", "\\/": "or", "xor": "xor",
}

#: arithmetic test -> branch op that jumps to $fail when the test FAILS
_INVERSE_TEST = {
    "<": "bgev", ">": "blev", "=<": "bgtv", ">=": "bltv",
    "=:=": "bne", "=\\=": "beq",
}


class ClauseContext:
    """Per-clause-body state: temporary-variable register assignment."""

    def __init__(self, builder):
        self.builder = builder
        self.temps = {}

    def temp_reg(self, index):
        reg = self.temps.get(index)
        if reg is None:
            reg = self.builder.fresh_reg()
            self.temps[index] = reg
        return reg


class Translator:
    """Translates a compiled BAM module into an executable ICI program."""

    def __init__(self, module):
        self.module = module
        self.b = Builder(module.symbols)
        self.ctx = None

    # -- variable access ---------------------------------------------------

    def _define_var(self, loc, src_reg):
        """Store the word in *src_reg* as the value of first-occurrence
        variable *loc*."""
        if loc.is_perm:
            self.b.st(src_reg, "E", layout.ENV_FIXED_SLOTS + loc.index)
        else:
            self.b.mov(self.ctx.temp_reg(loc.index), src_reg)

    def _fetch_var(self, loc):
        """Load the value of an already-defined variable into a register."""
        if loc.is_perm:
            reg = self.b.fresh_reg()
            self.b.ld(reg, "E", layout.ENV_FIXED_SLOTS + loc.index)
            return reg
        return self.ctx.temp_reg(loc.index)

    # -- term construction (write mode) --------------------------------------

    def _build(self, desc):
        """Emit code that materialises *desc*; returns the register
        holding the resulting word."""
        b = self.b
        if isinstance(desc, DAtom):
            reg = b.fresh_reg()
            b.ldi_atom(reg, desc.name)
            return reg
        if isinstance(desc, DInt):
            reg = b.fresh_reg()
            b.ldi_int(reg, desc.value)
            return reg
        if isinstance(desc, DVar):
            if desc.first:
                cell = b.fresh_reg()
                runtime.emit_new_unbound(b, cell)
                self._define_var(desc.loc, cell)
                return cell
            return self._fetch_var(desc.loc)
        if isinstance(desc, DList):
            head = self._build(desc.head)
            tail = self._build(desc.tail)
            b.st(head, "H", 0)
            b.st(tail, "H", 1)
            reg = b.fresh_reg()
            b.lea(reg, "H", 0, tags.TLST)
            b.lea("H", "H", 2, tags.TRAW)
            return reg
        if isinstance(desc, DStruct):
            args = [self._build(arg) for arg in desc.args]
            functor = b.fresh_reg()
            b.ldi_functor(functor, desc.name, desc.arity)
            b.st(functor, "H", 0)
            for index, arg in enumerate(args):
                b.st(arg, "H", 1 + index)
            reg = b.fresh_reg()
            b.lea(reg, "H", 0, tags.TSTR)
            b.lea("H", "H", 1 + desc.arity, tags.TRAW)
            return reg
        raise TranslateError("cannot build %r" % (desc,))

    # -- head unification (get) ----------------------------------------------

    def _get(self, desc, reg, derefed=False):
        """Unify the (clobberable) word in *reg* with *desc*."""
        b = self.b
        if isinstance(desc, DVar):
            if desc.first:
                self._define_var(desc.loc, reg)
            else:
                value = self._fetch_var(desc.loc)
                b.mov("u0", reg)
                b.mov("u1", value)
                b.call("$unify", link="RL")
            return
        if isinstance(desc, (DAtom, DInt)):
            const = b.fresh_reg()
            if isinstance(desc, DAtom):
                b.ldi_atom(const, desc.name)
            else:
                b.ldi_int(const, desc.value)
            if not derefed:
                runtime.emit_deref(b, reg)
            write = b.fresh_label("gc_w")
            ok = b.fresh_label("gc_ok")
            b.btag(reg, tags.TREF, write)
            b.branch("bne", reg, const, "$fail")
            b.jmp(ok)
            b.label(write)
            runtime.emit_bind(b, reg, const)
            b.label(ok)
            return
        if isinstance(desc, DList):
            if not derefed:
                runtime.emit_deref(b, reg)
            read = b.fresh_label("gl_r")
            ok = b.fresh_label("gl_ok")
            b.btag(reg, tags.TLST, read)
            b.bntag(reg, tags.TREF, "$fail")
            word = self._build(desc)
            runtime.emit_bind(b, reg, word)
            b.jmp(ok)
            b.label(read)
            head = b.fresh_reg()
            b.ld(head, reg, 0)
            self._get(desc.head, head)
            tail = b.fresh_reg()
            b.ld(tail, reg, 1)
            self._get(desc.tail, tail)
            b.label(ok)
            return
        if isinstance(desc, DStruct):
            if not derefed:
                runtime.emit_deref(b, reg)
            read = b.fresh_label("gs_r")
            ok = b.fresh_label("gs_ok")
            b.btag(reg, tags.TSTR, read)
            b.bntag(reg, tags.TREF, "$fail")
            word = self._build(desc)
            runtime.emit_bind(b, reg, word)
            b.jmp(ok)
            b.label(read)
            fword = b.fresh_reg()
            fconst = b.fresh_reg()
            b.ld(fword, reg, 0)
            b.ldi_functor(fconst, desc.name, desc.arity)
            b.branch("bne", fword, fconst, "$fail")
            for index, arg in enumerate(desc.args):
                sub = b.fresh_reg()
                b.ld(sub, reg, 1 + index)
                self._get(arg, sub)
            b.label(ok)
            return
        raise TranslateError("cannot get %r" % (desc,))

    # -- argument construction (put) ------------------------------------------

    def _put(self, desc, reg):
        b = self.b
        if isinstance(desc, DVar) and not desc.first and not desc.loc.is_perm:
            b.mov(reg, self.ctx.temp_reg(desc.loc.index))
            return
        if isinstance(desc, DVar) and not desc.first and desc.loc.is_perm:
            b.ld(reg, "E", layout.ENV_FIXED_SLOTS + desc.loc.index)
            return
        b.mov(reg, self._build(desc))

    # -- arithmetic -------------------------------------------------------------

    def _eval(self, desc):
        """Evaluate an arithmetic expression descriptor; returns a register
        holding a TINT word (fails at runtime on non-integers)."""
        b = self.b
        if isinstance(desc, DInt):
            reg = b.fresh_reg()
            b.ldi_int(reg, desc.value)
            return reg
        if isinstance(desc, DVar):
            if desc.first:
                raise TranslateError("unbound variable in arithmetic")
            value = self._fetch_var(desc.loc)
            reg = b.fresh_reg()
            b.mov(reg, value)
            runtime.emit_deref(b, reg)
            b.bntag(reg, tags.TINT, "$fail")
            return reg
        if isinstance(desc, DStruct):
            if len(desc.args) == 1 and desc.name == "-":
                operand = self._eval(desc.args[0])
                zero = b.fresh_reg()
                b.ldi_int(zero, 0)
                reg = b.fresh_reg()
                b.alu("sub", reg, zero, rb=operand)
                return reg
            if len(desc.args) == 1 and desc.name == "+":
                return self._eval(desc.args[0])
            op = _ALU_OPS.get(desc.name)
            if op is None or len(desc.args) != 2:
                raise TranslateError(
                    "unsupported arithmetic %s/%d" % (desc.name,
                                                      len(desc.args)))
            left = self._eval(desc.args[0])
            right = self._eval(desc.args[1])
            reg = b.fresh_reg()
            b.alu(op, reg, left, rb=right)
            return reg
        raise TranslateError("cannot evaluate %r" % (desc,))

    # -- per-instruction dispatch ---------------------------------------------

    def _emit(self, instr):
        b = self.b
        if isinstance(instr, bam.Label):
            b.label(instr.name)
        elif isinstance(instr, bam.Jump):
            b.jmp(instr.label)
        elif isinstance(instr, bam.SetB0):
            b.mov("B0", "B")
        elif isinstance(instr, bam.DerefReg):
            runtime.emit_deref(b, instr.reg)
        elif isinstance(instr, bam.SwitchOnTag):
            for tag, label in instr.cases:
                b.btag(instr.reg, tag, label)
            b.jmp(instr.default)
        elif isinstance(instr, bam.SwitchOnConstant):
            for word, label in instr.cases:
                const = b.fresh_reg()
                b.ldi(const, word)
                b.branch("beq", instr.reg, const, label)
            b.jmp(instr.default)
        elif isinstance(instr, bam.SwitchOnFunctor):
            fword = b.fresh_reg()
            b.ld(fword, instr.reg, 0)
            for (name, arity), label in instr.cases:
                const = b.fresh_reg()
                b.ldi_functor(const, name, arity)
                b.branch("beq", fword, const, label)
            b.jmp(instr.default)
        elif isinstance(instr, bam.Try):
            self._emit_try(instr)
        elif isinstance(instr, bam.RetryStub):
            self._emit_retry(instr)
        elif isinstance(instr, bam.Allocate):
            protect = b.fresh_reg()
            ok = b.fresh_label("al_ok")
            b.ld(protect, "B", layout.CP_SAVED_ES)
            b.branch("bgev", "ES", protect, ok)
            b.mov("ES", protect)
            b.label(ok)
            b.st("E", "ES", layout.ENV_SAVED_E)
            b.st("CP", "ES", layout.ENV_SAVED_CP)
            b.mov("E", "ES")
            b.lea("ES", "ES", layout.ENV_FIXED_SLOTS + instr.nslots,
                  tags.TRAW)
        elif isinstance(instr, bam.Deallocate):
            b.ld("CP", "E", layout.ENV_SAVED_CP)
            b.mov("ES", "E")
            b.ld("E", "E", layout.ENV_SAVED_E)
        elif isinstance(instr, bam.StoreCutBarrier):
            b.st("B0", "E", layout.ENV_FIXED_SLOTS + instr.slot)
        elif isinstance(instr, bam.Cut):
            if instr.slot is None:
                b.mov("B", "B0")
            else:
                b.ld("B", "E", layout.ENV_FIXED_SLOTS + instr.slot)
            b.ld("BT", "B", layout.CP_SELF_TOP)
            b.ld("HB", "B", layout.CP_SAVED_H)
        elif isinstance(instr, bam.Get):
            self._get(instr.desc, instr.reg, instr.derefed)
        elif isinstance(instr, bam.Put):
            self._put(instr.desc, instr.reg)
        elif isinstance(instr, bam.UnifyVals):
            self._emit_unify_vals(instr.left, instr.right)
        elif isinstance(instr, bam.Arith):
            value = self._eval(instr.expr)
            if isinstance(instr.dst, DVar) and instr.dst.first:
                self._define_var(instr.dst.loc, value)
            else:
                b.mov("u0", self._build(instr.dst))
                b.mov("u1", value)
                b.call("$unify", link="RL")
        elif isinstance(instr, bam.ArithTest):
            left = self._eval(instr.left)
            right = self._eval(instr.right)
            b.branch(_INVERSE_TEST[instr.op], left, right, "$fail")
        elif isinstance(instr, bam.TypeTest):
            self._emit_type_test(instr)
        elif isinstance(instr, bam.StructEqTest):
            b.mov("u0", self._build(instr.left))
            b.mov("u1", self._build(instr.right))
            b.call("$equal", link="RL")
            one = b.fresh_reg()
            b.ldi_int(one, 1)
            op = "beq" if instr.negated else "bne"
            b.branch(op, "EQR", one, "$fail")
        elif isinstance(instr, bam.Call):
            b.call(bam.predicate_label(instr.name, instr.arity), link="CP")
        elif isinstance(instr, bam.Execute):
            b.jmp(bam.predicate_label(instr.name, instr.arity))
        elif isinstance(instr, bam.Proceed):
            b.jmpr("CP")
        elif isinstance(instr, bam.Escape):
            if instr.desc is not None:
                b.esc(instr.service, self._build(instr.desc))
            else:
                b.esc(instr.service)
        elif isinstance(instr, bam.FailInstr):
            b.jmp("$fail")
        else:
            raise TranslateError("unknown BAM instruction %r" % (instr,))

    def _emit_unify_vals(self, left, right):
        b = self.b
        if isinstance(left, DVar) and left.first:
            value = self._build(right)
            self._define_var(left.loc, value)
            return
        if isinstance(right, DVar) and right.first:
            value = self._build(left)
            self._define_var(right.loc, value)
            return
        b.mov("u0", self._build(left))
        b.mov("u1", self._build(right))
        b.call("$unify", link="RL")

    def _emit_type_test(self, instr):
        b = self.b
        reg = b.fresh_reg()
        b.mov(reg, self._build(instr.desc))
        runtime.emit_deref(b, reg)
        kind = instr.kind
        if kind == "var":
            b.bntag(reg, tags.TREF, "$fail")
        elif kind == "nonvar":
            b.btag(reg, tags.TREF, "$fail")
        elif kind == "atom":
            b.bntag(reg, tags.TATM, "$fail")
        elif kind == "integer":
            b.bntag(reg, tags.TINT, "$fail")
        elif kind == "atomic":
            b.btag(reg, tags.TREF, "$fail")
            b.btag(reg, tags.TLST, "$fail")
            b.btag(reg, tags.TSTR, "$fail")
        else:
            raise TranslateError("unknown type test %r" % kind)

    def _emit_try(self, instr):
        b = self.b
        size = layout.CP_FIXED_SLOTS + instr.arity
        b.st("B", "BT", layout.CP_PREV_B)
        top = b.fresh_reg()
        b.lea(top, "BT", size, tags.TRAW)
        b.st(top, "BT", layout.CP_SELF_TOP)
        b.st("E", "BT", layout.CP_SAVED_E)
        b.st("CP", "BT", layout.CP_SAVED_CP)
        b.st("H", "BT", layout.CP_SAVED_H)
        b.st("TR", "BT", layout.CP_SAVED_TR)
        # The environment protection point must be monotone along the
        # choice-point chain: a newer frame may be created after
        # deallocations shrank ES below an older frame's watermark, yet
        # the older alternatives still need their environments intact.
        watermark = b.fresh_reg()
        keep = b.fresh_label("try_wm")
        b.ld(watermark, "B", layout.CP_SAVED_ES)
        b.branch("bgev", watermark, "ES", keep)
        b.mov(watermark, "ES")
        b.label(keep)
        b.st(watermark, "BT", layout.CP_SAVED_ES)
        retry = b.fresh_reg()
        b.ldi_code(retry, instr.retry_label)
        b.st(retry, "BT", layout.CP_RETRY)
        for index in range(instr.arity):
            b.st("a%d" % index, "BT", layout.CP_FIXED_SLOTS + index)
        b.mov("B", "BT")
        b.mov("BT", top)
        b.mov("HB", "H")

    def _emit_retry(self, instr):
        b = self.b
        for index in range(instr.arity):
            b.ld("a%d" % index, "B", layout.CP_FIXED_SLOTS + index)
        b.ld("B0", "B", layout.CP_PREV_B)
        if instr.next_label is not None:
            retry = b.fresh_reg()
            b.ldi_code(retry, instr.next_label)
            b.st(retry, "B", layout.CP_RETRY)
        else:
            b.mov("BT", "B")
            b.mov("B", "B0")
            b.ld("HB", "B", layout.CP_SAVED_H)
        b.jmp(instr.clause_label)

    # -- whole module ----------------------------------------------------------

    def translate(self):
        b = self.b
        self._emit_start()
        runtime.emit_runtime(b)
        for indicator in self.module.order:
            name, arity = indicator
            b.comment("predicate %s/%d" % (name, arity))
            for item in self.module.preds[indicator]:
                if isinstance(item, bam.Label):
                    self._emit(item)
                elif item == "NEW_CLAUSE":
                    self.ctx = ClauseContext(b)
                else:
                    self._emit(item)
        return b.finish()

    def _emit_start(self):
        b = self.b
        entry_name, entry_arity = self.module.entry
        b.label("$start")
        retry = b.fresh_reg()
        b.ldi_code(retry, "$query_fail")
        b.st(retry, "B", layout.CP_RETRY)
        top = b.fresh_reg()
        b.lea(top, "B", layout.CP_FIXED_SLOTS, tags.TRAW)
        b.st(top, "B", layout.CP_SELF_TOP)
        b.st("B", "B", layout.CP_PREV_B)
        b.st("E", "B", layout.CP_SAVED_E)
        b.st("CP", "B", layout.CP_SAVED_CP)
        b.st("H", "B", layout.CP_SAVED_H)
        b.st("TR", "B", layout.CP_SAVED_TR)
        b.st("ES", "B", layout.CP_SAVED_ES)
        b.mov("BT", top)
        b.mov("B0", "B")
        b.call(bam.predicate_label(entry_name, entry_arity), link="CP")
        b.halt(0)
        b.label("$query_fail")
        b.halt(1)


def translate_module(module):
    """Translate a :class:`~repro.bam.compile.BamModule` to an ICI
    :class:`~repro.intcode.program.Program`."""
    return Translator(module).translate()
