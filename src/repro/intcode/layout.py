"""Data-memory layout of the compiled Prolog machine.

The BAM/WAM execution model separates data space into distinct areas
(environment stack, choice-point stack, heap, trail, push-down list —
paper section 4.1).  Each area lives in its own 1M-word region of the flat
shared data memory; region membership is decidable by address comparison,
which the runtime uses for its trail condition.
"""

REGION_SHIFT = 20
REGION_SIZE = 1 << REGION_SHIFT

HEAP_BASE = 1 << REGION_SHIFT      #: heap (global stack), grows upward
ENV_BASE = 2 << REGION_SHIFT       #: environment stack
CHOICE_BASE = 3 << REGION_SHIFT    #: choice-point stack
TRAIL_BASE = 4 << REGION_SHIFT     #: trail
PDL_BASE = 5 << REGION_SHIFT       #: push-down list (general unifier)
FTAB_BASE = 6 << REGION_SHIFT      #: functor arity table (read-only)

#: Choice-point frame layout (offsets from the frame base in B).
#: Frames are variable-sized: 8 fixed slots plus the saved argument
#: registers a0..a(n-1) of the predicate that created the frame.
CP_PREV_B = 0     #: previous choice point (raw)
CP_SELF_TOP = 1   #: this frame's top address (raw), restores BT on cut
CP_SAVED_E = 2    #: environment register at creation
CP_SAVED_CP = 3   #: continuation register at creation
CP_SAVED_H = 4    #: heap top at creation (also the HB watermark)
CP_SAVED_TR = 5   #: trail top at creation
CP_SAVED_ES = 6   #: environment-stack top at creation (protection point)
CP_RETRY = 7      #: code address of the next alternative
CP_FIXED_SLOTS = 8

#: Environment frame layout (offsets from the frame base in E).
ENV_SAVED_E = 0   #: caller's environment register
ENV_SAVED_CP = 1  #: caller's continuation
ENV_FIXED_SLOTS = 2  #: permanent variables Y0.. follow

#: Machine registers with a fixed role (initialised by the emulator).
MACHINE_REGISTERS = {
    "H": HEAP_BASE,       # heap top
    "HB": HEAP_BASE,      # heap backtrack watermark
    "E": ENV_BASE,        # current environment frame
    "ES": ENV_BASE,       # environment stack top
    "B": CHOICE_BASE,     # newest choice-point frame
    "BT": CHOICE_BASE,    # choice-point stack top
    "TR": TRAIL_BASE,     # trail top
    "PD": PDL_BASE,       # push-down list top
    "CP": 0,              # continuation code address
    "RL": 0,              # link register for runtime routines
    "K_ENVB": ENV_BASE,   # constant: start of the stack regions
    "K_PDLB": PDL_BASE,   # constant: push-down list base
}
