"""Intermediate Code (ICI): instruction set, programs, runtime, translation."""

from repro.intcode.ici import Ici, OP_CLASS, MEM, ALU, MOVE, CTRL, \
    BRANCH_OPS, JUMP_OPS, CONTROL_OPS
from repro.intcode.program import Program, Builder
from repro.intcode.translate import translate_module, TranslateError
from repro.intcode.optimize import optimize_program, OptimizeStats
from repro.intcode import layout, runtime

__all__ = [
    "Ici",
    "OP_CLASS",
    "MEM",
    "ALU",
    "MOVE",
    "CTRL",
    "BRANCH_OPS",
    "JUMP_OPS",
    "CONTROL_OPS",
    "Program",
    "Builder",
    "translate_module",
    "TranslateError",
    "optimize_program",
    "OptimizeStats",
    "layout",
    "runtime",
]
