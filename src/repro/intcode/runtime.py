"""The ICI runtime library.

"Since the micro-architecture is completely compiler-driven, BAM
instructions that require sequences (e.g. dereference, unification) are
implemented via primitive operations" (paper section 4.5).  This module
provides those sequences: inline emission helpers for dereferencing,
trailing and binding, and the two global routines every compiled program
links against — the backtracking handler ``$fail`` and the general
unifier ``$unify``.
"""

from repro.terms import tags
from repro.intcode import layout


# -- inline helpers ----------------------------------------------------------


def emit_deref(b, reg):
    """Dereference *reg* in place (the classical pointer-chasing loop)."""
    loop = b.fresh_label("deref")
    done = b.fresh_label("deref_done")
    t = b.fresh_reg()
    b.label(loop)
    b.bntag(reg, tags.TREF, done)
    b.ld(t, reg, 0)
    b.branch("beq", t, reg, done)   # self-reference: unbound
    b.mov(reg, t)
    b.jmp(loop)
    b.label(done)


def emit_trail(b, reg):
    """Conditionally push the cell address in *reg* onto the trail.

    Every bindable cell lives on the heap (variables are always
    heap-allocated; environment slots never hold unbound self-references),
    so the classical WAM condition reduces to the single HB comparison:
    trail exactly the cells older than the newest choice point.
    """
    skip = b.fresh_label("trail_skip")
    b.branch("bgev", reg, "HB", skip)
    b.st(reg, "TR", 0)
    b.lea("TR", "TR", 1, tags.TRAW)
    b.label(skip)


def emit_bind(b, ptr, value):
    """Bind the unbound cell referenced by *ptr* to the word in *value*."""
    b.st(value, ptr, 0)
    emit_trail(b, ptr)


def emit_new_unbound(b, rd):
    """Push a fresh unbound cell on the heap; *rd* receives a TREF to it."""
    b.lea(rd, "H", 0, tags.TREF)
    b.st(rd, "H", 0)
    b.lea("H", "H", 1, tags.TRAW)


def emit_globalize(b, reg):
    """Make the word in *reg* safe to store into the heap.

    If *reg* dereferences to an unbound stack cell, a fresh heap cell is
    created and the stack cell bound to it (the WAM's unsafe-value rule);
    afterwards *reg* holds a heap reference or a non-variable word.
    """
    emit_deref(b, reg)
    ok = b.fresh_label("glob_ok")
    b.bntag(reg, tags.TREF, ok)
    b.branch("bltv", reg, "K_ENVB", ok)   # heap variable: already safe
    cell = b.fresh_reg()
    emit_new_unbound(b, cell)
    emit_bind(b, reg, cell)
    b.mov(reg, cell)
    b.label(ok)


# -- global routines ---------------------------------------------------------


def emit_fail_routine(b):
    """Emit ``$fail``: detrail, restore machine state from B, retry.

    Any code path may ``jmp $fail``; the routine unwinds the newest choice
    point and transfers control to its saved retry address.
    """
    b.label("$fail")
    saved_tr = b.fresh_reg()
    b.ld(saved_tr, "B", layout.CP_SAVED_TR)
    loop = b.fresh_label("detrail")
    check = b.fresh_label("detrail_chk")
    b.jmp(check)
    b.label(loop)
    b.lea("TR", "TR", -1, tags.TRAW)
    addr = b.fresh_reg()
    unbound = b.fresh_reg()
    b.ld(addr, "TR", 0)
    b.mktag(unbound, addr, tags.TREF)
    b.st(unbound, addr, 0)           # reset the cell to unbound
    b.label(check)
    b.branch("bne", "TR", saved_tr, loop)
    # The general unifier may fail with subproblems still queued on the
    # push-down list; no failure path ever needs them, so reset it here.
    b.mov("PD", "K_PDLB")
    b.ld("E", "B", layout.CP_SAVED_E)
    b.ld("CP", "B", layout.CP_SAVED_CP)
    b.ld("H", "B", layout.CP_SAVED_H)
    b.mov("HB", "H")
    b.ld("ES", "B", layout.CP_SAVED_ES)
    retry = b.fresh_reg()
    b.ld(retry, "B", layout.CP_RETRY)
    b.jmpr(retry)


def emit_unify_routine(b):
    """Emit ``$unify``: general unification of the words in u0 and u1.

    Iterative with an explicit push-down list (PD).  On success returns
    through the link register RL; on mismatch jumps to ``$fail``.  The
    routine is non-reentrant, which is safe because nothing it calls can
    re-enter it.
    """
    one = b.fresh_reg()
    b.label("$unify")
    b.ldi(one, tags.pack(1, tags.TINT))

    loop = b.fresh_label("u_loop")
    matched = b.fresh_label("u_matched")
    bind0 = b.fresh_label("u_bind0")
    bind1 = b.fresh_label("u_bind1")
    bothvars = b.fresh_label("u_bothvars")
    b10 = b.fresh_label("u_b10")
    lst = b.fresh_label("u_lst")
    struct = b.fresh_label("u_str")
    push = b.fresh_label("u_str_push")
    args_done = b.fresh_label("u_str_args")
    done = b.fresh_label("u_done")

    b.label(loop)
    emit_deref(b, "u0")
    emit_deref(b, "u1")
    b.branch("beq", "u0", "u1", matched)
    b.btag("u0", tags.TREF, bind0)
    b.btag("u1", tags.TREF, bind1)
    b.btag("u0", tags.TLST, lst)
    b.btag("u0", tags.TSTR, struct)
    # Distinct atomic words (or mismatched tags): failure.
    b.jmp("$fail")

    # --- variable binding, oldest-cell-wins direction -------------------
    b.label(bind0)
    b.btag("u1", tags.TREF, bothvars)
    emit_bind(b, "u0", "u1")
    b.jmp(matched)
    b.label(bind1)
    emit_bind(b, "u1", "u0")
    b.jmp(matched)
    b.label(bothvars)
    b.branch("bltv", "u0", "u1", b10)
    emit_bind(b, "u0", "u1")
    b.jmp(matched)
    b.label(b10)
    emit_bind(b, "u1", "u0")
    b.jmp(matched)

    # --- lists: push the cdr pair, loop on the car pair ------------------
    b.label(lst)
    b.bntag("u1", tags.TLST, "$fail")
    cdr0 = b.fresh_reg()
    cdr1 = b.fresh_reg()
    b.ld(cdr0, "u0", 1)
    b.ld(cdr1, "u1", 1)
    b.st(cdr0, "PD", 0)
    b.st(cdr1, "PD", 1)
    b.lea("PD", "PD", 2, tags.TRAW)
    car0 = b.fresh_reg()
    b.ld(car0, "u0", 0)
    b.ld("u1", "u1", 0)
    b.mov("u0", car0)
    b.jmp(loop)

    # --- structures: functor check, push arg-cell reference pairs --------
    b.label(struct)
    b.bntag("u1", tags.TSTR, "$fail")
    f0 = b.fresh_reg()
    f1 = b.fresh_reg()
    b.ld(f0, "u0", 0)
    b.ld(f1, "u1", 0)
    b.branch("bne", f0, f1, "$fail")
    ftab = b.fresh_reg()
    arity = b.fresh_reg()
    b.lea(ftab, f0, layout.FTAB_BASE, tags.TRAW)
    b.ld(arity, ftab, 0)
    i = b.fresh_reg()
    b.mov(i, arity)
    b.label(push)
    b.branch("blev", i, one, args_done)
    p0 = b.fresh_reg()
    p1 = b.fresh_reg()
    b.alu("add", p0, "u0", rb=i)
    b.mktag(p0, p0, tags.TREF)
    b.alu("add", p1, "u1", rb=i)
    b.mktag(p1, p1, tags.TREF)
    b.st(p0, "PD", 0)
    b.st(p1, "PD", 1)
    b.lea("PD", "PD", 2, tags.TRAW)
    b.lea(i, i, -1, tags.TINT)
    b.jmp(push)
    b.label(args_done)
    b.lea("u0", "u0", 1, tags.TREF)
    b.lea("u1", "u1", 1, tags.TREF)
    b.jmp(loop)

    # --- subproblem done: pop the push-down list or return ---------------
    b.label(matched)
    b.branch("beq", "PD", "K_PDLB", done)
    b.lea("PD", "PD", -2, tags.TRAW)
    b.ld("u0", "PD", 0)
    b.ld("u1", "PD", 1)
    b.jmp(loop)
    b.label(done)
    b.jmpr("RL")


def emit_equal_routine(b):
    """Emit ``$equal``: structural comparison of u0 and u1 (no binding).

    Sets the register EQR to ``TINT(1)`` on equality, ``TINT(0)``
    otherwise, and returns through RL in both cases.
    """
    b.label("$equal")
    loop = b.fresh_label("e_loop")
    matched = b.fresh_label("e_matched")
    lst = b.fresh_label("e_lst")
    struct = b.fresh_label("e_str")
    push = b.fresh_label("e_str_push")
    args_done = b.fresh_label("e_str_args")
    done = b.fresh_label("e_done")
    differ = b.fresh_label("e_differ")
    one = b.fresh_reg()
    b.ldi(one, tags.pack(1, tags.TINT))

    b.label(loop)
    emit_deref(b, "u0")
    emit_deref(b, "u1")
    b.branch("beq", "u0", "u1", matched)
    b.btag("u0", tags.TREF, differ)
    b.btag("u1", tags.TREF, differ)
    b.btag("u0", tags.TLST, lst)
    b.btag("u0", tags.TSTR, struct)
    b.jmp(differ)

    b.label(lst)
    b.bntag("u1", tags.TLST, differ)
    cdr0 = b.fresh_reg()
    cdr1 = b.fresh_reg()
    b.ld(cdr0, "u0", 1)
    b.ld(cdr1, "u1", 1)
    b.st(cdr0, "PD", 0)
    b.st(cdr1, "PD", 1)
    b.lea("PD", "PD", 2, tags.TRAW)
    car0 = b.fresh_reg()
    b.ld(car0, "u0", 0)
    b.ld("u1", "u1", 0)
    b.mov("u0", car0)
    b.jmp(loop)

    b.label(struct)
    b.bntag("u1", tags.TSTR, differ)
    f0 = b.fresh_reg()
    f1 = b.fresh_reg()
    b.ld(f0, "u0", 0)
    b.ld(f1, "u1", 0)
    b.branch("bne", f0, f1, differ)
    ftab = b.fresh_reg()
    arity = b.fresh_reg()
    b.lea(ftab, f0, layout.FTAB_BASE, tags.TRAW)
    b.ld(arity, ftab, 0)
    i = b.fresh_reg()
    b.mov(i, arity)
    b.label(push)
    b.branch("blev", i, one, args_done)
    p0 = b.fresh_reg()
    p1 = b.fresh_reg()
    b.alu("add", p0, "u0", rb=i)
    b.mktag(p0, p0, tags.TREF)
    b.alu("add", p1, "u1", rb=i)
    b.mktag(p1, p1, tags.TREF)
    b.st(p0, "PD", 0)
    b.st(p1, "PD", 1)
    b.lea("PD", "PD", 2, tags.TRAW)
    b.lea(i, i, -1, tags.TINT)
    b.jmp(push)
    b.label(args_done)
    b.lea("u0", "u0", 1, tags.TREF)
    b.lea("u1", "u1", 1, tags.TREF)
    b.jmp(loop)

    b.label(matched)
    b.branch("beq", "PD", "K_PDLB", done)
    b.lea("PD", "PD", -2, tags.TRAW)
    b.ld("u0", "PD", 0)
    b.ld("u1", "PD", 1)
    b.jmp(loop)
    b.label(done)
    b.ldi("EQR", tags.pack(1, tags.TINT))
    b.jmpr("RL")
    b.label(differ)
    b.mov("PD", "K_PDLB")    # abandon any queued subproblems
    b.ldi("EQR", tags.pack(0, tags.TINT))
    b.jmpr("RL")


def emit_runtime(b):
    """Emit the full runtime library into *b*."""
    emit_fail_routine(b)
    emit_unify_routine(b)
    emit_equal_routine(b)
