"""ICI program container and code builder.

A :class:`Program` is a flat list of :class:`~repro.intcode.ici.Ici` with a
label map; the :class:`Builder` provides the emission interface used by the
compiler back-end and the hand-written runtime library.
"""

from repro.intcode.ici import Ici
from repro.terms import tags


class Program:
    """A complete ICI program: instructions, labels, symbols, entry point."""

    def __init__(self, instructions, labels, symbols, entry="$start",
                 comments=None):
        self.instructions = instructions
        self.labels = labels          # label name -> instruction index
        self.symbols = symbols        # SymbolTable
        self.entry = entry
        self.comments = comments or {}  # instruction index -> str
        # Execution caches, filled lazily by the emulator layer: the
        # pre-decoded instruction tuples (repro.emulator.machine.decode)
        # and the threaded-code compilation (repro.emulator.threaded).
        # Programs are immutable once built, so both live for the
        # object's lifetime.
        self._decoded = None
        self._threaded = None
        self._codegen = None

    def __len__(self):
        return len(self.instructions)

    @property
    def entry_pc(self):
        return self.labels[self.entry]

    def target_pc(self, label):
        return self.labels[label]

    def listing(self, start=0, end=None):
        """Assembly-style listing for debugging and documentation."""
        lines = []
        end = len(self.instructions) if end is None else end
        index_to_labels = {}
        for name, index in self.labels.items():
            index_to_labels.setdefault(index, []).append(name)
        for index in range(start, end):
            for name in sorted(index_to_labels.get(index, [])):
                lines.append("%s:" % name)
            comment = self.comments.get(index)
            suffix = ("    ; " + comment) if comment else ""
            lines.append("    %4d  %s%s"
                         % (index, repr(self.instructions[index]), suffix))
        return "\n".join(lines)


class Builder:
    """Incremental ICI emitter with fresh-name generation.

    Register-name conventions produced here:

    * ``a0, a1, ...`` — argument registers
    * ``r<N>``        — fresh temporaries (one assignment site each, which
      is the paper's "variable renaming" that removes false dependencies)
    * machine registers: ``H`` (heap top), ``E`` (environment frame),
      ``ES`` (environment stack top), ``B`` (newest choice point),
      ``BT`` (choice-point stack top), ``TR`` (trail top), ``PD``
      (push-down list top, used by the general unifier), ``HB`` (heap
      backtrack watermark), ``CP`` (continuation), ``RL`` (runtime-routine
      link register).
    """

    def __init__(self, symbols):
        self.symbols = symbols
        self.instructions = []
        self.labels = {}
        self.comments = {}
        self._next_reg = 0
        self._next_label = 0

    # -- names ----------------------------------------------------------

    def fresh_reg(self):
        self._next_reg += 1
        return "r%d" % self._next_reg

    def fresh_label(self, hint="L"):
        self._next_label += 1
        return "%s_%d" % (hint, self._next_label)

    def label(self, name):
        """Attach *name* to the next emitted instruction."""
        if name in self.labels:
            raise ValueError("duplicate label %r" % name)
        self.labels[name] = len(self.instructions)

    def comment(self, text):
        index = len(self.instructions)
        if index in self.comments:
            self.comments[index] += "; " + text
        else:
            self.comments[index] = text

    # -- emission -------------------------------------------------------

    def emit(self, op, **kwargs):
        instruction = Ici(op, **kwargs)
        self.instructions.append(instruction)
        return instruction

    # Convenience wrappers, one per opcode family.

    def ld(self, rd, base, off=0):
        self.emit("ld", rd=rd, ra=base, imm=off)

    def st(self, rs, base, off=0):
        self.emit("st", ra=rs, rb=base, imm=off)

    def alu(self, op, rd, ra, rb=None, imm=None):
        self.emit(op, rd=rd, ra=ra, rb=rb, imm=imm)

    def lea(self, rd, base, off, tag):
        self.emit("lea", rd=rd, ra=base, imm=off, tag=tag)

    def mktag(self, rd, rs, tag):
        self.emit("mktag", rd=rd, ra=rs, tag=tag)

    def mov(self, rd, rs):
        self.emit("mov", rd=rd, ra=rs)

    def ldi(self, rd, word):
        self.emit("ldi", rd=rd, imm=word)

    def ldi_atom(self, rd, name):
        self.ldi(rd, tags.pack(self.symbols.atom(name), tags.TATM))

    def ldi_int(self, rd, value):
        self.ldi(rd, tags.pack(value, tags.TINT))

    def ldi_functor(self, rd, name, arity):
        self.ldi(rd, tags.pack(self.symbols.functor(name, arity), tags.TFUN))

    def ldi_code(self, rd, label):
        """Load the code address of *label* (resolved at load time)."""
        self.emit("ldi", rd=rd, label=label)

    def btag(self, rs, tag, label):
        self.emit("btag", ra=rs, tag=tag, label=label)

    def bntag(self, rs, tag, label):
        self.emit("bntag", ra=rs, tag=tag, label=label)

    def branch(self, op, ra, rb, label):
        self.emit(op, ra=ra, rb=rb, label=label)

    def jmp(self, label):
        self.emit("jmp", label=label)

    def jmpr(self, rs):
        self.emit("jmpr", ra=rs)

    def call(self, label, link="CP"):
        self.emit("call", rd=link, label=label)

    def halt(self, code=0):
        self.emit("halt", imm=code)

    def esc(self, service, rs=None):
        self.emit("esc", esc=service, ra=rs)

    # -- finish ----------------------------------------------------------

    def finish(self, entry="$start"):
        for instruction in self.instructions:
            if instruction.label is not None \
                    and instruction.label not in self.labels:
                raise ValueError("undefined label %r in %r"
                                 % (instruction.label, instruction))
        if entry not in self.labels:
            raise ValueError("entry label %r missing" % entry)
        return Program(self.instructions, dict(self.labels), self.symbols,
                       entry, dict(self.comments))
