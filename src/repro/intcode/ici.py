"""Intermediate Code Instructions (ICI).

The paper's Intermediate Code is "composed of simple instructions directly
expressing primitive hardware functionalities": a load/store register
machine with direct and immediate addressing only, tagged-data support and
branch-on-tag (section 3.1, 4.5).  ICIs name *virtual* registers — they
"contain no information about register allocation or hardware units" — so
the register namespace is unbounded and renaming is free.

Operation classes (one slot of each per unit per cycle, Fig. 5):

======  ==========================================================
class   operations
======  ==========================================================
MEM     ``ld``, ``st``
ALU     ``add sub mul div mod and or xor sll sra lea mktag gettag esc``
MOVE    ``mov``, ``ldi``
CTRL    ``btag bntag beq bne bltv blev bgtv bgev jmp jmpr call halt``
======  ==========================================================

Latencies are a property of the machine model, not of the ICI.
"""

# -- operation classes -------------------------------------------------------

MEM = "mem"
ALU = "alu"
MOVE = "move"
CTRL = "ctrl"

OP_CLASS = {
    "ld": MEM, "st": MEM,
    "add": ALU, "sub": ALU, "mul": ALU, "div": ALU, "mod": ALU,
    "and": ALU, "or": ALU, "xor": ALU, "sll": ALU, "sra": ALU,
    "lea": ALU, "mktag": ALU, "gettag": ALU, "esc": ALU,
    "mov": MOVE, "ldi": MOVE,
    "btag": CTRL, "bntag": CTRL,
    "beq": CTRL, "bne": CTRL,
    "bltv": CTRL, "blev": CTRL, "bgtv": CTRL, "bgev": CTRL,
    "jmp": CTRL, "jmpr": CTRL, "call": CTRL, "halt": CTRL,
}

BRANCH_OPS = frozenset(
    ["btag", "bntag", "beq", "bne", "bltv", "blev", "bgtv", "bgev"])
JUMP_OPS = frozenset(["jmp", "jmpr", "call", "halt"])
CONTROL_OPS = BRANCH_OPS | JUMP_OPS


class Ici:
    """One Intermediate Code Instruction.

    Fields (unused ones are ``None``):

    * ``op``     — opcode mnemonic
    * ``rd``     — destination register name
    * ``ra, rb`` — source register names
    * ``imm``    — integer immediate (offset, tagged word, or tag value)
    * ``tag``    — tag immediate for ``lea``/``mktag``/``btag``/``bntag``
    * ``label``  — branch/call target label
    * ``esc``    — escape service name for ``esc``

    Semantics summary (``V(x)`` = value field, ``W(x)`` = whole word):

    * ``ld rd, ra, imm``   — ``rd = MEM[V(ra) + imm]``
    * ``st ra, rb, imm``   — ``MEM[V(rb) + imm] = W(ra)``
    * ALU binary ops       — ``rd = pack(V(ra) op V(rb or imm), TINT)``
    * ``lea rd, ra, imm, tag`` — ``rd = pack(V(ra) + imm, tag)``
    * ``mktag rd, ra, tag``    — retag a word
    * ``gettag rd, ra``        — ``rd = pack(tag(ra), TINT)``
    * ``mov rd, ra``       — copy word; ``ldi rd, imm`` — load tagged word
    * ``btag ra, tag, L``  — branch if ``tag(ra) == tag`` (`bntag`: !=)
    * ``beq/bne ra, rb, L``    — whole-word compare and branch
    * ``bltv/blev/bgtv/bgev ra, rb, L`` — value-field signed compare
    * ``jmp L`` / ``jmpr ra``  — direct / register-indirect jump
    * ``call L`` (rd=link) — ``rd = pack(return_pc, TCOD)``; jump to L
    * ``esc name, ra``     — host escape (program output)
    """

    __slots__ = ("op", "rd", "ra", "rb", "imm", "tag", "label", "esc")

    def __init__(self, op, rd=None, ra=None, rb=None, imm=None, tag=None,
                 label=None, esc=None):
        if op not in OP_CLASS:
            raise ValueError("unknown ICI opcode %r" % op)
        self.op = op
        self.rd = rd
        self.ra = ra
        self.rb = rb
        self.imm = imm
        self.tag = tag
        self.label = label
        self.esc = esc

    @property
    def op_class(self):
        return OP_CLASS[self.op]

    @property
    def is_branch(self):
        """Conditional branch (two successors)."""
        return self.op in BRANCH_OPS

    @property
    def is_control(self):
        return self.op in CONTROL_OPS

    def reads(self):
        """Register names this instruction reads."""
        regs = []
        if self.ra is not None:
            regs.append(self.ra)
        if self.rb is not None:
            regs.append(self.rb)
        # A store reads its data register, which we keep in ra, and its
        # base in rb; a call reads nothing; jmpr reads ra.
        return regs

    def writes(self):
        """Register names this instruction writes."""
        return [self.rd] if self.rd is not None else []

    def __repr__(self):
        parts = [self.op]
        for attr in ("rd", "ra", "rb"):
            value = getattr(self, attr)
            if value is not None:
                parts.append(str(value))
        if self.imm is not None:
            parts.append("#%d" % self.imm)
        if self.tag is not None:
            parts.append("t%d" % self.tag)
        if self.label is not None:
            parts.append("@" + str(self.label))
        if self.esc is not None:
            parts.append("<%s>" % self.esc)
        return " ".join(parts)
