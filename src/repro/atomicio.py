"""Crash-safe file publication and inter-process locking.

Every durable artefact the system writes — content-addressed cache
entries, emulation profiles, ``BENCH_emulator.json``, evaluation
reports — goes through :func:`atomic_write_text`: the bytes land in a
temp file in the destination directory, are flushed and fsynced, and
are published with one atomic :func:`os.replace`.  A reader therefore
sees the old content or the new content, never a torn file, no matter
when the writer is killed; at worst an orphaned ``*.tmp`` file is left
behind, which no reader ever opens.

:class:`FileLock` is an advisory ``flock`` lock used to serialise
writers that share a cache directory (two concurrent CLI runs, two
engines in one test).  ``flock`` locks die with their holder, so a
``kill -9`` or SIGINT can never leave the cache wedged.

The ``cache.write`` fault-injection site (see
:mod:`repro.testing.faults`) lives here: the ``torn`` kind abandons a
write after the temp file exists but before the publish rename —
exactly the window a crash would hit — letting the chaos suite prove
the no-torn-file invariant.
"""

import json
import os
import tempfile
import time

try:
    import fcntl
except ImportError:          # non-POSIX host: locking degrades to a no-op
    fcntl = None

from repro.testing import faults

__all__ = ["FileLock", "atomic_write_json", "atomic_write_text"]


def atomic_write_text(path, text, fsync=True):
    """Publish *text* at *path* atomically; returns *path*.

    The temp file is created in the destination directory (rename must
    not cross filesystems) with a ``.tmp`` suffix no reader matches.
    """
    path = os.path.abspath(path)
    directory = os.path.dirname(path)
    descriptor, temporary = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".",
        suffix=".tmp")
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(text)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        if faults.armed("cache.write") \
                and faults.fire("cache.write") == "torn":
            # Simulated crash between write and publish: the temp file
            # stays behind, the destination is never touched.
            return path
        os.replace(temporary, path)
    except BaseException:
        try:
            os.remove(temporary)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path, payload, indent=None, sort_keys=False):
    """:func:`atomic_write_text` of *payload* as JSON (+ newline)."""
    return atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=sort_keys)
        + "\n")


class LockTimeout(OSError):
    """Raised when a :class:`FileLock` cannot be acquired in time."""


class FileLock:
    """Advisory inter-process mutex backed by ``flock``.

    ::

        with FileLock(os.path.join(cache_root, ".lock")):
            ...  # serialised against other processes

    *timeout* ``None`` blocks until acquired; a number polls every
    *poll* seconds and raises :class:`LockTimeout` past the limit.
    The lock file itself is never deleted — deleting it would let a
    late-coming process lock a different inode and defeat the mutual
    exclusion.  Locks are released automatically if the holder dies.
    On hosts without ``fcntl`` the lock is a documented no-op (atomic
    renames alone still prevent torn files).

    The lock is re-entrant *per object*: nested ``acquire`` on the same
    :class:`FileLock` just deepens a counter instead of ``flock``-ing a
    second descriptor of the same file (which would deadlock against
    ourselves); the OS lock is released when the outermost ``release``
    runs.  Two distinct objects on the same path still exclude each
    other.
    """

    def __init__(self, path, timeout=None, poll=0.05):
        self.path = path
        self.timeout = timeout
        self.poll = poll
        self._handle = None
        self._depth = 0

    def acquire(self):
        if self._depth:
            self._depth += 1
            return self
        if fcntl is None:
            self._depth = 1
            return self
        handle = open(self.path, "a+")
        try:
            if self.timeout is None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            else:
                deadline = time.monotonic() + self.timeout
                while True:
                    try:
                        fcntl.flock(handle.fileno(),
                                    fcntl.LOCK_EX | fcntl.LOCK_NB)
                        break
                    except OSError:
                        if time.monotonic() >= deadline:
                            raise LockTimeout(
                                "could not lock %s within %gs"
                                % (self.path, self.timeout))
                        time.sleep(self.poll)
        except BaseException:
            handle.close()
            raise
        self._handle = handle
        self._depth = 1
        return self

    def try_acquire(self):
        """Non-blocking acquire; True on success.

        Deepens the re-entrancy counter when this object already holds
        the lock; otherwise attempts one ``LOCK_NB`` flock and reports
        failure instead of waiting.  A False return leaves the object's
        state untouched (depth unchanged, no descriptor leaked).
        """
        if self._depth:
            self._depth += 1
            return True
        if fcntl is None:
            self._depth = 1
            return True
        handle = open(self.path, "a+")
        try:
            fcntl.flock(handle.fileno(),
                        fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            return False
        except BaseException:
            handle.close()
            raise
        self._handle = handle
        self._depth = 1
        return True

    def release(self):
        if self._depth == 0:
            return
        self._depth -= 1
        if self._depth:
            return
        handle, self._handle = self._handle, None
        if handle is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()

    @property
    def held(self):
        return self._depth > 0

    def __enter__(self):
        return self.acquire()

    def __exit__(self, *exc_info):
        self.release()
