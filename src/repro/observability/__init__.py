"""Structured observability for the evaluation pipeline.

The paper's headline numbers fall out of a long pipeline — translate,
profile, superblock transform, schedule, simulate — run by a parallel
engine under a fault-tolerant supervisor.  This package makes that
pipeline *visible*: a span-based tracer (:mod:`repro.observability
.tracing`) records what ran, nested how, for how long and with what
outcome; a metrics registry (:mod:`repro.observability.metrics`)
counts the events that matter (cache hits, emulator runs, retries,
watchdog kills); and the export layer (:mod:`repro.observability
.export`) publishes both as schema-validated JSONL that ``repro
evaluate --trace FILE`` writes and ``repro trace summary`` reads.

Tracing is **opt-in and observability-only**: with no active tracer
every instrumentation point is a cheap no-op, and with one active it
never changes any computed number — the trace-invariant suite
(``tests/test_trace_invariants.py``) locks both properties down, along
with span balance, span/report/cache-counter reconciliation, and
byte-stable deterministic export at a fixed seed.
"""

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import (
    NULL_SPAN,
    Span,
    Tracer,
    activate,
    activation,
    active,
    add,
    deactivate,
    gauge,
    span,
)
from repro.observability.export import (
    TRACE_SCHEMA,
    load_trace,
    render_trace,
    summarize_trace,
    trace_lines,
    validate_trace,
    write_trace,
)

__all__ = [
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "activate",
    "activation",
    "active",
    "add",
    "deactivate",
    "gauge",
    "load_trace",
    "render_trace",
    "span",
    "summarize_trace",
    "trace_lines",
    "validate_trace",
    "write_trace",
]
