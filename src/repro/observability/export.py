"""Trace export: schema-validated JSONL, loading, summarising.

A trace document is JSON Lines with exactly three record shapes::

    {"type": "run", "schema": 1, "run_id": ..., "seed": ...,
     "deterministic": ..., "spans": N}          # first line
    {"type": "span", "id": 7, "parent": 3, "name": "...",
     "seq": [13, 18], "status": "ok", "attrs": {...},
     "elapsed": 0.0123}                          # one per span
    {"type": "metrics", "counters": {...}, "gauges": {...}}  # last line

``seq`` is the tracer's logical clock at open/close: every open and
close ticks the clock exactly once, so over a complete trace the 2N
seq values are a permutation of 1..2N, and a child's interval is
strictly inside its parent's.  :func:`validate_trace` checks all of
that — it is the machine-checkable form of the tracer's invariants
(spans balance, ids unique, nesting sound), which is why the
trace-invariant suite funnels every exported trace through it.

**Deterministic mode** (``timings=False``) omits the wall-clock
``elapsed`` field, leaving only seeded ids, logical clocks, names,
attrs and metrics — two runs of the same work at the same seed render
byte-identical documents, which the invariant suite asserts.
"""

import json

from repro.atomicio import atomic_write_text

__all__ = [
    "TRACE_SCHEMA",
    "load_trace",
    "render_trace",
    "summarize_trace",
    "trace_lines",
    "validate_trace",
    "write_trace",
]

#: bump when the JSONL layout changes
TRACE_SCHEMA = 1


def trace_lines(tracer, timings=True):
    """*tracer*'s trace as a list of JSON-ready records."""
    spans = sorted(tracer.spans, key=lambda span: span.seq_start)
    lines = [{
        "type": "run",
        "schema": TRACE_SCHEMA,
        "run_id": tracer.run_id,
        "seed": tracer.seed,
        "deterministic": not timings,
        "spans": len(spans),
    }]
    for span in spans:
        record = {
            "type": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "seq": [span.seq_start, span.seq_end],
            "status": span.status,
            "attrs": dict(span.attrs),
        }
        if span.error is not None:
            record["error"] = span.error
        if timings:
            record["elapsed"] = None if span.elapsed is None \
                else round(span.elapsed, 9)
        lines.append(record)
    lines.append(dict(tracer.metrics.snapshot(), type="metrics"))
    return lines


def render_trace(tracer, timings=True):
    """The JSONL text of *tracer*'s trace (sorted keys, stable)."""
    return "".join(
        json.dumps(line, sort_keys=True, separators=(",", ":")) + "\n"
        for line in trace_lines(tracer, timings=timings))


def write_trace(path, tracer, timings=True):
    """Atomically publish *tracer*'s trace as JSONL at *path*."""
    return atomic_write_text(path, render_trace(tracer, timings=timings))


def load_trace(path):
    """Parse a JSONL trace file into a list of records."""
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


def validate_trace(lines):
    """Schema/invariant problems of a trace document (empty = valid)."""
    problems = []

    def require(condition, message):
        if not condition:
            problems.append(message)

    if not isinstance(lines, list) or not lines:
        return ["trace is not a non-empty list of records"]
    header = lines[0]
    if not isinstance(header, dict) or header.get("type") != "run":
        problems.append("first record is not the run header")
        header = {}
    require(header.get("schema") == TRACE_SCHEMA,
            "run.schema is not %d" % TRACE_SCHEMA)
    require(isinstance(header.get("run_id"), str) and header.get("run_id"),
            "run.run_id is not a non-empty string")
    require(isinstance(header.get("deterministic"), bool),
            "run.deterministic is not a boolean")

    footer = lines[-1]
    if not isinstance(footer, dict) or footer.get("type") != "metrics":
        problems.append("last record is not the metrics footer")
        footer = {}
    counters = footer.get("counters")
    require(isinstance(counters, dict), "metrics.counters is not an object")
    for name, value in (counters or {}).items():
        require(isinstance(value, int) and value >= 0,
                "counter %s is not a non-negative integer" % name)
    require(isinstance(footer.get("gauges"), dict),
            "metrics.gauges is not an object")

    spans = {}
    seqs = []
    for index, record in enumerate(lines[1:-1]):
        where = "record %d" % (index + 1)
        if not isinstance(record, dict) or record.get("type") != "span":
            problems.append("%s is not a span record" % where)
            continue
        span_id = record.get("id")
        where = "span %r" % (span_id,)
        if not isinstance(span_id, int):
            problems.append("%s has a non-integer id" % where)
            continue
        if span_id in spans:
            problems.append("%s: duplicate span id" % where)
            continue
        spans[span_id] = record
        require(isinstance(record.get("name"), str) and record.get("name"),
                "%s has no name" % where)
        require(record.get("status") in ("ok", "error"),
                "%s status %r is not ok/error" % (where,
                                                  record.get("status")))
        require(isinstance(record.get("attrs"), dict),
                "%s attrs is not an object" % where)
        seq = record.get("seq")
        if (not isinstance(seq, list) or len(seq) != 2
                or not all(isinstance(tick, int) for tick in seq)):
            problems.append("%s seq is not an [open, close] integer pair "
                            "— an unclosed span?" % where)
            continue
        require(seq[0] < seq[1], "%s closed before it opened" % where)
        seqs.extend(seq)

    require(header.get("spans") == len(spans),
            "run.spans does not match the span record count")
    if not problems:
        # Complete traces tick the clock once per open and once per
        # close: the seq values are exactly 1..2N.
        require(sorted(seqs) == list(range(1, 2 * len(spans) + 1)),
                "span seq values are not a permutation of 1..2N "
                "(lost or unclosed spans)")
        for span_id, record in spans.items():
            parent_id = record.get("parent")
            if parent_id is None:
                continue
            parent = spans.get(parent_id)
            if parent is None:
                problems.append("span %r references missing parent %r"
                                % (span_id, parent_id))
                continue
            require(parent["seq"][0] < record["seq"][0]
                    and record["seq"][1] < parent["seq"][1],
                    "span %r is not enclosed by its parent %r"
                    % (span_id, parent_id))
    return problems


def summarize_trace(lines):
    """Aggregate a trace document for human display.

    Returns ``{"run_id", "deterministic", "spans", "by_name",
    "counters", "gauges"}`` where ``by_name`` maps span name to
    ``{"count", "errors", "elapsed"}`` (elapsed is None for
    deterministic traces).
    """
    header = lines[0] if lines else {}
    footer = lines[-1] if len(lines) > 1 else {}
    by_name = {}
    for record in lines[1:-1]:
        if record.get("type") != "span":
            continue
        entry = by_name.setdefault(record.get("name", "?"),
                                   {"count": 0, "errors": 0,
                                    "elapsed": None})
        entry["count"] += 1
        if record.get("status") == "error":
            entry["errors"] += 1
        elapsed = record.get("elapsed")
        if isinstance(elapsed, (int, float)):
            entry["elapsed"] = (entry["elapsed"] or 0.0) + elapsed
    return {
        "run_id": header.get("run_id"),
        "deterministic": header.get("deterministic"),
        "spans": header.get("spans"),
        "by_name": {name: by_name[name] for name in sorted(by_name)},
        "counters": dict(footer.get("counters") or {}),
        "gauges": dict(footer.get("gauges") or {}),
    }
