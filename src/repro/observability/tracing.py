"""Span-based tracer for the evaluation pipeline.

A **span** is one timed unit of work: an emulator run, a superblock
transform, a supervised task attempt cycle, a whole ``repro evaluate``
sweep.  Spans carry

* a per-tracer sequential ``span_id`` and their parent's id (nesting);
* a **logical clock** pair ``seq_start``/``seq_end`` — every open and
  close event ticks the tracer's clock, so span containment can be
  verified without trusting wall time and the deterministic export is
  byte-stable across runs;
* monotonic wall-clock timing (``elapsed`` seconds);
* free-form JSON-safe ``attrs`` and a final ``status`` (``ok`` or
  ``error``).

Two APIs create spans.  The context manager covers the common nested
case::

    with obs.span("pipeline.schedule", config=config.name) as sp:
        ...
        sp.set(regions=len(regions))

and the explicit :meth:`Tracer.open` / :meth:`Tracer.close` pair covers
work that overlaps rather than nests (the supervisor's pooled tasks are
in flight concurrently, so they cannot live on a stack).

The module-level helpers (:func:`span`, :func:`add`, :func:`gauge`)
route to the **active tracer** and are cheap no-ops when none is
active — instrumentation points stay in the code permanently and cost
one global read plus an ``is None`` test when tracing is off.  The
run id is derived from the tracer's seed, so a fixed seed names runs
reproducibly; an unseeded tracer gets a random run id.

The tracer is deliberately per-process: pool workers run with tracing
inactive, so a traced ``--jobs 1`` sweep sees every stage in-process
while a pooled sweep traces the coordinator's view (task lifecycle,
cache, supervisor decisions).  See ``docs/observability.md``.
"""

import hashlib
import os
import time

__all__ = [
    "NULL_SPAN",
    "Span",
    "Tracer",
    "activate",
    "activation",
    "active",
    "add",
    "deactivate",
    "gauge",
    "span",
]

#: environment variable selecting the CLI tracer's seed
SEED_ENV = "REPRO_TRACE_SEED"


class Span:
    """One unit of traced work; created by a :class:`Tracer`."""

    __slots__ = ("name", "span_id", "parent_id", "seq_start", "seq_end",
                 "attrs", "status", "error", "_started", "elapsed")

    def __init__(self, name, span_id, parent_id, seq_start, attrs):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.seq_start = seq_start
        self.seq_end = None
        self.attrs = attrs
        self.status = None          # "ok" / "error" once closed
        self.error = None
        self._started = time.monotonic()
        self.elapsed = None

    @property
    def closed(self):
        return self.seq_end is not None

    def set(self, **attrs):
        """Attach (or overwrite) attributes on an open span."""
        self.attrs.update(attrs)
        return self

    def __repr__(self):
        return "Span(%s#%d %s)" % (self.name, self.span_id,
                                   self.status or "open")


class _NullSpan:
    """Absorbs the span API when no tracer is active."""

    __slots__ = ()

    def set(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager binding one span to the tracer's stack."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer, name, attrs):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span = None

    def __enter__(self):
        self._span = self._tracer.open(self._name, stacked=True,
                                       **self._attrs)
        return self._span

    def __exit__(self, exc_type, exc_value, exc_tb):
        self._tracer.close(self._span, error=exc_value)
        return False


class Tracer:
    """Collects spans and metrics for one traced run.

    *seed* makes the run id (and, together with the logical clock and
    the deterministic export mode, the whole trace) reproducible; None
    draws a random run id.  Finished *and* open spans are reachable
    through :attr:`spans` (in open order), so tests can assert both
    what ran and that everything opened was closed.
    """

    def __init__(self, seed=None):
        self.seed = seed
        if seed is None:
            self.run_id = os.urandom(8).hex()
        else:
            self.run_id = hashlib.sha256(
                ("repro-trace:seed=%r" % seed).encode()).hexdigest()[:16]
        from repro.observability.metrics import MetricsRegistry
        self.metrics = MetricsRegistry()
        self.spans = []             # every span, in open order
        self._stack = []            # context-managed spans only
        self._clock = 0
        self._next_id = 1

    # -- span lifecycle ----------------------------------------------------

    def span(self, name, **attrs):
        """Context manager: open a child of the current stacked span."""
        return _SpanContext(self, name, attrs)

    def open(self, name, parent=None, stacked=False, **attrs):
        """Open a span explicitly (for overlapping, non-nesting work).

        *parent* is an explicit parent :class:`Span`; by default the
        innermost stacked span (if any) is the parent.  The caller owns
        the matching :meth:`close`.
        """
        if parent is None and self._stack:
            parent = self._stack[-1]
        self._clock += 1
        span = Span(name, self._next_id,
                    parent.span_id if parent is not None else None,
                    self._clock, attrs)
        self._next_id += 1
        self.spans.append(span)
        if stacked:
            self._stack.append(span)
        return span

    def close(self, span, error=None, status=None):
        """Close *span*; *error* (an exception) forces status
        ``error`` and records its class name."""
        if span.closed:
            raise RuntimeError("span %r closed twice" % span)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        self._clock += 1
        span.seq_end = self._clock
        span.elapsed = time.monotonic() - span._started
        if error is not None:
            span.status = "error"
            span.error = type(error).__name__
        else:
            span.status = status or "ok"
        return span

    # -- queries -----------------------------------------------------------

    @property
    def open_spans(self):
        return [span for span in self.spans if not span.closed]

    def find(self, name):
        """All spans named *name*, in open order."""
        return [span for span in self.spans if span.name == name]


# --------------------------------------------------------------------------
# The active tracer and the no-op instrumentation helpers.

_active = None


def active():
    """The currently active :class:`Tracer`, or None."""
    return _active


def activate(tracer):
    """Install *tracer* as the process's active tracer."""
    global _active
    _active = tracer
    return tracer


def deactivate():
    """Deactivate (and return) the active tracer."""
    global _active
    tracer, _active = _active, None
    return tracer


class activation:
    """``with activation(seed=0) as tracer: ...`` — scoped activation."""

    def __init__(self, seed=None, tracer=None):
        self.tracer = tracer if tracer is not None else Tracer(seed=seed)
        self._previous = None

    def __enter__(self):
        global _active
        self._previous = _active
        _active = self.tracer
        return self.tracer

    def __exit__(self, *exc_info):
        global _active
        _active = self._previous
        return False


def span(name, **attrs):
    """A span on the active tracer, or a no-op when tracing is off."""
    if _active is None:
        return NULL_SPAN
    return _active.span(name, **attrs)


def add(name, value=1):
    """Increment a counter on the active tracer's registry (no-op when
    tracing is off)."""
    if _active is not None:
        _active.metrics.add(name, value)


def gauge(name, value):
    """Set a gauge on the active tracer's registry (no-op when tracing
    is off)."""
    if _active is not None:
        _active.metrics.gauge(name, value)
