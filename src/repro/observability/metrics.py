"""Counter/gauge metrics registry.

Deliberately small: a counter is a monotonically increasing integer
(cache hits, emulator runs, supervisor retries), a gauge is a
last-write-wins number (pool size, degradation flag).  Metric names
are dotted strings (``cache.hits``, ``supervisor.retries``); the
registry itself imposes no hierarchy — the names are the schema.

A registry is attached to every :class:`~repro.observability.tracing
.Tracer` and exported as the final record of the trace JSONL.  The
counters are *reconcilable by construction*: each instrumented
subsystem increments its counter at the same point it updates its own
bookkeeping (e.g. :class:`~repro.evaluation.parallel.CacheStore`
increments ``cache.hits`` exactly where it increments ``self.hits``),
so the trace-invariant suite can assert exact equality between the
two.
"""

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Named integer counters and float gauges."""

    def __init__(self):
        self.counters = {}
        self.gauges = {}

    def add(self, name, value=1):
        """Increment counter *name* by *value* (default 1)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name, value):
        """Set gauge *name* to *value* (last write wins)."""
        self.gauges[name] = value

    def count(self, name, default=0):
        """Current value of counter *name*."""
        return self.counters.get(name, default)

    def snapshot(self):
        """JSON-ready ``{"counters": ..., "gauges": ...}`` with sorted
        keys (deterministic export)."""
        return {
            "counters": {name: self.counters[name]
                         for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name]
                       for name in sorted(self.gauges)},
        }
