"""Clause normalisation: control constructs to plain clauses.

The BAM clause compiler only understands flat conjunctions of goals.
Disjunction, if-then-else and negation-as-failure are removed here by
lifting them into generated auxiliary predicates — the classical
source-to-source transformation.  The result is a mapping from predicate
indicator to an ordered list of ``(head, [goal, ...])`` pairs.
"""

from repro.terms import Atom, Var, Struct, deref


class NormalizeError(Exception):
    """Raised on goals the compiler cannot handle."""


#: goals compiled inline (do not end a chunk, never become aux predicates)
INLINE_GOALS = {
    ("=", 2), ("\\=", 2), ("is", 2),
    ("<", 2), (">", 2), ("=<", 2), (">=", 2), ("=:=", 2), ("=\\=", 2),
    ("==", 2), ("\\==", 2),
    ("var", 1), ("nonvar", 1), ("atom", 1), ("integer", 1),
    ("atomic", 1), ("number", 1),
    ("write", 1), ("print", 1), ("nl", 0),
    ("true", 0), ("fail", 0), ("false", 0), ("!", 0),
    ("$cut_barrier", 0),
}


def goal_indicator(goal):
    goal = deref(goal)
    if isinstance(goal, Atom):
        return (goal.name, 0)
    if isinstance(goal, Struct):
        return (goal.name, len(goal.args))
    raise NormalizeError("invalid goal: %r" % (goal,))


class Normalizer:
    """Flattens a database's clauses and lifts control constructs."""

    def __init__(self):
        self.predicates = {}   # indicator -> list of (head, [goals])
        self.order = []
        self._aux_counter = 0

    def add_database(self, db):
        for indicator in db.order:
            for clause in db.predicates[indicator]:
                self.add_clause(clause.head, clause.body)
        return self

    def add_clause(self, head, body):
        goals = []
        self._flatten(body, goals)
        indicator = goal_indicator(head)
        if indicator not in self.predicates:
            self.predicates[indicator] = []
            self.order.append(indicator)
        self.predicates[indicator].append((head, goals))

    # -- body flattening --------------------------------------------------

    def _flatten(self, goal, out):
        goal = deref(goal)
        if isinstance(goal, Var):
            raise NormalizeError("unbound goal in clause body")
        if isinstance(goal, Atom) and goal.name == "true":
            return
        if isinstance(goal, Struct) and goal.indicator == (",", 2):
            self._flatten(goal.args[0], out)
            self._flatten(goal.args[1], out)
            return
        if isinstance(goal, Struct) and goal.indicator == (";", 2):
            left = deref(goal.args[0])
            if isinstance(left, Struct) and left.indicator == ("->", 2):
                out.append(self._lift_ite(left.args[0], left.args[1],
                                          goal.args[1]))
            else:
                out.append(self._lift_disj([goal.args[0], goal.args[1]]))
            return
        if isinstance(goal, Struct) and goal.indicator == ("->", 2):
            out.append(self._lift_ite(goal.args[0], goal.args[1],
                                      Atom("fail")))
            return
        if isinstance(goal, Struct) and goal.indicator in (
                ("\\+", 1), ("not", 1)):
            out.append(self._lift_naf(goal.args[0]))
            return
        if isinstance(goal, Struct) and goal.indicator == ("\\=", 2):
            out.append(self._lift_naf(Struct("=", list(goal.args))))
            return
        out.append(goal)

    # -- lifting ----------------------------------------------------------

    def _aux_name(self, kind):
        self._aux_counter += 1
        return "$%s_%d" % (kind, self._aux_counter)

    def _free_vars(self, term, acc):
        term = deref(term)
        if isinstance(term, Var):
            if term not in acc:
                acc.append(term)
        elif isinstance(term, Struct):
            for arg in term.args:
                self._free_vars(arg, acc)
        return acc

    def _make_call(self, name, variables):
        if variables:
            return Struct(name, list(variables))
        return Atom(name)

    def _lift_disj(self, branches):
        variables = []
        for branch in branches:
            self._free_vars(branch, variables)
        name = self._aux_name("disj")
        call = self._make_call(name, variables)
        for branch in branches:
            self.add_clause(call, branch)
        return call

    def _lift_ite(self, cond, then, else_):
        variables = []
        for part in (cond, then, else_):
            self._free_vars(part, variables)
        name = self._aux_name("ite")
        call = self._make_call(name, variables)
        self.add_clause(call, Struct(",", [cond, Struct(",", [
            Atom("!"), then])]))
        self.add_clause(call, else_)
        return call

    def _lift_naf(self, goal):
        variables = self._free_vars(goal, [])
        name = self._aux_name("naf")
        call = self._make_call(name, variables)
        self.add_clause(call, Struct(",", [goal, Struct(",", [
            Atom("!"), Atom("fail")])]))
        self.add_clause(call, Atom("true"))
        return call
