"""Predicate-level compilation: indexing and choice-point chains.

For each predicate we build a dispatch tree on the first argument
(switch-on-tag, then switch-on-constant / switch-on-functor when it pays),
which is the determinism-extraction device of the front-end: a dispatch
leaf containing a single clause runs without creating a choice point.
Multi-clause leaves get a classical try/retry/trust chain built from a
:class:`~repro.bam.instructions.Try` plus per-alternative retry stubs.
"""

from repro.terms import Atom, Int, Var, Struct, deref, tags
from repro.bam import instructions as bam
from repro.bam.clauses import compile_clause

#: marker understood by the translator: reset per-clause temp registers
NEW_CLAUSE = "NEW_CLAUSE"

_TAG_ORDER = (tags.TATM, tags.TINT, tags.TLST, tags.TSTR)


def first_arg_pattern(head):
    """Classify a clause head's first argument for indexing.

    Returns None (variable / no argument), ``('atm', name)``,
    ``('int', value)``, ``('lst',)`` or ``('str', (name, arity))``.
    """
    head = deref(head)
    if not isinstance(head, Struct):
        return None
    arg = deref(head.args[0])
    if isinstance(arg, Var):
        return None
    if isinstance(arg, Atom):
        return ("atm", arg.name)
    if isinstance(arg, Int):
        return ("int", arg.value)
    if isinstance(arg, Struct):
        if arg.name == "." and arg.arity == 2:
            return ("lst",)
        return ("str", (arg.name, arg.arity))
    return None


class CompilerOptions:
    """Front-end feature switches.

    The defaults are the BAM-style compiler of the paper.  Disabling
    ``indexing`` and ``lco`` yields a naive Warren-style baseline (plain
    try/retry/trust chains, every call returns), used to reproduce the
    section 2 claim that the BAM's "model improvement ... and more
    sophisticated compiler optimizations" buy a substantial factor.
    """

    def __init__(self, indexing=True, lco=True):
        self.indexing = indexing
        self.lco = lco


class PredicateCompiler:
    """Compiles all clauses of one predicate into a BAM stream."""

    def __init__(self, name, arity, clauses, symbols, options=None):
        self.name = name
        self.arity = arity
        self.clauses = clauses            # list of (head, goals)
        self.symbols = symbols
        self.options = options or CompilerOptions()
        self.out = []
        self._chain_labels = {}           # tuple(indices) -> label
        self._chains_pending = []
        self._deferred = []               # second-level dispatch code
        self._stub_counter = 0

    def _label(self, suffix):
        return "%s:%s/%d" % (suffix, self.name, self.arity)

    def clause_label(self, index):
        return "C%d:%s/%d" % (index, self.name, self.arity)

    # -- chains ------------------------------------------------------------

    def chain_label(self, indices):
        """Label of the code trying clauses *indices* in order, creating
        the chain lazily (chains are shared between dispatch leaves)."""
        indices = tuple(indices)
        if not indices:
            return "$fail"
        if len(indices) == 1:
            return self.clause_label(indices[0])
        label = self._chain_labels.get(indices)
        if label is None:
            label = "H%d:%s/%d" % (len(self._chain_labels), self.name,
                                   self.arity)
            self._chain_labels[indices] = label
            self._chains_pending.append((label, indices))
        return label

    def _emit_chain(self, label, indices):
        stubs = []
        for position in range(1, len(indices)):
            self._stub_counter += 1
            stubs.append("R%d:%s/%d" % (self._stub_counter, self.name,
                                        self.arity))
        self.out.append(bam.Label(label))
        self.out.append(bam.Try(self.arity, stubs[0]))
        self.out.append(bam.Jump(self.clause_label(indices[0])))
        for position in range(1, len(indices)):
            next_label = stubs[position] if position < len(indices) - 1 \
                else None
            self.out.append(bam.Label(stubs[position - 1]))
            self.out.append(bam.RetryStub(
                self.arity, next_label,
                self.clause_label(indices[position])))

    # -- dispatch ------------------------------------------------------------

    def compile(self):
        entry = bam.predicate_label(self.name, self.arity)
        self.out.append(bam.Label(entry))
        self.out.append(bam.SetB0())

        patterns = [first_arg_pattern(head) for head, _ in self.clauses]
        all_indices = list(range(len(self.clauses)))
        indexable = (self.options.indexing
                     and self.arity > 0 and len(self.clauses) > 1
                     and any(p is not None for p in patterns))

        if not indexable:
            target = self.chain_label(all_indices)
            if target != "$fail":
                self.out.append(bam.Jump(target))
        else:
            self._emit_dispatch(patterns, all_indices)

        self._flush_chains()
        for index, (head, goals) in enumerate(self.clauses):
            self.out.append(bam.Label(self.clause_label(index)))
            self.out.append(NEW_CLAUSE)
            self.out.extend(compile_clause(head, goals,
                                           first_arg_derefed=indexable,
                                           lco=self.options.lco))
            self._flush_chains()
        return self.out

    def _flush_chains(self):
        while self._chains_pending:
            label, indices = self._chains_pending.pop(0)
            self._emit_chain(label, indices)

    def _emit_dispatch(self, patterns, all_indices):
        self.out.append(bam.DerefReg("a0"))
        var_indices = [i for i, p in enumerate(patterns) if p is None]

        tag_of_kind = {"atm": tags.TATM, "int": tags.TINT,
                       "lst": tags.TLST, "str": tags.TSTR}
        by_tag = {tag: [] for tag in _TAG_ORDER}
        for index, pattern in enumerate(patterns):
            if pattern is None:
                for tag in _TAG_ORDER:
                    by_tag[tag].append(index)
            else:
                by_tag[tag_of_kind[pattern[0]]].append(index)

        cases = [(tags.TREF, self.chain_label(all_indices))]
        for tag in _TAG_ORDER:
            indices = by_tag[tag]
            if not indices:
                continue
            if tag in (tags.TATM, tags.TINT):
                label = self._constant_dispatch(tag, patterns, indices,
                                                var_indices)
            elif tag == tags.TSTR:
                label = self._functor_dispatch(patterns, indices,
                                               var_indices)
            else:
                label = self.chain_label(indices)
            cases.append((tag, label))
        self.out.append(bam.SwitchOnTag("a0", cases, "$fail"))
        self.out.extend(self._deferred)
        self._deferred = []

    def _constant_dispatch(self, tag, patterns, indices, var_indices):
        """Second-level dispatch on the atom/integer value, when several
        distinct constants appear."""
        constants = []
        for index in indices:
            pattern = patterns[index]
            if pattern is not None and pattern[1] not in constants:
                constants.append(pattern[1])
        if len(constants) < 2:
            return self.chain_label(indices)
        label = self._label("S%d" % tag)
        self._deferred.append(bam.Label(label))
        cases = []
        for constant in constants:
            chain = [i for i in indices
                     if patterns[i] is None or patterns[i][1] == constant]
            if tag == tags.TATM:
                word = tags.pack(self.symbols.atom(constant), tags.TATM)
            else:
                word = tags.pack(constant, tags.TINT)
            cases.append((word, self.chain_label(chain)))
        self._deferred.append(bam.SwitchOnConstant(
            "a0", cases, self.chain_label(var_indices)))
        return label

    def _functor_dispatch(self, patterns, indices, var_indices):
        functors = []
        for index in indices:
            pattern = patterns[index]
            if pattern is not None and pattern[1] not in functors:
                functors.append(pattern[1])
        if len(functors) < 2:
            return self.chain_label(indices)
        label = self._label("SF")
        self._deferred.append(bam.Label(label))
        cases = []
        for functor in functors:
            chain = [i for i in indices
                     if patterns[i] is None or patterns[i][1] == functor]
            cases.append((functor, self.chain_label(chain)))
        self._deferred.append(bam.SwitchOnFunctor(
            "a0", cases, self.chain_label(var_indices)))
        return label
