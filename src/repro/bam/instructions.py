"""The BAM-like intermediate representation.

One level above the ICI: instructions still know about Prolog (unification,
choice points, environments) but all of them expand into short fixed
sequences of primitive ICIs (:mod:`repro.intcode.translate`).  The set is
modelled on the Berkeley Abstract Machine's instruction groups — procedural
control, conditional control (switch/test), unification, choice-point
management — specialised to what our front-end generates.
"""


class BamInstr:
    __slots__ = ()

    def __repr__(self):
        fields = ", ".join("%s=%r" % (name, getattr(self, name))
                           for name in self.__slots__)
        return "%s(%s)" % (type(self).__name__, fields)


class Label(BamInstr):
    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name


class Jump(BamInstr):
    __slots__ = ("label",)

    def __init__(self, label):
        self.label = label


class DerefReg(BamInstr):
    """Dereference an argument register in place (indexing prelude)."""

    __slots__ = ("reg",)

    def __init__(self, reg):
        self.reg = reg


class SwitchOnTag(BamInstr):
    """Multi-way dispatch on the tag of *reg*; ``cases`` maps tag->label."""

    __slots__ = ("reg", "cases", "default")

    def __init__(self, reg, cases, default):
        self.reg = reg
        self.cases = cases
        self.default = default


class SwitchOnConstant(BamInstr):
    """Dispatch on the full word value of *reg* (atoms/integers)."""

    __slots__ = ("reg", "cases", "default")

    def __init__(self, reg, cases, default):
        self.reg = reg
        self.cases = cases  # list of (packed word, label)
        self.default = default


class SwitchOnFunctor(BamInstr):
    """Dispatch on the functor word of the structure pointed to by *reg*."""

    __slots__ = ("reg", "cases", "default")

    def __init__(self, reg, cases, default):
        self.reg = reg
        self.cases = cases  # list of ((name, arity), label)
        self.default = default


class SetB0(BamInstr):
    """Record the current choice point as the procedure's cut barrier."""

    __slots__ = ()


class Try(BamInstr):
    """Create a choice point saving ``arity`` argument registers; the
    next alternative is at ``retry_label``."""

    __slots__ = ("arity", "retry_label")

    def __init__(self, arity, retry_label):
        self.arity = arity
        self.retry_label = retry_label


class RetryStub(BamInstr):
    """Re-entry stub: restore arguments from the choice point, update the
    retry slot (or pop the frame when ``next_label`` is None) and jump to
    ``clause_label``."""

    __slots__ = ("arity", "next_label", "clause_label")

    def __init__(self, arity, next_label, clause_label):
        self.arity = arity
        self.next_label = next_label
        self.clause_label = clause_label


class Allocate(BamInstr):
    """Push an environment frame with *nslots* permanent slots."""

    __slots__ = ("nslots",)

    def __init__(self, nslots):
        self.nslots = nslots


class Deallocate(BamInstr):
    __slots__ = ()


class StoreCutBarrier(BamInstr):
    """Save the B0 register (choice point at procedure entry) into
    permanent slot *slot*, for cuts that follow a call."""

    __slots__ = ("slot",)

    def __init__(self, slot):
        self.slot = slot


class Cut(BamInstr):
    """Discard choice points newer than the procedure entry.  ``slot`` is
    an environment slot index, or None when B0 is still live in its
    register."""

    __slots__ = ("slot",)

    def __init__(self, slot):
        self.slot = slot


class Get(BamInstr):
    """Unify argument register *reg* with the head descriptor *desc*.

    ``derefed`` records that the register is already dereferenced (the
    predicate's indexing prelude did it), so the expansion skips the
    redundant pointer-chasing loop.
    """

    __slots__ = ("desc", "reg", "derefed")

    def __init__(self, desc, reg, derefed=False):
        self.desc = desc
        self.reg = reg
        self.derefed = derefed


class Put(BamInstr):
    """Build/fetch the value of *desc* into register *reg*."""

    __slots__ = ("desc", "reg")

    def __init__(self, desc, reg):
        self.desc = desc
        self.reg = reg


class UnifyVals(BamInstr):
    """General unification of two descriptors (the ``=``/2 builtin and
    non-first variable occurrences)."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self.left = left
        self.right = right


class Arith(BamInstr):
    """``dst_desc is expr`` — evaluate and assign/unify."""

    __slots__ = ("dst", "expr")

    def __init__(self, dst, expr):
        self.dst = dst
        self.expr = expr


class ArithTest(BamInstr):
    """Arithmetic comparison; fails to the backtracking handler."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        self.op = op  # '<', '>', '=<', '>=', '=:=', '=\\='
        self.left = left
        self.right = right


class TypeTest(BamInstr):
    """``var/nonvar/atom/integer/atomic`` type test on a descriptor."""

    __slots__ = ("kind", "desc")

    def __init__(self, kind, desc):
        self.kind = kind
        self.desc = desc


class StructEqTest(BamInstr):
    """``==``/``\\==`` structural comparison (no binding)."""

    __slots__ = ("negated", "left", "right")

    def __init__(self, negated, left, right):
        self.negated = negated
        self.left = left
        self.right = right


class Call(BamInstr):
    __slots__ = ("name", "arity")

    def __init__(self, name, arity):
        self.name = name
        self.arity = arity


class Execute(BamInstr):
    """Tail call (last-call optimisation)."""

    __slots__ = ("name", "arity")

    def __init__(self, name, arity):
        self.name = name
        self.arity = arity


class Proceed(BamInstr):
    """Return through the continuation register."""

    __slots__ = ()


class Escape(BamInstr):
    """Host escape (program output: ``write``, ``nl``)."""

    __slots__ = ("service", "desc")

    def __init__(self, service, desc=None):
        self.service = service
        self.desc = desc


class FailInstr(BamInstr):
    """Unconditional failure."""

    __slots__ = ()


def predicate_label(name, arity):
    """The code label of a predicate's entry point."""
    return "P:%s/%d" % (name, arity)
