"""BAM-like abstract machine: IR, clause compiler, predicate indexing."""

from repro.bam.compile import compile_source, compile_database, BamModule, \
    CompileError
from repro.bam.normalize import Normalizer, NormalizeError
from repro.bam.clauses import compile_clause, ClauseCompiler
from repro.bam.predicates import (
    PredicateCompiler, CompilerOptions, first_arg_pattern)
from repro.bam import instructions
from repro.bam import descriptors

__all__ = [
    "compile_source",
    "compile_database",
    "BamModule",
    "CompileError",
    "Normalizer",
    "NormalizeError",
    "compile_clause",
    "ClauseCompiler",
    "PredicateCompiler",
    "CompilerOptions",
    "first_arg_pattern",
    "instructions",
    "descriptors",
]
