"""Clause compilation: normalised clauses to BAM instructions.

Performs the WAM/BAM-style variable classification (temporary versus
permanent, by chunk analysis), descriptor construction with first-occurrence
marking, environment management, cut-barrier placement and last-call
optimisation.
"""

from repro.terms import Atom, Int, Var, Struct, deref
from repro.bam import instructions as bam
from repro.bam.descriptors import (
    VarLoc, DAtom, DInt, DVar, DList, DStruct)
from repro.bam.normalize import goal_indicator

#: body goals compiled inline; all others are predicate calls ending a chunk
_ARITH_TESTS = {"<", ">", "=<", ">=", "=:=", "=\\="}
_TYPE_TESTS = {"var", "nonvar", "atom", "integer", "atomic", "number"}


class ClauseCompileError(Exception):
    pass


def _is_call(goal):
    indicator = goal_indicator(goal)
    name, arity = indicator
    if indicator == ("!", 0) or name in ("true", "fail", "false"):
        return False
    if indicator in (("=", 2), ("is", 2), ("==", 2), ("\\==", 2)):
        return False
    if arity == 2 and name in _ARITH_TESTS:
        return False
    if arity == 1 and name in _TYPE_TESTS:
        return False
    if indicator in (("write", 1), ("print", 1), ("nl", 0)):
        return False
    return True


class _VarInfo:
    __slots__ = ("chunks", "loc")

    def __init__(self):
        self.chunks = set()
        self.loc = None


class ClauseCompiler:
    """Compiles one ``(head, goals)`` clause to a BAM instruction list."""

    def __init__(self, head, goals, first_arg_derefed=False, lco=True):
        self.head = deref(head)
        self.goals = [deref(g) for g in goals]
        #: the predicate's indexing prelude already dereferenced a0
        self.first_arg_derefed = first_arg_derefed
        #: last-call optimisation (tail calls become jumps)
        self.lco = lco
        self.vars = {}          # id(Var) -> _VarInfo
        self._var_order = []    # first-occurrence order
        self._seen = set()      # occurrence marking during descriptor build
        self._temp_count = 0
        self.cut_slot = None
        self.needs_env = False
        self.nslots = 0

    # -- analysis ---------------------------------------------------------

    def _scan_term(self, term, chunk):
        term = deref(term)
        if isinstance(term, Var):
            info = self.vars.get(id(term))
            if info is None:
                info = _VarInfo()
                self.vars[id(term)] = info
                self._var_order.append(term)
            info.chunks.add(chunk)
        elif isinstance(term, Struct):
            for arg in term.args:
                self._scan_term(arg, chunk)

    def analyse(self):
        """Chunk analysis and slot assignment."""
        chunk = 0
        head_args = self.head.args if isinstance(self.head, Struct) else []
        for arg in head_args:
            self._scan_term(arg, chunk)
        calls_seen = 0
        call_followed_by_goal = False
        cut_after_call = False
        for index, goal in enumerate(self.goals):
            if goal_indicator(goal) == ("!", 0):
                if chunk > 0:
                    cut_after_call = True
                continue
            self._scan_term(goal, chunk)
            if _is_call(goal):
                calls_seen += 1
                if index < len(self.goals) - 1:
                    call_followed_by_goal = True
                chunk += 1

        perms = [v for v in self._var_order
                 if len(self.vars[id(v)].chunks) > 1]
        for index, var in enumerate(perms):
            self.vars[id(var)].loc = VarLoc(VarLoc.PERM, index, var.name)
        for var in self._var_order:
            info = self.vars[id(var)]
            if info.loc is None:
                info.loc = VarLoc(VarLoc.TEMP, self._temp_count, var.name)
                self._temp_count += 1

        self.nslots = len(perms)
        if cut_after_call:
            self.cut_slot = self.nslots
            self.nslots += 1
        self.needs_env = (self.nslots > 0) or call_followed_by_goal
        if not self.lco and calls_seen > 0:
            # Without last-call optimisation every call returns here, so
            # the continuation must be saved in an environment.
            self.needs_env = True
        return self

    # -- descriptor construction -------------------------------------------

    def _desc(self, term):
        term = deref(term)
        if isinstance(term, Atom):
            return DAtom(term.name)
        if isinstance(term, Int):
            return DInt(term.value)
        if isinstance(term, Var):
            first = id(term) not in self._seen
            self._seen.add(id(term))
            return DVar(self.vars[id(term)].loc, first)
        if isinstance(term, Struct):
            if term.name == "." and term.arity == 2:
                head = self._desc(term.args[0])
                tail = self._desc(term.args[1])
                return DList(head, tail)
            return DStruct(term.name, [self._desc(a) for a in term.args])
        raise ClauseCompileError("cannot compile term %r" % (term,))

    # -- emission ------------------------------------------------------------

    def compile(self):
        self.analyse()
        out = []
        if self.needs_env:
            out.append(bam.Allocate(self.nslots))
        if self.cut_slot is not None:
            out.append(bam.StoreCutBarrier(self.cut_slot))

        head_args = self.head.args if isinstance(self.head, Struct) else []
        for index, arg in enumerate(head_args):
            derefed = index == 0 and self.first_arg_derefed
            out.append(bam.Get(self._desc(arg), "a%d" % index, derefed))

        last_index = len(self.goals) - 1
        for index, goal in enumerate(self.goals):
            is_last = index == last_index
            self._compile_goal(goal, is_last, out)
            if out and isinstance(out[-1], bam.FailInstr):
                break  # everything after an unconditional fail is dead

        if not out or not isinstance(out[-1], (bam.Execute, bam.Proceed,
                                               bam.FailInstr)):
            if self.needs_env:
                out.append(bam.Deallocate())
            out.append(bam.Proceed())
        return out

    def _compile_goal(self, goal, is_last, out):
        indicator = goal_indicator(goal)
        name, arity = indicator
        args = goal.args if isinstance(goal, Struct) else []

        if indicator == ("!", 0):
            out.append(bam.Cut(self.cut_slot))
            return
        if indicator in (("fail", 0), ("false", 0)):
            out.append(bam.FailInstr())
            return
        if indicator == ("true", 0):
            return
        if indicator == ("=", 2):
            out.append(bam.UnifyVals(self._desc(args[0]),
                                     self._desc(args[1])))
            return
        if indicator == ("is", 2):
            expr = self._desc(args[1])
            dst = self._desc(args[0])
            out.append(bam.Arith(dst, expr))
            return
        if arity == 2 and name in _ARITH_TESTS:
            out.append(bam.ArithTest(name, self._desc(args[0]),
                                     self._desc(args[1])))
            return
        if indicator == ("==", 2):
            out.append(bam.StructEqTest(False, self._desc(args[0]),
                                        self._desc(args[1])))
            return
        if indicator == ("\\==", 2):
            out.append(bam.StructEqTest(True, self._desc(args[0]),
                                        self._desc(args[1])))
            return
        if arity == 1 and name in _TYPE_TESTS:
            kind = "integer" if name == "number" else name
            out.append(bam.TypeTest(kind, self._desc(args[0])))
            return
        if indicator in (("write", 1), ("print", 1)):
            out.append(bam.Escape("write", self._desc(args[0])))
            return
        if indicator == ("nl", 0):
            out.append(bam.Escape("nl"))
            return

        # A predicate call.
        for index, arg in enumerate(args):
            out.append(bam.Put(self._desc(arg), "a%d" % index))
        if is_last and self.lco:
            if self.needs_env:
                out.append(bam.Deallocate())
            out.append(bam.Execute(name, arity))
        else:
            out.append(bam.Call(name, arity))


def compile_clause(head, goals, first_arg_derefed=False, lco=True):
    return ClauseCompiler(head, goals, first_arg_derefed, lco).compile()
