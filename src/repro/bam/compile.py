"""Front-end driver: Prolog source to a BAM module.

``compile_source`` parses and normalises a program, runs the predicate
compiler over every predicate, and returns a :class:`BamModule` ready for
:func:`repro.intcode.translate.translate_module`.
"""

from repro.terms import SymbolTable
from repro.interp.database import Database
from repro.bam.normalize import Normalizer
from repro.bam.predicates import PredicateCompiler, CompilerOptions
from repro.bam import instructions as bam


class CompileError(Exception):
    pass


class BamModule:
    """A compiled program at the BAM level."""

    def __init__(self, preds, order, symbols, entry):
        self.preds = preds      # indicator -> list of BAM instrs / markers
        self.order = order
        self.symbols = symbols
        self.entry = entry      # (name, arity) of the query predicate

    def listing(self):
        lines = []
        for indicator in self.order:
            lines.append("%% %s/%d" % indicator)
            for item in self.preds[indicator]:
                if isinstance(item, bam.Label):
                    lines.append("%s:" % item.name)
                elif isinstance(item, str):
                    lines.append("  ; %s" % item)
                else:
                    lines.append("    %r" % (item,))
        return "\n".join(lines)

    def check_calls(self):
        """Verify that every called predicate is defined."""
        defined = set(self.order)
        missing = set()
        for instrs in self.preds.values():
            for item in instrs:
                if isinstance(item, (bam.Call, bam.Execute)):
                    if (item.name, item.arity) not in defined:
                        missing.add((item.name, item.arity))
        if self.entry not in defined:
            missing.add(self.entry)
        if missing:
            raise CompileError(
                "undefined predicates: "
                + ", ".join("%s/%d" % m for m in sorted(missing)))


def compile_database(db, entry=("main", 0), symbols=None, options=None):
    """Compile a consulted :class:`~repro.interp.database.Database`."""
    symbols = symbols if symbols is not None else SymbolTable()
    options = options or CompilerOptions()
    normalizer = Normalizer().add_database(db)
    preds = {}
    for indicator in normalizer.order:
        name, arity = indicator
        clauses = normalizer.predicates[indicator]
        preds[indicator] = PredicateCompiler(
            name, arity, clauses, symbols, options).compile()
    module = BamModule(preds, list(normalizer.order), symbols, entry)
    module.check_calls()
    return module


def compile_source(text, entry=("main", 0), symbols=None, options=None):
    """Compile Prolog source text to a :class:`BamModule`.

    Directives in the source are ignored (the suite's programs define a
    ``main/0`` goal instead).  *options* is a
    :class:`~repro.bam.predicates.CompilerOptions` (defaults to the full
    BAM-style feature set).
    """
    db = Database()
    db.consult(text)
    return compile_database(db, entry, symbols, options)
