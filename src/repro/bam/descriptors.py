"""Term descriptors used by the BAM intermediate representation.

The BAM compiler resolves every source variable to a *location* (an
argument-passing temporary or a permanent environment slot) and marks each
occurrence as first or subsequent.  The resulting descriptor trees drive
the read/write-mode expansion in :mod:`repro.intcode.translate` without
any further source-level analysis.
"""


class VarLoc:
    """Where a clause variable lives: a temporary or an environment slot."""

    __slots__ = ("kind", "index", "name")

    TEMP = "temp"
    PERM = "perm"

    def __init__(self, kind, index, name):
        self.kind = kind
        self.index = index
        self.name = name  # source name, for listings

    @property
    def is_perm(self):
        return self.kind == VarLoc.PERM

    def __repr__(self):
        prefix = "Y" if self.kind == VarLoc.PERM else "T"
        return "%s%d(%s)" % (prefix, self.index, self.name)


class Desc:
    """Base class of descriptor nodes."""

    __slots__ = ()


class DAtom(Desc):
    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return "DAtom(%r)" % self.name


class DInt(Desc):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return "DInt(%d)" % self.value


class DVar(Desc):
    """An occurrence of a clause variable.

    ``first`` is True at the variable's earliest occurrence in the
    clause's left-to-right linearisation — the occurrence that *defines*
    the location.
    """

    __slots__ = ("loc", "first")

    def __init__(self, loc, first):
        self.loc = loc
        self.first = first

    def __repr__(self):
        return "DVar(%r, first=%s)" % (self.loc, self.first)


class DList(Desc):
    __slots__ = ("head", "tail")

    def __init__(self, head, tail):
        self.head = head
        self.tail = tail

    def __repr__(self):
        return "DList(%r, %r)" % (self.head, self.tail)


class DStruct(Desc):
    __slots__ = ("name", "args")

    def __init__(self, name, args):
        self.name = name
        self.args = args

    @property
    def arity(self):
        return len(self.args)

    def __repr__(self):
        return "DStruct(%r, %r)" % (self.name, self.args)


def desc_vars(desc):
    """Yield every DVar occurrence in *desc*, left to right."""
    stack = [desc]
    while stack:
        node = stack.pop(0)
        if isinstance(node, DVar):
            yield node
        elif isinstance(node, DList):
            stack[:0] = [node.head, node.tail]
        elif isinstance(node, DStruct):
            stack[:0] = list(node.args)
