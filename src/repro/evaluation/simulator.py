"""Timing replay: dynamic profile through static schedules.

The sequential emulator executes the (transformed) program once and
records exact entry and exit counts per region.  Since every region has a
single entry and statically known exit costs, total machine cycles follow
by replaying those counts through each region's schedule:

``cycles = sum over regions of
    sum over exits e of  count(e) * exit_cost(e)
  + fall_through_count * region_length``

Exit cost is the exit's issue cycle plus the taken-transfer penalty of the
machine model (control-pipeline refill minus filled delay slots).  The
same formula with the in-order schedule gives the sequential baseline, so
all reported speedups share one set of timing hypotheses (the paper's
section 4.3 list).
"""

from repro.intcode.ici import BRANCH_OPS, JUMP_OPS


class RegionTiming:
    """Cycle accounting for one region under one schedule."""

    def __init__(self, region, schedule, entries, cycles):
        self.region = region
        self.schedule = schedule
        self.entries = entries
        self.cycles = cycles


def replay_region(program, region, schedule, counts, taken):
    """Cycles spent in *region* given the dynamic profile."""
    entries = counts[region.start]
    if entries == 0:
        return 0
    total = 0
    exits = 0
    for position in range(region.size):
        pc = region.start + position
        op = program.instructions[pc].op
        if op in BRANCH_OPS:
            exit_count = taken[pc]
        elif op in JUMP_OPS:
            exit_count = counts[pc]
        else:
            continue
        if exit_count:
            total += exit_count * schedule.exit_cost(position)
            exits += exit_count
    fall = entries - exits
    if fall > 0:
        total += fall * schedule.fall_through_cost
    if fall < 0:
        raise AssertionError(
            "region %r: more exits (%d) than entries (%d)"
            % (region, exits, entries))
    return total


def replay_program(program, regions, schedules, counts, taken):
    """Total machine cycles for the whole program."""
    total = 0
    for region, schedule in zip(regions, schedules):
        total += replay_region(program, region, schedule, counts, taken)
    return total


def dynamic_region_stats(program, regions, counts):
    """Execution-weighted average region length (the paper's Table 1
    "Average Length" column) and the number of dynamic region entries."""
    total_ops = 0
    total_entries = 0
    for region in regions:
        entries = counts[region.start]
        if entries:
            total_entries += entries
            total_ops += entries * region.size
    if total_entries == 0:
        return 0.0, 0
    return total_ops / total_entries, total_entries
