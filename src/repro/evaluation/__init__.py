"""VLIW evaluation: timing replay, pipeline, prototype model."""

from repro.evaluation.simulator import (
    replay_region, replay_program, dynamic_region_stats)
from repro.evaluation.pipeline import (
    RegionSet, basic_block_regions, superblock_regions, machine_cycles,
    evaluate_benchmark, BenchmarkEvaluation)
from repro.evaluation.parallel import (
    EvaluationEngine, EvaluationError, CacheStore, shared_engine,
    configure)
from repro.evaluation.supervisor import (
    EvaluationReport, Supervisor, SupervisorPolicy)

__all__ = [
    "replay_region",
    "replay_program",
    "dynamic_region_stats",
    "RegionSet",
    "basic_block_regions",
    "superblock_regions",
    "machine_cycles",
    "evaluate_benchmark",
    "BenchmarkEvaluation",
    "EvaluationEngine",
    "EvaluationError",
    "EvaluationReport",
    "CacheStore",
    "Supervisor",
    "SupervisorPolicy",
    "shared_engine",
    "configure",
]
