"""Parallel evaluation engine with a content-addressed result cache.

The paper's evaluation is an embarrassingly parallel sweep: every
benchmark x machine-configuration x regioning cell of Tables 1-5 and
Figures 2-6 is independent.  This module decomposes one benchmark
evaluation into a small task DAG

    profile  (emulate the compiled program)
      -> regions  (cut it into basic blocks / superblocks, re-emulate)
        -> cell   (schedule every executed region for one machine
                   configuration and replay the profile)

and runs the DAGs of many benchmarks side by side on a
:class:`concurrent.futures.ProcessPoolExecutor`.  Every node's result is
memoised in a **content-addressed store**: the cache key is a hash of

* the compiled program's fingerprint (so editing a benchmark or the
  compiler invalidates exactly the programs whose code changed),
* the transform parameters (regioning kind; tail-duplication budget for
  trace regions — basic-block artefacts do not depend on the budget),
* the machine configuration's semantic fields (its display name is
  excluded, so two differently-named identical configs share cells), and
* a per-stage *code version* — a digest of the source files whose
  behaviour the artefact depends on.  Touching the scheduler invalidates
  only ``cell`` artefacts; profiles and region layouts survive.

Verification status is part of the cached artefact, not a cache bypass:
an artefact computed under the independent checker is stored with
``verified: true`` and serves both verified and unverified requests; an
unverified artefact is transparently recomputed (and upgraded) when a
verified result is requested.

Failures are contained per cell — and, since PR 4, *supervised*: every
task runs under the resilience layer in
:mod:`repro.evaluation.supervisor` (per-task deadlines with a watchdog,
bounded retry with deterministic backoff, pool resurrection after
``BrokenProcessPool``, graceful degradation to in-process execution,
cooperative SIGINT/SIGTERM cancellation).  A cell that still fails
after every retry marks its dependents failed, the rest of the sweep
completes, and the engine raises :class:`EvaluationError` naming every
failed cell; the per-cell outcomes are recorded in the engine's
:class:`~repro.evaluation.supervisor.EvaluationReport`.  With
``jobs=1`` the engine runs every task in-process (no pool), which
keeps ``pdb`` and coverage usable.

Cache artefact writes are crash-safe (temp file + fsync + atomic
rename via :mod:`repro.atomicio`) and serialised by per-key advisory
locks, so concurrent CLI runs sharing one cache directory never
clobber each other.  The store itself is pluggable — see
:mod:`repro.evaluation.cache` for the single-directory and sharded
backends and :func:`~repro.evaluation.cache.open_store`.  The
deterministic fault-injection sites the chaos suite drives
(``parallel.task``, ``cache.read``, ``cache.write``,
``cache.shard``) are described in :mod:`repro.testing.faults`.
"""

import hashlib
import os
import traceback
from concurrent.futures import ProcessPoolExecutor

from repro.benchmarks.suite import (
    compile_benchmark, program_fingerprint, run_program_cached)
from repro.emulator import resolve_backend
# Re-exported for compatibility: the store grew into its own module.
from repro.evaluation.cache import (        # noqa: F401
    CACHE_SCHEMA, CacheStore, ShardedCacheStore, open_store)
from repro.evaluation.supervisor import (
    EvaluationReport, Supervisor, SupervisorPolicy, kill_pool)
from repro.observability import tracing as obs
from repro.testing import faults

__all__ = [
    "CACHE_SCHEMA",
    "CacheStore",
    "EvaluationEngine",
    "EvaluationError",
    "EvaluationReport",
    "ShardedCacheStore",
    "SupervisorPolicy",
    "code_version",
    "config_signature",
    "configure",
    "memoised",
    "open_store",
    "shared_engine",
]

_JOBS_ENV = "REPRO_JOBS"


# --------------------------------------------------------------------------
# Cache keys: config signatures and code versions.

def config_signature(config):
    """The semantic fields of a :class:`MachineConfig` as a JSON value.

    The display name is deliberately excluded: it does not affect any
    computed cycle count, so renaming a configuration (or giving the
    same parameters two names in different experiments) keeps the cache
    warm.
    """
    fields = {key: value for key, value in vars(config).items()
              if key != "name"}
    return fields


#: source files each artefact kind depends on, relative to the package
#: root.  A change to a file invalidates the kinds that list it — and
#: only those: editing the scheduler leaves profiles and region layouts
#: cached.
_PROFILE_FILES = (
    "emulator/machine.py",
    "intcode/runtime.py",
    "intcode/layout.py",
)
#: the threaded and codegen backends are implementation details with a
#: bit-identical output contract, so editing them (or switching
#: backends — the active backend is a key component of profile nodes)
#: invalidates only profile artefacts: region layouts and cycle cells
#: consume profile *data*, which every backend produces identically.
_PROFILE_ONLY_FILES = _PROFILE_FILES + ("emulator/threaded.py",
                                        "emulator/codegen.py")
_REGION_FILES = _PROFILE_FILES + (
    "compaction/transform.py",
    "analysis/cfg.py",
    "evaluation/simulator.py",
)
_CELL_FILES = _REGION_FILES + (
    "compaction/scheduler.py",
    "compaction/machine_model.py",
    "analysis/dependence.py",
    "analysis/dataflow.py",
    "analysis/liveness.py",
    "evaluation/pipeline.py",
)
_COMPONENT_FILES = {
    "profile": _PROFILE_ONLY_FILES,
    "regions": _REGION_FILES,
    "cell": _CELL_FILES,
    # experiment-level cells (see the callers in repro.experiments)
    "dataflow": _PROFILE_FILES + ("evaluation/dynamic.py",),
    "pressure": _CELL_FILES + ("compaction/regalloc.py",),
    "wam": _CELL_FILES,
    # the static dataflow-limit bound (repro.experiments.static_ilp)
    "static_ilp": _CELL_FILES,
    # the codegen backend's persisted compiled artefacts — keyed on the
    # generator + the decode/layout contract it bakes into the source
    "codegen": ("emulator/machine.py", "emulator/threaded.py",
                "emulator/codegen.py", "intcode/layout.py"),
    # whole-request results memoised by the evaluation service: they
    # wrap cell/verify/analyze outputs, so they depend on everything a
    # cell depends on plus the service's own result shaping
    "serve": _CELL_FILES + ("serve/ops.py",),
    # answer-memo entries of the or-parallel search engine: canonical
    # (predicate, call-pattern) fingerprints map to rendered answer
    # lists, so they depend on the whole term/reader/interpreter stack
    # that produces and replays those renderings
    "orparallel": ("interp/engine.py", "interp/orparallel.py",
                   "interp/database.py", "interp/unify.py",
                   "terms/term.py", "reader/lexer.py",
                   "reader/parser.py", "reader/operators.py"),
}

_PACKAGE_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_code_versions = {}


def code_version(kind):
    """Digest of the source files artefacts of *kind* depend on."""
    version = _code_versions.get(kind)
    if version is None:
        digest = hashlib.sha256()
        for relative in _COMPONENT_FILES[kind]:
            digest.update(relative.encode())
            path = os.path.join(_PACKAGE_ROOT, relative)
            try:
                with open(path, "rb") as handle:
                    digest.update(handle.read())
            except OSError:
                digest.update(b"<missing>")
        version = digest.hexdigest()[:16]
        _code_versions[kind] = version
    return version


# --------------------------------------------------------------------------
# Content-addressed memoisation (the store lives in evaluation.cache).

def memoised(kind, components, compute, store=None, use_cache=True):
    """Single-flight content-addressed memoisation.

    *components* identifies the inputs (fingerprints, parameters); the
    appropriate :func:`code_version` is appended automatically.  Safe
    to call from pool workers — the store is re-opened from the
    environment in each process.

    A cold key is computed under the key's inter-process lock: two
    workers racing the same key no longer both compute and both write.
    The loser of the race re-reads under the lock, finds the winner's
    entry, and the dodged duplicate compute is counted as
    ``cache.races``.
    """
    store = store or open_store()
    key = store.key(kind, dict(components, code=code_version(kind)))
    payload = store.get(key) if use_cache else None
    if payload is not None:
        return payload
    with store.lock_for(key):
        if use_cache:
            payload = store.get(key)
            if payload is not None:
                store.races += 1
                obs.add("cache.races")
                return payload
        payload = compute()
        store.put(key, payload)
    return payload


# --------------------------------------------------------------------------
# Worker-side task execution.  Module-level so the pool can pickle the
# entry point by reference; per-process memos let the cells of one
# benchmark assigned to the same worker share the compiled program and
# its region sets.

_worker_programs = {}
_worker_regions = {}


def _worker_program(name, fingerprint):
    # The memo key includes the active backend: the profile payload
    # records which backend produced it, so a backend switch between
    # in-process runs must not serve a stale-provenance entry.
    backend = resolve_backend(None)
    entry = _worker_programs.get(name)
    if entry is None or entry[0] != (fingerprint, backend):
        program = compile_benchmark(name)
        compiled = program_fingerprint(program)
        if compiled != fingerprint:
            raise RuntimeError(
                "benchmark %r compiled to fingerprint %s in the worker, "
                "expected %s — non-deterministic compilation?"
                % (name, compiled, fingerprint))
        result = run_program_cached(program, name + "-", backend)
        entry = ((fingerprint, backend), program, result)
        _worker_programs[name] = entry
        _worker_regions.clear()
    return entry[1], entry[2]


def _worker_region_set(name, fingerprint, regioning, budget):
    from repro.evaluation import pipeline
    key = (name, fingerprint, regioning, budget)
    region_set = _worker_regions.get(key)
    if region_set is None:
        program, result = _worker_program(name, fingerprint)
        if regioning == "bb":
            region_set = pipeline.basic_block_regions(program, result)
        else:
            region_set = pipeline.superblock_regions(
                program, result, budget, name + "-")
        _worker_regions[key] = region_set
    return region_set


def execute_task(spec):
    """Compute one DAG node's payload.  Raises on any failure."""
    faults.fire("parallel.task")
    kind = spec["kind"]
    name = spec["benchmark"]
    fingerprint = spec["fingerprint"]
    verify = spec.get("verify", False)
    if kind == "profile":
        program, result = _worker_program(name, fingerprint)
        if verify:
            from repro.analysis.lint import lint_program
            from repro.analysis.verify import raise_if_failed
            raise_if_failed(lint_program(program, stage="lint"),
                            "ICI lint of benchmark %r" % name)
        return {"steps": result.steps, "status": result.status,
                "backend": result.backend, "verified": verify}
    if kind == "regions":
        region_set = _worker_region_set(name, fingerprint,
                                        spec["regioning"], spec["budget"])
        if verify and spec["regioning"] != "bb":
            from repro.analysis.verify import raise_if_failed
            from repro.evaluation.pipeline import region_set_diagnostics
            raise_if_failed(region_set_diagnostics(region_set),
                            "superblock transform of benchmark %r" % name)
        mean_length, entries = region_set.stats()
        return {"mean_length": mean_length, "entries": entries,
                "verified": verify}
    if kind == "cell":
        from repro.evaluation.pipeline import machine_cycles
        region_set = _worker_region_set(name, fingerprint,
                                        spec["regioning"], spec["budget"])
        cycles = machine_cycles(region_set, spec["config"], verify=verify)
        return {"cycles": cycles, "verified": verify}
    raise ValueError("unknown evaluation task kind %r" % kind)


def _pool_task(spec):
    """Pool entry point: exceptions become data (crash containment)."""
    try:
        return {"id": spec["id"], "payload": execute_task(spec)}
    except Exception:
        return {"id": spec["id"], "error": traceback.format_exc()}


def _map_pool_task(spec):
    """Pool entry point for :meth:`EvaluationEngine.map` items."""
    try:
        return {"id": spec["id"],
                "payload": spec["function"](spec["item"])}
    except Exception:
        return {"id": spec["id"], "error": traceback.format_exc()}


def _map_inline(spec):
    return spec["function"](spec["item"])


# --------------------------------------------------------------------------
# The engine.

class EvaluationError(RuntimeError):
    """One or more evaluation cells failed; the rest of the sweep ran.

    ``failures`` is a list of ``(cell label, detail)`` pairs, where the
    detail is the worker's traceback text (or a one-line reason for
    cells blocked by a failed dependency).
    """

    def __init__(self, failures):
        self.failures = list(failures)
        lines = []
        for label, detail in self.failures:
            summary = detail.strip().splitlines()[-1] if detail else "?"
            lines.append("%s: %s" % (label, summary))
        super().__init__("%d evaluation task(s) failed:\n  %s"
                         % (len(self.failures), "\n  ".join(lines)))


class _Node:
    __slots__ = ("id", "label", "spec", "key", "deps", "dependents",
                 "payload", "error", "exception", "done", "failed")

    def __init__(self, id, label, spec, key):
        self.id = id
        self.label = label
        self.spec = spec
        self.key = key
        self.deps = []
        self.dependents = []
        self.payload = None
        self.error = None
        self.exception = None
        self.done = False
        self.failed = False


class EvaluationEngine:
    """Run benchmark evaluations as a task DAG over a process pool.

    *jobs* is the worker count (default ``os.cpu_count()``); ``jobs=1``
    executes every task in the calling process.  *store* is the
    content-addressed :class:`CacheStore` (default: the shared cache
    directory, honouring ``REPRO_CACHE_DIR``).  *policy* is the
    :class:`~repro.evaluation.supervisor.SupervisorPolicy` governing
    deadlines, retries, backoff and pool resurrection; per-task
    outcomes accumulate in :attr:`report` for the engine's lifetime.
    """

    def __init__(self, jobs=None, store=None, policy=None):
        self.jobs = max(1, jobs if jobs is not None
                        else (os.cpu_count() or 1))
        self.store = store or open_store()
        self.policy = policy or SupervisorPolicy()
        self.report = EvaluationReport()
        self._pool = None
        self._programs = {}

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        self._abandon_pool(kill=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def _executor(self):
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=faults.mark_worker)
        return self._pool

    def _abandon_pool(self, kill=False):
        """Drop the current pool (a fresh one is created lazily)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if kill:
            kill_pool(pool)
        else:
            pool.shutdown(wait=False, cancel_futures=True)

    def _supervisor(self, worker, inline):
        return Supervisor(self, self.policy, self.report, worker,
                          inline)

    # -- public API --------------------------------------------------------

    def evaluate(self, name, configs, tail_dup_budget=48, use_cache=True,
                 verify=False):
        """Evaluate one benchmark; see :func:`evaluate_benchmark`."""
        return self.evaluate_many([
            {"name": name, "configs": configs,
             "tail_dup_budget": tail_dup_budget, "verify": verify},
        ], use_cache=use_cache)[0]

    def evaluate_many(self, requests, use_cache=True):
        """Evaluate a batch of benchmark requests through one DAG.

        Each request is a dict with keys ``name``, ``configs`` and
        optionally ``tail_dup_budget`` (default 48) and ``verify``.
        Nodes shared between requests (same program, same parameters,
        same configuration) are computed once.  Returns the matching
        list of :class:`BenchmarkEvaluation` objects; raises
        :class:`EvaluationError` after the sweep completes if any cell
        failed.
        """
        from repro.evaluation.pipeline import BenchmarkEvaluation

        nodes = {}
        plans = []
        failures = []

        with obs.span("engine.evaluate", requests=len(requests)) as sp:
            for request in requests:
                try:
                    plans.append(self._plan_request(nodes, request))
                except Exception:
                    failures.append(("request %r" % request.get("name"),
                                     traceback.format_exc()))
                    plans.append(None)
            sp.set(nodes=len(nodes))
            self._run_nodes(nodes, use_cache)

        evaluations = []
        for request, plan in zip(requests, plans):
            if plan is None:
                evaluations.append(None)
                continue
            profile_node, region_nodes, cell_nodes = plan
            bad = [node for node in
                   [profile_node] + list(region_nodes.values())
                   + list(cell_nodes.values()) if node.failed]
            if bad:
                for node in bad:
                    entry = (node.label, node.error)
                    if entry not in failures:
                        failures.append(entry)
                evaluations.append(None)
                continue
            data = {
                "cycles": {key: node.payload["cycles"]
                           for key, node in cell_nodes.items()},
                "region_stats": {
                    regioning: {
                        "mean_length": node.payload["mean_length"],
                        "entries": node.payload["entries"]}
                    for regioning, node in region_nodes.items()},
                "steps": profile_node.payload["steps"],
                # Which emulator backend produced the profile artefact
                # (may differ from the active backend on a cache hit).
                "backend": profile_node.payload.get("backend",
                                                    "reference"),
            }
            evaluations.append(
                BenchmarkEvaluation(request["name"], data))

        if failures:
            error = EvaluationError(failures)
            first = next((node.exception for node in nodes.values()
                          if node.exception is not None), None)
            if first is not None:
                raise error from first
            raise error
        return evaluations

    def prewarm_profiles(self, names, use_cache=True):
        """Emulate (and cache) the dynamic profiles of *names* in
        parallel; subsequent :func:`run_benchmark` calls are disk hits."""
        nodes = {}
        failures = []
        for name in names:
            try:
                self._add_profile_node(nodes, name, verify=False)
            except Exception:
                failures.append(("profile %s" % name,
                                 traceback.format_exc()))
        self._run_nodes(nodes, use_cache)
        failures.extend((node.label, node.error)
                        for node in nodes.values() if node.failed)
        if failures:
            raise EvaluationError(failures)

    def map(self, function, items):
        """Order-preserving map over the worker pool.

        *function* must be a picklable module-level callable.  With
        ``jobs=1`` (or a single item) this is a plain in-process loop,
        so exceptions propagate directly and ``pdb`` works.  Pooled
        items run under the supervisor — deadlines, bounded retry,
        pool resurrection — and any item that still fails surfaces as
        :class:`EvaluationError` after the rest completed.
        """
        items = list(items)
        if self.jobs <= 1 or len(items) <= 1:
            return [function(item) for item in items]
        label = getattr(function, "__name__", "call").strip("_")
        nodes = {}
        order = []
        for index, item in enumerate(items):
            node_id = "map-%s-%d" % (label, index)
            node = _Node(node_id, "map/%s/%d" % (label, index),
                         {"id": node_id, "function": function,
                          "item": item}, None)
            nodes[node_id] = node
            order.append(node)
        with obs.span("engine.map", items=len(order), label=label):
            self._supervisor(_map_pool_task, _map_inline).run(nodes)
        failures = [(node.label, node.error) for node in order
                    if node.failed]
        if failures:
            raise EvaluationError(failures)
        return [node.payload for node in order]

    # -- DAG construction --------------------------------------------------

    def _program_fingerprint(self, name):
        fingerprint = self._programs.get(name)
        if fingerprint is None:
            fingerprint = program_fingerprint(compile_benchmark(name))
            self._programs[name] = fingerprint
        return fingerprint

    def _intern(self, nodes, kind, label, spec, components, verify):
        key = self.store.key(
            kind, dict(components, code=code_version(kind)))
        node = nodes.get(key)
        if node is None:
            node = _Node(key, label, dict(spec, id=key), key)
            nodes[key] = node
        if verify:
            node.spec["verify"] = True
        return node

    def _add_profile_node(self, nodes, name, verify):
        fingerprint = self._program_fingerprint(name)
        return self._intern(
            nodes, "profile", "%s/profile" % name,
            {"kind": "profile", "benchmark": name,
             "fingerprint": fingerprint, "verify": verify},
            {"fingerprint": fingerprint,
             "backend": resolve_backend(None)}, verify)

    def _plan_request(self, nodes, request):
        name = request["name"]
        configs = request["configs"]
        budget = request.get("tail_dup_budget", 48)
        verify = request.get("verify", False)
        fingerprint = self._program_fingerprint(name)
        profile_node = self._add_profile_node(nodes, name, verify)

        region_nodes = {}
        cell_nodes = {}
        for key in sorted(configs):
            config, regioning = configs[key]
            region_budget = None if regioning == "bb" else budget
            region_node = region_nodes.get(regioning)
            if region_node is None:
                region_node = self._intern(
                    nodes, "regions",
                    "%s/regions/%s" % (name, regioning),
                    {"kind": "regions", "benchmark": name,
                     "fingerprint": fingerprint, "regioning": regioning,
                     "budget": region_budget, "verify": verify},
                    {"fingerprint": fingerprint, "regioning": regioning,
                     "budget": region_budget}, verify)
                _link(profile_node, region_node)
                region_nodes[regioning] = region_node
            cell_node = self._intern(
                nodes, "cell", "%s/cell/%s" % (name, config.name),
                {"kind": "cell", "benchmark": name,
                 "fingerprint": fingerprint, "regioning": regioning,
                 "budget": region_budget, "config": config,
                 "verify": verify},
                {"fingerprint": fingerprint, "regioning": regioning,
                 "budget": region_budget,
                 "config": config_signature(config)}, verify)
            _link(region_node, cell_node)
            cell_nodes[key] = cell_node
        return profile_node, region_nodes, cell_nodes

    # -- execution ---------------------------------------------------------

    def _precheck(self, nodes, use_cache):
        """Serve every node the store can satisfy; return the rest."""
        pending = {}
        for node in nodes.values():
            if node.done:
                continue
            payload = self.store.get(node.key) if use_cache else None
            if payload is not None and (
                    not node.spec.get("verify")
                    or payload.get("verified")):
                node.payload = payload
                node.done = True
                obs.add("engine.tasks.cached")
                self.report.record(node.id, node.label, "cached",
                                   attempts=0)
            else:
                pending[node.id] = node
        return pending

    def _finish(self, node, payload):
        node.payload = payload
        node.done = True
        if node.key is not None:
            self.store.put(node.key, payload)

    def _fail(self, node, detail, exception=None):
        node.failed = True
        node.done = True
        node.error = detail
        node.exception = exception
        for dependent in node.dependents:
            if not dependent.done:
                self._fail(dependent,
                           "blocked: dependency %s failed" % node.label)

    def _run_nodes(self, nodes, use_cache=True):
        pending = self._precheck(nodes, use_cache)
        if not pending:
            return
        # The supervisor picks serial (jobs=1) or pooled execution and
        # applies the resilience policy either way; _pool_task and
        # execute_task are resolved late so tests can monkeypatch them.
        self._supervisor(_pool_task, execute_task).run(pending)

    def _topological(self, pending):
        order = []
        seen = set()

        def visit(node):
            if node.id in seen or node.id not in pending:
                return
            seen.add(node.id)
            for dep in node.deps:
                visit(dep)
            order.append(node)

        for node in sorted(pending.values(), key=lambda n: n.label):
            visit(node)
        return order


def _link(dependency, dependent):
    if dependency not in dependent.deps:
        dependent.deps.append(dependency)
        dependency.dependents.append(dependent)


# --------------------------------------------------------------------------
# The shared engine: library calls default to in-process execution (so
# plain API use never forks); the CLI and ``run_all`` configure a pool.

_shared = None


def _default_jobs():
    value = os.environ.get(_JOBS_ENV)
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            pass
    return 1


def shared_engine():
    """The process-wide engine (``REPRO_JOBS`` workers; default 1)."""
    global _shared
    if _shared is None:
        _shared = EvaluationEngine(jobs=_default_jobs())
    return _shared


def configure(jobs=None, store=None, policy=None):
    """Replace the shared engine (e.g. ``repro evaluate --jobs N``)."""
    global _shared
    if _shared is not None:
        _shared.close()
    _shared = EvaluationEngine(jobs=jobs, store=store, policy=policy)
    return _shared
