"""Fault-tolerant execution of evaluation task DAGs.

The parallel engine (:mod:`repro.evaluation.parallel`) plans a DAG of
profile/regions/cell nodes; this module runs those nodes so that the
sweep survives every failure mode the chaos suite can inject:

* **watchdog deadlines** — every pooled task has a wall-clock deadline
  (:attr:`SupervisorPolicy.deadline`); a hung worker is detected, the
  pool is killed (``SIGKILL`` — a hung task cannot be cancelled
  cooperatively) and replaced, and the overdue task is retried;
* **bounded retry with deterministic backoff** — a failed task is
  retried up to :attr:`SupervisorPolicy.max_attempts` times with
  exponential backoff and *deterministic* jitter (seeded by task label,
  so two runs of one sweep sleep identically and tests are
  reproducible);
* **pool resurrection and graceful degradation** — a
  ``BrokenProcessPool`` (worker killed, fork failure) costs one pool
  restart; past :attr:`SupervisorPolicy.max_pool_restarts` the
  supervisor stops trusting pools and finishes the remaining nodes
  serially in-process (*degraded* mode — slower, but the sweep
  completes with identical numbers);
* **cooperative cancellation** — SIGINT/SIGTERM set a flag; the run
  loop stops submitting, kills the pool, leaves every already-finished
  artefact safely published in the cache (writes are atomic), marks the
  report interrupted and re-raises ``KeyboardInterrupt`` for the CLI to
  turn into exit code 130;
* **a structured report** — every node's outcome (ok / cached /
  retried / degraded / failed), attempt count and wall time is recorded
  in an :class:`EvaluationReport`, surfaced by ``repro evaluate`` /
  ``repro verify``.

The supervisor is deliberately engine-agnostic: it sees nodes with
``id``/``label``/``spec``/``deps`` and calls back into the engine for
``_finish``/``_fail``/pool management, so the map sweep of ``repro
verify`` reuses the same machinery as the evaluation DAG.
"""

import contextlib
import signal
import threading
import time
import traceback
import zlib
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool

from repro.observability import tracing as obs

__all__ = ["EvaluationReport", "Supervisor", "SupervisorPolicy"]


class SupervisorPolicy:
    """Tunable resilience parameters.

    *max_attempts* bounds executions per node (first try included).
    *deadline* is the per-task wall-clock budget in seconds for pooled
    execution (None disables the watchdog; in-process execution is
    never preempted).  *backoff_base*/*backoff_cap* shape the
    exponential retry delay; *seed* makes the jitter deterministic.
    *max_pool_restarts* bounds pool resurrections before the
    supervisor degrades to serial in-process execution.
    """

    def __init__(self, max_attempts=3, deadline=300.0,
                 backoff_base=0.05, backoff_cap=2.0, seed=0,
                 max_pool_restarts=2, poll=0.1):
        self.max_attempts = max(1, max_attempts)
        self.deadline = deadline
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.seed = seed
        self.max_pool_restarts = max(0, max_pool_restarts)
        self.poll = poll

    @contextlib.contextmanager
    def clamped(self, deadline):
        """Temporarily cap the watchdog deadline at *deadline* seconds.

        The evaluation service propagates each request's remaining
        deadline into the per-cell timeouts this way: a request with
        2 s left must not sit behind a 300 s cell watchdog.  ``None``
        leaves the policy untouched; the previous deadline is restored
        on exit either way.
        """
        saved = self.deadline
        if deadline is not None:
            self.deadline = (deadline if saved is None
                             else min(saved, deadline))
        try:
            yield self
        finally:
            self.deadline = saved

    def backoff(self, label, attempt):
        """Delay before retry *attempt* (1-based) of the task *label*.

        Exponential in the attempt number, capped, with ±50% jitter
        derived from ``crc32(label) ^ seed ^ attempt`` — deterministic
        across runs and processes (no salted ``hash()``), yet spread
        across tasks so a failed fan-out does not retry in lockstep.
        """
        base = min(self.backoff_cap,
                   self.backoff_base * (2 ** max(0, attempt - 1)))
        mix = zlib.crc32(label.encode()) ^ (self.seed & 0xFFFFFFFF) \
            ^ (attempt * 0x9E3779B9)
        unit = ((mix * 2654435761) & 0xFFFFFFFF) / 0xFFFFFFFF
        return base * (0.5 + unit)


class EvaluationReport:
    """Structured outcome of one or more supervised sweeps.

    Per-task records carry ``label``, ``status`` (``ok`` / ``cached`` /
    ``retried`` / ``degraded`` / ``failed``), ``attempts`` and
    ``seconds``; run-level fields count pool restarts and record
    degradation/interruption.  ``repro evaluate --report PATH`` writes
    the JSON form.
    """

    STATUSES = ("ok", "cached", "retried", "degraded", "failed")

    def __init__(self):
        self.records = {}
        self.pool_restarts = 0
        self.degraded = False
        self.interrupted = None      # signal name once cancelled

    def record(self, task_id, label, status, attempts=1, seconds=0.0,
               detail=None):
        if status not in self.STATUSES:
            raise ValueError("unknown task status %r" % status)
        previous = self.records.get(task_id)
        if previous is not None and status == "cached":
            # A later cache hit on an already-reported node adds no
            # information; keep the computed outcome.
            return
        self.records[task_id] = {
            "label": label, "status": status,
            "attempts": attempts, "seconds": round(seconds, 6),
            "detail": detail,
        }

    def counts(self):
        totals = dict.fromkeys(self.STATUSES, 0)
        for record in self.records.values():
            totals[record["status"]] += 1
        return totals

    def by_status(self, status):
        return sorted(record["label"]
                      for record in self.records.values()
                      if record["status"] == status)

    def summary(self):
        counts = self.counts()
        parts = ["%d %s" % (counts[status], status)
                 for status in self.STATUSES if counts[status]]
        text = "supervisor: %d task(s): %s" % (
            len(self.records), ", ".join(parts) or "nothing ran")
        if self.pool_restarts:
            text += "; %d pool restart(s)" % self.pool_restarts
        if self.degraded:
            text += "; degraded to in-process execution"
        if self.interrupted:
            text += "; interrupted by %s" % self.interrupted
        return text

    def to_json(self):
        return {
            "tasks": [self.records[key]
                      for key in sorted(self.records)],
            "summary": self.counts(),
            "pool_restarts": self.pool_restarts,
            "degraded": self.degraded,
            "interrupted": self.interrupted,
        }


def kill_pool(pool):
    """Tear a ``ProcessPoolExecutor`` down *now*.

    A hung or crash-looping pool cannot be shut down cooperatively —
    ``shutdown`` waits for running tasks.  SIGKILL the workers first
    (reaching into ``_processes`` is unavoidable: the executor API has
    no kill), then release the executor's own resources.
    """
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.kill()
        except OSError:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


class _cooperative_signals:
    """Swap SIGINT/SIGTERM handlers for a flag-setting one.

    Outside the main thread (where ``signal.signal`` is illegal) this
    is a no-op and Python's default KeyboardInterrupt behaviour stays.
    """

    def __init__(self):
        self.received = None
        self._saved = {}

    def _handler(self, signum, frame):
        self.received = signal.Signals(signum).name

    def __enter__(self):
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._saved[signum] = signal.signal(signum,
                                                        self._handler)
                except (ValueError, OSError):
                    pass
        return self

    def __exit__(self, *exc_info):
        for signum, handler in self._saved.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass


class Supervisor:
    """Run a set of DAG nodes to completion under a resilience policy.

    *engine* provides ``_executor()`` / ``_abandon_pool()`` for pool
    management and ``_finish(node, payload)`` / ``_fail(node, detail,
    exception)`` for outcome recording (dependency cascade included).
    *worker* is the picklable pool entry point mapping ``node.spec`` to
    ``{"id", "payload"}`` or ``{"id", "error"}``; *inline* computes a
    payload in-process (serial and degraded modes).
    """

    def __init__(self, engine, policy, report, worker, inline):
        self.engine = engine
        self.policy = policy
        self.report = report
        self.worker = worker
        self.inline = inline
        self._signals = None
        self._spans = {}            # node id -> open task span

    # -- task spans --------------------------------------------------------
    #
    # One span per supervised node, named "task", covering every attempt
    # (retries, pool resubmissions and degraded re-execution included).
    # Its ``status``/``attempts`` attrs mirror the EvaluationReport
    # record exactly, which is what lets the trace-invariant suite
    # reconcile spans against the report.  Pooled tasks overlap, so
    # these are explicit open/close spans, not stacked ones.

    def _span_open(self, node):
        tracer = obs.active()
        if tracer is None or node.id in self._spans:
            return
        self._spans[node.id] = tracer.open(
            "task", label=node.label,
            kind=node.spec.get("kind", "map"))

    def _span_close(self, node, status, attempts):
        span = self._spans.pop(node.id, None)
        tracer = obs.active()
        if span is None or tracer is None:
            return
        span.set(status=status, attempts=attempts)
        tracer.close(span,
                     status="error" if status == "failed" else "ok")

    def _span_abandon(self):
        """Cancellation: close every still-open task span loudly."""
        tracer = obs.active()
        for span in self._spans.values():
            if tracer is not None:
                span.set(status="cancelled")
                tracer.close(span, status="error")
        self._spans.clear()

    # -- outcome recording -------------------------------------------------

    def _succeed(self, node, payload, attempts, started,
                 degraded=False):
        self.engine._finish(node, payload)
        status = "degraded" if degraded else (
            "retried" if attempts > 1 else "ok")
        self.report.record(node.id, node.label, status, attempts,
                           time.monotonic() - started)
        if attempts > 1:
            obs.add("supervisor.retries", attempts - 1)
        if degraded:
            obs.add("supervisor.degraded_tasks")
        self._span_close(node, status, attempts)

    def _give_up(self, node, detail, attempts, started, exception=None):
        self.engine._fail(node, detail, exception)
        self.report.record(node.id, node.label, "failed", attempts,
                           time.monotonic() - started,
                           detail=_last_line(detail))
        obs.add("supervisor.failed_tasks")
        if attempts > 1:
            obs.add("supervisor.retries", attempts - 1)
        self._span_close(node, "failed", attempts)

    # -- serial (jobs=1) and degraded execution ----------------------------

    def run_serial(self, pending, degraded=False):
        """Execute *pending* in-process, topologically, with retries.

        Used both for ``jobs=1`` engines and as the degraded fallback
        once pools are exhausted.  No watchdog: an in-process task
        cannot be preempted (documented limitation).
        """
        order = self.engine._topological(pending)
        for node in order:
            if self._cancelled():
                break
            if node.done:
                continue
            if any(dep.failed for dep in node.deps):
                continue        # _fail already cascaded to this node
            self._span_open(node)
            started = time.monotonic()
            attempts = 0
            while True:
                attempts += 1
                try:
                    payload = self.inline(node.spec)
                except Exception as exception:
                    if attempts >= self.policy.max_attempts:
                        self._give_up(node, traceback.format_exc(),
                                      attempts, started, exception)
                        break
                    self._sleep(self.policy.backoff(node.label,
                                                    attempts))
                    if self._cancelled():
                        break
                else:
                    self._succeed(node, payload, attempts, started,
                                  degraded=degraded)
                    break

    # -- pooled execution --------------------------------------------------

    def run_pooled(self, pending):
        waiting = dict(pending)          # id -> node, not yet running
        in_flight = {}                   # future -> (node, deadline)
        sleeping = []                    # (wake time, node) backoff queue
        attempts = dict.fromkeys(pending, 0)
        started = dict.fromkeys(pending, None)
        restarts = 0
        pool_broken = False
        degraded = False

        def ready(node):
            return all(dep.done and not dep.failed
                       for dep in node.deps)

        def retry_or_fail(node, detail):
            if attempts[node.id] >= self.policy.max_attempts:
                self._give_up(node, detail, attempts[node.id],
                              started[node.id])
                return
            wake = time.monotonic() + self.policy.backoff(
                node.label, attempts[node.id])
            sleeping.append((wake, node))

        while waiting or in_flight or sleeping:
            if self._cancelled():
                break
            now = time.monotonic()

            # Resurrect (or degrade) after a broken pool.
            if pool_broken:
                pool_broken = False
                restarts += 1
                self.report.pool_restarts += 1
                obs.add("supervisor.pool_restarts")
                self.engine._abandon_pool(kill=True)
                for future, (node, _) in list(in_flight.items()):
                    # Sibling futures of a broken pool all fail; their
                    # tasks did nothing wrong — resubmit at no attempt
                    # cost (pool health is bounded by restarts, not by
                    # per-task attempts).
                    attempts[node.id] -= 1
                    waiting[node.id] = node
                in_flight.clear()
                if restarts > self.policy.max_pool_restarts:
                    degraded = True
                    self.report.degraded = True

            if degraded:
                obs.add("supervisor.degradations")
                remaining = dict(waiting)
                remaining.update((node.id, node)
                                 for _, node in sleeping)
                waiting.clear()
                del sleeping[:]
                self.run_serial(remaining, degraded=True)
                continue

            # Wake backoff sleepers whose delay has elapsed.
            due = [entry for entry in sleeping if entry[0] <= now]
            if due:
                sleeping[:] = [entry for entry in sleeping
                               if entry[0] > now]
                for _, node in due:
                    waiting[node.id] = node

            # Drop nodes that finished elsewhere (dependency-failure
            # cascade, duplicate wake).
            for node_id in [node_id for node_id, node in waiting.items()
                            if node.done]:
                del waiting[node_id]

            # Submit every ready node.
            launch = sorted((node for node in waiting.values()
                             if ready(node)), key=lambda n: n.label)
            for node in launch:
                del waiting[node.id]
                attempts[node.id] += 1
                self._span_open(node)
                if started[node.id] is None:
                    started[node.id] = time.monotonic()
                try:
                    future = self.engine._executor().submit(
                        self.worker, node.spec)
                except BaseException:
                    # Pool creation/submission itself failed: treat as
                    # a broken pool (counts toward degradation).
                    waiting[node.id] = node
                    attempts[node.id] -= 1
                    pool_broken = True
                    break
                deadline = None if self.policy.deadline is None \
                    else time.monotonic() + self.policy.deadline
                in_flight[future] = (node, deadline)

            if not in_flight:
                if sleeping and not waiting:
                    self._sleep(min(self.policy.poll, max(
                        0.0, min(wake for wake, _ in sleeping)
                        - time.monotonic())))
                elif not waiting:
                    break
                continue

            done, _ = wait(list(in_flight), timeout=self.policy.poll,
                           return_when=FIRST_COMPLETED)
            for future in done:
                node, _ = in_flight.pop(future)
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    waiting[node.id] = node
                    attempts[node.id] -= 1
                    continue
                except Exception:
                    retry_or_fail(node, traceback.format_exc())
                    continue
                if "error" in outcome:
                    retry_or_fail(node, outcome["error"])
                else:
                    self._succeed(node, outcome["payload"],
                                  attempts[node.id], started[node.id])

            # Watchdog: tasks past their deadline.  A hung worker can
            # only be stopped by killing the pool, which loses the
            # innocent in-flight siblings too — they are resubmitted
            # at no attempt cost.
            now = time.monotonic()
            overdue = [(future, node)
                       for future, (node, deadline) in in_flight.items()
                       if deadline is not None and now >= deadline]
            if overdue:
                obs.add("supervisor.watchdog_kills", len(overdue))
                for future, node in overdue:
                    del in_flight[future]
                    retry_or_fail(
                        node, "task %s exceeded its %.3gs deadline"
                        % (node.label, self.policy.deadline))
                pool_broken = True

        if self._cancelled():
            self.engine._abandon_pool(kill=True)
            self.report.interrupted = self._signals.received
            self._span_abandon()
            raise KeyboardInterrupt(self._signals.received)

    # -- entry point -------------------------------------------------------

    def run(self, pending):
        """Run *pending* (id -> node) to completion; the mode (serial
        vs pooled) follows the engine's job count."""
        if not pending:
            return
        with _cooperative_signals() as self._signals:
            try:
                if self.engine.jobs <= 1:
                    self.run_serial(pending)
                    if self._cancelled():
                        self.report.interrupted = \
                            self._signals.received
                        self._span_abandon()
                        raise KeyboardInterrupt(self._signals.received)
                else:
                    self.run_pooled(pending)
            finally:
                self._signals = None

    # -- helpers -----------------------------------------------------------

    def _cancelled(self):
        return self._signals is not None \
            and self._signals.received is not None

    def _sleep(self, duration):
        """Sleep in poll-sized slices so cancellation stays responsive."""
        end = time.monotonic() + duration
        while not self._cancelled():
            remaining = end - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(self.policy.poll, remaining))


def _last_line(text):
    if not text:
        return None
    lines = text.strip().splitlines()
    return lines[-1] if lines else None
