"""Evaluation pipeline: benchmark name + machine configs -> cycle counts.

This is the whole of Figure 1 wired together: compile to ICI, emulate for
the profile, form superblocks (or keep basic blocks), re-emulate the
transformed program for exact region counts (and as a semantic self-check),
schedule every executed region, replay the profile through the schedules.

Results are memoised on disk — scheduling thousands of regions for many
machine configurations is the expensive part of the evaluation.  The
memoisation (and the parallel fan-out across benchmarks and machine
configurations) lives in :mod:`repro.evaluation.parallel`:
:func:`evaluate_benchmark` submits its work through that engine.
"""

from repro.analysis.cfg import Cfg
from repro.analysis.liveness import Liveness
from repro.analysis.lint import Diagnostic, lint_program
from repro.analysis.verify import (
    VerificationError, NameLiveness, check_schedule, check_pruned_edges,
    check_transform, check_regions, check_allocation, off_live_names)
from repro.compaction.transform import form_superblocks, Region
from repro.compaction.scheduler import schedule_region
from repro.compaction.regalloc import region_pressure
from repro.evaluation.simulator import replay_program, dynamic_region_stats
from repro.benchmarks.suite import run_program_cached
from repro.observability import tracing as observe
from repro.testing import faults

#: the SYMBOL prototype's register bank (section 5.2), used when the
#: checked pipeline validates register bindings
VERIFY_BANK_SIZE = 16


class RegionSet:
    """A program cut into scheduling regions, with its dynamic profile."""

    def __init__(self, program, regions, counts, taken, liveness=None,
                 transform=None, source_program=None):
        self.program = program
        self.regions = regions
        self.counts = counts
        self.taken = taken
        self.liveness = liveness
        #: the TransformResult that produced this layout (trace regions)
        self.transform = transform
        #: the pre-transform program (for transform verification)
        self.source_program = source_program
        self._name_liveness = None

    def executed_regions(self):
        return [r for r in self.regions if self.counts[r.start] > 0]

    def stats(self):
        return dynamic_region_stats(self.program, self.regions, self.counts)

    def name_liveness(self):
        """The independent checker's own liveness, built lazily."""
        if self._name_liveness is None:
            self._name_liveness = NameLiveness(self.program)
        return self._name_liveness


def basic_block_regions(program, result):
    """Regions = the original basic blocks (local compaction only)."""
    with observe.span("pipeline.regions", regioning="bb") as sp:
        cfg = Cfg(program)
        regions = [Region(block.start, block.end)
                   for block in cfg.blocks]
        sp.set(regions=len(regions))
        return RegionSet(program, regions, result.counts, result.taken)


def superblock_regions(program, result, tail_dup_budget=48,
                       cache_hint=""):
    """Regions = profile-driven superblocks (global compaction).

    The transformed program is re-emulated (cached) both for exact region
    counts and as a semantic equivalence check against the original run.
    """
    with observe.span("pipeline.superblock",
                      budget=tail_dup_budget) as sp:
        faults.fire("pipeline.superblock")
        transform = form_superblocks(program, result.counts,
                                     result.taken, tail_dup_budget)
        new_result = run_program_cached(
            transform.program, cache_hint + "sb%d-" % tail_dup_budget)
        if (new_result.status, new_result.output) != (result.status,
                                                      result.output):
            raise AssertionError(
                "superblock transformation changed program behaviour")
        liveness = Liveness(Cfg(transform.program))
        sp.set(regions=len(transform.regions))
        return RegionSet(transform.program, transform.regions,
                         new_result.counts, new_result.taken, liveness,
                         transform=transform, source_program=program)


def _off_live_map(region_set, region):
    """Off-trace live-register masks for a region's branches."""
    if region_set.liveness is None:
        return None, None
    program = region_set.program
    liveness = region_set.liveness
    masks = {}
    for position in range(region.size):
        instruction = program.instructions[region.start + position]
        if instruction.is_branch:
            target = program.labels[instruction.label]
            masks[position] = liveness.live_in_mask(target)
    reg_mask = lambda name: 1 << liveness.reg_id(name)
    return masks, reg_mask


def machine_cycles(region_set, config, verify=False, diagnostics=None):
    """Total cycles of the program on *config* (schedule + replay).

    With ``verify=True`` every schedule is validated by the independent
    checker (:mod:`repro.analysis.verify`) as it is produced; violations
    raise :class:`VerificationError` — unless *diagnostics* is a list,
    in which case findings are appended there and the replay continues.
    """
    program = region_set.program
    schedules = []
    regions = []
    checker_liveness = region_set.name_liveness() if verify else None
    found = diagnostics if diagnostics is not None else []
    prune = config.analysis_prune
    pruned_total = 0
    with observe.span("pipeline.schedule", config=config.name,
                      verify=verify) as sp:
        faults.fire("pipeline.cycles")
        for region in region_set.regions:
            if region_set.counts[region.start] == 0:
                continue
            instructions = program.instructions[region.start:region.end]
            if config.speculation and region_set.liveness is not None:
                off_live, reg_mask = _off_live_map(region_set, region)
                live_out = region_set.liveness.live_in_mask(region.end) \
                    if prune else None
            else:
                off_live, reg_mask, live_out = None, None, None
            pruned = [] if prune else None
            schedule = schedule_region(instructions, config,
                                       off_live, reg_mask,
                                       live_out=live_out, pruned=pruned)
            if pruned:
                pruned_total += len(pruned)
            if verify:
                checker_off_live = off_live_names(
                    program, region.start, region.end, checker_liveness)
                checker_live_out = \
                    checker_liveness.live_in_at(region.end) \
                    if live_out is not None else None
                found.extend(check_schedule(
                    instructions, schedule, config, checker_off_live,
                    region=(region.start, region.end),
                    live_out=checker_live_out))
                if pruned:
                    # Every edge the analysis removed must be re-proven
                    # by the checker's own facts (the analyzer is never
                    # trusted).
                    found.extend(check_pruned_edges(
                        instructions, pruned, checker_off_live,
                        checker_live_out,
                        region=(region.start, region.end)))
            schedules.append(schedule)
            regions.append(region)
        sp.set(regions=len(regions))
        if prune:
            sp.set(pruned_edges=pruned_total)
            observe.add("pipeline.pruned_edges", pruned_total)
        if verify and diagnostics is None and found:
            raise VerificationError(
                found, "illegal schedule under machine %r" % config.name)
    with observe.span("pipeline.simulate", config=config.name) as sp:
        cycles = replay_program(program, regions, schedules,
                                region_set.counts, region_set.taken)
        sp.set(cycles=cycles)
        return cycles


def region_set_diagnostics(region_set):
    """Static checks that depend only on the layout, not the machine:
    ICI lint of the (transformed) program, transform bisimulation
    against the pre-transform program, and region-table sanity."""
    diags = lint_program(region_set.program, stage="lint")
    if region_set.transform is not None:
        diags.extend(check_transform(region_set.source_program,
                                     region_set.program))
        diags.extend(check_regions(region_set.program,
                                   region_set.regions))
    return diags


def allocation_diagnostics(region_set, config, bank_size=VERIFY_BANK_SIZE):
    """Bind every executed region onto the prototype's register bank and
    check the binding for interference (independent intervals)."""
    diags = []
    program = region_set.program
    for region in region_set.regions:
        if region_set.counts[region.start] == 0:
            continue
        instructions = program.instructions[region.start:region.end]
        if config.speculation and region_set.liveness is not None:
            off_live, reg_mask = _off_live_map(region_set, region)
        else:
            off_live, reg_mask = None, None
        schedule = schedule_region(instructions, config,
                                   off_live, reg_mask)
        allocation = region_pressure(instructions, schedule) \
            .allocate(bank_size)
        diags.extend(check_allocation(
            instructions, schedule, allocation,
            region=(region.start, region.end)))
    return diags


def verify_evaluation(program, result, configs, tail_dup_budget=48,
                      cache_hint="", bank_size=VERIFY_BANK_SIZE):
    """Run the full checker stack over one compiled+profiled program.

    ``configs`` maps result keys to ``(MachineConfig, regioning)`` pairs
    exactly like :func:`evaluate_benchmark`.  Returns the list of all
    diagnostics (empty when every stage verifies clean); never raises.
    """
    diags = lint_program(program, stage="lint")
    region_sets = {}

    def get_region_set(regioning):
        if regioning not in region_sets:
            if regioning == "bb":
                region_sets[regioning] = basic_block_regions(program,
                                                             result)
            else:
                region_sets[regioning] = superblock_regions(
                    program, result, tail_dup_budget, cache_hint)
                diags.extend(
                    region_set_diagnostics(region_sets[regioning]))
        return region_sets[regioning]

    seen_alloc = set()
    for key in sorted(configs):
        config, regioning = configs[key]
        try:
            region_set = get_region_set(regioning)
        except AssertionError as error:
            # The transform's own dynamic self-check tripped; report it
            # through the same channel as the static findings.
            diags.append(Diagnostic(
                "transform", "behaviour-changed", str(error)))
            continue
        machine_cycles(region_set, config, verify=True,
                       diagnostics=diags)
        if regioning not in seen_alloc:
            seen_alloc.add(regioning)
            diags.extend(allocation_diagnostics(region_set, config,
                                                bank_size))
    return diags


class BenchmarkEvaluation:
    """All the numbers one benchmark contributes to the tables."""

    def __init__(self, name, data):
        self.name = name
        self.data = data

    def cycles(self, key):
        return self.data["cycles"][key]

    def speedup(self, key, base="seq"):
        return self.data["cycles"][base] / self.data["cycles"][key]

    @property
    def region_stats(self):
        return self.data["region_stats"]


def evaluate_benchmark(name, configs, tail_dup_budget=48,
                       use_cache=True, verify=False, engine=None):
    """Evaluate benchmark *name* under every config in *configs*.

    ``configs`` maps result keys to ``(MachineConfig, regioning)`` where
    regioning is ``"bb"`` or ``"trace"``.  Returns a
    :class:`BenchmarkEvaluation` with cycle counts and region statistics.

    The work is submitted through an
    :class:`~repro.evaluation.parallel.EvaluationEngine` (*engine*, or
    the shared one), which fans independent cells out across worker
    processes and memoises every artefact in the content-addressed
    cache.

    With ``verify=True`` the independent checker validates the program
    (lint), the superblock transform, and every schedule as they are
    produced; verification status is part of each cached artefact, so a
    previously verified artefact is served from cache while an
    unverified one is transparently recomputed under the checker.  Any
    finding fails that cell and surfaces as
    :class:`~repro.evaluation.parallel.EvaluationError`.
    """
    from repro.evaluation.parallel import shared_engine
    engine = engine or shared_engine()
    return engine.evaluate(name, configs, tail_dup_budget=tail_dup_budget,
                           use_cache=use_cache, verify=verify)
