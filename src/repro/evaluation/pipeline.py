"""Evaluation pipeline: benchmark name + machine configs -> cycle counts.

This is the whole of Figure 1 wired together: compile to ICI, emulate for
the profile, form superblocks (or keep basic blocks), re-emulate the
transformed program for exact region counts (and as a semantic self-check),
schedule every executed region, replay the profile through the schedules.

Results are memoised on disk — scheduling thousands of regions for many
machine configurations is the expensive part of the evaluation.
"""

import json
import os

from repro.analysis.cfg import Cfg
from repro.analysis.liveness import Liveness
from repro.compaction.transform import form_superblocks, Region
from repro.compaction.scheduler import schedule_region
from repro.evaluation.simulator import replay_program, dynamic_region_stats
from repro.benchmarks.suite import (
    compile_benchmark, run_program_cached, program_fingerprint, cache_dir)


class RegionSet:
    """A program cut into scheduling regions, with its dynamic profile."""

    def __init__(self, program, regions, counts, taken, liveness=None):
        self.program = program
        self.regions = regions
        self.counts = counts
        self.taken = taken
        self.liveness = liveness

    def executed_regions(self):
        return [r for r in self.regions if self.counts[r.start] > 0]

    def stats(self):
        return dynamic_region_stats(self.program, self.regions, self.counts)


def basic_block_regions(program, result):
    """Regions = the original basic blocks (local compaction only)."""
    cfg = Cfg(program)
    regions = [Region(block.start, block.end) for block in cfg.blocks]
    return RegionSet(program, regions, result.counts, result.taken)


def superblock_regions(program, result, tail_dup_budget=48,
                       cache_hint=""):
    """Regions = profile-driven superblocks (global compaction).

    The transformed program is re-emulated (cached) both for exact region
    counts and as a semantic equivalence check against the original run.
    """
    transform = form_superblocks(program, result.counts, result.taken,
                                 tail_dup_budget)
    new_result = run_program_cached(transform.program,
                                    cache_hint + "sb%d-" % tail_dup_budget)
    if (new_result.status, new_result.output) != (result.status,
                                                  result.output):
        raise AssertionError(
            "superblock transformation changed program behaviour")
    liveness = Liveness(Cfg(transform.program))
    return RegionSet(transform.program, transform.regions,
                     new_result.counts, new_result.taken, liveness)


def _off_live_map(region_set, region):
    """Off-trace live-register masks for a region's branches."""
    if region_set.liveness is None:
        return None, None
    program = region_set.program
    liveness = region_set.liveness
    masks = {}
    for position in range(region.size):
        instruction = program.instructions[region.start + position]
        if instruction.is_branch:
            target = program.labels[instruction.label]
            masks[position] = liveness.live_in_mask(target)
    reg_mask = lambda name: 1 << liveness.reg_id(name)
    return masks, reg_mask


def machine_cycles(region_set, config):
    """Total cycles of the program on *config* (schedule + replay)."""
    program = region_set.program
    schedules = []
    regions = []
    for region in region_set.regions:
        if region_set.counts[region.start] == 0:
            continue
        instructions = program.instructions[region.start:region.end]
        if config.speculation and region_set.liveness is not None:
            off_live, reg_mask = _off_live_map(region_set, region)
        else:
            off_live, reg_mask = None, None
        schedules.append(schedule_region(instructions, config,
                                         off_live, reg_mask))
        regions.append(region)
    return replay_program(program, regions, schedules,
                          region_set.counts, region_set.taken)


class BenchmarkEvaluation:
    """All the numbers one benchmark contributes to the tables."""

    def __init__(self, name, data):
        self.name = name
        self.data = data

    def cycles(self, key):
        return self.data["cycles"][key]

    def speedup(self, key, base="seq"):
        return self.data["cycles"][base] / self.data["cycles"][key]

    @property
    def region_stats(self):
        return self.data["region_stats"]


def evaluate_benchmark(name, configs, tail_dup_budget=48,
                       use_cache=True):
    """Evaluate benchmark *name* under every config in *configs*.

    ``configs`` maps result keys to ``(MachineConfig, regioning)`` where
    regioning is ``"bb"`` or ``"trace"``.  Returns a
    :class:`BenchmarkEvaluation` with cycle counts and region statistics.
    """
    program = compile_benchmark(name)
    fingerprint = program_fingerprint(program)
    cache_key = "eval-%s-%s-b%d-%s" % (
        name, fingerprint, tail_dup_budget,
        "_".join(sorted(configs)))
    path = os.path.join(cache_dir(), cache_key + ".json")
    if use_cache and os.path.exists(path):
        with open(path) as handle:
            return BenchmarkEvaluation(name, json.load(handle))

    result = run_program_cached(program, name + "-")
    region_sets = {}

    def get_region_set(regioning):
        if regioning not in region_sets:
            if regioning == "bb":
                region_sets[regioning] = basic_block_regions(program,
                                                             result)
            else:
                region_sets[regioning] = superblock_regions(
                    program, result, tail_dup_budget, name + "-")
        return region_sets[regioning]

    cycles = {}
    for key, (config, regioning) in configs.items():
        cycles[key] = machine_cycles(get_region_set(regioning), config)

    region_stats = {}
    for regioning, region_set in region_sets.items():
        mean, entries = region_set.stats()
        region_stats[regioning] = {"mean_length": mean,
                                   "entries": entries}

    data = {"cycles": cycles, "region_stats": region_stats,
            "steps": result.steps}
    with open(path, "w") as handle:
        json.dump(data, handle)
    return BenchmarkEvaluation(name, data)
