"""Pluggable content-addressed artefact stores.

The evaluation pipeline memoises every DAG node — profiles, region
layouts, cycle cells, experiment-level results — in a
content-addressed store of checksummed JSON entries.  PR 2 introduced
the single-directory :class:`CacheStore` with one global ``.lock``;
this module makes the store a small pluggable surface so the serving
layer (:mod:`repro.serve`) can scale it:

:class:`CacheStore`
    The single-directory backend.  Entry files are
    ``cas-<kind>-<keyhash>.json``; writers are serialised per *lock
    slot* (the key hash picks one of :data:`LOCK_SLOTS` advisory lock
    files) instead of one global lock, so unrelated keys no longer
    contend.

:class:`ShardedCacheStore`
    Entries are spread over ``shard-XX/`` subdirectories by key hash,
    each shard with its own ``.lock``.  Adds corruption *quarantine*
    (a damaged entry is moved aside for post-mortem rather than
    silently unlinked), a size-budgeted LRU eviction sweep
    (:meth:`gc`, surfaced as ``repro cache gc``) and the
    ``cache.shard`` fault-injection site.

:func:`open_store`
    Factory honouring ``REPRO_CACHE_SHARDS`` — the engine, the CLI and
    the service all open their store through it, so a deployment picks
    its backend with one environment variable.

Robustness invariants shared by both backends:

* Reads are optimistic and lock-free.  A corrupt or checksum-mismatched
  entry is **re-checked under the key's lock** before being discarded:
  a concurrent writer may have repaired it between our read and our
  delete, and unlinking the fresh entry would throw its work away.
* Writes go through :func:`repro.atomicio.atomic_write_json` under the
  key's lock.  If the lock cannot be acquired within a bound the write
  proceeds unlocked — the atomic rename alone already guarantees
  readers never see a torn file, so a wedged peer cannot deadlock a
  writer (the bounded wait is counted as lock contention).
* Counters (hits/misses/corrupt plus quarantined/evictions/races/
  contention) are mirrored into the observability layer so a tracer or
  the service's ``/metrics`` endpoint can reconcile them.
"""

import hashlib
import json
import os
import time
import zlib

from repro.atomicio import FileLock, atomic_write_json
from repro.benchmarks.suite import cache_dir
from repro.observability import tracing as obs
from repro.testing import faults

__all__ = [
    "CACHE_SCHEMA",
    "CacheStore",
    "ShardedCacheStore",
    "open_store",
]

#: bump to invalidate every cached artefact (layout/format changes)
CACHE_SCHEMA = 1

#: single-directory stores hash keys onto this many advisory lock
#: files (``.lock-XX``) so unrelated keys do not serialise each other
LOCK_SLOTS = 16

#: how long a writer waits for the key's lock before falling back to
#: an unlocked (still atomic) publish — prevents cross-key deadlock
#: when two single-flight computes write each other's slots
PUT_LOCK_TIMEOUT = 10.0

#: ``open_store`` reads the shard count from this variable
SHARDS_ENV = "REPRO_CACHE_SHARDS"


def _canonical(value):
    """Deterministic JSON encoding used for every hashed key."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class _CorruptEntry(ValueError):
    """Internal: an entry failed decoding or checksum verification."""


class CacheStore:
    """Content-addressed JSON artefacts with integrity checking.

    Entries live as ``cas-<kind>-<keyhash>.json`` files wrapping the
    payload together with a checksum of its canonical encoding; a
    missing, truncated, corrupt or checksum-mismatched entry reads as
    a miss (and is discarded *under the key's lock* — see
    :meth:`_recover`) so it is recomputed, never trusted.  Writes are
    crash-safe (:func:`repro.atomicio.atomic_write_json`: temp file +
    fsync + atomic rename) and serialised under the key's slot lock,
    so concurrent workers — or two whole CLI runs sharing the
    directory — can race on the same key without ever exposing a torn
    file.
    """

    def __init__(self, root=None):
        self._root = root
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.quarantined = 0
        self.evictions = 0
        self.races = 0
        self.contention = 0
        self._locks = {}
        self._kind_counts = {}

    @property
    def root(self):
        return self._root or cache_dir()

    # -- keys and paths ----------------------------------------------------

    def key(self, kind, components):
        payload = {"schema": CACHE_SCHEMA, "kind": kind,
                   "components": components}
        digest = hashlib.sha256(_canonical(payload).encode()).hexdigest()
        return "cas-%s-%s" % (kind, digest[:32])

    def path(self, key):
        return os.path.join(self.root, key + ".json")

    def lock_for(self, key):
        """The re-entrant :class:`FileLock` guarding *key*.

        One lock object is cached per lock file, so a caller holding
        the key's lock (single-flight ``memoised``) and the store's
        own :meth:`put` share the same re-entrant object instead of
        deadlocking on a second descriptor.
        """
        path = self._lock_path(key)
        lock = self._locks.get(path)
        if lock is None:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            lock = FileLock(path)
            self._locks[path] = lock
        return lock

    def _lock_path(self, key):
        slot = zlib.crc32(key.encode()) % LOCK_SLOTS
        return os.path.join(self.root, ".lock-%02x" % slot)

    # -- reads -------------------------------------------------------------

    def get(self, key):
        """The payload stored under *key*, or None (a miss)."""
        path = self.path(key)
        try:
            self._pre_read_faults(path)
            payload = self._read(path)
        except FileNotFoundError:
            self.misses += 1
            obs.add("cache.misses")
            self._note_kind(key, "misses")
            return None
        except _CorruptEntry:
            payload = self._recover(key, path)
            if payload is None:
                self._note_kind(key, "misses")
                return None
        self.hits += 1
        obs.add("cache.hits")
        self._note_kind(key, "hits")
        self._touch(path)
        return payload

    def _note_kind(self, key, outcome):
        """Count *outcome* against the key's artefact kind.

        Keys are ``cas-<kind>-<hash>``, so the kind is recoverable from
        the key itself; the per-kind breakdown lets a caller report the
        answer-memo hit rate separately from pipeline artefacts sharing
        the same store (see :meth:`kind_stats`).
        """
        parts = key.split("-", 2)
        if len(parts) == 3 and parts[0] == "cas":
            counts = self._kind_counts.setdefault(
                parts[1], {"hits": 0, "misses": 0})
            counts[outcome] += 1

    def _pre_read_faults(self, path):
        if faults.armed("cache.read") and os.path.exists(path) \
                and faults.fire("cache.read") == "corrupt":
            faults.corrupt_file(path)

    def _read(self, path):
        """Decode and verify one entry file; raises on any damage."""
        with open(path) as handle:
            try:
                entry = json.load(handle)
                payload = entry["payload"]
                checksum = hashlib.sha256(
                    _canonical(payload).encode()).hexdigest()
                if entry["sha256"] != checksum:
                    raise ValueError("payload checksum mismatch")
            except (ValueError, KeyError, TypeError) as error:
                raise _CorruptEntry(str(error)) from error
        return payload

    def _recover(self, key, path):
        """Re-check a corrupt entry under the key's lock.

        Discarding without the lock could unlink an entry a concurrent
        writer repaired between our read and our delete; under the
        lock either the repaired payload is served or the damage is
        confirmed and the entry discarded.
        """
        with self.lock_for(key):
            try:
                return self._read(path)
            except FileNotFoundError:
                self.misses += 1
                obs.add("cache.misses")
                return None
            except _CorruptEntry:
                self.corrupt += 1
                self.misses += 1
                obs.add("cache.corrupt")
                obs.add("cache.misses")
                self._discard(path)
                return None

    def _discard(self, path):
        """Remove a confirmed-corrupt entry (holding the key's lock)."""
        try:
            os.remove(path)
        except OSError:
            pass

    def _touch(self, path):
        """Refresh the entry's mtime so LRU eviction sees the hit."""
        try:
            os.utime(path)
        except OSError:
            pass

    # -- writes ------------------------------------------------------------

    def put(self, key, payload):
        obs.add("cache.writes")
        path = self.path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {"key": key, "schema": CACHE_SCHEMA, "payload": payload,
                 "sha256": hashlib.sha256(
                     _canonical(payload).encode()).hexdigest()}
        lock = self.lock_for(key)
        acquired = self._acquire_bounded(lock, PUT_LOCK_TIMEOUT)
        try:
            atomic_write_json(path, entry)
        finally:
            if acquired:
                lock.release()

    def _acquire_bounded(self, lock, timeout):
        """Acquire *lock*, waiting at most *timeout* seconds.

        Returns False when the wait expires — the caller proceeds
        unlocked (atomic rename keeps that safe) rather than risking
        deadlock against a peer holding a different slot.  A failed
        first attempt counts as lock contention.
        """
        if lock.try_acquire():
            return True
        self._note_contention()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            time.sleep(0.01)
            if lock.try_acquire():
                return True
        return False

    def _note_contention(self):
        self.contention += 1
        obs.add("cache.lock.contention")

    # -- maintenance -------------------------------------------------------

    def _entry_dirs(self):
        return [self.root]

    def entries(self):
        """``(path, size, mtime)`` of every entry file, oldest first."""
        found = []
        for directory in self._entry_dirs():
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in sorted(names):
                if not (name.startswith("cas-")
                        and name.endswith(".json")):
                    continue
                path = os.path.join(directory, name)
                try:
                    status = os.stat(path)
                except OSError:
                    continue
                found.append((path, status.st_size, status.st_mtime))
        found.sort(key=lambda item: (item[2], item[0]))
        return found

    def _quarantine_dir(self):
        return os.path.join(self.root, "quarantine")

    def _quarantine_files(self):
        directory = self._quarantine_dir()
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            return []
        return [os.path.join(directory, name) for name in names]

    def usage(self):
        """Occupancy summary for ``repro cache stats``."""
        entries = self.entries()
        quarantine = self._quarantine_files()
        quarantine_bytes = 0
        for path in quarantine:
            try:
                quarantine_bytes += os.stat(path).st_size
            except OSError:
                pass
        return {
            "root": self.root,
            "shards": getattr(self, "shards", 1),
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "quarantined_files": len(quarantine),
            "quarantined_bytes": quarantine_bytes,
        }

    def gc(self, budget_bytes):
        """Evict least-recently-used entries down to *budget_bytes*.

        Hits refresh an entry's mtime (:meth:`_touch`), so mtime order
        is recency order.  Quarantined files are always purged — they
        exist for post-mortem inspection, not as a growing liability.
        Returns a summary dict; evictions are counted on the store and
        mirrored to the ``cache.evictions`` metric.
        """
        removed = 0
        freed = 0
        for path in self._quarantine_files():
            try:
                freed += os.stat(path).st_size
                os.remove(path)
                removed += 1
            except OSError:
                pass
        entries = self.entries()
        total = sum(size for _, size, _ in entries)
        kept = list(entries)
        for path, size, _ in entries:
            if total <= budget_bytes:
                break
            key = os.path.basename(path)[:-len(".json")]
            with self.lock_for(key):
                try:
                    os.remove(path)
                except OSError:
                    continue
            total -= size
            freed += size
            removed += 1
            kept.pop(0)
            self.evictions += 1
            obs.add("cache.evictions")
        return {"removed": removed, "freed_bytes": freed,
                "kept": len(kept), "kept_bytes": total,
                "budget_bytes": budget_bytes}

    # -- introspection -----------------------------------------------------

    def stats(self):
        return {"hits": self.hits, "misses": self.misses,
                "corrupt": self.corrupt}

    def kind_stats(self, kind=None):
        """Hit/miss counts broken down by artefact kind.

        With *kind* given, that kind's ``{"hits": H, "misses": M}``
        (zeros when never looked up); otherwise the whole mapping."""
        if kind is not None:
            counts = self._kind_counts.get(kind, {"hits": 0,
                                                  "misses": 0})
            return dict(counts)
        return {name: dict(counts)
                for name, counts in sorted(self._kind_counts.items())}

    def counters(self):
        """Every robustness counter (superset of :meth:`stats`)."""
        counters = self.stats()
        counters.update({
            "quarantined": self.quarantined,
            "evictions": self.evictions,
            "races": self.races,
            "contention": self.contention,
            "shards": getattr(self, "shards", 1),
        })
        return counters


class ShardedCacheStore(CacheStore):
    """A :class:`CacheStore` spread over per-shard subdirectories.

    The key hash picks one of *shards* ``shard-XX/`` directories, each
    with its own ``.lock``, so concurrent writers only contend when
    they actually share a shard.  Confirmed-corrupt entries are moved
    into ``quarantine/`` (counted as ``cache.quarantined``) instead of
    unlinked, preserving the evidence; the ``cache.shard`` fault site
    injects read-path corruption and transient shard I/O errors, both
    of which must heal into a recompute, never a wrong answer.
    """

    def __init__(self, root=None, shards=8):
        super().__init__(root)
        self.shards = max(1, int(shards))

    def shard_of(self, key):
        return zlib.crc32(key.encode()) % self.shards

    def shard_dir(self, index):
        return os.path.join(self.root, "shard-%02x" % index)

    def path(self, key):
        return os.path.join(self.shard_dir(self.shard_of(key)),
                            key + ".json")

    def _lock_path(self, key):
        return os.path.join(self.shard_dir(self.shard_of(key)), ".lock")

    def _entry_dirs(self):
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return []
        return [os.path.join(self.root, name) for name in names
                if name.startswith("shard-")]

    def _note_contention(self):
        self.contention += 1
        obs.add("cache.shard.contention")

    def get(self, key):
        try:
            return super().get(key)
        except faults.InjectedFault:
            # A transient shard I/O error is a miss, not an outage:
            # the caller recomputes and the entry is rewritten.
            self.misses += 1
            obs.add("cache.shard.errors")
            obs.add("cache.misses")
            self._note_kind(key, "misses")
            return None

    def _pre_read_faults(self, path):
        super()._pre_read_faults(path)
        if faults.armed("cache.shard") and os.path.exists(path):
            kind = faults.fire("cache.shard")
            if kind == "corrupt":
                faults.corrupt_file(path)

    def _discard(self, path):
        directory = self._quarantine_dir()
        os.makedirs(directory, exist_ok=True)
        target = os.path.join(directory, os.path.basename(path))
        try:
            os.replace(path, target)
        except OSError:
            super()._discard(path)
            return
        self.quarantined += 1
        obs.add("cache.quarantined")


def open_store(root=None, shards=None):
    """Open the configured store backend.

    *shards* ``None`` reads ``REPRO_CACHE_SHARDS`` from the
    environment; a count above 1 selects :class:`ShardedCacheStore`,
    anything else the single-directory :class:`CacheStore`.
    """
    if shards is None:
        value = os.environ.get(SHARDS_ENV)
        if value:
            try:
                shards = int(value)
            except ValueError:
                shards = None
    if shards is not None and shards > 1:
        return ShardedCacheStore(root, shards)
    return CacheStore(root)
