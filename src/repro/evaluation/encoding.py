"""64-bit instruction encoding of the SYMBOL VLSI prototype (section 5.2).

"Machine instructions are horizontal, 64 bits wide and organized into two
formats, one for direct and one for immediate addressing.  Direct address
format allows a memory access, an ALU operation and a register movement.
Immediate address format allows a control operation (or immediate operand
movement) and a memory access."

The encoder packs one unit's cycle into a word, enforcing the prototype's
physical limits: 16 registers (4-bit specifiers), 28-bit immediates (the
tagged word's value field), 3-bit tags, and a 3-bit branch priority field
(the compiler "includes bits in the instructions to specify the priority
of the branch operations" for multi-way issue).
"""

from repro.terms import tags
from repro.intcode.ici import OP_CLASS, MEM, ALU, MOVE, CTRL


class EncodingError(Exception):
    """Raised when an operation does not fit the prototype's fields."""


N_REGISTERS = 16
OFFSET_BITS_A = 8
OFFSET_BITS_B = 5
IMM_BITS = tags.VALUE_BITS  # 28

_MEM_OPCODES = {"none": 0, "ld": 1, "st": 2}
_ALU_OPCODES = {"none": 0, "add": 1, "sub": 2, "mul": 3, "div": 4,
                "mod": 5, "and": 6, "or": 7, "xor": 8, "sll": 9,
                "sra": 10, "lea": 11, "mktag": 12, "gettag": 13,
                "esc": 14}
_CTRL_OPCODES = {"none": 0, "btag": 1, "bntag": 2, "beq": 3, "bne": 4,
                 "bltv": 5, "blev": 6, "bgtv": 7, "bgev": 8, "jmp": 9,
                 "jmpr": 10, "call": 11, "halt": 12, "ldi": 13}

_MEM_NAMES = {v: k for k, v in _MEM_OPCODES.items()}
_ALU_NAMES = {v: k for k, v in _ALU_OPCODES.items()}
_CTRL_NAMES = {v: k for k, v in _CTRL_OPCODES.items()}


def _check_reg(reg):
    if not 0 <= reg < N_REGISTERS:
        raise EncodingError("register r%d outside the 16-register bank"
                            % reg)
    return reg


def _check_field(value, bits, what, signed=False):
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if not lo <= value <= hi:
        raise EncodingError("%s %d does not fit in %d bits"
                            % (what, value, bits))
    return value & ((1 << bits) - 1)


def _sign_extend(value, bits):
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


class FormatA:
    """Direct-address format: memory access + ALU operation + move."""

    def __init__(self, mem_op="none", mem_reg=0, mem_base=0, mem_off=0,
                 alu_op="none", alu_rd=0, alu_ra=0, alu_rb=0, alu_tag=0,
                 move=False, move_rd=0, move_rs=0):
        self.mem_op = mem_op
        self.mem_reg = mem_reg
        self.mem_base = mem_base
        self.mem_off = mem_off
        self.alu_op = alu_op
        self.alu_rd = alu_rd
        self.alu_ra = alu_ra
        self.alu_rb = alu_rb
        self.alu_tag = alu_tag
        self.move = move
        self.move_rd = move_rd
        self.move_rs = move_rs

    def pack(self):
        word = 0  # format bit 63 = 0
        word |= _MEM_OPCODES[self.mem_op] << 60
        word |= _check_reg(self.mem_reg) << 56
        word |= _check_reg(self.mem_base) << 52
        word |= _check_field(self.mem_off, OFFSET_BITS_A,
                             "memory offset", signed=True) << 44
        word |= _ALU_OPCODES[self.alu_op] << 38
        word |= _check_reg(self.alu_rd) << 34
        word |= _check_reg(self.alu_ra) << 30
        word |= _check_reg(self.alu_rb) << 26
        word |= _check_field(self.alu_tag, tags.TAG_BITS, "tag") << 23
        word |= (1 if self.move else 0) << 20
        word |= _check_reg(self.move_rd) << 16
        word |= _check_reg(self.move_rs) << 12
        return word

    @classmethod
    def unpack(cls, word):
        if word >> 63:
            raise EncodingError("format bit says immediate format")
        return cls(
            mem_op=_MEM_NAMES[(word >> 60) & 0x7],
            mem_reg=(word >> 56) & 0xF,
            mem_base=(word >> 52) & 0xF,
            mem_off=_sign_extend((word >> 44) & 0xFF, OFFSET_BITS_A),
            alu_op=_ALU_NAMES[(word >> 38) & 0x3F],
            alu_rd=(word >> 34) & 0xF,
            alu_ra=(word >> 30) & 0xF,
            alu_rb=(word >> 26) & 0xF,
            alu_tag=(word >> 23) & 0x7,
            move=bool((word >> 20) & 0x7),
            move_rd=(word >> 16) & 0xF,
            move_rs=(word >> 12) & 0xF,
        )


class FormatB:
    """Immediate format: control op (or immediate move) + memory access."""

    def __init__(self, ctrl_op="none", ctrl_ra=0, ctrl_rb=0, ctrl_tag=0,
                 priority=0, imm=0, mem_op="none", mem_reg=0, mem_base=0,
                 mem_off=0):
        self.ctrl_op = ctrl_op
        self.ctrl_ra = ctrl_ra
        self.ctrl_rb = ctrl_rb
        self.ctrl_tag = ctrl_tag
        self.priority = priority
        self.imm = imm
        self.mem_op = mem_op
        self.mem_reg = mem_reg
        self.mem_base = mem_base
        self.mem_off = mem_off

    def pack(self):
        word = 1 << 63
        word |= _CTRL_OPCODES[self.ctrl_op] << 58
        word |= _check_reg(self.ctrl_ra) << 54
        word |= _check_reg(self.ctrl_rb) << 50
        word |= _check_field(self.ctrl_tag, tags.TAG_BITS, "tag") << 47
        word |= _check_field(self.priority, 3, "branch priority") << 44
        word |= _check_field(self.imm, IMM_BITS, "immediate",
                             signed=True) << 16
        word |= _MEM_OPCODES[self.mem_op] << 13
        word |= _check_reg(self.mem_reg) << 9
        word |= _check_reg(self.mem_base) << 5
        word |= _check_field(self.mem_off, OFFSET_BITS_B,
                             "memory offset", signed=True)
        return word

    @classmethod
    def unpack(cls, word):
        if not word >> 63:
            raise EncodingError("format bit says direct format")
        return cls(
            ctrl_op=_CTRL_NAMES[(word >> 58) & 0x1F],
            ctrl_ra=(word >> 54) & 0xF,
            ctrl_rb=(word >> 50) & 0xF,
            ctrl_tag=(word >> 47) & 0x7,
            priority=(word >> 44) & 0x7,
            imm=_sign_extend((word >> 16) & ((1 << IMM_BITS) - 1),
                             IMM_BITS),
            mem_op=_MEM_NAMES[(word >> 13) & 0x7],
            mem_reg=(word >> 9) & 0xF,
            mem_base=(word >> 5) & 0xF,
            mem_off=_sign_extend(word & 0x1F, OFFSET_BITS_B),
        )


def classify_cycle(ops):
    """Split one unit's cycle worth of ICI operations into a format.

    Returns ``("A", mem, alu, move)`` or ``("B", ctrl, mem)``; raises
    :class:`EncodingError` if the mix fits neither format (this is the
    formal statement of the paper's "the compiler has to choose, and
    parallelism is somewhat reduced").
    """
    by_class = {MEM: [], ALU: [], MOVE: [], CTRL: []}
    for op in ops:
        by_class[OP_CLASS[op.op]].append(op)
    for cls, limit in ((MEM, 1), (ALU, 1), (MOVE, 1), (CTRL, 1)):
        if len(by_class[cls]) > limit:
            raise EncodingError("more than one %s operation per unit"
                                % cls)
    ctrl = by_class[CTRL][0] if by_class[CTRL] else None
    mem = by_class[MEM][0] if by_class[MEM] else None
    alu = by_class[ALU][0] if by_class[ALU] else None
    move = by_class[MOVE][0] if by_class[MOVE] else None
    if ctrl is not None or (move is not None and move.op == "ldi"):
        if alu is not None or (move is not None and move.op != "ldi"):
            raise EncodingError(
                "control/immediate format excludes ALU and register moves")
        if ctrl is not None and move is not None:
            raise EncodingError("control op and immediate move conflict")
        return ("B", ctrl if ctrl is not None else move, mem)
    return ("A", mem, alu, move)
