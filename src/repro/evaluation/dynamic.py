"""Dynamic-scheduling dataflow limit.

The paper's conclusion: "further improvements can come only from
technology (designing faster processors), or architecture (adopting
dynamic scheduling)".  This module measures how much an idealised
dynamically-scheduled machine could gain: it re-executes the program
while computing, per dynamic operation, the earliest cycle an
infinite-window out-of-order machine could issue it —

* true register dataflow (RAW through the actual dynamic values),
* *perfect* memory disambiguation (per-address store/load ordering —
  dynamic hardware sees addresses; the static compiler, per section 4.1,
  cannot),
* perfect branch prediction (control imposes no constraint), and
* the shared-memory port: at most ``mem_ports`` accesses per cycle.

The result upper-bounds any real dynamic implementation and is the
natural yardstick for how much of the statically reachable parallelism
trace scheduling already captures.
"""

from repro.terms import tags
from repro.intcode import layout
from repro.emulator.machine import (
    decode, EmulatorError,
    _LD, _ST, _BTAG, _BNTAG, _MOV, _LEA, _LDI, _BEQ, _BNE, _JMP, _CALL,
    _JMPR, _ADD, _SUB, _MUL, _DIV, _MOD, _AND, _OR, _XOR, _SLL, _SRA,
    _BLTV, _BLEV, _BGTV, _BGEV, _MKTAG, _GETTAG, _ESC, _HALT)

_ALU_SET = {_ADD, _SUB, _MUL, _DIV, _MOD, _AND, _OR, _XOR, _SLL, _SRA,
            _MKTAG, _GETTAG, _LEA}
_CMP_SET = {_BEQ, _BNE, _BLTV, _BLEV, _BGTV, _BGEV}


class DataflowResult:
    """Outcome of a dataflow-limit run."""

    def __init__(self, cycles, steps, status):
        self.cycles = cycles
        self.steps = steps
        self.status = status

    @property
    def ilp(self):
        return self.steps / self.cycles if self.cycles else 0.0


def dataflow_limit(program, mem_ports=1, mem_latency=2, alu_latency=1,
                   max_steps=50_000_000):
    """Execute *program*, returning its idealised dynamic timing."""
    code, reg_index = decode(program)
    n_regs = len(reg_index)
    regs = [tags.pack(0, tags.TRAW)] * n_regs
    for name, value in layout.MACHINE_REGISTERS.items():
        tag = tags.TCOD if name in ("CP", "RL") else tags.TRAW
        regs[reg_index[name]] = tags.pack(value, tag)

    mem = {}
    symbols = program.symbols
    for index in range(symbols.functor_count):
        mem[layout.FTAB_BASE + index] = tags.pack(
            symbols.functor_arity(index), tags.TINT)

    ready = [0] * n_regs          # cycle a register's value is available
    store_time = {}               # address -> last store issue cycle
    load_time = {}                # address -> last load issue cycle
    port_free = [0] * mem_ports   # next free cycle per memory port
    esc_time = 0                  # program output is in-order
    horizon = 0                   # completion time of the whole run

    pc = program.entry_pc
    steps = 0
    status = None

    def issue_mem(earliest):
        """Claim the earliest free memory port at or after *earliest*."""
        best = min(range(mem_ports), key=lambda p: max(port_free[p],
                                                       earliest))
        cycle = max(port_free[best], earliest)
        port_free[best] = cycle + 1
        return cycle

    while True:
        ins = code[pc]
        steps += 1
        if steps > max_steps:
            raise EmulatorError("dataflow limit: step budget exceeded")
        op = ins[0]

        if op == _LD:
            addr = (regs[ins[2]] >> 4) + ins[3]
            earliest = ready[ins[2]]
            last_store = store_time.get(addr)
            if last_store is not None:
                earliest = max(earliest, last_store + 1)
            cycle = issue_mem(earliest)
            load_time[addr] = max(load_time.get(addr, 0), cycle)
            ready[ins[1]] = cycle + mem_latency
            regs[ins[1]] = mem[addr]
        elif op == _ST:
            addr = (regs[ins[2]] >> 4) + ins[3]
            earliest = max(ready[ins[1]], ready[ins[2]],
                           store_time.get(addr, -1) + 1,
                           load_time.get(addr, 0))
            cycle = issue_mem(earliest)
            store_time[addr] = cycle
            mem[addr] = regs[ins[1]]
        elif op == _MOV:
            ready[ins[1]] = ready[ins[2]]
            regs[ins[1]] = regs[ins[2]]
        elif op == _LDI:
            ready[ins[1]] = 0
            regs[ins[1]] = ins[2]
        elif op in _ALU_SET:
            if op == _LEA:
                cycle = ready[ins[2]] + alu_latency
                regs[ins[1]] = (((regs[ins[2]] >> 4) + ins[3]) << 4) \
                    | (ins[4] << 1)
            elif op == _MKTAG:
                cycle = ready[ins[2]] + alu_latency
                regs[ins[1]] = (regs[ins[2]] & ~0b1110) | (ins[3] << 1)
            elif op == _GETTAG:
                cycle = ready[ins[2]] + alu_latency
                regs[ins[1]] = (((regs[ins[2]] >> 1) & 7) << 4) | 4
            else:
                cycle = max(ready[ins[2]], ready[ins[3]]) + alu_latency
                a = regs[ins[2]] >> 4
                b = regs[ins[3]] >> 4
                if op == _ADD:
                    v = a + b
                elif op == _SUB:
                    v = a - b
                elif op == _MUL:
                    v = a * b
                elif op in (_DIV, _MOD):
                    q = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        q = -q
                    v = q if op == _DIV else a - q * b
                elif op == _AND:
                    v = a & b
                elif op == _OR:
                    v = a | b
                elif op == _XOR:
                    v = a ^ b
                elif op == _SLL:
                    v = a << b
                else:
                    v = a >> b
                regs[ins[1]] = (v << 4) | 4
            ready[ins[1]] = cycle
        elif op == _BTAG:
            if ((regs[ins[1]] >> 1) & 7) == ins[2]:
                pc = ins[3]
                continue
        elif op == _BNTAG:
            if ((regs[ins[1]] >> 1) & 7) != ins[2]:
                pc = ins[3]
                continue
        elif op in _CMP_SET:
            a = regs[ins[1]]
            b = regs[ins[2]]
            taken = {_BEQ: a == b, _BNE: a != b,
                     _BLTV: (a >> 4) < (b >> 4),
                     _BLEV: (a >> 4) <= (b >> 4),
                     _BGTV: (a >> 4) > (b >> 4),
                     _BGEV: (a >> 4) >= (b >> 4)}[op]
            if taken:
                pc = ins[3]
                continue
        elif op == _JMP:
            pc = ins[1]
            continue
        elif op == _CALL:
            regs[ins[1]] = ((pc + 1) << 4) | (tags.TCOD << 1)
            ready[ins[1]] = 0
            pc = ins[2]
            continue
        elif op == _JMPR:
            pc = regs[ins[1]] >> 4
            continue
        elif op == _ESC:
            esc_time = max(esc_time + 1, ready[ins[2]] + 1
                           if ins[2] is not None else esc_time + 1)
        elif op == _HALT:
            status = ins[1]
            break
        pc += 1

    for time in ready:
        if time > horizon:
            horizon = time
    horizon = max(horizon, max(port_free), esc_time,
                  max(store_time.values(), default=0) + 1)
    return DataflowResult(horizon, steps, status)
