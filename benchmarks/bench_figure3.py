"""Figure 3 — Amdahl curves for the shared-memory model."""

from benchmarks.conftest import save_result
from repro.experiments import figure3
from repro.analysis.amdahl import figure3_series


def test_figure3(benchmark):
    data = figure3.compute()
    save_result("figure3", figure3.render(data))
    enhancements = [1 + 0.5 * i for i in range(31)]
    benchmark(figure3_series, data["mem_fraction"], enhancements)
    assert 2.5 < data["asymptote"] < 4.0
