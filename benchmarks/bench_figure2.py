"""Figure 2 — dynamic instruction mix.

Regenerates the figure into ``results/figure2.txt`` and times the mix
computation over a cached profile.
"""

from benchmarks.conftest import save_result
from repro.experiments import figure2


def test_figure2(benchmark):
    data = figure2.compute()
    save_result("figure2", figure2.render(data))
    benchmark(figure2.benchmark_mix, "qsort")
    # Paper: memory ~32%.
    from repro.intcode.ici import MEM
    assert 0.25 < data["average"][MEM] < 0.40
