"""Table 1 — basic-block versus trace compaction (the central ablation of
the paper: local versus global scheduling on an ideal shared-memory
machine)."""

from benchmarks.conftest import save_result
from repro.experiments import table1
from repro.compaction import ideal
from repro.evaluation.pipeline import superblock_regions, machine_cycles
from repro.benchmarks import compile_benchmark, run_program_cached


def test_table1(benchmark):
    data = table1.compute()
    save_result("table1", table1.render(data))

    # Time the global-compaction leg on one benchmark (profile cached).
    program = compile_benchmark("qsort")
    result = run_program_cached(program, "qsort-")
    region_set = superblock_regions(program, result, cache_hint="qsort-")
    benchmark(machine_cycles, region_set, ideal())

    average = data["average"]
    assert average["trace_speedup"] > average["bb_speedup"]
    assert data["trace_gain"] > 1.15   # paper: ~30% gain
