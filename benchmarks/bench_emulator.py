"""Emulator backend shoot-out: reference loop, threaded code, codegen.

Regenerates ``BENCH_emulator.json`` (the perf-trajectory record also
produced by ``repro bench``) into ``results/`` and times one
representative program per backend under pytest-benchmark.  The paper
suite sweep doubles as a differential check: the document's
``identical`` fields assert all backends returned bit-identical
results everywhere.
"""

import os

from repro.benchmarks.perf import (
    bench_document, format_bench, validate_bench, write_bench)
from repro.benchmarks.suite import compile_benchmark
from repro.emulator import CodegenEmulator, Emulator, ThreadedEmulator

from benchmarks.conftest import save_result


def test_backend_throughput_reference(benchmark):
    program = compile_benchmark("nreverse")
    emulator = Emulator(program)
    result = benchmark(emulator.run)
    assert result.succeeded
    benchmark.extra_info["ici_per_second"] = (
        result.steps / benchmark.stats["mean"])


def test_backend_throughput_threaded(benchmark):
    program = compile_benchmark("nreverse")
    emulator = ThreadedEmulator(program)
    result = benchmark(emulator.run)
    assert result.succeeded
    assert result.backend == "threaded"
    benchmark.extra_info["ici_per_second"] = (
        result.steps / benchmark.stats["mean"])


def test_backend_throughput_codegen(benchmark):
    program = compile_benchmark("nreverse")
    emulator = CodegenEmulator(program, persist=False)
    emulator.run()          # warm: tier-2 recompile + template in place
    emulator.run()
    result = benchmark(emulator.run)
    assert result.succeeded
    assert result.backend == "codegen"
    benchmark.extra_info["ici_per_second"] = (
        result.steps / benchmark.stats["mean"])


def test_emit_bench_emulator_json(results_dir):
    document = bench_document(repeats=3)
    problems = validate_bench(document)
    assert not problems, problems
    assert document["summary"]["all_identical"]
    path = write_bench(document,
                       os.path.join(results_dir, "BENCH_emulator.json"))
    assert os.path.exists(path)
    speedups = document["summary"]["speedups"]
    save_result("bench_emulator", "\n".join(
        format_bench(entry) for entry in document["benchmarks"])
        + "\ntotal speedup: " + " ".join(
            "%s %.2fx" % (backend, speedup)
            for backend, speedup in speedups.items()))
