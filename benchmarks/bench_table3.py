"""Table 3 / Figure 6 — speedup versus number of units."""

from benchmarks.conftest import save_result
from repro.experiments import table3
from repro.compaction import vliw
from repro.evaluation.pipeline import superblock_regions, machine_cycles
from repro.benchmarks import compile_benchmark, run_program_cached


def test_table3(benchmark):
    data = table3.compute()
    save_result("table3_figure6", table3.render(data))

    program = compile_benchmark("serialise")
    result = run_program_cached(program, "serialise-")
    region_set = superblock_regions(program, result,
                                    cache_hint="serialise-")
    benchmark(machine_cycles, region_set, vliw(3))

    average = data["average"]
    units = [average["vliw%d" % n] for n in range(1, 6)]
    assert units == sorted(units)          # monotone
    assert units[4] - units[3] < 0.05      # saturation at 3-4 units
    assert 1.3 < average["bam"] < 1.9      # paper: 1.58
