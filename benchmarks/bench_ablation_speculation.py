"""Ablation — upward code motion past branches (off-live-checked
speculation).  Without it, global compaction loses most of its edge."""

from benchmarks.conftest import save_result
from repro.experiments import ablations


def test_speculation(benchmark):
    data = benchmark.pedantic(ablations.speculation, rounds=1,
                              iterations=1)
    save_result("ablation_speculation",
                "speculation on:  %.2f\nspeculation off: %.2f"
                % (data["spec_on"], data["spec_off"]))
    assert data["spec_on"] > data["spec_off"]
