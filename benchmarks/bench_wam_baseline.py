"""Section 2 — the BAM model/compiler improvement over a Warren-style
baseline, rebuilt on our own substrate."""

from benchmarks.conftest import save_result
from repro.experiments import wam_baseline


def test_wam_baseline(benchmark):
    data = wam_baseline.compute()
    save_result("wam_baseline", wam_baseline.render(data))
    benchmark(wam_baseline.benchmark_ratio, "nreverse")
    # Indexing + determinism + LCO must be clearly worth it, approaching
    # the paper's "roughly a factor of three" on the deterministic
    # structure-matching programs.
    assert data["average_ratio"] > 1.4
    best = max(entry["ratio"] for entry in data["benchmarks"].values())
    assert best > 2.3
