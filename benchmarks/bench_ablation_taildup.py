"""Ablation — tail-duplication budget: the compensation-code trade-off of
section 4.4 ("disadvantages of a larger code size ... are overcome by the
advantage of a faster execution of the most frequently executed parts").
"""

from benchmarks.conftest import save_result
from repro.experiments import ablations


def test_tail_dup_budget(benchmark):
    rows = benchmark.pedantic(ablations.tail_dup_budget, rounds=1,
                              iterations=1)
    lines = ["budget=%4d  speedup=%.2f  region_length=%.1f"
             % (row["budget"], row["speedup"], row["length"])
             for row in rows]
    save_result("ablation_taildup", "\n".join(lines))
    # Bigger budgets give longer regions...
    lengths = [row["length"] for row in rows]
    assert lengths[0] <= lengths[-1]
    # ...and at least as much speedup as join-limited traces.
    assert rows[-1]["speedup"] >= rows[0]["speedup"] - 0.05
