"""Register-pressure study for the prototype's 16-register bank
(section 5.2 design validation — beyond the paper's tables)."""

from benchmarks.conftest import save_result
from repro.experiments import registers


def test_register_pressure(benchmark):
    data = registers.compute()
    save_result("register_pressure", registers.render(data))
    benchmark(registers.benchmark_pressure, "serialise")

    average = data["average"]
    # The prototype's 16 registers hold the vast majority of dynamic
    # region executions; 8 registers clearly would not.
    assert average["spill_fraction"][16] < 0.15
    assert average["spill_fraction"][8] > average["spill_fraction"][16]
    assert average["spill_fraction"][32] <= average["spill_fraction"][16]
