"""Static ILP bound — dataflow-limit speedup next to the achieved
schedule, plus the analyzer's own overhead record (BENCH_analyze.json)."""

import os

from benchmarks.conftest import RESULTS_DIR, save_result
from repro.analysis.driver import (
    analyze_bench_document, timed_analyze, validate_analyze_bench,
    write_analyze_bench)
from repro.experiments import static_ilp
from repro.experiments.data import table_benchmarks


def test_static_ilp(benchmark):
    data = static_ilp.compute()
    save_result("table_static_ilp", static_ilp.render(data))

    # Time one full analyze pass (passes + memoised ILP cells).
    record, _seconds = benchmark(timed_analyze, "qsort")
    assert record["ilp"]["dataflow_limit_cycles"] > 0

    # The analyzer's overhead budget, tracked like the emulator's.
    entries = []
    total = 0.0
    for name in table_benchmarks():
        entry, seconds = timed_analyze(name)
        entries.append({"target": name, "ops": entry["ops"],
                        "seconds": round(seconds, 4)})
        total += seconds
    document = analyze_bench_document(entries, total)
    problems = validate_analyze_bench(document)
    assert not problems, problems
    write_analyze_bench(document,
                        os.path.join(RESULTS_DIR, "BENCH_analyze.json"))

    for entry in data["benchmarks"].values():
        # the bound can never be beaten by a real schedule
        assert entry["limit_cycles"] <= entry["achieved_cycles"]
        assert entry["gap"] >= 1.0
    assert data["average"]["limit_speedup"] \
        >= data["average"]["achieved_speedup"]
