"""Ablation — inter-unit communication cost (why many units stop paying:
section 3.2's register-movement insertion, the prototype's shared buses).
"""

from benchmarks.conftest import save_result
from repro.experiments import ablations


def test_inter_unit_moves(benchmark):
    data = benchmark.pedantic(ablations.inter_unit_moves, rounds=1,
                              iterations=1)
    save_result("ablation_moves",
                "free cross-unit reads:    %.2f\n"
                "1-cycle cross-unit reads: %.2f"
                % (data["free"], data["penalty"]))
    assert data["free"] >= data["penalty"] - 1e-9
