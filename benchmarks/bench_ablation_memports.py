"""Ablation — relax the single shared-memory port.

Quantifies the paper's Amdahl argument: with one port the speedup
saturates near 1/f_mem; extra ports lift the ceiling.
"""

from benchmarks.conftest import save_result
from repro.experiments import ablations


def test_memory_ports(benchmark):
    data = benchmark.pedantic(ablations.memory_ports, rounds=1,
                              iterations=1)
    lines = ["ports=%d  speedup=%.2f" % (p, s)
             for p, s in zip(data["ports"], data["speedup"])]
    save_result("ablation_memports", "\n".join(lines))
    # More ports never hurt, and visibly help somewhere.
    speedups = data["speedup"]
    assert all(a <= b + 1e-9 for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > speedups[0] + 0.05
