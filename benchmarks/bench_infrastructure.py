"""Throughput of the substrate itself: compiler, emulator, scheduler.

Not a paper artefact, but the numbers downstream users care about when
sizing their own experiments.
"""

from repro.benchmarks import PROGRAMS, compile_benchmark
from repro.emulator import Emulator
from repro.bam import compile_source
from repro.intcode import translate_module
from repro.compaction import vliw
from repro.compaction.scheduler import schedule_region


def test_compiler_throughput(benchmark):
    source = PROGRAMS["qsort"].source
    program = benchmark(lambda: translate_module(compile_source(source)))
    assert len(program) > 100


def test_emulator_throughput(benchmark):
    program = compile_benchmark("nreverse")

    def run():
        return Emulator(program).run()

    result = benchmark(run)
    assert result.succeeded
    benchmark.extra_info["ici_per_second"] = (
        result.steps / benchmark.stats["mean"])


def test_scheduler_throughput(benchmark):
    program = compile_benchmark("qsort")
    from repro.analysis.cfg import Cfg
    cfg = Cfg(program)
    biggest = max(cfg.blocks, key=lambda b: b.size)
    ops = program.instructions[biggest.start:biggest.end]
    schedule = benchmark(schedule_region, ops, vliw(3))
    assert schedule.length >= 1
