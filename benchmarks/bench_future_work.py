"""Section 6 future-work projections: dynamic scheduling and
distributed/banked memory — quantified, since the paper only names them.
"""

from benchmarks.conftest import save_result
from repro.experiments import future_work
from repro.evaluation.dynamic import dataflow_limit
from repro.benchmarks import compile_benchmark


def test_future_work(benchmark):
    text = future_work.render()
    save_result("future_work", text)

    program = compile_benchmark("nreverse")
    flow = benchmark(dataflow_limit, program)
    assert flow.status == 0

    data = future_work.dynamic_vs_static()
    average = data["average"]
    # The idealised dynamic machine is an upper bound on static...
    assert average["dynamic"] >= average["static"]
    # ...but static compaction captures a substantial fraction of it.
    assert average["captured"] > 0.5

    banks = future_work.multibank()
    assert banks["banked4"] >= banks["banked"] >= banks["shared"] - 1e-9
