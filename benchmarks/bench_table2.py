"""Table 2 — branch-predictability statistics."""

from benchmarks.conftest import save_result
from repro.experiments import table2
from repro.experiments.data import get_profile
from repro.analysis.branch_stats import branch_records, average_p_fp


def test_table2(benchmark):
    data = table2.compute()
    save_result("table2", table2.render(data))

    program, result = get_profile("queens_8")

    def stats():
        records = branch_records(program, result.counts, result.taken)
        return average_p_fp(records)

    benchmark(stats)
    assert data["average"] < 0.25   # paper: 0.1475
