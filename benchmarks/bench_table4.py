"""Table 4 — absolute times against other Prolog machines."""

from benchmarks.conftest import save_result
from repro.experiments import table4


def test_table4(benchmark):
    data = table4.compute()
    save_result("table4", table4.render(data))
    benchmark(table4.logical_inferences, "nreverse")
    assert 0.5 < data["mean_bam_over_symbol3"] < 1.6
    assert data["nreverse_mlips"] > 0.3
