"""Benchmark-harness helpers: every bench regenerates its paper artefact
into ``results/`` and times a representative unit of the computation."""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def save_result(name, text):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR
