"""Table 5 — SYMBOL-3 prototype versus its matched sequential machine."""

from benchmarks.conftest import save_result
from repro.experiments import table5
from repro.compaction import symbol3
from repro.evaluation.pipeline import superblock_regions, machine_cycles
from repro.benchmarks import compile_benchmark, run_program_cached


def test_table5(benchmark):
    data = table5.compute()
    save_result("table5", table5.render(data))

    program = compile_benchmark("nreverse")
    result = run_program_cached(program, "nreverse-")
    region_set = superblock_regions(program, result,
                                    cache_hint="nreverse-")
    benchmark(machine_cycles, region_set, symbol3())

    # Paper: ~1.9 for the prototype, above the BAM's ~1.5.
    assert 1.5 < data["average_speedup"] < 2.5
    assert data["average_speedup"] > data["average_bam"]
