"""Ablation — the block-local ICI optimiser (copy propagation, constant
reuse, dead moves).  The paper's pipeline deliberately defers such
clean-ups to the back-end; this measures how much the naive expansion
leaves on the table."""

from benchmarks.conftest import save_result
from repro.benchmarks import compile_benchmark
from repro.intcode import optimize_program
from repro.emulator import run_program
from repro.evaluation.pipeline import superblock_regions, machine_cycles
from repro.compaction import vliw

NAMES = ["nreverse", "qsort", "serialise", "queens_8"]


def test_optimizer_ablation(benchmark):
    lines = []
    ratios = []
    for name in NAMES:
        program = compile_benchmark(name)
        optimized, stats = optimize_program(program)
        base = run_program(program)
        opt = run_program(optimized)
        assert opt.output == base.output

        base_cycles = machine_cycles(
            superblock_regions(program, base, cache_hint=name + "-"),
            vliw(3))
        opt_cycles = machine_cycles(
            superblock_regions(optimized, opt,
                               cache_hint=name + "-opt-"),
            vliw(3))
        ratios.append(base_cycles / opt_cycles)
        lines.append(
            "%-10s static %4d->%4d ops, dynamic %7d->%7d, "
            "vliw3 cycle gain %.2fx  (%s)"
            % (name, len(program), len(optimized), base.steps,
               opt.steps, base_cycles / opt_cycles, stats))
    save_result("ablation_optimizer", "\n".join(lines))

    program = compile_benchmark("qsort")
    benchmark(optimize_program, program)

    # Optimisation must never make the machine slower.
    assert all(r >= 0.97 for r in ratios)
    assert sum(ratios) / len(ratios) > 1.0
