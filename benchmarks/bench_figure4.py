"""Figure 4 — distribution of the faulty-prediction probability."""

from benchmarks.conftest import save_result
from repro.experiments import figure4
from repro.analysis.branch_stats import p_fp_histogram, branch_records
from repro.experiments.data import get_profile


def test_figure4(benchmark):
    data = figure4.compute()
    save_result("figure4", figure4.render(data))

    program, result = get_profile("sendmore")
    records = branch_records(program, result.counts, result.taken)
    benchmark(p_fp_histogram, records, 10)

    assert data["weights"][0] > 0.3   # mass near zero dominates
    # The 90/50 rule must fail: backward branches are not ~90% taken.
    assert data["taken_rule"]["backward"]["mean_taken"] < 0.8
