"""BAM -> ICI translation: structural properties of generated code."""

from repro.bam import compile_source
from repro.intcode import translate_module, layout
from repro.intcode.ici import OP_CLASS, CTRL


def translate(text):
    return translate_module(compile_source(text))


def ops_between(program, start_label, end_label=None):
    start = program.labels[start_label]
    if end_label:
        end = program.labels[end_label]
    else:
        end = len(program)
    return program.instructions[start:end]


def test_program_has_entry_and_runtime_labels():
    program = translate("main :- true.")
    for label in ("$start", "$fail", "$unify", "$equal", "$query_fail"):
        assert label in program.labels


def test_predicate_labels_present():
    program = translate("p(a). main :- p(a).")
    assert "P:p/1" in program.labels
    assert "P:main/0" in program.labels


def test_all_branch_targets_resolve():
    program = translate("""
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
        main :- app([1], [2], X), write(X), nl.
    """)
    for instruction in program.instructions:
        if instruction.label is not None:
            assert instruction.label in program.labels


def test_try_emits_choice_point_stores():
    program = translate("p(_, _). p(_, _). main :- p(1, 2).")
    # A two-clause predicate with var heads needs a try saving 2 args:
    # fixed slots + 2 argument stores.
    stores = [i for i in program.instructions
              if i.op == "st" and i.rb == "BT"]
    assert len(stores) >= layout.CP_FIXED_SLOTS + 2 - 1


def test_deterministic_predicate_has_no_choice_point():
    program = translate("""
        p(a, 1). p(b, 2).
        main :- p(a, X), write(X), nl.
    """)
    stores = [i for i in program.instructions
              if i.op == "st" and i.rb == "BT"]
    # Constant-indexed: bound-argument paths create no choice point, but
    # the unbound chain still exists statically.
    assert stores  # chain exists
    from repro.emulator import run_program
    result = run_program(program)
    # Dynamically: no try executed (B stays at the sentinel).
    try_pcs = [pc for pc, i in enumerate(program.instructions)
               if i.op == "st" and i.rb == "BT" and pc > 40]
    assert all(result.counts[pc] == 0 for pc in try_pcs)


def test_environment_allocated_for_multi_call_clause():
    program = translate("""
        q. r.
        main :- q, r.
    """)
    env_stores = [i for i in program.instructions
                  if i.op == "st" and i.rb == "ES"]
    assert len(env_stores) >= 2  # saved E and CP


def test_escape_ops_emitted_for_write_and_nl():
    program = translate("main :- write(hello), nl.")
    escapes = [i.esc for i in program.instructions if i.op == "esc"]
    assert escapes == ["write", "nl"]


def test_arith_expression_tree_flattened():
    program = translate("main :- X is (1 + 2) * (3 - 4), write(X), nl.")
    start = program.labels["P:main/0"]
    ops = [i.op for i in program.instructions[start:]
           if i.op in ("add", "sub", "mul")]
    assert sorted(ops) == ["add", "mul", "sub"]


def test_branch_density_is_prolog_like():
    """Static control density should be in the range the paper reports
    (far above numeric code)."""
    program = translate("""
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
        main :- app([1,2,3], [4], X), write(X), nl.
    """)
    ctrl = sum(1 for i in program.instructions
               if OP_CLASS[i.op] == CTRL)
    assert 0.15 < ctrl / len(program) < 0.6


def test_variable_renaming_gives_single_assignment_temps():
    """Fresh temporaries (rNN) are written at most twice in straight-line
    regions (the deref loop rewrites its own temp); machine registers are
    exempt."""
    program = translate("main :- X is 1 + 2, Y is X * X, write(Y), nl.")
    writes = {}
    for instruction in program.instructions:
        for reg in instruction.writes():
            writes[reg] = writes.get(reg, 0) + 1
    arith_temps = {r: n for r, n in writes.items()
                   if r.startswith("r") and n > 2}
    assert not arith_temps


def test_entry_builds_sentinel_frame():
    program = translate("main :- true.")
    start = program.labels["$start"]
    window = program.instructions[start:start + 14]
    sentinel_stores = [i for i in window if i.op == "st" and i.rb == "B"]
    assert len(sentinel_stores) == layout.CP_FIXED_SLOTS
