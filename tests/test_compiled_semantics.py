"""Compiled-code semantics: every language feature executed through the
full pipeline (compile -> ICI -> emulate) must agree with the reference
interpreter, both in success/failure and in printed output."""

import pytest

from tests.conftest import assert_equivalent

LIST_LIB = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
mem(X, [X|_]).
mem(X, [_|T]) :- mem(X, T).
sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).
"""


# -- unification ------------------------------------------------------------


def test_fact_match_constant():
    assert_equivalent("p(a). main :- p(a), write(ok), nl.")


def test_fact_mismatch_fails():
    assert_equivalent("p(a). main :- p(b), write(ok), nl.")


def test_head_integer_match():
    assert_equivalent("p(42). main :- p(42), write(ok), nl.")


def test_head_list_destructuring():
    assert_equivalent("p([H|T]) :- write(H), write(T). main :- p([1,2,3]).")


def test_head_struct_destructuring():
    assert_equivalent(
        "p(f(X, g(Y))) :- write(X-Y). main :- p(f(1, g(2))).")


def test_write_mode_builds_structures():
    assert_equivalent("p(f(1, [a])). main :- p(X), write(X), nl.")


def test_repeated_variable_in_head():
    assert_equivalent("eq(X, X). main :- eq(f(A, 2), f(1, B)), "
                      "write(A-B), nl.")


def test_repeated_variable_mismatch():
    assert_equivalent("eq(X, X). main :- eq(a, b), write(bad), nl.")


def test_deep_nesting():
    assert_equivalent("""
        p(f(g(h(X)), [X, [X]])) :- write(X).
        main :- p(f(g(h(7)), [7, [7]])).
    """)


def test_unify_builtin_general_case():
    assert_equivalent(
        "main :- X = f(A, b), Y = f(1, B), X = Y, write(A-B), nl.")


def test_unify_partial_lists():
    assert_equivalent(
        "main :- [1, 2 | T] = [1, 2, 3, 4], write(T), nl.")


def test_unify_cyclic_free_variables_both_fresh():
    assert_equivalent("main :- X = Y, Y = 3, write(X), nl.")


# -- backtracking and choice points ---------------------------------------


def test_clause_alternatives_in_order():
    assert_equivalent(
        "p(1). p(2). p(3). main :- p(X), write(X), fail. main.")


def test_deep_backtracking_restores_heap_terms():
    assert_equivalent(LIST_LIB + """
        main :- app(X, Y, [1,2,3]), write(X-Y), nl, fail.
        main :- write(done), nl.
    """)


def test_select_permutations():
    assert_equivalent(LIST_LIB + """
        main :- sel(X, [a,b,c], R), write(X-R), nl, fail.
        main.
    """)


def test_bindings_undone_between_alternatives():
    assert_equivalent("""
        p(X) :- X = 1, fail.
        p(X) :- X = 2.
        main :- p(X), write(X), nl.
    """)


def test_trail_restores_old_heap_cells():
    assert_equivalent(LIST_LIB + """
        try(L) :- L = [1|_], fail.
        try(L) :- L = [2|_].
        main :- try([X|T]), write(X), nl.
    """)


def test_choice_point_inside_recursion():
    assert_equivalent(LIST_LIB + """
        main :- mem(X, [1,2,3]), mem(Y, [a,b]),
                write(X-Y), nl, fail.
        main.
    """)


# -- cut ----------------------------------------------------------------------


def test_shallow_cut_commits():
    assert_equivalent("""
        p(X) :- X >= 0, !, write(pos), nl.
        p(_) :- write(neg), nl.
        main :- p(3), p(-2).
    """)


def test_cut_discards_call_choicepoints():
    assert_equivalent("""
        q(1). q(2). q(3).
        first(X) :- q(X), !.
        main :- first(X), write(X), nl, fail.
        main :- write(end), nl.
    """)


def test_deep_cut_after_call():
    assert_equivalent("""
        q(1). q(2).
        p(X) :- q(X), X > 1, !, write(X), nl.
        main :- p(_).
    """)


def test_cut_in_second_chunk_uses_env_slot():
    assert_equivalent("""
        q(1). q(2). r(_).
        p(X) :- q(X), r(X), !, write(X), nl.
        main :- p(_), fail.
        main :- write(done), nl.
    """)


def test_cut_then_fail_is_definitive():
    assert_equivalent("""
        p :- !, fail.
        p.
        main :- p, write(bad), nl.
        main :- write(ok), nl.
    """)


# -- arithmetic -----------------------------------------------------------------


def test_arith_operations():
    assert_equivalent("""
        main :- A is 2 + 3, B is 2 - 5, C is 4 * 4, D is 17 // 5,
                E is 17 mod 5, F is -(3), write([A,B,C,D,E,F]), nl.
    """)


def test_arith_nested_expression():
    assert_equivalent("main :- X is ((1 + 2) * (3 + 4)) // 2, write(X), nl.")


def test_arith_on_bound_result_unifies():
    assert_equivalent("main :- 7 is 3 + 4, write(yes), nl.")
    assert_equivalent("main :- 8 is 3 + 4, write(bad), nl.")


def test_arith_comparisons_all():
    assert_equivalent("""
        main :- 1 < 2, 2 =< 2, 5 > 4, 5 >= 5, 3 =:= 3, 3 =\\= 4,
                write(ok), nl.
    """)


def test_arith_comparison_failure():
    assert_equivalent("main :- 2 < 1, write(bad), nl.")


def test_arith_type_failure_on_atom():
    assert_equivalent("""
        p(X) :- X < 3, write(small), nl.
        p(_) :- write(other), nl.
        main :- p(foo).
    """)


def test_negative_numbers():
    assert_equivalent("main :- X is -7 // 2, Y is -7 mod 2, "
                      "write(X-Y), nl.")


# -- type tests and structural comparison -----------------------------------


def test_type_tests_compiled():
    assert_equivalent("""
        main :- var(_), nonvar(f(x)), atom([]), integer(3),
                atomic(a), write(ok), nl.
    """)


def test_var_test_on_bound():
    assert_equivalent("main :- X = 1, var(X), write(bad), nl.")


def test_struct_equal_compiled():
    assert_equivalent(
        "main :- f(a, [1, 2]) == f(a, [1, 2]), write(ok), nl.")


def test_struct_not_equal_compiled():
    assert_equivalent("main :- f(a) \\== f(b), write(ok), nl.")


def test_struct_equal_distinguishes_unbound():
    assert_equivalent("main :- X == Y, write(bad), nl.")


def test_struct_equal_same_variable():
    assert_equivalent("main :- X = Y, X == Y, write(ok), nl.")


# -- control constructs (normalised into auxiliary predicates) ---------------


def test_disjunction_compiled():
    assert_equivalent("""
        p(X) :- (X = 1 ; X = 2 ; X = 3).
        main :- p(X), write(X), fail.
        main :- nl.
    """)


def test_if_then_else_compiled():
    assert_equivalent("""
        sign(X, pos) :- (X > 0 -> true ; fail).
        classify(X) :- (X > 0 -> write(pos) ; X < 0 -> write(neg)
                        ; write(zero)), nl.
        main :- classify(5), classify(-5), classify(0).
    """)


def test_negation_compiled():
    assert_equivalent(LIST_LIB + """
        main :- \\+ mem(9, [1,2,3]), write(ok), nl.
    """)


def test_negation_failure_compiled():
    assert_equivalent(LIST_LIB + """
        main :- \\+ mem(2, [1,2,3]), write(bad), nl.
    """)


def test_not_unifiable_compiled():
    assert_equivalent("main :- f(X) \\= g(X), write(ok), nl.")


# -- environments, recursion, last-call optimisation ----------------------------


def test_deep_recursion_with_lco():
    assert_equivalent("""
        count(0) :- !.
        count(N) :- M is N - 1, count(M).
        main :- count(500), write(done), nl.
    """)


def test_nested_environments():
    assert_equivalent(LIST_LIB + """
        double([], []).
        double([X|Xs], [Y|Ys]) :- Y is X * 2, double(Xs, Ys).
        main :- double([1,2,3], D), app(D, [0], R), write(R), nl.
    """)


def test_permanent_variables_survive_calls():
    assert_equivalent("""
        q(1). r(2). s(3).
        p(A, B, C) :- q(A), r(B), s(C), write([A,B,C]), nl.
        main :- p(_, _, _).
    """)


def test_last_call_argument_safety():
    # A variable created in the dying environment must be passed safely.
    assert_equivalent("""
        id(X, X).
        p(R) :- id(Y, Y), id(Y, R).
        main :- p(R), R = done, write(R), nl.
    """)


def test_mutual_recursion():
    assert_equivalent("""
        even(0).
        even(N) :- N > 0, M is N - 1, odd(M).
        odd(N) :- N > 0, M is N - 1, even(M).
        main :- even(20), \\+ odd(20), write(ok), nl.
    """)


# -- indexing behaviours --------------------------------------------------------


def test_indexing_on_atoms():
    assert_equivalent("""
        colour(red, 1). colour(green, 2). colour(blue, 3).
        main :- colour(green, X), write(X), nl.
    """)


def test_indexing_on_functors():
    assert_equivalent("""
        eval(lit(X), X).
        eval(add(A, B), R) :- eval(A, X), eval(B, Y), R is X + Y.
        eval(mul(A, B), R) :- eval(A, X), eval(B, Y), R is X * Y.
        main :- eval(add(lit(2), mul(lit(3), lit(4))), R), write(R), nl.
    """)


def test_indexing_with_unbound_argument_tries_all():
    assert_equivalent("""
        t(a). t([x]). t(f(y)). t(7).
        main :- t(X), write(X), nl, fail.
        main.
    """)


def test_indexing_mixed_var_clauses():
    assert_equivalent("""
        p(a, 1).
        p(X, 2) :- atom(X).
        p(b, 3).
        main :- p(b, N), write(N), nl, fail.
        main.
    """)


def test_output_order_preserved():
    result = assert_equivalent("""
        main :- write(1), write(2), write(3), nl.
    """)
    assert result.output == "123\n"


# -- error paths ------------------------------------------------------------------


def test_undefined_predicate_rejected_at_compile_time():
    from repro.bam import compile_source, CompileError
    with pytest.raises(CompileError):
        compile_source("main :- no_such_predicate(1).")


def test_missing_entry_rejected():
    from repro.bam import compile_source, CompileError
    with pytest.raises(CompileError):
        compile_source("p(a).")
