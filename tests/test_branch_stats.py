"""Branch predictability statistics (Table 2 / Figure 4 machinery)."""

from repro.terms import SymbolTable, tags
from repro.intcode.program import Builder
from repro.analysis.branch_stats import (
    branch_records, average_p_fp, p_fp_histogram, taken_rule_stats,
    BranchRecord)


def looped_program():
    b = Builder(SymbolTable())
    b.label("$start")
    i, n, one = b.fresh_reg(), b.fresh_reg(), b.fresh_reg()
    b.ldi_int(i, 0)
    b.ldi_int(n, 10)
    b.ldi_int(one, 1)
    b.label("loop")
    b.alu("add", i, i, rb=one)
    b.branch("bltv", i, n, "loop")   # backward, taken 9/10
    b.btag(i, tags.TATM, "skip")     # forward, never taken
    b.ldi_int(one, 2)
    b.label("skip")
    b.halt(0)
    return b.finish()


def run(program):
    from repro.emulator import Emulator
    return Emulator(program).run()


def test_records_capture_direction_and_counts():
    program = looped_program()
    result = run(program)
    records = branch_records(program, result.counts, result.taken)
    by_backward = {r.backward: r for r in records}
    loop = by_backward[True]
    assert loop.executed == 10 and loop.taken == 9
    assert abs(loop.p_taken - 0.9) < 1e-12
    assert abs(loop.p_fp - 0.1) < 1e-12
    forward = by_backward[False]
    assert forward.taken == 0
    assert forward.p_fp == 0.0


def test_unexecuted_branches_excluded():
    program = looped_program()
    result = run(program)
    records = branch_records(program, result.counts, result.taken)
    assert all(r.executed > 0 for r in records)


def test_average_weighted_by_execution():
    records = [BranchRecord(0, 90, 45, False),   # p_fp 0.5, weight 90
               BranchRecord(1, 10, 0, False)]    # p_fp 0.0, weight 10
    assert abs(average_p_fp(records) - 0.45) < 1e-12


def test_average_of_nothing_is_zero():
    assert average_p_fp([]) == 0.0


def test_histogram_weights_normalised():
    records = [BranchRecord(0, 50, 0, False),     # p_fp 0 -> first bin
               BranchRecord(1, 50, 25, False)]    # p_fp 0.5 -> last bin
    edges, weights = p_fp_histogram(records, bins=5)
    assert len(edges) == 6 and len(weights) == 5
    assert abs(sum(weights) - 1.0) < 1e-12
    assert abs(weights[0] - 0.5) < 1e-12
    assert abs(weights[-1] - 0.5) < 1e-12


def test_taken_rule_statistics():
    records = [BranchRecord(0, 100, 90, True),
               BranchRecord(1, 100, 50, False)]
    stats = taken_rule_stats(records)
    assert abs(stats["backward"]["mean_taken"] - 0.9) < 1e-12
    assert abs(stats["forward"]["mean_taken"] - 0.5) < 1e-12
    assert stats["backward"]["branches"] == 1
