"""Differential harness for the or-parallel search engine.

:mod:`repro.interp.orparallel` promises one thing above all: for every
goal, at every or-jobs width, faults or not, the answer **multiset and
order** (and the output stream) match the sequential reference engine
exactly.  This suite pins that promise three ways:

* *differential equality* over the paper suite, the DCG application
  workloads and a generated-corpus slice at or-jobs 1, 2 and 4 (the
  full corpus slice is ``slow``; a representative subset stays in
  tier 1);
* *split-path coverage* on handcrafted pure programs whose first
  choice point genuinely fans out — including empty branches,
  recursive enumeration, conjunction prefixes and answer limits;
* *fallback enforcement* on adversarial cut/negation/if-then-else
  programs, which must be refused with a precise reason and answered
  on the sequential path.

The answer-memo table is covered here at the engine level (call-scope
and branch-scope hits, variant call patterns, the limit in the key);
its storage contract lives in ``tests/test_cache_store.py`` and the
crash/hang/error recovery in ``tests/test_chaos.py``.
"""

import pytest

from repro.evaluation.cache import CacheStore
from repro.evaluation.parallel import EvaluationEngine
from repro.evaluation.supervisor import SupervisorPolicy
from repro.interp import Engine
from repro.interp.orparallel import (
    canonical_term, or_solutions, program_digest, sequential_answers,
    split_plan)
from repro.reader import parse_term

JOBS_LEVELS = (1, 2, 4)

#: enough to cover every handcrafted answer set, small enough that the
#: truncation tests bite
LIMIT = 64

#: three equal colour branches — the smallest genuine fan-out
COLORS = """
color(red). color(green). color(blue).
pair(X, Y) :- color(X), color(Y).
"""

#: the choice point hides behind two single-clause wrappers
WRAPPED = COLORS + """
layer(X) :- color(X).
wrap(X) :- layer(X).
"""

#: recursive enumeration; the first clause's branch yields nothing
PERM = """
select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).
perm([], []).
perm(L, [X|P]) :- select(X, L, R), perm(R, P).
"""


def _fast_policy():
    return SupervisorPolicy(max_attempts=2, deadline=60.0,
                            backoff_base=0.01, backoff_cap=0.05,
                            seed=1992, poll=0.02)


@pytest.fixture(scope="module")
def engines(tmp_path_factory):
    """One supervised engine per or-jobs level, on private stores."""
    root = tmp_path_factory.mktemp("orparallel")
    pool = {}
    for jobs in JOBS_LEVELS:
        store = CacheStore(str(root / ("store-%d" % jobs)))
        pool[jobs] = EvaluationEngine(jobs=jobs, store=store,
                                      policy=_fast_policy())
    yield pool
    for engine in pool.values():
        engine.close()


def _check(engines, source, goal, limit=LIMIT, expect_parallel=None):
    """Assert or-parallel answers match the oracle at every level.

    Returns ``{jobs: result}`` so callers can inspect provenance."""
    oracle = sequential_answers(source, goal, limit=limit)
    results = {}
    for jobs, engine in engines.items():
        result = or_solutions(source, goal, engine=engine,
                              use_memo=False, limit=limit)
        assert result["answers"] == oracle["answers"], (
            "answer mismatch for %r at or-jobs %d" % (goal, jobs))
        assert result["output"] == oracle["output"], (
            "output mismatch for %r at or-jobs %d" % (goal, jobs))
        assert result["count"] == oracle["count"]
        assert result["truncated"] == oracle["truncated"]
        if expect_parallel is not None and jobs > 1:
            expected = "parallel" if expect_parallel else "sequential"
            assert result["mode"] == expected, (
                "%r at or-jobs %d ran %s, expected %s"
                % (goal, jobs, result["mode"], expected))
        results[jobs] = result
    return results


def _db(source):
    engine = Engine()
    engine.consult(source)
    return engine.db


# --------------------------------------------------------------------------
# Canonical renderings: memo keys and answers.

def test_canonical_term_renames_by_first_occurrence():
    assert canonical_term(parse_term("p(X, b, Y, X)")) \
        == "p(_0,b,_1,_0)"


def test_variant_goals_share_a_canonical_pattern():
    assert canonical_term(parse_term("p(X, b, X)")) \
        == canonical_term(parse_term("p(Q, b, Q)"))
    # ...but a different sharing pattern is a different call.
    assert canonical_term(parse_term("p(X, b, X)")) \
        != canonical_term(parse_term("p(X, b, Y)"))


def test_program_digest_is_content_addressed():
    assert program_digest(COLORS) == program_digest(COLORS)
    assert program_digest(COLORS) != program_digest(PERM)


# --------------------------------------------------------------------------
# The split planner.

def test_split_plan_fans_out_a_multi_clause_predicate():
    branches, reason = split_plan(_db(COLORS), parse_term("pair(X, Y)"))
    assert branches == [0, 1, 2] and reason is None


def test_split_plan_unfolds_single_clause_wrappers():
    branches, reason = split_plan(_db(WRAPPED), parse_term("wrap(X)"))
    assert branches == [0, 1, 2] and reason is None


def test_split_plan_steps_over_deterministic_builtins():
    branches, reason = split_plan(
        _db(COLORS), parse_term("Z is 1 + 1, color(X)"))
    assert branches == [0, 1, 2] and reason is None


def test_split_plan_reports_deterministic_goals():
    source = "only(a).\n"
    branches, reason = split_plan(_db(source), parse_term("only(X)"))
    assert branches is None
    assert reason == "goal is deterministic (no choice point)"


@pytest.mark.parametrize("body, fragment", [
    ("item(X), !", "cut in"),
    ("\\+ item(X)", "negation in"),
    ("(item(X) -> X = a ; X = b)", "if-then-else in"),
    ("item(X), write(X)", "side effect write/1"),
    ("missing(X)", "undefined predicate missing/1"),
])
def test_split_plan_rejects_impure_reachable_predicates(body, fragment):
    source = "item(a). item(b).\nq(X) :- %s.\n" % body
    branches, reason = split_plan(_db(source), parse_term("q(X)"))
    assert branches is None
    assert fragment in reason


def test_split_plan_rejects_variable_goals():
    branches, reason = split_plan(_db(COLORS), parse_term("Goal"))
    assert branches is None
    assert "variable goal" in reason


# --------------------------------------------------------------------------
# Genuine splits: handcrafted pure fan-outs at or-jobs 1/2/4.

def test_flat_fanout_matches_sequential_order(engines):
    results = _check(engines, COLORS, "pair(X, Y)",
                     expect_parallel=True)
    oracle = sequential_answers(COLORS, "pair(X, Y)")
    assert oracle["count"] == 9
    assert oracle["answers"][0] == "pair(red,red)"
    assert results[4]["branches"] == 3


def test_split_behind_single_clause_wrappers(engines):
    _check(engines, WRAPPED, "wrap(X)", expect_parallel=True)


def test_recursive_enumeration_with_an_empty_branch(engines):
    # perm/2 has two clauses; the base-case branch fails against a
    # non-empty list, so one branch contributes zero answers.
    results = _check(engines, PERM, "perm([1,2,3], P)",
                     expect_parallel=True)
    assert results[2]["branches"] == 2
    oracle = sequential_answers(PERM, "perm([1,2,3], P)")
    assert oracle["count"] == 6
    assert oracle["answers"][0] == "perm([1,2,3],[1,2,3])"


def test_conjunction_goal_with_deterministic_prefix(engines):
    _check(engines, COLORS, "Z is 1 + 1, pair(X, Y)",
           expect_parallel=True)


def test_answer_limit_truncates_in_sequential_order(engines):
    oracle = sequential_answers(COLORS, "pair(X, Y)", limit=4)
    assert oracle["count"] == 4 and oracle["truncated"]
    results = _check(engines, COLORS, "pair(X, Y)", limit=4,
                     expect_parallel=True)
    full = sequential_answers(COLORS, "pair(X, Y)")
    assert results[4]["answers"] == full["answers"][:4]


def test_or_jobs_one_runs_sequentially_without_fallback(engines):
    result = or_solutions(COLORS, "pair(X, Y)", engine=engines[1],
                          use_memo=False)
    assert result["mode"] == "sequential"
    assert "fallback" not in result


def test_jobs_argument_caps_below_the_pool(engines):
    result = or_solutions(COLORS, "pair(X, Y)", engine=engines[4],
                          jobs=1, use_memo=False)
    assert result["mode"] == "sequential"


# --------------------------------------------------------------------------
# Adversarial programs: the splitter must refuse, exactly.

@pytest.mark.parametrize("name, fragment", [
    ("adversarial_cut", "cut in"),
    ("adversarial_negation", "negation in"),
    ("adversarial_ite", "if-then-else in"),
])
def test_adversarial_programs_fall_back_sequentially(engines, name,
                                                     fragment):
    from repro.experiments.orparallel_bench import ADVERSARIAL_PROGRAMS
    program = ADVERSARIAL_PROGRAMS[name]
    results = _check(engines, program["source"], program["goal"],
                     expect_parallel=False)
    for jobs in JOBS_LEVELS:
        if jobs > 1:
            assert fragment in results[jobs]["fallback"]


# --------------------------------------------------------------------------
# The answer-memo table at the engine level.

def test_memo_serves_the_second_identical_call(engines, tmp_path):
    store = CacheStore(str(tmp_path / "memo"))
    cold = or_solutions(COLORS, "pair(X, Y)", engine=engines[2],
                        store=store)
    warm = or_solutions(COLORS, "pair(X, Y)", engine=engines[2],
                        store=store)
    assert cold["mode"] == "parallel"
    assert warm["mode"] == "memo"
    for field in ("answers", "output", "count", "truncated"):
        assert warm[field] == cold[field]


def test_memo_serves_variant_call_patterns(engines, tmp_path):
    store = CacheStore(str(tmp_path / "memo"))
    or_solutions(COLORS, "pair(X, Y)", engine=engines[2], store=store)
    variant = or_solutions(COLORS, "pair(A, B)", engine=engines[2],
                           store=store)
    assert variant["mode"] == "memo"
    # A different sharing pattern is a different query with different
    # answers — it must not be served from the variant's entry.
    shared = or_solutions(COLORS, "pair(X, X)", engine=engines[2],
                          store=store)
    assert shared["mode"] != "memo"
    assert shared["count"] == 3


def test_memo_key_includes_the_answer_limit(engines, tmp_path):
    store = CacheStore(str(tmp_path / "memo"))
    truncated = or_solutions(COLORS, "pair(X, Y)", engine=engines[2],
                             store=store, limit=2)
    assert truncated["count"] == 2 and truncated["truncated"]
    unbounded = or_solutions(COLORS, "pair(X, Y)", engine=engines[2],
                             store=store)
    assert unbounded["mode"] != "memo"
    assert unbounded["count"] == 9 and not unbounded["truncated"]


def test_memo_serves_fallback_queries_too(engines, tmp_path):
    from repro.experiments.orparallel_bench import ADVERSARIAL_PROGRAMS
    program = ADVERSARIAL_PROGRAMS["adversarial_cut"]
    store = CacheStore(str(tmp_path / "memo"))
    cold = or_solutions(program["source"], program["goal"],
                        engine=engines[2], store=store)
    warm = or_solutions(program["source"], program["goal"],
                        engine=engines[2], store=store)
    assert cold["mode"] == "sequential"
    assert warm["mode"] == "memo"
    assert warm["answers"] == cold["answers"]


def test_use_memo_false_bypasses_the_table(engines, tmp_path):
    store = CacheStore(str(tmp_path / "memo"))
    for _ in range(2):
        result = or_solutions(COLORS, "pair(X, Y)", engine=engines[2],
                              store=store, use_memo=False)
        assert result["mode"] == "parallel"


def test_memo_spans_and_counters_are_emitted(engines, tmp_path,
                                             traced_run):
    store = CacheStore(str(tmp_path / "memo"))
    or_solutions(COLORS, "pair(X, Y)", engine=engines[2], store=store)
    or_solutions(COLORS, "pair(X, Y)", engine=engines[2], store=store)
    queries = traced_run.find("orparallel.query")
    assert [span.attrs["mode"] for span in queries] \
        == ["parallel", "memo"]
    counters = traced_run.metrics.counters
    assert counters["orparallel.memo.misses"] == 1
    assert counters["orparallel.memo.hits"] == 1
    assert counters["orparallel.splits"] == 1
    assert counters["orparallel.branches"] == 3
    assert len(traced_run.find("orparallel.fanout")) == 1


# --------------------------------------------------------------------------
# Differential equality over the repo's real workloads.

def _suite_targets(names):
    from repro.benchmarks.suite import resolve_program
    return [(name, resolve_program(name).source, "main")
            for name in names]


FAST_SUITE = ("divide10", "log10", "mu", "nreverse", "qsort")
DCG_SUITE = ("dcg_calc", "dcg_grammar", "dcg_json")


@pytest.mark.parametrize("name", FAST_SUITE)
def test_differential_paper_suite(engines, name):
    source, goal = _suite_targets([name])[0][1:]
    _check(engines, source, goal, limit=32)


@pytest.mark.parametrize("name", DCG_SUITE)
def test_differential_dcg_workloads(engines, name):
    source, goal = _suite_targets([name])[0][1:]
    _check(engines, source, goal, limit=32)


def test_differential_corpus_sample(engines):
    from repro.corpus.generate import corpus_programs
    for program in corpus_programs(5):
        _check(engines, program.source, "main", limit=32)


@pytest.mark.slow
def test_differential_full_table_and_corpus_slice(engines):
    """The ISSUE-mandated sweep: every paper-table benchmark plus a
    50-program corpus slice, at or-jobs 1, 2 and 4."""
    from repro.benchmarks import TABLE_BENCHMARKS
    from repro.corpus.generate import corpus_programs
    for name, source, goal in _suite_targets(TABLE_BENCHMARKS):
        _check(engines, source, goal, limit=32)
    for program in corpus_programs(50):
        _check(engines, program.source, "main", limit=32)


@pytest.mark.slow
def test_differential_search_workloads(engines):
    """The bench's pure fan-out workloads split and still agree."""
    from repro.experiments.orparallel_bench import SEARCH_WORKLOADS
    for workload in SEARCH_WORKLOADS.values():
        _check(engines, workload["source"], workload["goal"],
               limit=32, expect_parallel=True)
