"""The steppable debug machine agrees with the production emulator."""

import pytest

from repro.bam import compile_source
from repro.intcode import translate_module
from repro.emulator import run_program, EmulatorError
from repro.emulator.debug import DebugMachine

SOURCES = [
    "main :- X is 2 + 3, write(X), nl.",
    """
    app([], L, L).
    app([H|T], L, [H|R]) :- app(T, L, R).
    main :- app([1,2], [3], X), write(X), nl.
    """,
    """
    p(1). p(2).
    main :- p(X), X > 1, write(X), nl.
    """,
    "p(a). main :- p(b).",
]


@pytest.mark.parametrize("source", SOURCES)
def test_debug_machine_matches_emulator(source):
    program = translate_module(compile_source(source))
    reference = run_program(program)
    machine = DebugMachine(program)
    status, output = machine.run()
    assert status == reference.status
    assert output == reference.output
    assert machine.steps == reference.steps


def test_stepping_exposes_state():
    program = translate_module(compile_source(
        "main :- X is 40 + 2, write(X), nl."))
    machine = DebugMachine(program)
    seen_pcs = []
    while not machine.halted:
        seen_pcs.append(machine.step())
    assert seen_pcs[0] == program.entry_pc
    assert machine.register("H") is not None
    assert machine.steps == len(seen_pcs)


def test_render_register_term():
    program = translate_module(compile_source(
        "main :- X = f(1, [a]), write(X), nl."))
    machine = DebugMachine(program)
    machine.run()
    assert "".join(machine.output) == "f(1,[a])\n"


def test_step_after_halt_rejected():
    program = translate_module(compile_source("main :- true."))
    machine = DebugMachine(program)
    machine.run()
    with pytest.raises(EmulatorError):
        machine.step()


def test_run_step_budget():
    program = translate_module(compile_source(
        "loop :- loop. main :- loop."))
    machine = DebugMachine(program)
    with pytest.raises(EmulatorError):
        machine.run(max_steps=500)
