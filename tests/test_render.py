"""Rendering utilities: machine-term reconstruction, program listings,
experiment table/figure text."""

from repro.bam import compile_source
from repro.intcode import translate_module
from repro.emulator import run_program
from repro.experiments.render import (
    render_table, render_histogram, render_curve, fmt)


def output_of(goal_body):
    program = translate_module(compile_source(
        "main :- %s." % goal_body))
    result = run_program(program)
    assert result.succeeded
    return result.output


# -- machine-term reconstruction (esc write goes through render_term) ----


def test_render_integers_and_atoms():
    assert output_of("write(42), write(foo), write(-7)") == "42foo-7"


def test_render_nested_structure():
    assert output_of("write(f(g(1), h))") == "f(g(1),h)"


def test_render_proper_list():
    assert output_of("X = [1, [2, a], []], write(X)") == "[1,[2,a],[]]"


def test_render_partial_list_with_variable_tail():
    text = output_of("X = [1, 2 | _], write(X)")
    assert text.startswith("[1,2|_")


def test_render_unbound_variable():
    assert output_of("write(_)").startswith("_")


def test_render_shared_variable_consistent_names():
    text = output_of("X = f(A, A), write(X)")
    inside = text[2:-1].split(",")
    assert inside[0] == inside[1]


def test_render_quoted_atom():
    assert output_of("write('Hello world')") == "'Hello world'"


# -- program listings -----------------------------------------------------


def test_program_listing_contains_labels_and_comments():
    program = translate_module(compile_source("p(a). main :- p(a)."))
    listing = program.listing()
    assert "P:p/1:" in listing
    assert "$unify:" in listing
    assert "; predicate p/1" in listing


def test_listing_window():
    program = translate_module(compile_source("main :- true."))
    window = program.listing(0, 3)
    assert len(window.splitlines()) <= 6


def test_bam_module_listing():
    module = compile_source("p(a). main :- p(a).")
    text = module.listing()
    assert "% p/1" in text
    assert "SetB0" in text


# -- experiment rendering helpers -------------------------------------------


def test_render_table_aligns_columns():
    text = render_table("T", ["col", "x"], [["a", 1], ["bb", 22]],
                        note="n")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert set(lines[1]) == {"="}
    assert lines[-1] == "n"
    header, rule, row1, row2 = lines[2:6]
    assert len(row1) == len(row2) == len(header)


def test_render_histogram_bars_scale():
    text = render_histogram("H", [0, 0.25, 0.5], [0.75, 0.25])
    lines = text.splitlines()
    assert lines[2].count("#") > lines[3].count("#")
    assert "75.0%" in lines[2]


def test_render_curve_contains_series_legend():
    text = render_curve("C", [1, 2, 3],
                        {"alpha": [1.0, 2.0, 3.0],
                         "beta": [3.0, 2.0, 1.0]})
    assert "* = alpha" in text
    assert "+ = beta" in text


def test_fmt_variants():
    assert fmt(None) == "-"
    assert fmt(1.234) == "1.23"
    assert fmt(1.234, 1) == "1.2"
    assert fmt(7) == "7"
