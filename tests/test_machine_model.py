"""Machine models: slot feasibility, latencies, penalties."""

from repro.intcode.ici import MEM, ALU, MOVE, CTRL
from repro.compaction.machine_model import (
    MachineConfig, sequential, bam_like, vliw, ideal, symbol3,
    symbol3_sequential)


def test_default_latencies_follow_the_paper():
    config = vliw(3)
    assert config.duration("ld") == 2
    assert config.duration("btag") == 2
    assert config.duration("add") == 1
    assert config.duration("mov") == 1


def test_prototype_latencies():
    config = symbol3()
    assert config.duration("ld") == 3
    assert config.duration("jmp") == 3


def test_taken_cost_by_machine():
    assert sequential().taken_cost() == 1   # 2-cycle ctrl, nothing filled
    assert bam_like().taken_cost() == 0     # delay slot filled
    assert vliw(3).taken_cost() == 0        # delayed branches allowed
    assert symbol3().taken_cost() == 2      # two squashed delay cycles


def test_memory_port_is_global_not_per_unit():
    config = vliw(4)
    assert config.slots_feasible({MEM: 1})
    assert not config.slots_feasible({MEM: 2})


def test_per_unit_class_limits():
    config = vliw(2)
    assert config.slots_feasible({ALU: 2, MOVE: 2, CTRL: 2, MEM: 1})
    assert not config.slots_feasible({ALU: 3})
    assert not config.slots_feasible({MOVE: 3})
    assert not config.slots_feasible({CTRL: 3})


def test_multiway_disabled_limits_ctrl_to_one():
    config = MachineConfig("m", n_units=4, multiway=False)
    assert not config.slots_feasible({CTRL: 2})
    assert config.slots_feasible({CTRL: 1})


def test_issue_width_caps_total():
    config = sequential()
    assert config.slots_feasible({ALU: 1})
    assert not config.slots_feasible({ALU: 1, MOVE: 1})


def test_prototype_format_constraint():
    config = symbol3()  # 3 units
    # Three control ops leave no format-A units for ALU work.
    assert config.slots_feasible({CTRL: 3})
    assert not config.slots_feasible({CTRL: 3, ALU: 1})
    assert config.slots_feasible({CTRL: 1, ALU: 2, MOVE: 2, MEM: 1})
    assert not config.slots_feasible({CTRL: 2, ALU: 2})


def test_branch_branch_latency_depends_on_multiway():
    assert vliw(2).branch_branch_latency == 0
    assert sequential().branch_branch_latency == 1


def test_ideal_has_many_units():
    assert ideal().n_units >= 32


def test_symbol_sequential_matches_prototype_durations():
    config = symbol3_sequential()
    assert config.duration("ld") == 3
    assert config.in_order
    assert config.taken_cost() == 2
