"""Shared test helpers."""

import re

import pytest

from repro.bam import compile_source
from repro.intcode import translate_module
from repro.emulator import run_program
from repro.interp import Engine


def compile_and_run(source, entry=("main", 0), max_steps=50_000_000):
    """Compile Prolog source and emulate it."""
    program = translate_module(compile_source(source, entry))
    return run_program(program, max_steps=max_steps)


def interpret(source, query="main"):
    """Run a query on the reference interpreter; (ok, output)."""
    engine = Engine()
    engine.consult(source)
    return engine.run_query(query), engine.output_text()


def normalise_vars(text):
    """Unbound-variable names differ between interpreter and emulator."""
    return re.sub(r"_[A-Za-z0-9]+", "_", text)


def assert_equivalent(source, query="main"):
    """The compiled program must agree with the interpreter."""
    ok, expected = interpret(source, query)
    result = compile_and_run(source)
    assert result.succeeded == ok, (
        "status mismatch: interpreter %s, emulator %s"
        % (ok, result.succeeded))
    assert normalise_vars(result.output) == normalise_vars(expected), (
        "output mismatch:\n interp: %r\n emul:   %r"
        % (expected, result.output))
    return result


@pytest.fixture
def engine():
    return Engine()
