"""Shared test helpers."""

import re

import pytest

from repro.analysis import lint_program, format_diagnostics
from repro.bam import compile_source
from repro.intcode import translate_module
from repro.emulator import run_program
from repro.interp import Engine


def compile_and_run(source, entry=("main", 0), max_steps=50_000_000):
    """Compile Prolog source and emulate it."""
    program = translate_module(compile_source(source, entry))
    return run_program(program, max_steps=max_steps)


def interpret(source, query="main"):
    """Run a query on the reference interpreter; (ok, output)."""
    engine = Engine()
    engine.consult(source)
    return engine.run_query(query), engine.output_text()


def normalise_vars(text):
    """Unbound-variable names differ between interpreter and emulator."""
    return re.sub(r"_[A-Za-z0-9]+", "_", text)


def assert_equivalent(source, query="main"):
    """The compiled program must agree with the interpreter."""
    ok, expected = interpret(source, query)
    result = compile_and_run(source)
    assert result.succeeded == ok, (
        "status mismatch: interpreter %s, emulator %s"
        % (ok, result.succeeded))
    assert normalise_vars(result.output) == normalise_vars(expected), (
        "output mismatch:\n interp: %r\n emul:   %r"
        % (expected, result.output))
    return result


def assert_lint_clean(program, stage="lint"):
    """The independent ICI lint must find nothing in *program*."""
    diagnostics = lint_program(program, stage=stage)
    assert diagnostics == [], format_diagnostics(diagnostics)


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture(scope="session")
def verifier_configs():
    """A representative slice of the master configuration set for the
    checker: both regionings, speculation on/off, the prototype format,
    and an unconstrained machine."""
    from repro.experiments.data import master_configs
    full = master_configs()
    keys = ("seq", "bam", "vliw3", "symbol3", "tr_ideal")
    return {key: full[key] for key in keys}
