"""Shared test helpers.

Markers
-------

The suite is partitioned by three registered markers (see
``pyproject.toml``):

``tier1``
    The fast, deterministic core — added automatically to every test
    that is neither ``slow`` nor ``chaos``.  The CI gate runs
    ``-m "not slow and not chaos"``, which is exactly this set.
``slow``
    Wall-clock heavy or timing-sensitive (perf/overhead measurements).
``chaos``
    Fault-injection and crash-recovery suites (subprocess pools,
    SIGINT, injected faults); applied per-module via ``pytestmark``.
"""

import re

import pytest

from repro.analysis import lint_program, format_diagnostics
from repro.bam import compile_source
from repro.intcode import translate_module
from repro.emulator import run_program
from repro.interp import Engine


def compile_and_run(source, entry=("main", 0), max_steps=50_000_000):
    """Compile Prolog source and emulate it."""
    program = translate_module(compile_source(source, entry))
    return run_program(program, max_steps=max_steps)


def interpret(source, query="main"):
    """Run a query on the reference interpreter; (ok, output)."""
    engine = Engine()
    engine.consult(source)
    return engine.run_query(query), engine.output_text()


def normalise_vars(text):
    """Unbound-variable names differ between interpreter and emulator."""
    return re.sub(r"_[A-Za-z0-9]+", "_", text)


def assert_equivalent(source, query="main"):
    """The compiled program must agree with the interpreter."""
    ok, expected = interpret(source, query)
    result = compile_and_run(source)
    assert result.succeeded == ok, (
        "status mismatch: interpreter %s, emulator %s"
        % (ok, result.succeeded))
    assert normalise_vars(result.output) == normalise_vars(expected), (
        "output mismatch:\n interp: %r\n emul:   %r"
        % (expected, result.output))
    return result


def assert_lint_clean(program, stage="lint"):
    """The independent ICI lint must find nothing in *program*."""
    diagnostics = lint_program(program, stage=stage)
    assert diagnostics == [], format_diagnostics(diagnostics)


def pytest_collection_modifyitems(items):
    for item in items:
        if not (item.get_closest_marker("slow")
                or item.get_closest_marker("chaos")):
            item.add_marker(pytest.mark.tier1)


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def traced_run():
    """An activated, seeded tracer collecting spans/metrics in-process.

    Everything the test (and the code it calls) does behind the
    module-level instrumentation helpers lands on this tracer::

        def test_something(traced_run):
            run_pipeline()
            assert traced_run.find("pipeline.schedule")
    """
    from repro.observability import Tracer, activate, deactivate
    tracer = activate(Tracer(seed=0))
    try:
        yield tracer
    finally:
        deactivate()


@pytest.fixture(scope="session")
def verifier_configs():
    """A representative slice of the master configuration set for the
    checker: both regionings, speculation on/off, the prototype format,
    and an unconstrained machine."""
    from repro.experiments.data import master_configs
    full = master_configs()
    keys = ("seq", "bam", "vliw3", "symbol3", "tr_ideal")
    return {key: full[key] for key in keys}
