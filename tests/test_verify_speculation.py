"""Speculation edge cases for the independent checker (section 4.3's
code-motion rules): off-live on exactly one exit, stores adjacent to
branches, write-after-write through the shared memory port, and register
bindings at spill boundaries."""

from repro.analysis import check_schedule, check_allocation, \
    format_diagnostics
from repro.compaction import MachineConfig, schedule_region
from repro.compaction.scheduler import Schedule
from repro.compaction.regalloc import region_pressure
from repro.intcode.ici import Ici


def cfg(**kw):
    defaults = dict(n_units=4, mem_ports=1, mem_latency=2, ctrl_latency=2,
                    alu_latency=1, move_latency=1)
    defaults.update(kw)
    return MachineConfig("test", **defaults)


def rules(diagnostics):
    return {d.rule for d in diagnostics}


def assert_clean(diagnostics):
    assert diagnostics == [], format_diagnostics(diagnostics)


# -- off-live on exactly one exit --------------------------------------------

TWO_EXIT_REGION = [
    Ici("btag", ra="a0", tag=0, label="uses_x"),     # x live off-trace
    Ici("btag", ra="a1", tag=0, label="ignores_x"),  # x dead off-trace
    Ici("ldi", rd="x", imm=1),
]

TWO_EXIT_OFF_LIVE = {0: {"x"}, 1: set()}


def test_speculating_above_the_dead_exit_is_legal():
    config = cfg()
    schedule = Schedule(TWO_EXIT_REGION, [0, 1, 1], config)
    assert_clean(check_schedule(TWO_EXIT_REGION, schedule, config,
                                off_live=TWO_EXIT_OFF_LIVE))


def test_speculating_above_the_live_exit_is_flagged():
    config = cfg()
    schedule = Schedule(TWO_EXIT_REGION, [0, 1, 0], config)
    diags = check_schedule(TWO_EXIT_REGION, schedule, config,
                           off_live=TWO_EXIT_OFF_LIVE)
    assert "off-live-speculated" in rules(diags)
    finding = next(d for d in diags if d.rule == "off-live-speculated")
    assert finding.pos == 2 and "x" in finding.message


def test_scheduler_respects_the_one_live_exit():
    # End-to-end: the scheduler, given the same off-live information via
    # bitmasks, must produce a schedule the checker accepts.
    config = cfg()
    reg_ids = {"x": 0}
    masks = {0: 1, 1: 0}             # x live off exit 0 only
    schedule = schedule_region(TWO_EXIT_REGION, config, masks,
                               lambda name: 1 << reg_ids.get(name, 5))
    assert_clean(check_schedule(TWO_EXIT_REGION, schedule, config,
                                off_live=TWO_EXIT_OFF_LIVE))
    assert schedule.cycles[2] > schedule.cycles[0]


# -- stores adjacent to branches ---------------------------------------------

BRANCH_THEN_STORE = [
    Ici("btag", ra="a0", tag=0, label="off"),
    Ici("st", ra="a1", rb="H", imm=0),
]


def test_store_in_the_branch_delay_is_illegal():
    config = cfg()
    diags = check_schedule(
        BRANCH_THEN_STORE,
        Schedule(BRANCH_THEN_STORE, [0, 0], config), config)
    assert "store-speculated" in rules(diags)


def test_store_one_cycle_after_the_branch_is_legal():
    config = cfg()
    assert_clean(check_schedule(
        BRANCH_THEN_STORE,
        Schedule(BRANCH_THEN_STORE, [0, 1], config), config))


def test_store_before_a_later_branch_is_legal():
    instructions = [
        Ici("st", ra="a1", rb="H", imm=0),
        Ici("btag", ra="a0", tag=0, label="off"),
    ]
    config = cfg()
    assert_clean(check_schedule(
        instructions, Schedule(instructions, [0, 0], config), config))


# -- write-after-write through the memory port -------------------------------

STORE_STORE = [
    Ici("st", ra="a0", rb="H", imm=0),
    Ici("st", ra="a1", rb="H", imm=0),
]


def test_waw_through_memory_same_cycle():
    # Two stores to the same area in one cycle violate memory ordering
    # (and, with one port, the port limit as well).
    config = cfg()
    diags = check_schedule(STORE_STORE,
                           Schedule(STORE_STORE, [0, 0], config), config)
    assert {"mem-order", "mem-port"} <= rules(diags)


def test_waw_through_memory_serialised_is_clean():
    config = cfg()
    assert_clean(check_schedule(
        STORE_STORE, Schedule(STORE_STORE, [0, 1], config), config))


def test_bank_disambiguation_separates_areas():
    instructions = [
        Ici("st", ra="a0", rb="H", imm=0),    # heap
        Ici("st", ra="a1", rb="TR", imm=0),   # trail
    ]
    banked = cfg(mem_ports=2, bank_disambiguation=True)
    shared = cfg(mem_ports=2, bank_disambiguation=False)
    same_cycle = Schedule(instructions, [0, 0], banked)
    assert_clean(check_schedule(instructions, same_cycle, banked))
    diags = check_schedule(instructions,
                           Schedule(instructions, [0, 0], shared), shared)
    assert "mem-order" in rules(diags)


def test_computed_addresses_never_disambiguate():
    # Base registers that are not area pointers may alias anything, even
    # under the banked model.
    instructions = [
        Ici("st", ra="a0", rb="r7", imm=0),
        Ici("st", ra="a1", rb="TR", imm=0),
    ]
    banked = cfg(mem_ports=2, bank_disambiguation=True)
    diags = check_schedule(instructions,
                           Schedule(instructions, [0, 0], banked), banked)
    assert "mem-order" in rules(diags)


# -- spill boundaries --------------------------------------------------------

def _pressure_region(n_locals):
    """A region with *n_locals* simultaneously-live local values: all are
    defined up front, then consumed one by one in a sum chain."""
    instructions = [Ici("ldi", rd="v%d" % i, imm=i)
                    for i in range(n_locals)]
    prev = "v0"
    for i in range(1, n_locals):
        instructions.append(Ici("add", rd="t%d" % i, ra=prev,
                                rb="v%d" % i))
        prev = "t%d" % i
    instructions.append(Ici("jmp", label="next"))
    cycles = list(range(len(instructions)))
    config = cfg()
    return instructions, Schedule(instructions, cycles, config)


def test_binding_at_exact_bank_capacity():
    instructions, schedule = _pressure_region(6)
    report = region_pressure(instructions, schedule)
    allocation = report.allocate(6)
    assert allocation.spill_count == report.spills_for(6)
    assert_clean(check_allocation(instructions, schedule, allocation))


def test_binding_one_under_capacity_spills_and_stays_sound():
    instructions, schedule = _pressure_region(6)
    report = region_pressure(instructions, schedule)
    allocation = report.allocate(5)
    assert allocation.spill_count >= 1
    assert allocation.spill_count == report.spills_for(5)
    assert_clean(check_allocation(instructions, schedule, allocation))


def test_binding_with_tiny_bank_spills_everything_soundly():
    instructions, schedule = _pressure_region(6)
    report = region_pressure(instructions, schedule)
    allocation = report.allocate(1)
    assert_clean(check_allocation(instructions, schedule, allocation))


def test_bank_smaller_than_machine_state_spills_all_locals():
    instructions = [
        Ici("ld", rd="x", ra="H", imm=0),
        Ici("add", rd="y", ra="x", rb="E"),
        Ici("st", ra="y", rb="TR", imm=0),
        Ici("jmp", label="next"),
    ]
    config = cfg()
    schedule = schedule_region(instructions, config)
    report = region_pressure(instructions, schedule)
    allocation = report.allocate(len(report.reserved))
    assert allocation.assignment == {}
    assert allocation.spilled == {"x", "y"}
    assert_clean(check_allocation(instructions, schedule, allocation))


def test_eviction_keeps_the_binding_interference_free():
    # Force the furthest-end eviction path: a long-lived value placed
    # first, then enough short-lived ones to overflow the bank.
    instructions = [Ici("ldi", rd="long", imm=0)]
    for i in range(4):
        instructions.append(Ici("ldi", rd="s%d" % i, imm=i))
        instructions.append(Ici("add", rd="u%d_t" % i, ra="s%d" % i,
                                rb="s%d" % i))
    instructions.append(Ici("add", rd="fin", ra="long", rb="long"))
    instructions.append(Ici("jmp", label="next"))
    cycles = list(range(len(instructions)))
    config = cfg()
    schedule = Schedule(instructions, cycles, config)
    report = region_pressure(instructions, schedule)
    allocation = report.allocate(2)
    assert allocation.spill_count > 0
    assert_clean(check_allocation(instructions, schedule, allocation))
