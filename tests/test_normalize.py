"""Clause normalisation: flattening and control-construct lifting."""

import pytest

from repro.interp import Database
from repro.bam.normalize import Normalizer, NormalizeError
from repro.terms import Atom


def normalise(text):
    db = Database()
    db.consult(text)
    return Normalizer().add_database(db)


def test_fact_has_empty_body():
    norm = normalise("p(a).")
    head, goals = norm.predicates[("p", 1)][0]
    assert goals == []


def test_conjunction_flattened_in_order():
    norm = normalise("p :- a, b, c.")
    _, goals = norm.predicates[("p", 0)][0]
    assert [g.name for g in goals] == ["a", "b", "c"]


def test_true_removed():
    norm = normalise("p :- true, a, true.")
    _, goals = norm.predicates[("p", 0)][0]
    assert [g.name for g in goals] == ["a"]


def test_disjunction_lifted_to_aux_predicate():
    norm = normalise("p(X) :- (q(X) ; r(X)).")
    _, goals = norm.predicates[("p", 1)][0]
    assert len(goals) == 1
    aux = goals[0]
    assert aux.name.startswith("$disj")
    aux_clauses = norm.predicates[(aux.name, 1)]
    assert len(aux_clauses) == 2


def test_disjunction_aux_receives_shared_variables():
    norm = normalise("p(X, Y) :- (q(X) ; r(Y)).")
    _, goals = norm.predicates[("p", 2)][0]
    assert len(goals[0].args) == 2


def test_if_then_else_lifted_with_cut():
    norm = normalise("p(X) :- (X > 0 -> q(X) ; r(X)).")
    _, goals = norm.predicates[("p", 1)][0]
    aux = goals[0]
    assert aux.name.startswith("$ite")
    clauses = norm.predicates[(aux.name, 1)]
    assert len(clauses) == 2
    _, then_goals = clauses[0]
    assert any(g == Atom("!") for g in then_goals)


def test_naf_lifted_to_cut_fail():
    norm = normalise("p :- \\+ q.")
    _, goals = norm.predicates[("p", 0)][0]
    aux = goals[0]
    clauses = norm.predicates[(aux.name, 0)]
    assert len(clauses) == 2
    _, first = clauses[0]
    assert [g.name for g in first] == ["q", "!", "fail"]
    _, second = clauses[1]
    assert second == []


def test_not_unifiable_becomes_naf_of_unify():
    norm = normalise("p(X) :- X \\= a.")
    _, goals = norm.predicates[("p", 1)][0]
    aux_clauses = norm.predicates[(goals[0].name, 1)]
    _, first = aux_clauses[0]
    assert first[0].indicator == ("=", 2)


def test_nested_constructs():
    norm = normalise("p :- (a ; (b -> c ; d)).")
    disj = norm.predicates[("p", 0)][0][1][0]
    branches = norm.predicates[(disj.name, 0)]
    assert len(branches) == 2
    _, second = branches[1]
    assert second[0].name.startswith("$ite")


def test_unbound_body_goal_rejected():
    with pytest.raises(NormalizeError):
        normalise("p :- X.")


def test_clause_order_preserved():
    norm = normalise("p(1). p(2). p(3).")
    values = [head.args[0].value for head, _ in norm.predicates[("p", 1)]]
    assert values == [1, 2, 3]
