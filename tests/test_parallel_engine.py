"""The parallel evaluation engine: determinism, content-addressed cache
invalidation, verify-upgrade semantics and failure containment.

Every test runs against a private cache directory (``REPRO_CACHE_DIR``),
so nothing here touches — or is warmed by — the user's shared cache.
"""

import copy
import json
import os

import pytest

from repro.benchmarks.programs import PROGRAMS, BenchmarkProgram
from repro.compaction import sequential, vliw
from repro.evaluation import parallel
from repro.evaluation.parallel import (
    CacheStore, EvaluationEngine, EvaluationError)

BENCHMARKS = ["conc30", "divide10"]

#: one benchmark under these configs = profile + 2 region sets + 2 cells
NODES = 5


def _configs():
    return {"seq": (sequential(), "bb"), "vliw3": (vliw(3), "trace")}


#: the report of the most recent _run engine (tests inspect outcomes)
_LAST_REPORT = [None]


def _fast_policy():
    """Resilience policy tuned for tests: quick backoff, few retries."""
    from repro.evaluation.supervisor import SupervisorPolicy
    return SupervisorPolicy(max_attempts=2, deadline=60.0,
                            backoff_base=0.01, backoff_cap=0.05,
                            seed=1992, poll=0.02)


def _run(monkeypatch, cache_root, jobs=1, benchmarks=("conc30",),
         configs=None, budget=48, verify=False):
    """One evaluate_many sweep against *cache_root*; (evaluations, store)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_root))
    # Hermetic runs: drop the per-process worker memos so in-process
    # execution (and forked workers) cannot reuse state from an earlier
    # test's sweep.
    monkeypatch.setattr(parallel, "_worker_programs", {})
    monkeypatch.setattr(parallel, "_worker_regions", {})
    store = CacheStore()
    with EvaluationEngine(jobs=jobs, store=store,
                          policy=_fast_policy()) as engine:
        _LAST_REPORT[0] = engine.report
        evaluations = engine.evaluate_many([
            {"name": name, "configs": configs or _configs(),
             "tail_dup_budget": budget, "verify": verify}
            for name in benchmarks])
    return evaluations, store


def _artefacts(root):
    """{filename: bytes} for every JSON artefact under *root*."""
    return {name: open(os.path.join(str(root), name), "rb").read()
            for name in sorted(os.listdir(str(root)))
            if name.endswith(".json")}


# --------------------------------------------------------------------------
# Determinism.

@pytest.mark.parametrize("name", BENCHMARKS)
def test_parallel_matches_sequential_artefacts(monkeypatch, tmp_path, name):
    """jobs=1 and jobs=4 produce byte-identical cache artefacts and
    identical evaluation data from cold caches."""
    serial, _ = _run(monkeypatch, tmp_path / "serial", jobs=1,
                     benchmarks=[name])
    pooled, _ = _run(monkeypatch, tmp_path / "pooled", jobs=4,
                     benchmarks=[name])
    assert serial[0].data == pooled[0].data
    assert _artefacts(tmp_path / "serial") == _artefacts(tmp_path / "pooled")


def test_warm_run_equals_cold_without_recomputation(monkeypatch, tmp_path):
    cold, _ = _run(monkeypatch, tmp_path, benchmarks=BENCHMARKS)

    def refuse(spec):
        raise AssertionError("warm run recomputed %r" % spec)

    monkeypatch.setattr(parallel, "execute_task", refuse)
    monkeypatch.setattr(parallel, "run_program_cached", refuse)
    warm, store = _run(monkeypatch, tmp_path, benchmarks=BENCHMARKS)
    assert [e.data for e in warm] == [e.data for e in cold]
    assert store.stats() == {"hits": 2 * NODES, "misses": 0, "corrupt": 0}


def test_cold_run_counts_every_node_as_a_miss(monkeypatch, tmp_path):
    _, store = _run(monkeypatch, tmp_path)
    assert store.stats() == {"hits": 0, "misses": NODES, "corrupt": 0}


# --------------------------------------------------------------------------
# Cache invalidation: each input component misses exactly its dependents.

def test_tail_dup_budget_invalidates_only_trace_artefacts(
        monkeypatch, tmp_path):
    _run(monkeypatch, tmp_path, budget=48)
    _, store = _run(monkeypatch, tmp_path, budget=32)
    # profile, bb regions and the bb cell survive; the trace region set
    # and its cell are recomputed.
    assert store.stats() == {"hits": 3, "misses": 2, "corrupt": 0}


def test_machine_config_mutation_invalidates_one_cell(
        monkeypatch, tmp_path):
    _run(monkeypatch, tmp_path)
    mutated = copy.deepcopy(vliw(3))
    mutated.mem_ports += 1
    configs = {"seq": (sequential(), "bb"), "vliw3": (mutated, "trace")}
    _, store = _run(monkeypatch, tmp_path, configs=configs)
    assert store.stats() == {"hits": 4, "misses": 1, "corrupt": 0}


def test_program_fingerprint_mutation_invalidates_everything(
        monkeypatch, tmp_path):
    _run(monkeypatch, tmp_path)
    original = PROGRAMS["conc30"]
    monkeypatch.setitem(
        PROGRAMS, "conc30",
        BenchmarkProgram(original.name, original.description,
                         original.source
                         + "\nunused_cache_probe(cache_probe).\n",
                         in_table1=original.in_table1))
    _, store = _run(monkeypatch, tmp_path)
    assert store.stats() == {"hits": 0, "misses": NODES, "corrupt": 0}


def test_config_rename_keeps_the_cache_warm(monkeypatch, tmp_path):
    """The display name is not part of the cell key."""
    _run(monkeypatch, tmp_path)
    configs = {"seq": (sequential(), "bb"),
               "renamed": (vliw(3, name="totally-different"), "trace")}
    _, store = _run(monkeypatch, tmp_path, configs=configs)
    assert store.stats() == {"hits": NODES, "misses": 0, "corrupt": 0}


def test_added_config_only_misses_its_own_cell(monkeypatch, tmp_path):
    _run(monkeypatch, tmp_path)
    configs = dict(_configs(), vliw2=(vliw(2), "trace"))
    _, store = _run(monkeypatch, tmp_path, configs=configs)
    assert store.stats() == {"hits": NODES, "misses": 1, "corrupt": 0}


# --------------------------------------------------------------------------
# Corruption: damaged entries read as misses and are repaired.

def _damage(root, damage):
    """Apply *damage* to one cached cell entry; returns its filename."""
    victim = sorted(name for name in os.listdir(str(root))
                    if name.startswith("cas-cell-"))[0]
    damage(os.path.join(str(root), victim))
    return victim


def _overwrite_with_garbage(path):
    with open(path, "w") as handle:
        handle.write("{ not json")


def _truncate(path):
    content = open(path).read()
    with open(path, "w") as handle:
        handle.write(content[:len(content) // 2])


@pytest.mark.parametrize("damage", [_overwrite_with_garbage, _truncate],
                         ids=["garbage", "truncated"])
def test_corrupt_entry_is_recomputed_and_repaired(
        monkeypatch, tmp_path, damage):
    cold, _ = _run(monkeypatch, tmp_path)
    victim = _damage(tmp_path, damage)
    warm, store = _run(monkeypatch, tmp_path)
    assert store.stats() == {"hits": NODES - 1, "misses": 1, "corrupt": 1}
    assert warm[0].data == cold[0].data
    # The damaged entry was rewritten and now round-trips cleanly.
    entry = json.load(open(os.path.join(str(tmp_path), victim)))
    assert CacheStore().get(entry["key"]) == entry["payload"]


def test_checksum_mismatch_is_detected(monkeypatch, tmp_path):
    """A silently edited payload fails its integrity check."""
    cold, _ = _run(monkeypatch, tmp_path)

    def tamper(path):
        entry = json.load(open(path))
        entry["payload"]["cycles"] += 1  # keep the stale sha256
        json.dump(entry, open(path, "w"))

    _damage(tmp_path, tamper)
    warm, store = _run(monkeypatch, tmp_path)
    assert store.corrupt == 1
    assert warm[0].data == cold[0].data


# --------------------------------------------------------------------------
# Verification status is part of the artefact, not a cache bypass.

def test_verify_upgrades_artefacts_in_place(monkeypatch, tmp_path):
    calls = []
    real = parallel.execute_task

    def counting(spec):
        calls.append(spec["kind"])
        return real(spec)

    monkeypatch.setattr(parallel, "execute_task", counting)
    _run(monkeypatch, tmp_path, verify=False)
    assert len(calls) == NODES
    # Unverified artefacts do not satisfy a verified request...
    _run(monkeypatch, tmp_path, verify=True)
    assert len(calls) == 2 * NODES
    # ...but verified artefacts satisfy both kinds of request.
    _run(monkeypatch, tmp_path, verify=True)
    _run(monkeypatch, tmp_path, verify=False)
    assert len(calls) == 2 * NODES


# --------------------------------------------------------------------------
# Failure containment.

def test_unknown_benchmark_does_not_sink_the_sweep(monkeypatch, tmp_path):
    with pytest.raises(EvaluationError) as caught:
        _run(monkeypatch, tmp_path,
             benchmarks=["conc30", "no_such_benchmark"])
    assert "no_such_benchmark" in str(caught.value)
    assert len(caught.value.failures) == 1
    # The healthy benchmark's artefacts were still computed and cached.
    _, store = _run(monkeypatch, tmp_path)
    assert store.stats() == {"hits": NODES, "misses": 0, "corrupt": 0}


def test_cell_failure_reports_the_cell_and_keeps_the_rest(
        monkeypatch, tmp_path):
    def broken_scheduler(region_set, config, verify=False):
        raise RuntimeError("synthetic scheduler failure")

    monkeypatch.setattr("repro.evaluation.pipeline.machine_cycles",
                        broken_scheduler)
    with pytest.raises(EvaluationError) as caught:
        _run(monkeypatch, tmp_path)
    failed = sorted(label for label, _ in caught.value.failures)
    assert len(failed) == 2 and all("/cell/" in label for label in failed)
    assert "synthetic scheduler failure" in caught.value.failures[0][1]
    # jobs=1 chains the first underlying exception for pdb post-mortems.
    assert isinstance(caught.value.__cause__, RuntimeError)
    monkeypatch.undo()
    # Profile and region artefacts survived the failed sweep.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    _, store = _run(monkeypatch, tmp_path)
    assert store.stats() == {"hits": 3, "misses": 2, "corrupt": 0}


def _die(spec):  # module-level: must be picklable for the pool
    os._exit(13)


def test_worker_crash_is_survived_by_degradation(monkeypatch, tmp_path):
    """A crash-looping pool cannot sink the sweep: after the restart
    budget the supervisor degrades to in-process execution and the
    evaluation still completes with full results."""
    monkeypatch.setattr(parallel, "_pool_task", _die)
    evaluations, store = _run(monkeypatch, tmp_path, jobs=2)
    assert evaluations[0].data["cycles"]["seq"] > 0
    # Every pool attempt died, so every node ran in degraded mode and
    # the pool was restarted up to its budget (+1 for the final break).
    engine_report = _LAST_REPORT[0]
    assert engine_report.degraded
    assert engine_report.pool_restarts >= 1
    counts = engine_report.counts()
    assert counts["degraded"] == NODES and counts["failed"] == 0
    monkeypatch.undo()
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    # The artefacts written under degradation serve a healthy engine.
    _, store = _run(monkeypatch, tmp_path, jobs=2)
    assert store.stats() == {"hits": NODES, "misses": 0, "corrupt": 0}
