"""Additional differential semantics coverage for compiler corner cases."""

from tests.conftest import assert_equivalent


def test_shared_variable_across_nested_structures():
    assert_equivalent("""
        p(f(X, g(X, Y)), Y).
        main :- p(f(1, g(1, Z)), 2), write(Z), nl.
    """)


def test_write_mode_builds_nested_shared_variables():
    assert_equivalent("""
        mk(f(X, [X, g(X)])).
        main :- mk(T), T = f(7, L), write(L), nl.
    """)


def test_void_variables_in_head():
    assert_equivalent("p(_, _, _). main :- p(1, [a], f(x)), write(ok).")


def test_chain_of_if_then_else():
    assert_equivalent("""
        grade(S, G) :- ( S >= 90 -> G = a
                       ; S >= 80 -> G = b
                       ; S >= 70 -> G = c
                       ; G = f ).
        main :- grade(95, X), grade(85, Y), grade(71, Z), grade(3, W),
                write([X, Y, Z, W]), nl.
    """)


def test_zero_arity_predicate_chain():
    assert_equivalent("""
        a :- fail.
        a :- b.
        b :- c, d.
        c. d.
        main :- a, write(yes), nl.
    """)


def test_backtracking_through_escape_output():
    # Output written before a failure must persist (side effects are
    # not undone) — in both engines.
    assert_equivalent("""
        p(1). p(2).
        main :- p(X), write(X), X > 1, write(win), nl.
    """)


def test_deeply_nested_write_mode_term():
    assert_equivalent("""
        deep(f(g(h(i(j(k(1))))))).
        main :- deep(T), write(T), nl.
    """)


def test_integer_constants_in_clause_heads():
    assert_equivalent("""
        fact(0, 1).
        fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G.
        main :- fact(8, F), write(F), nl.
    """)


def test_negative_integer_head_constant():
    assert_equivalent("""
        sign(-1, minus). sign(0, zero). sign(1, plus).
        main :- sign(-1, S), write(S), nl.
    """)


def test_atom_arity_overloading():
    # p/1 and p/2 are distinct predicates.
    assert_equivalent("""
        p(one).
        p(two, X) :- X = 2.
        main :- p(one), p(two, N), write(N), nl.
    """)


def test_unification_in_head_vs_body_equivalent():
    assert_equivalent("""
        h1(f(X), X).
        h2(T, X) :- T = f(X).
        main :- h1(f(9), A), h2(f(9), B), A =:= B, write(same), nl.
    """)


def test_long_conjunction_of_builtins():
    assert_equivalent("""
        main :- A is 1 + 1, A =:= 2, A == 2, atom(x), integer(A),
                A < 3, A > 1, A =< 2, A >= 2, 2 =\\= 3,
                write(all), nl.
    """)


def test_cut_in_zero_arity_aux():
    assert_equivalent("""
        flag :- check, !.
        flag :- write(fallback).
        check :- fail.
        main :- flag, nl.
    """)


def test_failure_inside_write_sequence():
    assert_equivalent("""
        main :- write(a), fail, write(b).
        main :- write(c), nl.
    """)


def test_list_tail_sharing_after_unification():
    assert_equivalent("""
        main :- L = [1, 2 | T], T = [3], L = [_, _, X], write(X), nl.
    """)
