"""Golden-number regression suite.

Pins the headline quantities of the reproduction (EXPERIMENTS.md) to the
paper's published values with tolerances wide enough to survive
refactors of the pipeline, scheduler or cache — but tight enough that a
change which *moves the results* fails loudly instead of drifting.

Everything here flows through the shared parallel evaluation engine, so
this suite also locks the engine's aggregation: a caching bug that
served a stale or mismatched artefact would show up as a golden-number
violation.

CI runs this file as a separate gate (see .github/workflows/ci.yml).
"""

import pytest

from repro.experiments import figure2, figure3, table1, table3
from repro.intcode.ici import MEM

# Paper / EXPERIMENTS.md headline values.
GOLDEN_MEMORY_FRACTION = 0.330    # Figure 2: memory ops ~33% of mix
GOLDEN_AMDAHL_BOUND = 3.03        # Figure 3: asymptotic speedup bound
GOLDEN_BB_SPEEDUP = 1.65          # Table 1: basic-block-limit speedup
GOLDEN_TRACE_SPEEDUP = 2.39       # Table 1: global-compaction speedup
GOLDEN_BAM_SPEEDUP = 1.59         # Table 3: BAM-like restricted machine


@pytest.fixture(scope="module")
def fig2():
    return figure2.compute()


@pytest.fixture(scope="module")
def t1():
    return table1.compute()


@pytest.fixture(scope="module")
def t3():
    return table3.compute()


def test_memory_fraction_is_one_third(fig2):
    assert fig2["average"][MEM] == pytest.approx(
        GOLDEN_MEMORY_FRACTION, abs=0.02)


def test_amdahl_bound(fig2):
    data = figure3.compute(fig2["average"][MEM])
    assert data["asymptote"] == pytest.approx(
        GOLDEN_AMDAHL_BOUND, abs=0.15)


def test_basic_block_speedup(t1):
    assert t1["average"]["bb_speedup"] == pytest.approx(
        GOLDEN_BB_SPEEDUP, abs=0.08)


def test_trace_speedup(t1):
    assert t1["average"]["trace_speedup"] == pytest.approx(
        GOLDEN_TRACE_SPEEDUP, abs=0.12)


def test_bam_speedup(t3):
    assert t3["average"]["bam"] == pytest.approx(
        GOLDEN_BAM_SPEEDUP, abs=0.08)


def test_table3_saturation_shape(t3):
    """Unit scaling saturates the way Table 3 of the paper does."""
    units = [t3["average"]["vliw%d" % n] for n in range(1, 6)]
    # Monotone in the number of units...
    assert all(a <= b + 1e-9 for a, b in zip(units, units[1:]))
    # ...with a visible gain up to three units...
    assert units[2] - units[0] > 0.30
    # ...and saturation beyond four (Amdahl memory bound).
    assert units[4] - units[3] < 0.05
    # The whole curve lives under the Figure 3 asymptote.
    assert units[4] < GOLDEN_AMDAHL_BOUND


def test_rendered_table1_average_line(t1):
    """The rendered artefact carries the golden averages verbatim."""
    line = next(row for row in table1.render(t1).splitlines()
                if row.strip().startswith("AVERAGE"))
    assert "%.2f" % t1["average"]["trace_speedup"] in line
    assert "%.2f" % t1["average"]["bb_speedup"] in line


# -- DCG application workloads (the corpus' fixed anchor points) -------------
#
# Pinned from the first full corpus sweep (results/BENCH_corpus.json).
# These are *application* numbers: grammar code branches on token
# shape, and all three workloads sit well above the paper-suite P_fp —
# a scheduler or emulator change that silently shifts application
# behaviour fails here even if the 14 microbenchmarks stay put.

GOLDEN_DCG = {
    #            speedup  mem-mix  avg_p_fp
    "dcg_grammar": (2.19,  0.352,   0.228),
    "dcg_json":    (2.23,  0.314,   0.213),
    "dcg_calc":    (2.22,  0.354,   0.221),
}


@pytest.fixture(scope="module")
def dcg_profiles():
    from repro.benchmarks.suite import compile_benchmark, \
        run_program_cached
    profiles = {}
    for name in GOLDEN_DCG:
        program = compile_benchmark(name)
        profiles[name] = (program, run_program_cached(program,
                                                      name + "-"))
    return profiles


@pytest.mark.parametrize("name", sorted(GOLDEN_DCG))
def test_dcg_workload_speedup(dcg_profiles, name):
    from repro.compaction.machine_model import ideal, sequential
    from repro.evaluation.pipeline import (
        basic_block_regions, machine_cycles, superblock_regions)
    program, result = dcg_profiles[name]
    seq = machine_cycles(basic_block_regions(program, result),
                         sequential())
    trace = machine_cycles(
        superblock_regions(program, result, 48, name + "-"),
        ideal("ideal_tr"))
    golden_speedup = GOLDEN_DCG[name][0]
    assert seq / trace == pytest.approx(golden_speedup, abs=0.10)


@pytest.mark.parametrize("name", sorted(GOLDEN_DCG))
def test_dcg_workload_instruction_mix(dcg_profiles, name):
    from repro.experiments.corpus_sweep import _instruction_mix
    program, result = dcg_profiles[name]
    mix = _instruction_mix(program, result.counts)
    assert mix["mem"] == pytest.approx(GOLDEN_DCG[name][1], abs=0.02)
    assert sum(mix.values()) == pytest.approx(1.0)


@pytest.mark.parametrize("name", sorted(GOLDEN_DCG))
def test_dcg_workload_branch_prediction(dcg_profiles, name):
    """All three application workloads break the paper's section 4.4
    predictability figure (~0.15): pinned so the corpus report's
    headline finding cannot silently drift."""
    from repro.analysis.branch_stats import (
        average_p_fp, branch_records)
    program, result = dcg_profiles[name]
    records = branch_records(program, result.counts, result.taken)
    p_fp = average_p_fp(records)
    assert p_fp == pytest.approx(GOLDEN_DCG[name][2], abs=0.02)
    assert p_fp > 0.15


# -- dataflow-oracle pruning (repro analyze / config.analysis_prune) ---------

def test_pruned_schedule_golden_cycles():
    """Hook off is the default everywhere above (byte-identical goldens);
    hook on is pinned here: the oracle's gain on conc30 is exactly two
    cycles on the ideal trace machine, every claim re-proved."""
    from repro.benchmarks.suite import compile_benchmark, \
        run_program_cached
    from repro.compaction.machine_model import ideal
    from repro.evaluation.pipeline import machine_cycles, \
        superblock_regions

    program = compile_benchmark("conc30")
    result = run_program_cached(program, "conc30-")
    region_set = superblock_regions(program, result, 48, "conc30-")
    baseline = machine_cycles(region_set, ideal("ideal_tr"))
    config = ideal("ideal_tr")
    config.analysis_prune = True
    pruned = machine_cycles(region_set, config, verify=True)
    assert baseline == 397
    assert pruned == 395
