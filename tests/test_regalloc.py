"""Register-pressure analysis and linear-scan binding."""

from repro.intcode.ici import Ici
from repro.compaction import vliw, ideal
from repro.compaction.scheduler import schedule_region
from repro.compaction.regalloc import region_pressure, is_interface


def pressure(ops, config=None):
    config = config or vliw(4)
    schedule = schedule_region(ops, config)
    return region_pressure(ops, schedule)


def test_interface_classification():
    assert is_interface("H")
    assert is_interface("a0")
    assert is_interface("a12")
    assert is_interface("B0")
    assert is_interface("u1")
    assert not is_interface("r42")
    assert not is_interface("v7")


def test_serial_chain_has_low_pressure():
    ops = [Ici("add", rd="r1", ra="a0", rb="a0"),
           Ici("add", rd="r2", ra="r1", rb="r1"),
           Ici("add", rd="r3", ra="r2", rb="r2")]
    report = pressure(ops)
    # One local live at a time, plus the a0 interface register.
    assert report.max_live <= 2 + len(report.reserved)


def test_parallel_values_raise_pressure():
    ops = [Ici("ldi", rd="r%d" % i, imm=i) for i in range(6)]
    ops.append(Ici("add", rd="s", ra="r0", rb="r5"))
    for index in range(1, 5):
        ops.append(Ici("add", rd="s%d" % index, ra="r%d" % index,
                       rb="r%d" % index))
    report = pressure(ops, ideal())
    assert report.max_live >= 6


def test_spills_zero_when_bank_large_enough():
    ops = [Ici("ldi", rd="r%d" % i, imm=i) for i in range(4)]
    ops.append(Ici("add", rd="s", ra="r0", rb="r3"))
    report = pressure(ops)
    assert report.spills_for(32) == 0


def test_spills_grow_as_bank_shrinks():
    ops = [Ici("ldi", rd="r%d" % i, imm=i) for i in range(12)]
    ops.append(Ici("add", rd="s", ra="r0", rb="r11"))
    report = pressure(ops, ideal())
    spills = [report.spills_for(k) for k in (4, 8, 16, 64)]
    assert spills[0] >= spills[1] >= spills[2] >= spills[3]
    assert spills[0] > 0
    assert spills[3] == 0


def test_reserved_registers_occupy_bank_slots():
    ops = [Ici("add", rd="r1", ra="H", rb="TR"),
           Ici("add", rd="r2", ra="E", rb="B")]
    report = pressure(ops)
    assert {"H", "TR", "E", "B"} <= report.reserved
    # A bank smaller than the reserved set cannot hold anything.
    assert report.spills_for(2) >= len(report.intervals)


def test_interval_endpoints_span_def_to_last_use():
    ops = [Ici("ldi", rd="r1", imm=1),
           Ici("mov", rd="r2", ra="a0"),
           Ici("add", rd="r3", ra="r1", rb="r1")]
    config = vliw(1)
    schedule = schedule_region(ops, config)
    report = region_pressure(ops, schedule)
    interval = {i.reg: i for i in report.intervals}["r1"]
    assert interval.start == schedule.cycles[0]
    assert interval.end >= schedule.cycles[2]


def test_empty_region():
    report = region_pressure([], schedule_region([], vliw(1)))
    assert report.max_live == 0
    assert report.spills_for(16) == 0
