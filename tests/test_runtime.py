"""Runtime library routines exercised through hand-built ICI harnesses."""

from repro.terms import SymbolTable, tags
from repro.intcode.program import Builder
from repro.intcode import layout, runtime
from repro.emulator import Emulator

HEAP = layout.HEAP_BASE


def harness(fill):
    """Build a program around the runtime library.

    *fill* receives the builder and emits the test body, which should end
    by storing probe words relative to a fresh base or halting.
    """
    builder = Builder(SymbolTable())
    builder.label("$start")
    fill(builder)
    builder.halt(0)
    # Branch targets inside the runtime routines must exist even when the
    # body does not call them.
    if "$fail" not in builder.labels:
        runtime.emit_runtime(builder)
    return builder.finish()


def run_ok(program):
    result = Emulator(program, max_steps=100_000).run()
    assert result.succeeded
    return result


def test_deref_constant_is_identity():
    def fill(b):
        r = b.fresh_reg()
        b.ldi_int(r, 5)
        runtime.emit_deref(b, r)
        b.st(r, "H", 0)
        out = b.fresh_reg()
        b.ld(out, "H", 0)
        b.bntag(out, tags.TINT, "$fail")
    run_ok(harness(fill))


def test_deref_follows_reference_chain():
    def fill(b):
        # Build: cell0 -> cell1 -> TINT(9); deref TREF(cell0) must be 9.
        v = b.fresh_reg()
        b.ldi_int(v, 9)
        b.st(v, "H", 1)                      # cell1 holds 9
        ref1 = b.fresh_reg()
        b.lea(ref1, "H", 1, tags.TREF)
        b.st(ref1, "H", 0)                   # cell0 -> cell1
        r = b.fresh_reg()
        b.lea(r, "H", 0, tags.TREF)
        runtime.emit_deref(b, r)
        k = b.fresh_reg()
        b.ldi_int(k, 9)
        b.branch("bne", r, k, "$fail")
    run_ok(harness(fill))


def test_deref_stops_at_unbound_cell():
    def fill(b):
        cell = b.fresh_reg()
        runtime.emit_new_unbound(b, cell)
        r = b.fresh_reg()
        b.mov(r, cell)
        runtime.emit_deref(b, r)
        b.branch("bne", r, cell, "$fail")   # still the same TREF
    run_ok(harness(fill))


def test_trail_records_old_cells_only():
    def fill(b):
        old = b.fresh_reg()
        runtime.emit_new_unbound(b, old)     # below HB after we bump it
        b.mov("HB", "H")                     # watermark above `old`
        new = b.fresh_reg()
        runtime.emit_new_unbound(b, new)     # above HB: not trailed
        value = b.fresh_reg()
        b.ldi_int(value, 1)
        runtime.emit_bind(b, old, value)     # trailed
        runtime.emit_bind(b, new, value)     # not trailed
        # TR must have advanced by exactly one entry.
        expect = b.fresh_reg()
        b.ldi(expect, tags.pack(layout.TRAIL_BASE + 1, tags.TRAW))
        b.mktag(expect, expect, tags.TRAW)
        probe = b.fresh_reg()
        b.mktag(probe, "TR", tags.TRAW)
        b.branch("bne", probe, expect, "$fail")
    run_ok(harness(fill))


def unify_harness(setup, expect_success=True):
    """Run $unify on the two words produced by *setup* (u0, u1 set)."""
    def fill(b):
        runtime.emit_runtime(b)
        b.label("$test")
        setup(b)
        b.call("$unify", link="RL")
        b.halt(0)
    builder = Builder(SymbolTable())
    builder.label("$start")
    # Sentinel frame so $fail halts with status 1.
    retry = builder.fresh_reg()
    builder.ldi_code(retry, "$no")
    builder.st(retry, "B", layout.CP_RETRY)
    top = builder.fresh_reg()
    builder.lea(top, "B", layout.CP_FIXED_SLOTS, tags.TRAW)
    builder.st(top, "B", layout.CP_SELF_TOP)
    builder.st("B", "B", layout.CP_PREV_B)
    builder.st("E", "B", layout.CP_SAVED_E)
    builder.st("CP", "B", layout.CP_SAVED_CP)
    builder.st("H", "B", layout.CP_SAVED_H)
    builder.st("TR", "B", layout.CP_SAVED_TR)
    builder.st("ES", "B", layout.CP_SAVED_ES)
    builder.mov("BT", top)
    builder.jmp("$test")
    builder.label("$no")
    builder.halt(1)
    fill(builder)
    result = Emulator(builder.finish(), max_steps=100_000).run()
    assert result.succeeded == expect_success
    return result


def test_unify_identical_atoms():
    def setup(b):
        b.ldi_atom("u0", "a")
        b.ldi_atom("u1", "a")
    unify_harness(setup)


def test_unify_distinct_atoms_fails():
    def setup(b):
        b.ldi_atom("u0", "a")
        b.ldi_atom("u1", "b")
    unify_harness(setup, expect_success=False)


def test_unify_var_against_constant_binds():
    def setup(b):
        cell = b.fresh_reg()
        runtime.emit_new_unbound(b, cell)
        b.mov("u0", cell)
        b.ldi_int("u1", 3)
    unify_harness(setup)


def test_unify_lists_elementwise():
    def setup(b):
        # [1|X] vs [1,2]
        one = b.fresh_reg()
        two = b.fresh_reg()
        nil = b.fresh_reg()
        b.ldi_int(one, 1)
        b.ldi_int(two, 2)
        b.ldi_atom(nil, "[]")
        var = b.fresh_reg()
        runtime.emit_new_unbound(b, var)
        b.st(one, "H", 0)
        b.st(var, "H", 1)
        b.lea("u0", "H", 0, tags.TLST)
        b.st(two, "H", 2)
        b.st(nil, "H", 3)
        cell = b.fresh_reg()
        b.lea(cell, "H", 2, tags.TLST)
        b.st(one, "H", 4)
        b.st(cell, "H", 5)
        b.lea("u1", "H", 4, tags.TLST)
        b.lea("H", "H", 6, tags.TRAW)
    unify_harness(setup)


def test_unify_structures_checks_functor():
    def setup(b):
        f = b.fresh_reg()
        g = b.fresh_reg()
        x = b.fresh_reg()
        b.ldi_functor(f, "f", 1)
        b.ldi_functor(g, "g", 1)
        b.ldi_int(x, 1)
        b.st(f, "H", 0)
        b.st(x, "H", 1)
        b.lea("u0", "H", 0, tags.TSTR)
        b.st(g, "H", 2)
        b.st(x, "H", 3)
        b.lea("u1", "H", 2, tags.TSTR)
        b.lea("H", "H", 4, tags.TRAW)
    unify_harness(setup, expect_success=False)


def test_unify_structure_arguments_recursively():
    def setup(b):
        f = b.fresh_reg()
        x = b.fresh_reg()
        b.ldi_functor(f, "f", 2)
        b.ldi_int(x, 1)
        var = b.fresh_reg()
        runtime.emit_new_unbound(b, var)
        b.st(f, "H", 0)
        b.st(x, "H", 1)
        b.st(var, "H", 2)
        b.lea("u0", "H", 0, tags.TSTR)
        y = b.fresh_reg()
        b.ldi_int(y, 7)
        b.st(f, "H", 3)
        b.st(x, "H", 4)
        b.st(y, "H", 5)
        b.lea("u1", "H", 3, tags.TSTR)
        b.lea("H", "H", 6, tags.TRAW)
    unify_harness(setup)


def test_unify_failure_resets_pushdown_list():
    """A failing deep unification must leave PD empty for the next call
    (the regression that broke backtracking through list unification)."""
    def setup(b):
        one = b.fresh_reg()
        two = b.fresh_reg()
        nil = b.fresh_reg()
        b.ldi_int(one, 1)
        b.ldi_int(two, 2)
        b.ldi_atom(nil, "[]")
        # u0 = [1,1]  u1 = [2,1]: cars differ with cdrs already pushed.
        b.st(one, "H", 0)
        b.st(nil, "H", 1)
        t0 = b.fresh_reg()
        b.lea(t0, "H", 0, tags.TLST)
        b.st(one, "H", 2)
        b.st(t0, "H", 3)
        b.lea("u0", "H", 2, tags.TLST)
        b.st(two, "H", 4)
        b.st(t0, "H", 5)
        b.lea("u1", "H", 4, tags.TLST)
        b.lea("H", "H", 6, tags.TRAW)
    result = unify_harness(setup, expect_success=False)
    # After failure the machine halted through $fail with an empty PD;
    # nothing left to assert beyond clean failure (status 1).
    assert result.status == 1
