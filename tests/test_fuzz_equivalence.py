"""Property-based differential testing: random queries over a library of
list/arithmetic predicates, executed both by the compiled ICI machine and
the reference interpreter, must agree exactly.

This is the fuzzing layer over the single most important invariant of the
reproduction (compiled semantics == source semantics).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bam import compile_source
from repro.intcode import translate_module, optimize_program
from repro.emulator import CodegenEmulator, Emulator, ThreadedEmulator
from repro.testing import faults

from tests.conftest import (
    assert_lint_clean, compile_and_run, interpret, normalise_vars)

LIBRARY = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
mem(X, [X|_]).
mem(X, [_|T]) :- mem(X, T).
sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
rev([], A, A).
rev([H|T], A, R) :- rev(T, [H|A], R).
last([X], X).
last([_|T], X) :- last(T, X).
sum([], 0).
sum([H|T], S) :- sum(T, S1), S is S1 + H.
maxl([X], X).
maxl([H|T], M) :- maxl(T, M1), (H > M1 -> M = H ; M = M1).
take(0, _, []) :- !.
take(N, [H|T], [H|R]) :- N > 0, M is N - 1, take(M, T, R).
interleave([], L, L).
interleave([H|T], L, [H|R]) :- interleave(L, T, R).
"""


def _plist(items):
    return "[%s]" % ",".join(str(i) for i in items)


@st.composite
def queries(draw):
    xs = draw(st.lists(st.integers(-9, 9), max_size=6))
    ys = draw(st.lists(st.integers(-9, 9), max_size=5))
    n = draw(st.integers(0, 6))
    kind = draw(st.sampled_from([
        "app({xs}, {ys}, R), write(R)",
        "app(A, B, {xs}), write(A-B), nl, fail",
        "mem({n}, {xs}), write(yes)",
        "sel({n}, {xs}, R), write(R), nl, fail",
        "len({xs}, N), write(N)",
        "rev({xs}, [], R), write(R)",
        "last({xs}, X), write(X)",
        "sum({xs}, S), write(S)",
        "maxl({xs}, M), write(M)",
        "take({n}, {xs}, R), write(R)",
        "interleave({xs}, {ys}, R), write(R)",
        "app(_, [X|_], {xs}), X > 0, write(X)",
    ]))
    return kind.format(xs=_plist(xs), ys=_plist(ys), n=n)


@settings(max_examples=120, deadline=None)
@given(queries())
def test_random_queries_agree(query):
    source = LIBRARY + "main :- %s, nl.\nmain :- write(no), nl.\n" % query
    ok, expected = interpret(source)
    result = compile_and_run(source)
    assert result.succeeded == ok
    assert normalise_vars(result.output) == normalise_vars(expected)


@settings(max_examples=40, deadline=None)
@given(queries())
def test_compiled_queries_lint_clean(query):
    """Every compiled fuzz case must be statically well-formed ICI, both
    straight out of the translator and after the optimiser."""
    source = LIBRARY + "main :- %s, nl.\nmain :- write(no), nl.\n" % query
    program = translate_module(compile_source(source))
    assert_lint_clean(program)
    optimized, _ = optimize_program(program)
    assert_lint_clean(optimized, stage="optimize")


@st.composite
def arith_expressions(draw, depth=3):
    if depth == 0:
        return str(draw(st.integers(-20, 20)))
    left = draw(arith_expressions(depth=depth - 1))
    right = draw(arith_expressions(depth=depth - 1))
    op = draw(st.sampled_from(["+", "-", "*"]))
    if draw(st.booleans()):
        op = draw(st.sampled_from(["//", "mod"]))
        right = str(draw(st.integers(1, 9)))  # avoid division by zero
    return "(%s %s %s)" % (left, op, right)


@settings(max_examples=80, deadline=None)
@given(arith_expressions())
def test_random_arithmetic_agrees(expression):
    source = "main :- X is %s, write(X), nl." % expression
    ok, expected = interpret(source)
    result = compile_and_run(source)
    assert result.succeeded == ok
    assert result.output == expected


@st.composite
def ground_terms(draw, depth=2):
    if depth == 0:
        return draw(st.sampled_from(["a", "b", "c", "1", "-2", "[]"]))
    args = draw(st.lists(ground_terms(depth=depth - 1), min_size=1,
                         max_size=3))
    shape = draw(st.sampled_from(["f(%s)", "g(%s)", "[%s]"]))
    return shape % ",".join(args)


@settings(max_examples=80, deadline=None)
@given(ground_terms(), ground_terms())
def test_random_unification_agrees(left, right):
    source = ("main :- X = %s, Y = %s, (X = Y -> write(u) ; write(n)), "
              "(X == Y -> write(e) ; write(d)), nl." % (left, right))
    ok, expected = interpret(source)
    result = compile_and_run(source)
    assert result.succeeded == ok
    assert result.output == expected


# --------------------------------------------------------------------------
# Backend differential fuzzing: the threaded-code and codegen backends
# must be bit-identical to the reference loop on every observable field.

def assert_backends_identical(program, max_steps=50_000_000):
    reference = Emulator(program, max_steps=max_steps).run()
    for cls in (ThreadedEmulator, CodegenEmulator):
        kwargs = {"persist": False} if cls is CodegenEmulator else {}
        other = cls(program, max_steps=max_steps, **kwargs).run()
        assert other.status == reference.status, cls.__name__
        assert other.steps == reference.steps, cls.__name__
        assert other.output == reference.output, cls.__name__
        assert other.counts == reference.counts, cls.__name__
        assert other.taken == reference.taken, cls.__name__


@settings(max_examples=30, deadline=None)
@given(queries())
def test_backends_agree_on_random_queries(query):
    source = LIBRARY + "main :- %s, nl.\nmain :- write(no), nl.\n" % query
    program = translate_module(compile_source(source))
    assert_backends_identical(program)
    optimized, _ = optimize_program(program)
    assert_backends_identical(optimized)


@settings(max_examples=25, deadline=None)
@given(arith_expressions())
def test_backends_agree_on_random_arithmetic(expression):
    source = "main :- X is %s, write(X), nl." % expression
    program = translate_module(compile_source(source))
    assert_backends_identical(program)


@settings(max_examples=25, deadline=None)
@given(ground_terms(), ground_terms())
def test_backends_agree_on_random_unification(left, right):
    source = ("main :- X = %s, Y = %s, (X = Y -> write(u) ; write(n)), "
              "(X == Y -> write(e) ; write(d)), nl." % (left, right))
    program = translate_module(compile_source(source))
    assert_backends_identical(program)


def test_backends_agree_on_paper_suite():
    from repro.benchmarks import TABLE_BENCHMARKS
    from repro.benchmarks.suite import compile_benchmark
    for name in TABLE_BENCHMARKS:
        assert_backends_identical(compile_benchmark(name))


# --------------------------------------------------------------------------
# Fault injection inside compiled blocks: a ``bail`` fired mid-block
# must leave the codegen backend's observable result bit-identical
# (the fallback re-runs the reference loop from scratch), and an
# ``error`` must surface as InjectedFault rather than corrupt state.
# Each arming gets a fresh fuse state directory: in-process fuse
# accounting is keyed on the spec string, so re-arming an identical
# spec would otherwise find its fuse already spent.

def _result_fields(result):
    return (result.status, result.steps, result.output, result.counts,
            result.taken)


def test_codegen_block_fault_bail_falls_back_identically(tmp_path):
    source = LIBRARY + "main :- rev([1,2,3,4,5], [], R), write(R), nl."
    program = translate_module(compile_source(source))
    reference = Emulator(program).run()
    with faults.injected("emulator.codegen.block=bail:1",
                         str(tmp_path / "fuses")):
        result = CodegenEmulator(program, persist=False).run()
    assert result.backend == "reference"
    assert _result_fields(result) == _result_fields(reference)


def test_codegen_block_fault_error_raises(tmp_path):
    source = LIBRARY + "main :- len([1,2,3], N), write(N), nl."
    program = translate_module(compile_source(source))
    with faults.injected("emulator.codegen.block=error:1",
                         str(tmp_path / "fuses")):
        with pytest.raises(faults.InjectedFault):
            CodegenEmulator(program, persist=False).run()


def test_codegen_block_fault_on_paper_benchmark(tmp_path):
    from repro.benchmarks.suite import compile_benchmark
    program = compile_benchmark("mu")
    reference = Emulator(program).run()
    with faults.injected("emulator.codegen.block=bail:1",
                         str(tmp_path / "fuses")):
        result = CodegenEmulator(program, persist=False).run()
    assert result.backend == "reference"
    assert _result_fields(result) == _result_fields(reference)


@pytest.mark.slow
def test_codegen_block_faults_on_corpus_slice(tmp_path):
    for name, source in _corpus_sources(12, 2025):
        program = translate_module(compile_source(source))
        reference = Emulator(program).run()
        with faults.injected("emulator.codegen.block=bail:1",
                             str(tmp_path / name)):
            result = CodegenEmulator(program, persist=False).run()
        assert result.backend == "reference", name
        assert _result_fields(result) == _result_fields(reference), name


# --------------------------------------------------------------------------
# Corpus-seeded fuzzing: the generated corpus covers cut, if-then-else,
# negation and deep-recursion shapes the hand-written query grammar
# above never produces.  Seeds are fixed (the corpus is deterministic),
# so a failure here names an exactly reproducible program.

def _corpus_sources(count, base_seed):
    from repro.corpus.generate import corpus_programs
    return [(p.name, p.source)
            for p in corpus_programs(count, base_seed)]


@pytest.mark.parametrize(
    "name,source", _corpus_sources(8, 1992),
    ids=[name for name, _ in _corpus_sources(8, 1992)])
def test_corpus_programs_agree_with_interpreter(name, source):
    ok, expected = interpret(source)
    result = compile_and_run(source)
    assert result.succeeded == ok, name
    assert normalise_vars(result.output) == normalise_vars(expected), name


@pytest.mark.slow
def test_backends_agree_on_corpus_slice():
    """Backend differential over a wide fixed slice of the corpus
    (tier-marked slow: ~60 programs through both emulator backends,
    straight out of the translator and after the optimiser)."""
    for name, source in _corpus_sources(60, 1992):
        program = translate_module(compile_source(source))
        assert_backends_identical(program)
        optimized, _ = optimize_program(program)
        assert_backends_identical(optimized)


@pytest.mark.slow
def test_corpus_dcg_workloads_backends_identical():
    from repro.corpus.workloads import DCG_WORKLOADS
    for name in sorted(DCG_WORKLOADS):
        program = translate_module(
            compile_source(DCG_WORKLOADS[name].source))
        assert_backends_identical(program)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(-50, 50), min_size=1, max_size=8))
def test_sorting_pipeline_agrees(values):
    source = LIBRARY + """
qs([], R, R).
qs([X|L], R, R0) :- part(L, X, L1, L2), qs(L2, R1, R0), qs(L1, R, [X|R1]).
part([], _, [], []).
part([X|L], Y, [X|L1], L2) :- X =< Y, !, part(L, Y, L1, L2).
part([X|L], Y, L1, [X|L2]) :- part(L, Y, L1, L2).
main :- qs(%s, S, []), write(S), nl.
""" % _plist(values)
    result = compile_and_run(source)
    assert result.succeeded
    assert result.output == "[%s]\n" % ",".join(
        str(v) for v in sorted(values))
