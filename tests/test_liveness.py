"""Global liveness analysis over bitmask sets."""

from repro.terms import SymbolTable, tags
from repro.intcode.program import Builder
from repro.analysis.cfg import Cfg
from repro.analysis.liveness import Liveness


def analyse(fill):
    b = Builder(SymbolTable())
    b.label("$start")
    fill(b)
    program = b.finish()
    cfg = Cfg(program)
    return program, cfg, Liveness(cfg)


def live_names(liveness, mask):
    return {name for name, index in liveness.reg_ids.items()
            if mask & (1 << index)}


def test_straight_line_use_before_def_is_live_in():
    def fill(b):
        b.alu("add", "y", "x", rb="x")
        b.halt(0)
    program, cfg, liveness = analyse(fill)
    mask = liveness.live_in_mask(0)
    assert "x" in live_names(liveness, mask)
    assert "y" not in live_names(liveness, mask)


def test_killed_before_use_not_live_in():
    def fill(b):
        b.ldi_int("x", 1)
        b.alu("add", "y", "x", rb="x")
        b.halt(0)
    _, _, liveness = analyse(fill)
    assert "x" not in live_names(liveness, liveness.live_in_mask(0))


def test_liveness_flows_through_branches():
    def fill(b):
        b.btag("c", tags.TINT, "there")   # 0
        b.ldi_int("z", 1)                 # 1
        b.halt(0)                         # 2
        b.label("there")
        b.alu("add", "w", "v", rb="v")    # 3
        b.halt(0)                         # 4
    _, cfg, liveness = analyse(fill)
    entry = live_names(liveness, liveness.live_in_mask(0))
    assert "c" in entry
    assert "v" in entry           # live through the taken path
    there = cfg.block_at[3].start
    assert "v" in live_names(liveness, liveness.live_in_mask(there))


def test_loop_liveness_fixpoint():
    def fill(b):
        b.label("loop")
        b.alu("add", "i", "i", rb="one")
        b.branch("bltv", "i", "n", "loop")
        b.halt(0)
    _, _, liveness = analyse(fill)
    loop_live = live_names(liveness, liveness.live_in_mask(0))
    assert {"i", "one", "n"} <= loop_live


def test_call_block_uses_abi_set():
    def fill(b):
        b.call("sub", link="CP")
        b.halt(0)
        b.label("sub")
        b.jmpr("CP")
    _, cfg, liveness = analyse(fill)
    mask = liveness.live_in_mask(0)
    names = live_names(liveness, mask)
    # Argument registers and machine registers survive into calls...
    assert "a0" not in names or True  # a0 only if program mentions it
    assert "H" in names
    assert "B" in names


def test_fresh_temps_dead_across_calls():
    def fill(b):
        b.ldi_int("t_scratch", 3)
        b.call("sub", link="CP")
        b.halt(0)
        b.label("sub")
        b.jmpr("CP")
    _, cfg, liveness = analyse(fill)
    # After the call returns, t_scratch is never read: it must not be in
    # the ABI-live set of the call block.
    block = [blk for blk in cfg.blocks if blk.start == 0][0]
    out = liveness.live_out[block.start]
    assert "t_scratch" not in live_names(liveness, out)


def test_mask_of_helper():
    def fill(b):
        b.halt(0)
    _, _, liveness = analyse(fill)
    mask = liveness.mask_of(["H", "TR"])
    assert mask & (1 << liveness.reg_ids["H"])
    assert mask & (1 << liveness.reg_ids["TR"])
