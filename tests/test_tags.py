"""Tagged-word packing: exactness for all field combinations."""

from hypothesis import given, strategies as st

from repro.terms import tags


ALL_TAGS = sorted(tags.TAG_NAMES)


def test_pack_fields_roundtrip_simple():
    word = tags.pack(42, tags.TINT)
    assert tags.value_of(word) == 42
    assert tags.tag_of(word) == tags.TINT
    assert tags.cdr_of(word) == 0


def test_pack_with_cdr_bit():
    word = tags.pack(7, tags.TLST, cdr=1)
    assert tags.cdr_of(word) == 1
    assert tags.value_of(word) == 7
    assert tags.tag_of(word) == tags.TLST


def test_negative_values_are_exact():
    word = tags.pack(-1, tags.TINT)
    assert tags.value_of(word) == -1
    assert tags.tag_of(word) == tags.TINT


def test_with_tag_replaces_only_tag():
    word = tags.pack(-123456, tags.TREF, cdr=1)
    retagged = tags.with_tag(word, tags.TSTR)
    assert tags.tag_of(retagged) == tags.TSTR
    assert tags.value_of(retagged) == -123456
    assert tags.cdr_of(retagged) == 1


def test_tags_are_distinct_3_bit_values():
    assert len(set(ALL_TAGS)) == 8
    assert all(0 <= tag < 8 for tag in ALL_TAGS)


def test_describe_mentions_tag_name_and_value():
    text = tags.describe(tags.pack(5, tags.TATM))
    assert "atm" in text and "5" in text


@given(st.integers(min_value=-(2 ** 60), max_value=2 ** 60),
       st.sampled_from(ALL_TAGS), st.integers(min_value=0, max_value=1))
def test_pack_unpack_roundtrip(value, tag, cdr):
    word = tags.pack(value, tag, cdr)
    assert tags.value_of(word) == value
    assert tags.tag_of(word) == tag
    assert tags.cdr_of(word) == cdr


@given(st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
       st.sampled_from(ALL_TAGS), st.sampled_from(ALL_TAGS))
def test_with_tag_composition(value, tag1, tag2):
    word = tags.pack(value, tag1)
    assert tags.with_tag(word, tag2) == tags.pack(value, tag2)


@given(st.integers(min_value=-(2 ** 40), max_value=2 ** 40))
def test_distinct_tags_give_distinct_words(value):
    words = {tags.pack(value, tag) for tag in ALL_TAGS}
    assert len(words) == len(ALL_TAGS)


def test_prototype_field_widths():
    assert tags.WORD_BITS == 32
    assert tags.VALUE_BITS == 28
    assert tags.TAG_BITS == 3
    assert tags.CDR_BITS == 1
