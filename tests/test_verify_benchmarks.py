"""The independent checker over the paper's benchmark suite: every table
benchmark must lint clean (after translation and after the optimiser) and
the whole evaluation pipeline — transform, schedules, register bindings —
must verify clean under the master machine configurations."""

import pytest

from repro.analysis import format_diagnostics, lint_program
from repro.benchmarks import TABLE_BENCHMARKS
from repro.benchmarks.suite import compile_benchmark, run_program_cached
from repro.evaluation.pipeline import (
    evaluate_benchmark, verify_evaluation, superblock_regions,
    machine_cycles)
from repro.intcode import optimize_program

from tests.conftest import assert_lint_clean


@pytest.mark.parametrize("name", TABLE_BENCHMARKS)
def test_benchmark_lints_clean(name):
    program = compile_benchmark(name)
    assert_lint_clean(program)
    optimized, _ = optimize_program(program)
    assert_lint_clean(optimized, stage="optimize")


@pytest.mark.parametrize("name", TABLE_BENCHMARKS)
def test_benchmark_pipeline_verifies(name, verifier_configs):
    program = compile_benchmark(name)
    result = run_program_cached(program, name + "-")
    diagnostics = verify_evaluation(program, result, verifier_configs,
                                    cache_hint=name + "-")
    assert diagnostics == [], format_diagnostics(diagnostics)


def test_evaluate_benchmark_verify_flag(verifier_configs):
    evaluation = evaluate_benchmark("qsort", verifier_configs,
                                    verify=True)
    assert evaluation.cycles("seq") > evaluation.cycles("vliw3")


def test_machine_cycles_verify_matches_unverified(verifier_configs):
    name = "nreverse"
    program = compile_benchmark(name)
    result = run_program_cached(program, name + "-")
    region_set = superblock_regions(program, result,
                                    cache_hint=name + "-")
    config, _ = verifier_configs["vliw3"]
    assert machine_cycles(region_set, config, verify=True) \
        == machine_cycles(region_set, config)


def test_transformed_benchmarks_lint_clean(verifier_configs):
    for name in ("qsort", "tak", "conc30"):
        program = compile_benchmark(name)
        result = run_program_cached(program, name + "-")
        region_set = superblock_regions(program, result,
                                        cache_hint=name + "-")
        assert lint_program(region_set.program) == []
