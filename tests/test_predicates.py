"""Predicate-level compilation: first-argument indexing and chains."""

from repro.terms import SymbolTable, tags
from repro.interp import Database
from repro.bam.normalize import Normalizer
from repro.bam.predicates import PredicateCompiler, first_arg_pattern
from repro.bam import instructions as bam
from repro.reader import parse_term


def compile_pred(text, indicator=None):
    db = Database()
    db.consult(text)
    norm = Normalizer().add_database(db)
    indicator = indicator or norm.order[0]
    name, arity = indicator
    return PredicateCompiler(name, arity, norm.predicates[indicator],
                             SymbolTable()).compile()


def find(instrs, cls):
    return [i for i in instrs if isinstance(i, cls)]


# -- pattern classification ------------------------------------------------


def test_pattern_variable():
    assert first_arg_pattern(parse_term("p(X)")) is None


def test_pattern_atom_int_list_struct():
    assert first_arg_pattern(parse_term("p(a)")) == ("atm", "a")
    assert first_arg_pattern(parse_term("p(7)")) == ("int", 7)
    assert first_arg_pattern(parse_term("p([H|T])")) == ("lst",)
    assert first_arg_pattern(parse_term("p(f(X))")) == ("str", ("f", 1))


def test_pattern_zero_arity():
    assert first_arg_pattern(parse_term("p")) is None


# -- dispatch structure -----------------------------------------------------


def test_single_clause_no_choice_point():
    instrs = compile_pred("p(a).")
    assert not find(instrs, bam.Try)
    assert not find(instrs, bam.SwitchOnTag)


def test_nil_cons_predicate_is_deterministic():
    instrs = compile_pred("""
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
    """)
    switch = find(instrs, bam.SwitchOnTag)[0]
    cases = dict(switch.cases)
    # Atom and list tags dispatch straight to clause code; only the
    # unbound-argument case needs a choice-point chain.
    assert cases[tags.TATM].startswith("C0:")
    assert cases[tags.TLST].startswith("C1:")
    assert cases[tags.TREF].startswith("H")
    assert len(find(instrs, bam.Try)) == 1


def test_variable_clause_appears_in_every_chain():
    instrs = compile_pred("""
        p(a) :- x.
        p(X) :- y(X).
        p([_]) :- z.
        x. y(_). z.
    """, ("p", 1))
    switch = find(instrs, bam.SwitchOnTag)[0]
    cases = dict(switch.cases)
    # Integer argument: only the variable-headed clause matches.
    assert cases[tags.TINT].startswith("C1:")
    # Atom / list arguments need two-clause chains.
    assert cases[tags.TATM].startswith("H")
    assert cases[tags.TLST].startswith("H")


def test_constant_second_level_dispatch():
    instrs = compile_pred("""
        c(red, 1). c(green, 2). c(blue, 3).
    """)
    consts = find(instrs, bam.SwitchOnConstant)
    assert len(consts) == 1
    assert len(consts[0].cases) == 3
    # Constant leaves are single clauses (deterministic); only the
    # unbound-argument chain creates a choice point.
    assert all(label.startswith("C") for _, label in consts[0].cases)
    assert len(find(instrs, bam.Try)) == 1


def test_functor_second_level_dispatch():
    instrs = compile_pred("""
        d(f(X), X).
        d(g(X, _), X).
    """)
    functors = find(instrs, bam.SwitchOnFunctor)
    assert len(functors) == 1
    assert dict(functors[0].cases)[("f", 1)].startswith("C0:")
    # Only the unbound-argument chain needs a choice point.
    assert len(find(instrs, bam.Try)) == 1


def test_retry_chain_order_and_trust():
    instrs = compile_pred("p(1). p(2). p(3).", ("p", 1))
    # All three clauses share the integer constant dispatch, but the
    # unbound case needs a full try/retry/trust chain.
    stubs = find(instrs, bam.RetryStub)
    assert len(stubs) == 2
    assert stubs[0].next_label is not None
    assert stubs[-1].next_label is None  # trust


def test_chains_are_shared_between_leaves():
    instrs = compile_pred("""
        p(a). p(b). p(a).
    """, ("p", 1))
    # Leaf for 'a' = clauses 0,2; leaf for 'b' = clause 1; var = all.
    tries = find(instrs, bam.Try)
    assert len(tries) == 2  # chain {0,2} and chain {0,1,2}


def test_zero_arity_multi_clause_plain_chain():
    instrs = compile_pred("p :- a. p :- b. a. b.", ("p", 0))
    assert not find(instrs, bam.SwitchOnTag)
    assert len(find(instrs, bam.Try)) == 1
    assert len(find(instrs, bam.RetryStub)) == 1


def test_entry_sets_cut_barrier():
    instrs = compile_pred("p(a).")
    assert isinstance(instrs[1], bam.SetB0)


def test_first_arg_marked_derefed_when_indexed():
    instrs = compile_pred("""
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
    """)
    gets = [i for i in find(instrs, bam.Get) if i.reg == "a0"]
    assert gets and all(g.derefed for g in gets)


def test_first_arg_not_derefed_without_indexing():
    instrs = compile_pred("p(a).")
    gets = [i for i in find(instrs, bam.Get) if i.reg == "a0"]
    assert gets and not any(g.derefed for g in gets)
