"""The observability layer's contract, locked down.

Invariants under test:

* every opened span closes (seq values are a permutation of 1..2N),
  children are strictly enclosed by their parents, ids are unique —
  and :func:`validate_trace` rejects documents that violate any of it;
* the supervisor's ``task`` spans reconcile exactly with its
  :class:`EvaluationReport` (label, status, attempts), cold and warm;
* the cache hit/miss/corrupt counters match the store's own stats;
* deterministic export is byte-stable across reruns at a fixed seed;
* tracing never changes a computed number (golden-identical) and its
  overhead on an emulator run stays inside the <5% budget;
* the CLI round trip (``evaluate --trace`` -> ``trace summary`` /
  ``trace validate``) works, including under injected faults.
"""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.evaluation import parallel
from repro.evaluation.parallel import CacheStore, EvaluationEngine
from repro.evaluation.supervisor import SupervisorPolicy
from repro.observability import (
    Tracer, activation, render_trace, trace_lines, validate_trace,
    load_trace, summarize_trace, write_trace)
from repro.testing import faults

BENCH = "conc30"


def _configs():
    from repro.compaction import sequential, vliw
    return {"seq": (sequential(), "bb"), "vliw3": (vliw(3), "trace")}


def _policy():
    return SupervisorPolicy(max_attempts=3, deadline=60.0,
                            backoff_base=0.01, backoff_cap=0.05,
                            seed=1992, poll=0.02)


def _sweep(monkeypatch, cache_root, jobs=1):
    """One fresh-engine evaluate_many sweep; (engine, evaluations)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_root))
    monkeypatch.setattr(parallel, "_worker_programs", {})
    monkeypatch.setattr(parallel, "_worker_regions", {})
    store = CacheStore()
    with EvaluationEngine(jobs=jobs, store=store,
                          policy=_policy()) as engine:
        evaluations = engine.evaluate_many(
            [{"name": BENCH, "configs": _configs()}])
        return engine, evaluations


# --------------------------------------------------------------------------
# Tracer unit invariants.

def test_spans_balance_and_validate():
    tracer = Tracer(seed=7)
    with tracer.span("outer", kind="test"):
        with tracer.span("inner") as sp:
            sp.set(detail=1)
        with tracer.span("inner"):
            pass
    tracer.metrics.add("events", 3)
    assert tracer.open_spans == []
    assert [span.name for span in tracer.spans] \
        == ["outer", "inner", "inner"]
    assert validate_trace(trace_lines(tracer)) == []


def test_seeded_run_ids_are_reproducible():
    assert Tracer(seed=11).run_id == Tracer(seed=11).run_id
    assert Tracer(seed=11).run_id != Tracer(seed=12).run_id
    assert Tracer().run_id != Tracer().run_id


def test_unclosed_span_fails_validation():
    tracer = Tracer(seed=0)
    tracer.open("leaked")
    problems = validate_trace(trace_lines(tracer))
    assert any("unclosed" in problem for problem in problems)


def test_double_close_raises():
    tracer = Tracer(seed=0)
    span = tracer.open("once")
    tracer.close(span)
    with pytest.raises(RuntimeError, match="closed twice"):
        tracer.close(span)


def test_error_inside_span_records_error_status():
    tracer = Tracer(seed=0)
    with pytest.raises(ValueError):
        with tracer.span("failing"):
            raise ValueError("boom")
    span = tracer.find("failing")[0]
    assert span.status == "error"
    assert span.error == "ValueError"
    assert validate_trace(trace_lines(tracer)) == []


def test_explicit_spans_overlap_but_still_balance():
    """The supervisor's pooled tasks overlap; the logical clock still
    proves every one of them closed."""
    tracer = Tracer(seed=0)
    first = tracer.open("task", label="a")
    second = tracer.open("task", label="b")
    tracer.close(first)
    tracer.close(second)
    assert validate_trace(trace_lines(tracer)) == []


def test_validator_rejects_broken_documents():
    tracer = Tracer(seed=0)
    with tracer.span("root"):
        with tracer.span("child"):
            pass
    lines = trace_lines(tracer)
    # Duplicate span id.
    broken = json.loads(json.dumps(lines))
    broken[2]["id"] = broken[1]["id"]
    assert any("duplicate" in problem
               for problem in validate_trace(broken))
    # Child escaping its parent's interval.
    broken = json.loads(json.dumps(lines))
    child = next(record for record in broken[1:-1]
                 if record["name"] == "child")
    child["seq"] = [broken[1]["seq"][0] - 0, broken[1]["seq"][1] + 1]
    assert validate_trace(broken)
    # Span count lying in the header.
    broken = json.loads(json.dumps(lines))
    broken[0]["spans"] = 99
    assert any("span record count" in problem
               for problem in validate_trace(broken))


# --------------------------------------------------------------------------
# Reconciliation against the engine + supervisor.

def test_cold_sweep_task_spans_match_report(monkeypatch, tmp_path,
                                            traced_run):
    engine, _ = _sweep(monkeypatch, tmp_path)
    records = list(engine.report.records.values())
    spans = traced_run.find("task")
    assert len(spans) == len(records) > 0
    by_label = {record["label"]: record for record in records}
    assert len(by_label) == len(records)
    for span in spans:
        record = by_label[span.attrs["label"]]
        assert span.attrs["status"] == record["status"]
        assert span.attrs["attempts"] == record["attempts"]
        assert span.status == "ok"
    assert validate_trace(trace_lines(traced_run)) == []


def test_warm_sweep_cached_counter_matches_report(monkeypatch, tmp_path,
                                                  traced_run):
    with activation(seed=0):        # cold run traced elsewhere
        _sweep(monkeypatch, tmp_path)
    engine, _ = _sweep(monkeypatch, tmp_path)
    records = list(engine.report.records.values())
    assert records and all(record["status"] == "cached"
                           for record in records)
    # Cached prechecks open no task spans; they count instead.
    assert traced_run.find("task") == []
    assert traced_run.metrics.count("engine.tasks.cached") \
        == len(records)


def test_cache_counters_match_store_stats(monkeypatch, tmp_path,
                                          traced_run):
    engine, _ = _sweep(monkeypatch, tmp_path)
    warm, _ = _sweep(monkeypatch, tmp_path)
    counters = traced_run.metrics.counters
    stats = engine.store.stats()
    warm_stats = warm.store.stats()
    assert counters["cache.misses"] \
        == stats["misses"] + warm_stats["misses"]
    assert counters.get("cache.hits", 0) \
        == stats["hits"] + warm_stats["hits"]
    assert counters.get("cache.corrupt", 0) \
        == stats["corrupt"] + warm_stats["corrupt"]
    assert counters["cache.writes"] > 0


def test_retry_is_visible_in_trace(monkeypatch, tmp_path, traced_run):
    monkeypatch.setenv(faults.ENV_SPEC, "parallel.task=error:1")
    monkeypatch.setenv(faults.ENV_STATE, str(tmp_path / "state"))
    engine, _ = _sweep(monkeypatch, tmp_path)
    retried = [span for span in traced_run.find("task")
               if span.attrs["status"] == "retried"]
    assert len(retried) == 1
    assert retried[0].attrs["attempts"] == 2
    assert traced_run.metrics.count("supervisor.retries") == 1
    assert engine.report.counts()["retried"] == 1
    assert validate_trace(trace_lines(traced_run)) == []


# --------------------------------------------------------------------------
# Determinism and neutrality.

def test_deterministic_export_is_byte_stable(monkeypatch, tmp_path):
    with activation(seed=0):
        _sweep(monkeypatch, tmp_path)     # warm the cache first
    documents = []
    for _ in range(2):
        with activation(seed=1992) as tracer:
            _sweep(monkeypatch, tmp_path)
        assert validate_trace(trace_lines(tracer, timings=False)) == []
        documents.append(render_trace(tracer, timings=False))
    assert documents[0] == documents[1]
    header = json.loads(documents[0].splitlines()[0])
    assert header["deterministic"] is True
    assert header["seed"] == 1992


def test_tracing_is_golden_identical(monkeypatch, tmp_path):
    """An active tracer never changes a computed number."""
    _, plain = _sweep(monkeypatch, tmp_path / "plain")
    with activation(seed=0):
        _, traced = _sweep(monkeypatch, tmp_path / "traced")
    assert plain[0].data == traced[0].data


@pytest.mark.slow
def test_tracing_overhead_within_budget():
    """Tracing an emulator run costs <5% wall clock (QUICK subset)."""
    import timeit
    from repro.benchmarks.perf import QUICK_BENCHMARKS
    from repro.benchmarks.suite import compile_benchmark
    from repro.emulator import run_program
    def ratio(program):
        # Interleaved best-of-N batches cancel load/thermal drift; the
        # per-run span costs microseconds against a millisecond run.
        plain_samples, traced_samples = [], []
        for _ in range(9):
            plain_samples.append(timeit.timeit(
                lambda: run_program(program), number=10))
            with activation(seed=0):
                traced_samples.append(timeit.timeit(
                    lambda: run_program(program), number=10))
        return min(traced_samples) / min(plain_samples)

    for name in QUICK_BENCHMARKS:
        program = compile_benchmark(name)
        run_program(program)        # warm the threaded-code cache
        # Host noise on sub-millisecond runs swamps the real ~0.5%
        # overhead, so a failing sample is re-measured before the
        # budget verdict.
        ratios = []
        for _ in range(3):
            ratios.append(ratio(program))
            if ratios[-1] <= 1.05:
                break
        assert min(ratios) <= 1.05, (
            "%s: tracing overhead %s exceeds the 5%% budget"
            % (name, ", ".join("%.1f%%" % ((r - 1) * 100)
                               for r in ratios)))


# --------------------------------------------------------------------------
# Export round trip and the CLI.

def test_write_load_summarize_round_trip(tmp_path, traced_run):
    with traced_run.span("pipeline.schedule", config="seq"):
        pass
    traced_run.metrics.add("cache.hits", 3)
    traced_run.metrics.gauge("jobs", 1)
    path = write_trace(str(tmp_path / "t.jsonl"), traced_run)
    lines = load_trace(path)
    assert validate_trace(lines) == []
    info = summarize_trace(lines)
    assert info["run_id"] == traced_run.run_id
    assert info["by_name"]["pipeline.schedule"]["count"] == 1
    assert info["counters"] == {"cache.hits": 3}
    assert info["gauges"] == {"jobs": 1}


def _cli_env(tmp_path):
    src = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cli-cache")
    return env


def _cli(args, env, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro"] + args,
        env=env, capture_output=True, text=True, timeout=timeout)


def test_cli_trace_export_and_summary(tmp_path):
    env = _cli_env(tmp_path)
    trace_path = str(tmp_path / "trace.jsonl")
    completed = _cli(["evaluate", "--jobs", "1", "--bench", BENCH,
                      "--trace", trace_path], env)
    assert completed.returncode == 0, completed.stderr
    assert "wrote trace" in completed.stdout
    assert validate_trace(load_trace(trace_path)) == []

    summary = _cli(["trace", "summary", trace_path], env)
    assert summary.returncode == 0, summary.stderr
    assert "task" in summary.stdout
    assert "cache.misses" in summary.stdout

    checked = _cli(["trace", "validate", trace_path], env)
    assert checked.returncode == 0, checked.stderr
    assert "valid" in checked.stdout

    # A mangled document is rejected with exit 1.
    with open(trace_path) as handle:
        lines = handle.readlines()
    with open(trace_path, "w") as handle:
        handle.writelines(lines[:-1])
    rejected = _cli(["trace", "validate", trace_path], env)
    assert rejected.returncode == 1
    assert "problem" in rejected.stderr


@pytest.mark.chaos
def test_cli_chaos_sweep_with_trace(tmp_path):
    """The fault-injected CI sweep stays green with --trace on, and
    the recovery is visible in the trace."""
    env = _cli_env(tmp_path)
    env[faults.ENV_SPEC] = "parallel.task=error:1"
    env[faults.ENV_STATE] = str(tmp_path / "state")
    env["REPRO_TRACE_SEED"] = "1992"
    trace_path = str(tmp_path / "chaos.jsonl")
    completed = _cli(["evaluate", "--jobs", "2", "--bench", BENCH,
                      "--trace", trace_path], env)
    assert completed.returncode == 0, completed.stderr
    lines = load_trace(trace_path)
    assert validate_trace(lines) == []
    retried = [record for record in lines[1:-1]
               if record["name"] == "task"
               and record["attrs"].get("status") == "retried"]
    assert retried and retried[0]["attrs"]["attempts"] == 2
    footer = lines[-1]
    assert footer["counters"].get("supervisor.retries", 0) >= 1
